"""The load generator against a live server: reports, traces, retries.

``run_loadgen`` drives its own event loop, so the server under test
runs on a background thread's loop -- the same process-topology as
the CLI pair (`repro serve` + `repro loadgen`), minus the fork.
"""

import asyncio
import threading

import pytest

from repro import obs
from repro.routing.traffic import load_trace, save_trace
from repro.serve import LayoutServer, ServeConfig, run_loadgen, synth_rows


@pytest.fixture(autouse=True)
def _obs_clean():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture()
def live_server(tmp_path):
    """A real daemon on a background loop; yields its port."""
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()

    async def boot():
        cfg = ServeConfig(
            port=0, workers=2, cache_dir=str(tmp_path / "cache")
        )
        return await LayoutServer(cfg).start()

    server = asyncio.run_coroutine_threadsafe(boot(), loop).result(
        timeout=30
    )
    try:
        yield server.port
    finally:
        asyncio.run_coroutine_threadsafe(server.aclose(), loop).result(
            timeout=30
        )
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)


class TestSynthRows:
    def test_deterministic_in_seed(self):
        a = synth_rows(["ring:4", "ring:6"], 20, seed=7)
        b = synth_rows(["ring:4", "ring:6"], 20, seed=7)
        c = synth_rows(["ring:4", "ring:6"], 20, seed=8)
        assert a == b
        assert a != c
        assert [row[2] for row in a] == list(range(20))

    def test_trace_roundtrip(self, tmp_path):
        rows = synth_rows(["hypercube:3", "kary:3,2"], 12, seed=1)
        path = tmp_path / "req.jsonl"
        assert save_trace(path, rows) == 12
        back = load_trace(path)
        assert [tuple(r) for r in back] == [tuple(r) for r in rows]


class TestLoadgen:
    def test_report_shape_and_percentiles(self, live_server):
        rows = synth_rows(
            ["ring:4", "ring:6", "hypercube:3"], 30, seed=3
        )
        report = run_loadgen(
            "127.0.0.1", live_server, rows, concurrency=4
        )
        assert report["schema"] == "repro.loadgen/v1"
        assert report["requests"] == 30
        assert report["completed"] == 30
        assert report["ok"] == 30
        assert report["five_xx"] == 0
        assert report["status"] == {"200": 30}
        lat = report["latency_ms"]
        assert lat["count"] == 30
        # Percentiles exist, are ordered, and bracket min/max.
        assert lat["min"] <= lat["p50"] <= lat["p90"] <= lat["p99"]
        assert lat["p99"] <= lat["max"] + 1e-9
        assert report["rps"] > 0
        # Slowest-N: descending latency, each row naming the
        # server-assigned ids and the answer's source.
        slow = report["slowest"]
        assert 1 <= len(slow) <= 5
        assert slow == sorted(
            slow, key=lambda s: -s["latency_ms"]
        )
        assert slow[0]["latency_ms"] == pytest.approx(
            lat["max"], abs=0.001
        )
        for s in slow:
            assert s["request_id"].startswith("r")
            assert len(s["trace_id"]) == 32
            assert s["source"] in ("built", "cache", "coalesced")

    def test_slowest_zero_disables_naming(self, live_server):
        rows = synth_rows(["ring:4"], 5, seed=1)
        report = run_loadgen(
            "127.0.0.1", live_server, rows, slowest=0
        )
        assert report["slowest"] == []

    def test_loadgen_trace_ids_resolve_on_server(self, live_server):
        """The exemplar promise: a slow sample's trace id fetches a
        span tree from the server it was measured against."""
        import json

        from repro.obs.export import validate_chrome_trace
        from repro.serve.protocol import http_request

        rows = synth_rows(["hypercube:3"], 4, seed=0)
        report = run_loadgen(
            "127.0.0.1", live_server, rows, slowest=2
        )
        assert report["slowest"]
        ident = report["slowest"][0]["trace_id"]

        async def fetch():
            return await http_request(
                "127.0.0.1", live_server, "GET",
                f"/debug/trace/{ident}",
            )

        st, _, body = asyncio.run(fetch())
        assert st == 200
        doc = json.loads(body)
        validate_chrome_trace(doc)
        assert doc["otherData"]["trace_id"] == ident

    def test_percentiles_come_from_obs_histogram(self, live_server):
        """The reported numbers are the repro.obs estimator's."""
        from repro.serve.loadgen import HIST_NAME

        rows = synth_rows(["ring:4"], 10, seed=0)
        report = run_loadgen("127.0.0.1", live_server, rows)
        hist = obs.registry().histogram(HIST_NAME)
        assert hist.count == 10
        assert report["latency_ms"]["p99"] == pytest.approx(
            hist.percentile(0.99), abs=0.001
        )

    def test_quota_exhaustion_shows_as_429_after_retries(self, tmp_path):
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()

        async def boot():
            cfg = ServeConfig(
                port=0,
                workers=1,
                cache_dir=str(tmp_path / "c"),
                quota_rate=0.01,
                quota_burst=2.0,
            )
            return await LayoutServer(cfg).start()

        server = asyncio.run_coroutine_threadsafe(boot(), loop).result(
            timeout=30
        )
        try:
            rows = synth_rows(["ring:4"], 5, seed=0)
            report = run_loadgen(
                "127.0.0.1",
                server.port,
                rows,
                concurrency=1,
                retries=0,
            )
            assert report["ok"] == 2  # burst
            assert report["status"].get("429") == 3
            assert report["five_xx"] == 0  # 429 is the client's fault
        finally:
            asyncio.run_coroutine_threadsafe(
                server.aclose(), loop
            ).result(timeout=30)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=5)

    def test_cycle_pacing_spreads_requests(self, live_server):
        import time

        rows = [("ring:4", 2, i) for i in range(4)]
        t0 = time.perf_counter()
        report = run_loadgen(
            "127.0.0.1", live_server, rows, cycle_s=0.05
        )
        elapsed = time.perf_counter() - t0
        assert report["ok"] == 4
        # Last request is due at 3 * 0.05s; closed-loop would finish
        # far sooner on an all-warm cache.
        assert elapsed >= 0.15
