"""A persistent process pool executing layout jobs for the server.

The sweep runner (:mod:`repro.batch.runner`) forks one process per
job *slice* and lets it exit; a server cannot afford that -- workers
here are **long-lived**: forked once at startup (inheriting the warm
interpreter on POSIX, ``spawn`` elsewhere), fed jobs through a
``multiprocessing`` task queue, and answering on a shared result
queue.  Each task is one :func:`repro.batch.runner.run_sweep_job`
call, so a pool worker gets the exact same pure build + cache +
observability path as a batch sweep worker -- including the
per-process :class:`~repro.batch.cache.LayoutCache` handle, whose
content-addressed atomic writes make concurrent workers building the
same key safe (last write wins with identical bytes).

The asyncio side never blocks: :meth:`WorkerPool.submit` returns an
``asyncio.Future`` resolved by a dispatcher thread that drains the
result queue and hops onto the event loop with
``loop.call_soon_threadsafe``.

Workers heartbeat into the server's run directory (when one is kept),
so ``python -m repro watch RUNDIR`` works on a serve run exactly as
on a sweep run.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time

from repro import obs
from repro.batch.cache import LayoutCache
from repro.batch.runner import _mp_context, run_sweep_job
from repro.batch.spec import SweepJob
from repro.obs import context as ocontext
from repro.obs import live
from repro.obs import logging as olog

__all__ = ["POOL_DELAY_ENV", "WorkerPool"]

#: Test/CI hook: a float number of seconds every pool worker sleeps
#: before starting a job's build.  Lets tests hold a cold key in
#: flight long enough to deterministically observe request
#: coalescing; never set in production.
POOL_DELAY_ENV = "REPRO_POOL_DELAY_S"


def _pool_worker(wid: int, tasks, results, cfg: dict) -> None:
    """Worker process entry: loop on the task queue until sentinel."""
    olog.fork_child(wid)
    if not olog.configured() and cfg.get("log_path"):
        # spawn start method: module state did not survive the fork.
        olog.configure(
            cfg["log_path"], run_id=cfg.get("run_id"), worker_id=wid
        )
    cache = (
        LayoutCache(cfg["cache_dir"])
        if cfg.get("cache_dir") is not None
        else None
    )
    hb = None
    if cfg.get("run_dir"):
        hb = live.HeartbeatWriter(cfg["run_dir"], wid)
        hb.beat(force=True)
        hb.start_pulse()
    olog.info("serve.worker_start", worker_id=wid)
    delay_s = 0.0
    try:
        delay_s = float(os.environ.get(POOL_DELAY_ENV, "") or 0.0)
    except ValueError:
        pass
    while True:
        task = tasks.get()
        if task is None:
            break
        job = SweepJob(
            index=0,
            network=task["network"],
            layers=task["layers"],
            scheme=task["scheme"],
        )
        if hb is not None:
            hb.current_job = job.job_id
            hb.beat(force=True)
        if delay_s > 0:
            time.sleep(delay_s)
        # Rehydrate the request's trace context so log lines carry
        # its trace id and, when the request is sampled, collect this
        # job's span forest to ship home with the result -- the
        # server reroots it under the request's root span.
        trace = task.get("trace")
        ctx = (
            ocontext.TraceContext.from_dict(trace)
            if trace is not None
            else None
        )
        collect = ctx is not None and ctx.sampled
        token = ocontext.set_context(ctx) if ctx is not None else None
        was_enabled = obs.enabled()
        if collect:
            obs.reset_trace()
            obs.enable()
        try:
            res = run_sweep_job(job, cache, validate=cfg["validate"])
        except (Exception, SystemExit) as exc:  # noqa: BLE001 - to parent
            olog.error(
                "serve.worker_error",
                worker_id=wid,
                job=job.job_id,
                error=str(exc),
            )
            results.put(
                {
                    "id": task["id"],
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "worker": wid,
                }
            )
            continue
        finally:
            spans = None
            if collect:
                spans = [r.as_dict() for r in obs.trace_roots()]
                obs.reset_trace()
                if not was_enabled:
                    obs.disable()
            if token is not None:
                ocontext.reset_context(token)
        results.put(
            {
                "id": task["id"],
                "ok": True,
                "result": res.as_dict(),
                "worker": wid,
                "spans": spans,
            }
        )
        if hb is not None:
            hb.job_tick(
                cache=cache.stats.as_dict() if cache is not None else {},
            )
    if hb is not None:
        hb.finish("done")
    olog.info("serve.worker_done", worker_id=wid)


class WorkerPool:
    """Long-lived layout-building processes behind an asyncio facade."""

    def __init__(
        self,
        workers: int = 1,
        *,
        cache_dir: str | os.PathLike | None = None,
        validate: bool = True,
        run_dir: str | os.PathLike | None = None,
    ):
        self.workers = max(1, int(workers))
        self.cache_dir = (
            None if cache_dir is None else os.fspath(cache_dir)
        )
        self.validate = validate
        self.run_dir = None if run_dir is None else os.fspath(run_dir)
        self._ctx = _mp_context()
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._procs: list = []
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._lock = threading.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._dispatcher: threading.Thread | None = None
        self._closed = False

    def start(self, loop: asyncio.AbstractEventLoop) -> "WorkerPool":
        """Fork the workers and start the result dispatcher thread."""
        self._loop = loop
        log_path = None
        if olog.configured():
            from repro.obs.logging import _config as _log_cfg

            log_path = _log_cfg.path if _log_cfg is not None else None
        cfg = {
            "cache_dir": self.cache_dir,
            "validate": self.validate,
            "run_dir": self.run_dir,
            "log_path": log_path,
            "run_id": olog.run_id(),
        }
        for wid in range(self.workers):
            p = self._ctx.Process(
                target=_pool_worker,
                args=(wid, self._tasks, self._results, cfg),
                name=f"repro-serve-{wid}",
                daemon=True,
            )
            p.start()
            olog.info(
                "serve.worker_spawn", worker_id=wid, worker_pid=p.pid
            )
            self._procs.append(p)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            daemon=True,
            name="repro-serve-dispatch",
        )
        self._dispatcher.start()
        return self

    def _dispatch_loop(self) -> None:
        while True:
            doc = self._results.get()
            if doc is None:
                break
            with self._lock:
                fut = self._pending.pop(doc["id"], None)
            if fut is None or self._loop is None:
                continue
            if doc.get("ok"):
                self._loop.call_soon_threadsafe(
                    _resolve,
                    fut,
                    {
                        "result": doc["result"],
                        "worker": doc.get("worker"),
                        "spans": doc.get("spans"),
                    },
                )
            else:
                self._loop.call_soon_threadsafe(
                    _reject, fut, RuntimeError(doc.get("error", "worker error"))
                )

    def submit(
        self,
        network: str,
        scheme: str,
        layers: int,
        *,
        trace: dict | None = None,
    ) -> asyncio.Future:
        """Queue one build; the future resolves to an envelope dict.

        The envelope carries ``result`` (the job-result dict),
        ``worker`` (which process built it), and ``spans`` (the
        worker's serialized span forest when ``trace`` named a
        sampled context, else ``None``).
        """
        if self._loop is None:
            raise RuntimeError("WorkerPool.start() not called")
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        fut = self._loop.create_future()
        with self._lock:
            task_id = self._next_id
            self._next_id += 1
            self._pending[task_id] = fut
        self._tasks.put(
            {
                "id": task_id,
                "network": network,
                "scheme": scheme,
                "layers": layers,
                "trace": trace,
            }
        )
        return fut

    def alive(self) -> int:
        return sum(1 for p in self._procs if p.is_alive())

    def snapshot(self) -> dict:
        with self._lock:
            pending = len(self._pending)
        return {
            "workers": self.workers,
            "alive": self.alive(),
            "pending": pending,
        }

    def close(self, timeout: float = 5.0) -> None:
        """Drain: sentinel every worker, join, stop the dispatcher."""
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            self._tasks.put(None)
        deadline = time.monotonic() + timeout
        for p in self._procs:
            p.join(timeout=max(0.1, deadline - time.monotonic()))
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        self._results.put(None)
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=2.0)
            self._dispatcher = None
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for fut in pending:
            if self._loop is not None:
                self._loop.call_soon_threadsafe(
                    _reject, fut, RuntimeError("worker pool closed")
                )


def _resolve(fut: asyncio.Future, value) -> None:
    if not fut.done():
        fut.set_result(value)


def _reject(fut: asyncio.Future, exc: BaseException) -> None:
    if not fut.done():
        fut.set_exception(exc)
