"""Cost model (Section 2.2's cost(A, L, L_A))."""

import pytest

from repro.core import layout_hypercube
from repro.core.cost import CostModel, chip_cost
from repro.core.folding import fold_layout


class TestCostModel:
    def test_layer_factor(self):
        m = CostModel(wiring_layer_premium=0.1, active_layer_premium=0.2)
        assert m.layer_factor(2, 1) == 1.0
        assert m.layer_factor(8, 1) == pytest.approx(1.6)
        assert m.layer_factor(8, 4) == pytest.approx(2.2)

    def test_yield(self):
        m = CostModel(defect_density=0.001)
        assert m.yield_fraction(0) == 1.0
        assert 0 < m.yield_fraction(1000) < 1.0

    def test_zero_defects(self):
        assert CostModel().yield_fraction(10**6) == 1.0


class TestChipCost:
    def test_breakdown_consistency(self):
        lay = layout_hypercube(6, layers=4)
        c = chip_cost(lay)
        assert c.area == lay.area
        assert c.total == pytest.approx((c.silicon + c.via_total))

    def test_multilayer_cheaper_despite_premium(self):
        """The paper's cost argument: the L^2/4 area shrink dominates
        the per-layer premium."""
        l2 = chip_cost(layout_hypercube(8, layers=2, node_side="min"))
        l8 = chip_cost(layout_hypercube(8, layers=8, node_side="min"))
        assert l8.total < l2.total

    def test_yield_amplifies_the_win(self):
        """Yield falls exponentially in area, so the smaller multilayer
        die gains even more once defects are modeled."""
        base2 = layout_hypercube(8, layers=2, node_side="min")
        base8 = layout_hypercube(8, layers=8, node_side="min")
        ideal = CostModel()
        defects = CostModel(defect_density=1e-5)
        ratio_ideal = chip_cost(base2, ideal).total / chip_cost(base8, ideal).total
        ratio_defect = (
            chip_cost(base2, defects).total / chip_cost(base8, defects).total
        )
        assert ratio_defect > ratio_ideal

    def test_folded_counts_active_layers(self):
        base = layout_hypercube(8, layers=2)
        folded = fold_layout(base, 8)
        c = chip_cost(folded)
        assert c.active_layers == 4
        c2 = chip_cost(base)
        assert c2.active_layers == 1

    def test_multilayer_beats_folding_on_cost(self):
        base = layout_hypercube(8, layers=2, node_side="min")
        folded = fold_layout(base, 8)
        multi = layout_hypercube(8, layers=8, node_side="min")
        model = CostModel()
        # Folding pays the active-layer premium on the same silicon
        # volume; the multilayer design shrinks the silicon itself.
        assert chip_cost(multi, model).total < chip_cost(folded, model).total
