"""Extended property-based tests across the newer subsystems.

These drive the cluster scheme with *random partitions of random
graphs*, round-trip random layouts through JSON, fold random
uniform-pitch layouts, cross-check the collinear engine against the
exact cutwidth DP, and fuzz the simulator -- each an invariant the
library's correctness story rests on.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st
from strategies import foldable_specs, random_networks

from repro.collinear.cutwidth import exact_cutwidth, optimal_order
from repro.collinear.engine import collinear_layout
from repro.core.builder import build_orthogonal_layout
from repro.core.folding import fold_layout
from repro.core.schemes import layout_cluster_network, layout_generic_grid
from repro.grid.io import layout_from_json, layout_to_json
from repro.grid.oracle import oracle_validate
from repro.grid.validate import check_topology, validate_layout
from repro.routing import simulate
from repro.topology import Partition


class TestRandomPartitions:
    @given(random_networks(), st.integers(1, 4), st.integers(0, 99))
    @settings(max_examples=60, deadline=None)
    def test_cluster_layout_legal_for_any_partition(self, net, k, seed):
        rng = random.Random(seed)
        mapping = {v: rng.randrange(k) for v in net.nodes}
        # Cluster ids must be the occupied ones only.
        used = sorted(set(mapping.values()))
        relabel = {c: i for i, c in enumerate(used)}
        part = Partition({v: relabel[c] for v, c in mapping.items()})
        lay = layout_cluster_network(
            net, part, lambda c: (0, c), layers=4
        )
        validate_layout(lay)
        check_topology(lay, net.edges)

    @given(random_networks())
    @settings(max_examples=40, deadline=None)
    def test_generic_grid_always_legal(self, net):
        lay = layout_generic_grid(net, layers=4)
        validate_layout(lay)
        check_topology(lay, net.edges)
        oracle_validate(lay)


class TestSerializationProperty:
    @given(random_networks(), st.sampled_from([2, 3, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_everything(self, net, layers):
        lay = layout_generic_grid(net, layers=layers)
        back = layout_from_json(layout_to_json(lay))
        assert back.summary() == lay.summary()
        assert back.edge_multiset() == lay.edge_multiset()
        assert back.wire_lengths_by_edge() == lay.wire_lengths_by_edge()
        validate_layout(back)


class TestFoldingProperty:
    @given(foldable_specs(), st.sampled_from([4, 8]))
    @settings(max_examples=50, deadline=None)
    def test_fold_preserves_wires_and_validates(self, spec, L):
        base = build_orthogonal_layout(spec)
        # Uniform pitch requires uniform channel extents; skip specs
        # whose random links make columns uneven.
        pitches = {
            w + e
            for w, e in zip(
                base.meta["col_widths"], base.meta["col_channel_extents"]
            )
        }
        if len(pitches) > 1:
            return
        folded = fold_layout(base, L)
        validate_layout(folded)
        oracle_validate(folded)
        assert folded.edge_multiset() == base.edge_multiset()
        assert folded.total_wire_length() == base.total_wire_length()
        assert folded.max_wire_length() == base.max_wire_length()


class TestCutwidthProperty:
    @given(random_networks())
    @settings(max_examples=25, deadline=None)
    def test_optimal_order_achieves_dp_value(self, net):
        if net.num_nodes > 10:
            return
        cw = exact_cutwidth(net)
        order = optimal_order(net)
        lay = collinear_layout(net.nodes, net.edges, order)
        assert lay.num_tracks == cw

    @given(random_networks(), st.integers(0, 999))
    @settings(max_examples=25, deadline=None)
    def test_dp_lower_bounds_any_order(self, net, seed):
        if net.num_nodes > 10:
            return
        cw = exact_cutwidth(net)
        rng = random.Random(seed)
        order = list(net.nodes)
        rng.shuffle(order)
        lay = collinear_layout(net.nodes, net.edges, order)
        assert lay.num_tracks >= cw


class TestSimulatorProperty:
    @given(random_networks(), st.integers(0, 99),
           st.sampled_from(["store_forward", "cut_through"]))
    @settings(max_examples=40, deadline=None)
    def test_all_messages_complete(self, net, seed, mode):
        rng = random.Random(seed)
        nodes = list(net.nodes)
        msgs = [
            (rng.choice(nodes), rng.choice(nodes)) for _ in range(8)
        ]
        res = simulate(net, msgs, mode=mode, message_length=3)
        assert res.messages == 8
        assert res.makespan >= res.max_latency >= 0
        assert res.avg_latency <= res.max_latency

    @given(random_networks())
    @settings(max_examples=20, deadline=None)
    def test_more_contention_never_faster(self, net):
        nodes = list(net.nodes)
        if len(nodes) < 2:
            return
        one = simulate(net, [(nodes[0], nodes[-1])])
        two = simulate(net, [(nodes[0], nodes[-1])] * 2)
        assert two.makespan >= one.makespan
