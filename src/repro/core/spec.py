"""Input specification for the orthogonal multilayer layout builder.

The orthogonal scheme (Section 2.4) sees a network as an R x C grid of
*cells* -- a cell is either one node or one cluster block (recursive
grid scheme, Section 2.3) -- plus links classified as:

* **row links**: both endpoints in the same cell row; routed in the
  horizontal channel above that row;
* **column links**: both endpoints in the same cell column; routed in
  the vertical channel right of that column;
* **extra links**: arbitrary endpoints (the folded-hypercube /
  enhanced-cube diameter links of Section 5.3); each is granted one
  dedicated horizontal track in its source row's channel and one
  dedicated vertical track in its target column's channel, exactly the
  accounting behind the paper's 49N^2/(9L^2) folded-hypercube bound.

Link endpoints name real network nodes, so cluster blocks know which
member node each inter-cluster wire must reach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

__all__ = ["NodeCell", "BlockCell", "LinkSpec", "LayoutSpec"]

Node = Hashable
CellPos = tuple[int, int]  # (row, col)


@dataclass(slots=True)
class NodeCell:
    """A cell holding a single network node as a ``side x side`` square.

    Under the Thompson convention ``side`` is the node degree; the
    multilayer model lets it grow up to ``o(Area/N)`` without affecting
    the leading constants (the scalability claim of Section 3.2), which
    benchmarks exercise by sweeping ``side``.
    """

    node: Node
    side: int

    def __post_init__(self) -> None:
        if self.side < 1:
            raise ValueError("node side >= 1")


@dataclass(slots=True)
class BlockCell:
    """A cell holding a cluster, laid out as a strip inside the block.

    The strip layout (one level of the recursive grid scheme of Section
    2.3) places the cluster's nodes side by side, routes intra-cluster
    edges in tracks *below* the node row, and reserves a distribution
    region *above* it where external links fan in: top-entering links
    drop straight to their target node's pin; side-entering links ride
    a dedicated distribution track to the target's column first.

    Parameters
    ----------
    label:
        The cluster's identity (the quotient supernode).
    nodes:
        Member nodes in strip order (choose a low-cutwidth order; e.g.
        cycle order for CCC clusters, binary order for hypercube
        clusters).
    edges:
        Intra-cluster edges between member nodes.
    node_side:
        Side of each member node's square.
    """

    label: Hashable
    nodes: list[Node]
    edges: list[tuple[Node, Node]]
    node_side: int

    def __post_init__(self) -> None:
        if self.node_side < 1:
            raise ValueError("node side >= 1")
        members = set(self.nodes)
        if len(members) != len(self.nodes):
            raise ValueError(f"block {self.label!r}: duplicate members")
        for u, v in self.edges:
            if u not in members or v not in members:
                raise ValueError(
                    f"block {self.label!r}: edge ({u!r},{v!r}) leaves block"
                )


@dataclass(slots=True)
class LinkSpec:
    """One network edge to route between cells.

    ``u_node`` / ``v_node`` are the real endpoints; ``u_cell`` /
    ``v_cell`` their grid positions.  ``edge_key`` discriminates
    parallel links (PN-cluster quotients).
    """

    u_cell: CellPos
    v_cell: CellPos
    u_node: Node
    v_node: Node
    edge_key: int = 0

    @property
    def same_row(self) -> bool:
        return self.u_cell[0] == self.v_cell[0]

    @property
    def same_col(self) -> bool:
        return self.u_cell[1] == self.v_cell[1]


@dataclass(slots=True)
class LayoutSpec:
    """Complete input to :func:`repro.core.builder.build_orthogonal_layout`."""

    rows: int
    cols: int
    cells: dict[CellPos, NodeCell | BlockCell]
    row_links: list[LinkSpec] = field(default_factory=list)
    col_links: list[LinkSpec] = field(default_factory=list)
    extra_links: list[LinkSpec] = field(default_factory=list)
    layers: int = 2
    name: str = "layout"

    def validate(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("grid must be at least 1 x 1")
        if self.layers < 2:
            raise ValueError(
                "the multilayer grid model needs L >= 2 (one horizontal "
                "+ one vertical layer)"
            )
        for pos in self.cells:
            i, j = pos
            if not (0 <= i < self.rows and 0 <= j < self.cols):
                raise ValueError(f"cell {pos} outside the {self.rows}x{self.cols} grid")
        for link in self.row_links:
            if not link.same_row or link.u_cell == link.v_cell:
                raise ValueError(f"bad row link {link}")
            self._check_endpoint(link.u_cell, link.u_node)
            self._check_endpoint(link.v_cell, link.v_node)
        for link in self.col_links:
            if not link.same_col or link.u_cell == link.v_cell:
                raise ValueError(f"bad column link {link}")
            self._check_endpoint(link.u_cell, link.u_node)
            self._check_endpoint(link.v_cell, link.v_node)
        for link in self.extra_links:
            if link.u_cell == link.v_cell:
                raise ValueError(f"extra link within one cell: {link}")
            self._check_endpoint(link.u_cell, link.u_node)
            self._check_endpoint(link.v_cell, link.v_node)

    def _check_endpoint(self, pos: CellPos, node: Node) -> None:
        cell = self.cells.get(pos)
        if cell is None:
            raise ValueError(f"link endpoint in empty cell {pos}")
        if isinstance(cell, NodeCell):
            if cell.node != node:
                raise ValueError(
                    f"link names node {node!r} but cell {pos} holds "
                    f"{cell.node!r}"
                )
        else:
            if node not in set(cell.nodes):
                raise ValueError(
                    f"link names node {node!r} absent from block at {pos}"
                )

    def all_links(self) -> Sequence[LinkSpec]:
        return [*self.row_links, *self.col_links, *self.extra_links]
