"""E0: the complete results matrix.

One row per network family the paper lays out: the paper's leading-term
formulas next to the measured, validated layouts at a reference size
and L = 4.  This is the paper's Section 6 summary ("the proposed
layouts are the best reported ... optimal within a small constant
factor"), regenerated as a single table.
"""

from repro.core import measure
from repro.core.analysis import (
    butterfly_prediction,
    ccc_prediction,
    enhanced_cube_prediction,
    folded_hypercube_prediction,
    ghc_prediction,
    hsn_prediction,
    hypercube_prediction,
    isn_prediction,
    kary_prediction,
    reduced_hypercube_prediction,
)
from repro.core.schemes import (
    layout_butterfly,
    layout_ccc,
    layout_enhanced_cube,
    layout_folded_hypercube,
    layout_ghc,
    layout_hsn,
    layout_hypercube,
    layout_isn,
    layout_kary,
    layout_reduced_hypercube,
)
from repro.grid.validate import validate_layout
from repro.topology import CompleteGraph

L = 4


def test_results_matrix(benchmark, report):
    cases = [
        ("k-ary n-cube (4,4)", lambda: layout_kary(4, 4, layers=L, node_side="min"),
         kary_prediction(4, 4, L)),
        ("hypercube n=8", lambda: layout_hypercube(8, layers=L, node_side="min"),
         hypercube_prediction(8, L)),
        ("GHC (8,8)", lambda: layout_ghc((8, 8), layers=L, node_side="min"),
         ghc_prediction(8, 2, L)),
        ("butterfly m=4", lambda: layout_butterfly(4, layers=L),
         butterfly_prediction(4, L)),
        ("ISN m=4", lambda: layout_isn(4, layers=L), isn_prediction(4, L)),
        ("HSN (K8, l=2)", lambda: layout_hsn(CompleteGraph(8), 2, layers=L),
         hsn_prediction(8, 2, L)),
        ("CCC n=5", lambda: layout_ccc(5, layers=L), ccc_prediction(5, L)),
        ("reduced hypercube n=4",
         lambda: layout_reduced_hypercube(4, layers=L),
         reduced_hypercube_prediction(4, L)),
        ("folded hypercube n=6",
         lambda: layout_folded_hypercube(6, layers=L, node_side="min"),
         folded_hypercube_prediction(6, L)),
        ("enhanced cube n=6",
         lambda: layout_enhanced_cube(6, layers=L, node_side="min"),
         enhanced_cube_prediction(6, L)),
    ]
    # Cluster families (butterfly/ISN/HSN/CCC/RH) have log^2 N factors
    # in their leading terms: at bench-scale N those terms are tiny and
    # the measured area is block-dominated, so their ratios are large
    # and fall only slowly with N (see the per-family benches for the
    # convergence sweeps).  Product families are channel-dominated
    # already.
    cluster_families = {"butterfly m=4", "ISN m=4", "HSN (K8, l=2)",
                        "CCC n=5", "reduced hypercube n=4"}
    rows = []
    for name, build, pred in cases:
        lay = build()
        validate_layout(lay)
        m = measure(lay)
        ratio = m.area / pred.area
        regime = "blocks (o() dominated)" if name in cluster_families else "channels"
        if name not in cluster_families:
            assert ratio < 8  # channel-dominated families sit near the formula
        rows.append([
            name, pred.num_nodes,
            round(pred.area), m.area, f"{ratio:.2f}", regime,
            "-" if pred.max_wire is None else round(pred.max_wire),
            m.max_wire,
        ])
    report(
        f"E0: the paper's results matrix at L={L} "
        "(all layouts validated; ratios carry the finite-size o() terms)",
        ["family", "N", "paper area", "measured", "ratio", "regime at this N",
         "paper wire", "measured"],
        rows,
    )
    benchmark.pedantic(
        layout_hypercube, args=(8,), kwargs={"layers": L}, rounds=1,
        iterations=1,
    )
