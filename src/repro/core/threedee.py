"""Multilayer 3-D grid layouts: deck stacking with riser wires.

Section 2.2 defines the multilayer *3-D* grid model (nodes embedded in
``L_A`` active layers) and Section 2.3 notes the recursive grid scheme
may arrange blocks "as a 3-D grid for the 3-D layout model".  The paper
defers concrete 3-D layouts to future work; this module provides the
natural construction for product networks, staying strictly inside the
paper's model:

For ``G = (A x B) x C``:

1. each node ``z`` of C becomes a *deck*: a 2-D orthogonal layout of
   the ``A x B`` slice, placed on its own band of ``L' = 2
   floor(L/(2 |C|))`` wiring layers with its nodes on the band's first
   layer (so ``L_A = |C|`` active layers);
2. every C-edge ``(z1, z2)`` becomes, per planar position, a **riser**:
   a pure z-direction wire at a reserved pin point of the two aligned
   nodes.  Riser pin abscissae are assigned by a greedy edge coloring
   of C, so that the two endpoints of each riser agree on the pin
   offset while incident C-edges at one node get distinct pins.

Legality is structural: decks are planar-identical, so the set of free
(unused) pin offsets is identical on every deck; risers use only free
offsets, hence no vertical deck wiring shares their abscissae, and no
horizontal deck wiring runs along the node-row top edge where risers
puncture the stack.  Every layout is checked by the standard validator.

The payoff measured by the E8 bench: against the 2-D layout of the same
product network, the 3-D layout trades a taller stack for a much
smaller footprint -- the "volume and wire length" economics that
motivate the multilayer 3-D model.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.schemes import layout_grid
from repro.grid.layout import GridLayout
from repro.grid.wire import Wire
from repro.topology.base import Network, build_network
from repro.topology.product import ProductNetwork

__all__ = ["layout_product_3d", "greedy_edge_coloring"]


def greedy_edge_coloring(network: Network) -> dict[tuple, int]:
    """Color edges so incident edges differ; returns edge -> color.

    Greedy over canonical edge order: at most 2*maxdeg - 1 colors
    (typically maxdeg or maxdeg+1 on the small factor graphs used as
    stacking dimensions).
    """
    colors: dict[tuple, int] = {}
    incident: dict[Hashable, set[int]] = {v: set() for v in network.nodes}
    for u, v in network.edges:
        used = incident[u] | incident[v]
        c = 0
        while c in used:
            c += 1
        colors[(u, v)] = c
        incident[u].add(c)
        incident[v].add(c)
    return colors


def layout_product_3d(
    a: Network,
    b: Network,
    c: Network,
    *,
    layers: int,
    node_side: int | None = None,
) -> GridLayout:
    """Lay out ``(A x B) x C`` in the multilayer 3-D grid model.

    ``layers`` must provide at least two wiring layers per deck
    (``layers >= 2 |C|``).  Node squares default to the full product
    network's maximum degree, which also guarantees enough free pin
    offsets for the risers.
    """
    net = ProductNetwork(ProductNetwork(a, b), c)
    decks = list(c.nodes)
    D = len(decks)
    l_per = 2 * (layers // (2 * D))
    if l_per < 2:
        raise ValueError(
            f"need at least {2 * D} layers for {D} decks (got {layers})"
        )
    side = node_side if node_side is not None else max(net.max_degree, 1)

    ab = ProductNetwork(a, b)
    a_index = a.index
    b_index = b.index

    def position(node) -> tuple[int, int]:
        (x, y), _z = node
        return (b_index[y], a_index[x])

    merged = GridLayout(layers=layers)
    free_offsets: dict[tuple, list[int]] | None = None
    geometry: dict[tuple, tuple[int, int]] = {}  # (x,y) -> (pin_x0, top_y)

    for d, z in enumerate(decks):
        deck_nodes = [((x, y), z) for (x, y) in ab.nodes]
        deck_edges = [(((ux, uy), z), ((vx, vy), z))
                      for ((ux, uy), (vx, vy)) in ab.edges]
        deck_net = build_network(deck_nodes, deck_edges, f"deck {z}")
        lay = layout_grid(
            deck_net, position, layers=l_per, node_side=side,
            name=f"deck {z}",
        )
        base = d * l_per
        # Merge placements and wires, shifting layers into the deck band.
        for node, p in lay.placements.items():
            merged.place(node, p.rect, layer=base + 1)
        for w in lay.wires:
            shifted = [
                type(s)(s.x1, s.y1, s.x2, s.y2, s.layer + base)
                for s in w.segments
            ]
            merged.add_wire(Wire(w.u, w.v, shifted, edge_key=w.edge_key))
        # Free top-pin offsets are deck-invariant; compute once.
        if free_offsets is None:
            free_offsets = _free_top_offsets(lay, side)
            for node, p in lay.placements.items():
                (xy, _z) = node
                geometry[xy] = (p.rect.x0, p.rect.y0)

    assert free_offsets is not None
    deck_index = {z: d for d, z in enumerate(decks)}
    colors = _riser_colors(c, deck_index)
    max_color = max(colors.values(), default=-1)
    for xy, free in free_offsets.items():
        if max_color + 1 > len(free):
            raise ValueError(
                f"node {xy!r} lacks {max_color + 1} free top pins for "
                f"risers (has {len(free)}); raise node_side"
            )

    for (z1, z2) in c.edges:
        color = colors[(z1, z2)]
        d1, d2 = sorted((deck_index[z1], deck_index[z2]))
        z_lo = d1 * l_per + 1
        z_hi = d2 * l_per + 1
        for xy in geometry:
            x0, top_y = geometry[xy]
            px = x0 + free_offsets[xy][color]
            merged.add_wire(
                Wire.make_riser((xy, z1), (xy, z2), px, top_y, z_lo, z_hi)
            )

    merged.meta.update(
        {
            "scheme": "multilayer-3d-grid",
            "name": f"({ab.name}) x ({c.name}) 3-D L={layers}",
            "decks": D,
            "layers_per_deck": l_per,
            "active_layers": [d * l_per + 1 for d in range(D)],
            "network": net.name,
            "num_nodes": net.num_nodes,
            "node_side": side,
        }
    )
    return merged


def _riser_colors(c: Network, deck_index: dict) -> dict[tuple, int]:
    """Assign each C-edge a riser pin color.

    Two risers at one planar position conflict when their deck-index
    intervals share *any* stack level -- including a single endpoint
    deck, where both wires would claim the same pin point.  That makes
    the conflict graph an interval graph over closed deck intervals, so
    left-edge coloring (on doubled coordinates, which turns touching
    into overlap) is optimal.
    """
    from repro.grid.tracks import Interval, pack_intervals

    edges = list(c.edges)
    intervals = []
    for (z1, z2) in edges:
        d1, d2 = sorted((deck_index[z1], deck_index[z2]))
        intervals.append(Interval(2 * d1, 2 * d2 + 1))
    assignment, _count = pack_intervals(intervals)
    return {edges[i]: assignment[i] for i in range(len(edges))}


def _free_top_offsets(lay: GridLayout, side: int) -> dict[tuple, list[int]]:
    """Per planar node key: top-edge pin offsets unused by deck wiring."""
    used: dict[tuple, set[int]] = {}
    rects = {}
    for node, p in lay.placements.items():
        (xy, _z) = node
        rects[xy] = p.rect
        used.setdefault(xy, set())
    # Endpoint order of single-segment wires is normalization-dependent,
    # so attribute each endpoint to whichever of the wire's nodes it
    # touches.
    for w in lay.wires:
        for pt in (w.start, w.end):
            for node in (w.u, w.v):
                (xy, _z) = node
                r = rects[xy]
                if pt.y == r.y0 and r.x0 <= pt.x <= r.x1:
                    used[xy].add(pt.x - r.x0)
    return {
        xy: sorted(set(range(side)) - offsets)
        for xy, offsets in used.items()
    }
