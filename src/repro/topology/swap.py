"""Hierarchical swap networks and hierarchical hypercube networks
(Section 4.3, refs [33, 34, 36]).

An l-level HSN over an r-node nucleus graph has nodes ``(v, c)`` where
``v`` in 0..r-1 is the position inside the nucleus and
``c = (c_{l-1}, ..., c_1)`` is the cluster address (each digit in
0..r-1).  Within a cluster the nucleus edges apply.  The level-i
*swap* link (1 <= i <= l-1) joins

    (v, c)   <->   (c_i, c with digit i replaced by v)      for v != c_i,

the index-permutation swap rule of the unified model [33, 34] (the
precise rule in those references is unavailable; this standard rule is
a documented substitution -- see DESIGN.md).  It yields exactly one
link between any two clusters whose addresses differ in a single digit,
i.e. the quotient is the (l-1)-dimensional radix-r generalized
hypercube with multiplicity 1 -- the only property Section 4.3's layout
accounting uses (HSN area = GHC(N/r) area with r^2/4-track cluster
links, collapsing to N^2/(4 L^2)).

HHN [36] is the special case with a hypercube nucleus.
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Edge, Network, Node
from repro.topology.partition import Partition

__all__ = ["HSN", "HHN"]


class HSN(Network):
    """Hierarchical swap network over a given nucleus.

    Parameters
    ----------
    nucleus:
        Any network whose nodes are ``0 .. r-1`` (e.g.
        :class:`~repro.topology.complete.CompleteGraph`,
        :class:`~repro.topology.hypercube.Hypercube`).
    levels:
        l >= 2; the cluster address has l-1 digits, N = r^l.
    """

    def __init__(self, nucleus: Network, levels: int):
        if levels < 2:
            raise ValueError("levels >= 2")
        r = nucleus.num_nodes
        if sorted(nucleus.nodes) != list(range(r)):
            raise ValueError("nucleus nodes must be 0..r-1")
        self.nucleus = nucleus
        self.levels = levels
        self.r = r
        self.name = f"HSN({nucleus.name}, l={levels})"

    def _build_nodes(self) -> Sequence[Node]:
        out: list[tuple[int, tuple[int, ...]]] = []
        addrs: list[tuple[int, ...]] = [()]
        for _ in range(self.levels - 1):
            addrs = [t + (d,) for t in addrs for d in range(self.r)]
        self._addrs = addrs
        return [(v, c) for c in addrs for v in range(self.r)]

    def _build_edges(self) -> Sequence[Edge]:
        edges: list[Edge] = []
        l1 = self.levels - 1
        for c in self._addrs:
            for (u, v) in self.nucleus.edges:
                edges.append(((u, c), (v, c)))
            # Swap links: digit index j in the address tuple corresponds
            # to level i = l-1-j (address is (c_{l-1}, ..., c_1)).
            for j in range(l1):
                for v in range(self.r):
                    if v == c[j]:
                        continue  # identity swap: no link
                    c2 = c[:j] + (v,) + c[j + 1 :]
                    partner = (c[j], c2)
                    # Each unordered link appears for both endpoints;
                    # emit it once, from the lexicographically-smaller
                    # cluster side.
                    if (c, v) < (c2, c[j]):
                        edges.append(((v, c), partner))
        return edges

    def cluster_partition(self) -> Partition:
        return Partition({n: n[1] for n in self.nodes}, name="hsn-clusters")


class HHN(HSN):
    """Hierarchical hypercube network: an HSN with a hypercube nucleus.

    ``dim`` is the nucleus dimension (r = 2^dim nodes per cluster).
    """

    def __init__(self, dim: int, levels: int = 2):
        from repro.topology.hypercube import Hypercube

        super().__init__(Hypercube(dim), levels)
        self.name = f"HHN(dim={dim}, l={levels})"
