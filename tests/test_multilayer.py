"""Track-to-layer assignment (the Section 2.4 transform)."""

import pytest

from repro.core.multilayer import LayerGroups


class TestLayerGroups:
    def test_thompson_degenerate(self):
        g = LayerGroups(tracks=7, layers=2)
        assert g.groups == 1
        assert g.per_group == 7
        for t in range(7):
            slot = g.slot(t)
            assert slot.offset == t
            assert (slot.h_layer, slot.v_layer) == (1, 2)

    def test_even_layers_split(self):
        g = LayerGroups(tracks=10, layers=4)
        assert g.groups == 2 and g.per_group == 5
        assert g.slot(0).h_layer == 1
        assert g.slot(4).offset == 4
        assert g.slot(5).h_layer == 3 and g.slot(5).offset == 0
        assert g.slot(9).v_layer == 4

    def test_odd_layers_use_one_fewer(self):
        g = LayerGroups(tracks=10, layers=5)
        assert g.groups == 2  # floor(5/2): the 5th layer is unused
        assert g.per_group == 5

    def test_ceiling_division(self):
        g = LayerGroups(tracks=7, layers=6)
        assert g.groups == 3 and g.per_group == 3
        # group for each track
        assert [g.slot(t).h_layer for t in range(7)] == [1, 1, 1, 3, 3, 3, 5]

    def test_zero_tracks(self):
        g = LayerGroups(tracks=0, layers=8)
        assert g.physical_extent() == 0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            LayerGroups(tracks=3, layers=2).slot(3)

    def test_extent_shrinks_with_layers(self):
        extents = [LayerGroups(tracks=24, layers=L).physical_extent()
                   for L in (2, 4, 6, 8, 12)]
        assert extents == [24, 12, 8, 6, 4]

    def test_all_layers_within_budget(self):
        for L in range(2, 12):
            g = LayerGroups(tracks=30, layers=L)
            for t in range(30):
                slot = g.slot(t)
                assert 1 <= slot.h_layer < slot.v_layer <= L
