"""Batched event engine: the fast path for traffic simulation.

:func:`simulate_fast` reproduces :func:`repro.routing.simulator.simulate`
field-for-field -- same ``SimulationResult``, same deterministic
lowest-index-wins link arbitration, same queue-depth accounting, same
busiest-link tie-break -- while replacing the oracle's per-packet heap
with a calendar queue of time buckets and per-link waiter heaps.

Why it is fast
--------------
The oracle parks every waiter back on the global event heap at the
link's free time, so releasing a link with ``Q`` waiters re-pops all
``Q`` of them, every cycle, until the queue drains: ``O(Q^2)`` heap
traffic per queue, which is exactly the regime (saturation) where the
paper's latency claims live.  The engine keeps one min-heap of waiting
message indices per link and wakes each link **once** per release, so
total event work is linear in delivered hops.  On top of that, the
numpy backend processes large time buckets as int64 array batches:
arrival detection, bulk latency-histogram updates, and grouping movers
by contended link (a stable argsort over the CSR link column) are
vectorized, then each group is arbitrated by the shared scalar helper.
Per-message and per-link *mutable* state stays in plain python lists
on both backends -- the arbitration loop is scalar element access,
where list indexing beats ndarray item access several-fold.

Backend selection mirrors :mod:`repro.grid.table`: numpy when
importable, a pure-python mirror otherwise, ``REPRO_ENGINE_FALLBACK=1``
(or ``REPRO_ACCEL_BACKEND=pure``, the registry-wide switch) forces the
fallback, and ``use_numpy=`` overrides per call.  The batch bucket
classification itself is the registry's ``classify_bucket`` kernel
(:mod:`repro.accel`); both backends share the scalar arbitration and
scheduling helpers, so they cannot diverge from each other.

Parity caveat: when a hop's advance delay is 0 (``router_overhead=0``
with zero-delay wires) a message hops several times inside one cycle
and the oracle interleaves those sub-steps by message index, which the
batch model replays in hop-waves instead.  Aggregate results still
agree, but the busiest-link tie-break may not; every delay model in
this repo (and ``router_overhead >= 1``) keeps advances positive, where
parity is exact.
"""

from __future__ import annotations

import heapq
import os
from typing import Callable, Hashable

from repro import accel as _accel
from repro import obs
from repro.grid.layout import GridLayout
from repro.obs.metrics import Histogram
from repro.routing.paths import RoutingTable
from repro.routing.simulator import (
    LATENCY_BOUNDS,
    SimulationResult,
    _build_routes,
    _finalize_result,
    _hop_costs,
    _resolve_link_delay,
    _resolve_router,
)
from repro.topology.base import Network

try:  # vectorized path; the pure-python fallback mirrors it exactly
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

if (
    os.environ.get("REPRO_ENGINE_FALLBACK") == "1"
    or _accel.active_backend() != "numpy"
):
    _np = None

__all__ = [
    "simulate_fast",
    "saturation_sweep",
    "knee_point",
    "HAVE_NUMPY",
]

Node = Hashable
Message = tuple[Node, Node]

#: Whether the vectorized backend is active (numpy importable and not
#: disabled via ``REPRO_ENGINE_FALLBACK=1`` / ``REPRO_ACCEL_BACKEND=pure``).
HAVE_NUMPY = _np is not None

if HAVE_NUMPY:
    _classify_bucket = _accel.get_backend("numpy").classify_bucket

#: Below this many message events in a time bucket the scalar loop wins
#: -- array setup costs more than it saves.
_VEC_MIN = 16


def _observe_batch(hist: Histogram, bounds_arr, values) -> None:
    """Bulk-exact equivalent of ``hist.observe(v)`` per int64 value.

    Count, sum, min, max and bucket placement land exactly where the
    oracle's one-at-a-time observations put them (integer latencies
    sum exactly in a float64 well below 2**53), so the serialized
    ``latency_hist`` stays byte-identical between engines.
    """
    hist.count += int(values.size)
    hist.total += float(values.sum())
    mn, mx = int(values.min()), int(values.max())
    if hist.min is None or mn < hist.min:
        hist.min = mn
    if hist.max is None or mx > hist.max:
        hist.max = mx
    pos = _np.searchsorted(bounds_arr, values, side="left")
    for p, c in zip(*_np.unique(pos, return_counts=True)):
        hist.buckets[int(p)] += int(c)


def simulate_fast(
    network: Network,
    messages: list[Message],
    *,
    layout: GridLayout | None = None,
    router: RoutingTable | Callable[[Node, Node], list] | None = None,
    link_delay: dict[tuple[Node, Node], int] | None = None,
    default_delay: int = 1,
    router_overhead: int = 1,
    mode: str = "store_forward",
    message_length: int = 1,
    max_cycles: int = 10_000_000,
    use_numpy: bool | None = None,
) -> SimulationResult:
    """Drop-in fast replacement for :func:`repro.routing.simulator.simulate`.

    Same signature and semantics (see there for the parameter story),
    plus ``use_numpy`` to pick the backend explicitly: ``None`` takes
    the import-time default, ``True`` requires numpy, ``False`` forces
    the pure-python mirror.  Results match the oracle field-for-field;
    the parity suite and the ``traffic`` fuzz stage enforce it.
    """
    if use_numpy is None:
        use_numpy = HAVE_NUMPY
    elif use_numpy and not HAVE_NUMPY:
        raise ValueError(
            "use_numpy=True but numpy is unavailable (not installed, "
            "REPRO_ENGINE_FALLBACK=1, or REPRO_ACCEL_BACKEND=pure)"
        )

    link_delay = _resolve_link_delay(layout, link_delay)
    get_route = _resolve_router(network, router)
    routes, starts = _build_routes(messages, get_route)
    delay_of = _hop_costs(
        link_delay, default_delay, router_overhead, mode, message_length
    )

    n_msgs = len(routes)
    # Flatten routes to per-hop link ids (CSR layout).  Link ids are
    # assigned in first-encounter order over messages x hops; the
    # *result* ordering (busiest-link tie-break) instead follows the
    # first-acquisition sequence tracked during the run.
    link_index: dict[tuple, int] = {}
    link_pairs: list[tuple] = []
    flat: list[int] = []
    offsets = [0]
    for route in routes:
        prev = route[0]
        for v in route[1:]:
            pair = (prev, v)
            li = link_index.get(pair)
            if li is None:
                li = len(link_pairs)
                link_index[pair] = li
                link_pairs.append(pair)
            flat.append(li)
            prev = v
        offsets.append(len(flat))
    n_links = len(link_pairs)
    d_of = [0] * n_links
    busy_of = [0] * n_links
    for li, pair in enumerate(link_pairs):
        d, b = delay_of(*pair)
        # Plain python ints: the arbitration loop does arithmetic on
        # these per hop, and WireTable delays may arrive as np.int64.
        d_of[li] = int(d)
        busy_of[li] = int(b)
    nhops = [offsets[i + 1] - offsets[i] for i in range(n_msgs)]
    tail = message_length - 1 if mode == "cut_through" else 0

    # Mutable state lives in plain python lists on BOTH backends: link
    # arbitration is scalar element access, and list indexing is
    # several-fold cheaper than ndarray item access.  The numpy backend
    # adds read-only int64 columns (routes, delays, starts) that the
    # batch path gathers from without touching python objects.
    hop = [0] * n_msgs
    free = [0] * n_links
    qlen = [0] * n_links
    load = [0] * n_links
    busy_time = [0] * n_links
    first_seq = [-1] * n_links
    if use_numpy:
        flat_a = _np.asarray(flat, dtype=_np.int64)
        route_start_a = _np.asarray(offsets[:-1], dtype=_np.int64)
        nhops_a = _np.asarray(nhops, dtype=_np.int64)
        starts_a = _np.asarray(starts, dtype=_np.int64)
        bounds_a = _np.asarray(LATENCY_BOUNDS, dtype=_np.int64)
    wake_sched = [-1] * n_links
    queues: list[list[int]] = [[] for _ in range(n_links)]

    depth_hist: dict[int, int] = {}
    lat_hist = Histogram(LATENCY_BOUNDS)
    lats: list[int] = []
    makespan = 0
    active = n_msgs
    events = 0
    seq = 0
    new_first: dict = {}

    # Calendar queue: message and wake events live in per-time buckets;
    # a heap of distinct times (deduped by set) orders the batches.
    # Hot helpers bind their state through default args -- local slot
    # access beats closure-cell dereferences in the arbitration loop.
    msg_at: dict[int, list[int]] = {}
    wake_at: dict[int, list[int]] = {}
    times: list[int] = []
    in_heap: set[int] = set()

    def sched_msg(
        i, t, *, msg_at=msg_at, in_heap=in_heap, times=times,
        heappush=heapq.heappush,
    ):
        b = msg_at.get(t)
        if b is None:
            msg_at[t] = [i]
            if t not in in_heap:
                in_heap.add(t)
                heappush(times, t)
        else:
            b.append(i)

    def sched_wake(
        li, t, *, wake_sched=wake_sched, wake_at=wake_at, in_heap=in_heap,
        times=times, heappush=heapq.heappush,
    ):
        if wake_sched[li] == t:
            return
        wake_sched[li] = t
        b = wake_at.get(t)
        if b is None:
            wake_at[t] = [li]
            if t not in in_heap:
                in_heap.add(t)
                heappush(times, t)
        else:
            b.append(li)

    def resolve(
        li, group, t_now, *, queues=queues, free=free, qlen=qlen,
        load=load, busy_time=busy_time, first_seq=first_seq, hop=hop,
        busy_of=busy_of, d_of=d_of, depth_hist=depth_hist,
        new_first=new_first, sched_msg=sched_msg, sched_wake=sched_wake,
        heappop=heapq.heappop, heappush=heapq.heappush,
    ):
        """Arbitrate link ``li`` at ``t_now``.

        ``group`` holds this bucket's movers for the link in ascending
        message index.  Matches the oracle exactly: while the link is
        free, the lowest index among (queued waiters, new movers) wins;
        leftovers join the waiter heap, each recording the queue depth
        it found (its own slot included), exactly once per wait.
        """
        q = queues[li]
        gpos = 0
        glen = len(group)
        f = free[li]
        if f <= t_now and (q or glen):
            b = busy_of[li]
            nt = t_now + d_of[li]
            while f <= t_now and (q or gpos < glen):
                cand = group[gpos] if gpos < glen else None
                if q and (cand is None or q[0] < cand):
                    w = heappop(q)
                    qlen[li] -= 1
                else:
                    w = cand
                    gpos += 1
                f = t_now + b
                busy_time[li] += b
                load[li] += 1
                if first_seq[li] < 0 and li not in new_first:
                    new_first[li] = w
                hop[w] += 1
                sched_msg(w, nt)
            free[li] = f
        for k in range(gpos, glen):
            qlen[li] += 1
            depth = qlen[li]
            depth_hist[depth] = depth_hist.get(depth, 0) + 1
            heappush(q, group[k])
        if q:
            sched_wake(li, f)

    for i, s in enumerate(starts):
        sched_msg(i, int(s))

    backend = "numpy" if use_numpy else "python"
    heappop = heapq.heappop
    heappush = heapq.heappush
    with obs.span(
        "simulate.engine", messages=n_msgs, mode=mode,
        message_length=message_length, backend=backend,
    ) as sp:
        while active and times:
            t_now = heappop(times)
            in_heap.discard(t_now)
            movers_raw = msg_at.pop(t_now, None)
            wakes = wake_at.pop(t_now, None)
            events += (len(movers_raw) if movers_raw else 0) + (
                len(wakes) if wakes else 0
            )
            if events > max_cycles:
                raise RuntimeError("simulation exceeded max_cycles")
            new_first.clear()
            if wakes:
                for li in wakes:
                    wake_sched[li] = -1
            if movers_raw:
                movers_raw.sort()
            if use_numpy and movers_raw and len(movers_raw) >= _VEC_MIN:
                n_done, top, blats, groups = _classify_bucket(
                    movers_raw, hop, t_now, tail,
                    nhops_a, route_start_a, flat_a, starts_a,
                )
                if n_done:
                    if top > makespan:
                        makespan = top
                    lats.extend(blats)
                    active -= n_done
                for li, group in groups:
                    resolve(li, group, t_now)
            elif movers_raw:
                # Scalar path: one pass, each mover handled in place.
                # Movers come sorted, so the first mover a link sees in
                # this bucket is the lowest index -- instant-acquire and
                # queue-join below reproduce grouped arbitration exactly
                # (later same-bucket movers find the link busy & queue).
                for i in movers_raw:
                    hp = hop[i]
                    if hp >= nhops[i]:
                        done = t_now + tail if nhops[i] else t_now
                        if done > makespan:
                            makespan = done
                        lats.append(done - starts[i])
                        active -= 1
                        continue
                    li = flat[offsets[i] + hp]
                    f = free[li]
                    if f > t_now:
                        # Busy link: join the waiter heap, record the
                        # depth found (own slot included), exactly once.
                        qlen[li] = depth = qlen[li] + 1
                        depth_hist[depth] = depth_hist.get(depth, 0) + 1
                        heappush(queues[li], i)
                        sched_wake(li, f)
                    elif not queues[li]:
                        # Free link, no waiters: uncontended acquire.
                        b = busy_of[li]
                        free[li] = t_now + b
                        busy_time[li] += b
                        load[li] += 1
                        if first_seq[li] < 0 and li not in new_first:
                            new_first[li] = i
                        hop[i] += 1
                        sched_msg(i, t_now + d_of[li])
                    else:
                        resolve(li, [i], t_now)
            if wakes:
                # A pending wake whose link is still free at t_now was
                # not serviced by this bucket's movers: its queue is
                # intact and non-empty, and the link was first-acquired
                # in an earlier bucket, so the head waiter wins
                # unconditionally -- no arbitration needed.  A link
                # already re-acquired this bucket (free > t_now) had its
                # queue arbitrated by resolve(), which re-scheduled the
                # next wake.
                for li in wakes:
                    if free[li] > t_now:
                        continue
                    q = queues[li]
                    b = busy_of[li]
                    if not q or not b:
                        # Zero busy time drains several waiters per
                        # cycle; keep that rarity in the general path.
                        resolve(li, [], t_now)
                        continue
                    w = heappop(q)
                    nq = qlen[li] - 1
                    qlen[li] = nq
                    free[li] = f = t_now + b
                    busy_time[li] += b
                    load[li] += 1
                    hop[w] += 1
                    sched_msg(w, t_now + d_of[li])
                    if nq:
                        sched_wake(li, f)
            # First use of each link this bucket gets its sequence
            # number in winner-index order -- the oracle inserts into
            # its link dicts in exactly that order at equal times.
            if new_first:
                for li, _w in sorted(
                    new_first.items(), key=lambda kv: kv[1]
                ):
                    first_seq[li] = seq
                    seq += 1
        sp.add("events", events)

    if active:
        raise RuntimeError("simulation ended with unfinished messages")

    # Latency observations are order-insensitive (count/sum/min/max and
    # bucket tallies all commute, and integer sums are exact in float64
    # far below 2**53), so one bulk pass lands byte-identical to the
    # oracle's per-arrival observations.
    if lats:
        if use_numpy:
            _observe_batch(
                lat_hist, bounds_a, _np.asarray(lats, dtype=_np.int64)
            )
        else:
            observe = lat_hist.observe
            for v in lats:
                observe(v)

    used = sorted(
        (int(first_seq[li]), li) for li in range(n_links) if load[li] > 0
    )
    link_load: dict[tuple, int] = {}
    link_busy_time: dict[tuple, int] = {}
    for _s, li in used:
        pair = link_pairs[li]
        link_load[pair] = int(load[li])
        link_busy_time[pair] = int(busy_time[li])
    return _finalize_result(
        makespan=int(makespan),
        lat_hist=lat_hist,
        n_messages=n_msgs,
        link_load=link_load,
        link_busy_time=link_busy_time,
        depth_hist=depth_hist,
        events=events,
    )


# ---------------------------------------------------------------------------
# Saturation sweeps


def saturation_sweep(
    network: Network,
    *,
    rates: list[float],
    duration: int,
    workload: str = "uniform",
    seed: int = 0,
    engine: str = "fast",
    layout: GridLayout | None = None,
    router=None,
    link_delay=None,
    default_delay: int = 1,
    router_overhead: int = 1,
    mode: str = "store_forward",
    message_length: int = 1,
    workload_params: dict | None = None,
    use_numpy: bool | None = None,
) -> list[dict]:
    """Offered-load vs latency curve: one simulation per rate.

    Returns one JSON-ready row per rate, sorted ascending:
    ``{"rate", "offered", "messages", "avg_latency", "p50", "p99",
    "max_latency", "makespan", "max_utilization"}`` where ``offered``
    is the measured injection rate (messages per node-cycle).  Feed the
    rows to :func:`knee_point` to locate the saturation knee.
    ``engine`` is ``"fast"`` (the default) or ``"oracle"``.
    """
    from repro.routing.simulator import simulate
    from repro.routing.traffic import make_workload

    if engine not in ("fast", "oracle"):
        raise ValueError(f"unknown engine {engine!r}")
    rows = []
    n_nodes = network.num_nodes
    for rate in sorted(rates):
        msgs = make_workload(
            workload, network, seed=seed, rate=rate, duration=duration,
            **(workload_params or {}),
        )
        kwargs = dict(
            layout=layout, router=router, link_delay=link_delay,
            default_delay=default_delay, router_overhead=router_overhead,
            mode=mode, message_length=message_length,
        )
        if engine == "fast":
            res = simulate_fast(network, msgs, use_numpy=use_numpy, **kwargs)
        else:
            res = simulate(network, msgs, **kwargs)
        rows.append({
            "rate": rate,
            "offered": (
                len(msgs) / (n_nodes * duration) if duration else 0.0
            ),
            "messages": len(msgs),
            "avg_latency": res.avg_latency,
            "p50": res.latency_p50,
            "p99": res.latency_p99,
            "max_latency": res.max_latency,
            "makespan": res.makespan,
            "max_utilization": res.max_utilization,
        })
    return rows


def knee_point(rows: list[dict], *, factor: float = 2.0) -> float | None:
    """The saturation knee of a :func:`saturation_sweep` curve.

    The knee is the first injection rate whose average latency exceeds
    ``factor`` times the zero-load latency (the curve's first rate with
    delivered traffic).  Returns that row's ``rate``, or ``None`` when
    the curve never knees in the measured range -- both outcomes are
    meaningful bench results.

    A degenerate curve -- empty, or with fewer than two rates that
    delivered any traffic -- has no interval to compare against the
    zero-load baseline, so it cleanly returns ``None`` instead of
    manufacturing a knee from a single point (a one-element
    ``--saturation`` list is the common way to get here).
    """
    delivered = [
        row
        for row in rows
        if row.get("messages") and row.get("avg_latency", 0) > 0
    ]
    if len(delivered) < 2:
        return None
    base = delivered[0]["avg_latency"]
    for row in delivered:
        if row["avg_latency"] > factor * base:
            return row["rate"]
    return None
