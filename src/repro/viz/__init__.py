"""Rendering of layouts: ASCII (terminal) and SVG (files).

Used to regenerate the paper's figures:

* Figure 2 -- collinear 3-ary 2-cube (``ascii_collinear``),
* Figure 3 -- collinear K_9,
* Figure 4 -- collinear 4-cube,
* Figure 1 -- top view of a recursive grid layout (``ascii_grid`` on a
  clustered layout).
"""

from repro.viz.ascii_art import ascii_collinear, ascii_grid_layout
from repro.viz.svg import svg_layer_stack, svg_layout

__all__ = [
    "ascii_collinear",
    "ascii_grid_layout",
    "svg_layout",
    "svg_layer_stack",
]
