"""Butterfly networks (Section 4.2).

An ``R x R`` butterfly (R = 2^m) has nodes ``(level, row)`` with
``level`` in 0..m and ``row`` in 0..R-1, so N = (m+1) 2^m ~ R log2 R.
Level-i nodes connect to level-(i+1) nodes by a *straight* edge (same
row) and a *cross* edge (rows differing in bit i).

The paper lays butterflies out as PN clusters: partitioned into
``r (log2 R + 1)``-node clusters whose quotient is a generalized
hypercube with 4 parallel links per adjacent pair (ref. [35]).  The
``row_pair_partition`` here realizes that structure for r = 2: cluster
``q`` holds rows ``2q`` and ``2q+1`` across all levels; the four edges
between clusters ``q`` and ``q ^ 2^(i-1)`` are the two cross pairs of
level i (two rows, two directions).  Tests verify the quotient is the
(m-1)-dimensional binary hypercube with uniform multiplicity 4.
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Edge, Network, Node
from repro.topology.partition import Partition

__all__ = ["Butterfly"]


class Butterfly(Network):
    """The (unwrapped) butterfly with 2^m rows and m+1 levels."""

    def __init__(self, m: int):
        if m < 1:
            raise ValueError("m >= 1")
        self.m = m
        self.rows = 1 << m
        self.levels = m + 1
        self.name = f"butterfly(m={m})"

    def _build_nodes(self) -> Sequence[Node]:
        return [
            (lvl, row) for row in range(self.rows) for lvl in range(self.levels)
        ]

    def _build_edges(self) -> Sequence[Edge]:
        edges: list[Edge] = []
        for row in range(self.rows):
            for lvl in range(self.m):
                edges.append(((lvl, row), (lvl + 1, row)))  # straight
                edges.append(((lvl, row), (lvl + 1, row ^ (1 << lvl))))  # cross
        return edges

    def row_pair_partition(self) -> Partition:
        """The r = 2 clustering of Section 4.2 (see module docstring).

        Requires m >= 2 so the quotient has at least one dimension.
        Cluster labels are ints 0 .. 2^(m-1) - 1.
        """
        if self.m < 2:
            raise ValueError("row-pair partition needs m >= 2")
        mapping = {(lvl, row): row >> 1 for (lvl, row) in self.nodes}
        return Partition(mapping, name="butterfly-row-pairs")

    def cluster_subgraph_nodes(self, q: int) -> list[Node]:
        """Nodes of row-pair cluster ``q`` (2(m+1) of them)."""
        return [
            (lvl, row)
            for row in (2 * q, 2 * q + 1)
            for lvl in range(self.levels)
        ]
