"""Collective-communication schedules."""

import pytest

from repro.core import layout_hypercube
from repro.routing import simulate
from repro.routing.collective import (
    binomial_broadcast,
    recursive_doubling_allgather,
    schedule_rounds,
)
from repro.topology import Hypercube


class TestBinomialBroadcast:
    def test_covers_all_nodes(self):
        net = Hypercube(4)
        rounds = binomial_broadcast(net)
        reached = {0}
        for msgs in rounds:
            for s, d in msgs:
                assert s in reached
                reached.add(d)
        assert reached == set(net.nodes)

    def test_round_count_is_dimension(self):
        assert len(binomial_broadcast(Hypercube(5))) == 5

    def test_message_count_doubles(self):
        rounds = binomial_broadcast(Hypercube(4))
        assert [len(r) for r in rounds] == [1, 2, 4, 8]

    def test_nonzero_root(self):
        net = Hypercube(3)
        rounds = binomial_broadcast(net, root=5)
        reached = {5}
        for msgs in rounds:
            reached.update(d for _, d in msgs)
        assert reached == set(net.nodes)


class TestRecursiveDoubling:
    def test_every_node_every_round(self):
        net = Hypercube(3)
        rounds = recursive_doubling_allgather(net)
        assert len(rounds) == 3
        for msgs in rounds:
            assert len(msgs) == 8
            assert {s for s, _ in msgs} == set(net.nodes)

    def test_exchanges_are_paired(self):
        rounds = recursive_doubling_allgather(Hypercube(3))
        for msgs in rounds:
            pairs = set(msgs)
            assert all((d, s) in pairs for s, d in msgs)


class TestScheduling:
    def test_round_gap_pacing(self):
        rounds = [[(0, 1)], [(1, 3)]]
        timed = schedule_rounds(rounds, round_gap=50)
        assert timed == [(0, 1, 0), (1, 3, 50)]

    def test_broadcast_completes_on_layout(self):
        net = Hypercube(5)
        lay = layout_hypercube(5, layers=4, node_side="min")
        gap = lay.max_wire_length() + 2
        msgs = schedule_rounds(binomial_broadcast(net), round_gap=gap)
        res = simulate(net, msgs, layout=lay)
        assert res.messages == 31
        assert res.makespan >= (net.n - 1) * gap

    def test_multilayer_speeds_up_broadcast(self):
        """Collectives inherit the wire-length win: the same broadcast
        schedule finishes sooner on the L=8 layout (pacing scaled to
        each layout's own wire delays)."""
        net = Hypercube(6)
        results = {}
        for L in (2, 8):
            lay = layout_hypercube(6, layers=L, node_side="min")
            gap = lay.max_wire_length() + 2
            msgs = schedule_rounds(binomial_broadcast(net), round_gap=gap)
            results[L] = simulate(net, msgs, layout=lay).makespan
        assert results[8] < results[2]
