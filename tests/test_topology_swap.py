"""HSN / HHN structure (Section 4.3)."""

import networkx as nx
import pytest

from repro.topology import HHN, HSN, CompleteGraph, Hypercube, quotient


class TestHSN:
    def test_counts(self):
        h = HSN(CompleteGraph(4), 2)
        assert h.num_nodes == 16
        assert h.is_connected()

    @pytest.mark.parametrize("r,l", [(3, 2), (4, 2), (3, 3), (2, 4)])
    def test_node_count_is_r_to_l(self, r, l):
        h = HSN(CompleteGraph(r), l)
        assert h.num_nodes == r**l

    def test_quotient_is_ghc(self):
        """Cluster addresses differing in one digit are adjacent with
        multiplicity exactly 1 -- the only structural property the
        Section 4.3 layout uses."""
        h = HSN(CompleteGraph(3), 3)
        q = quotient(h, h.cluster_partition())
        mult = q.multiplicity()
        assert set(mult.values()) == {1}
        for a, b in mult:
            diffs = sum(1 for x, y in zip(a, b) if x != y)
            assert diffs == 1
        # 2-dim radix-3 GHC: 9 clusters, each adjacent to 4 others.
        assert len(q.clusters) == 9
        assert len(mult) == 9 * 4 // 2

    def test_swap_links_are_involutions(self):
        """Every inter-cluster edge appears exactly once (the swap rule
        is symmetric)."""
        h = HSN(CompleteGraph(4), 2)
        seen = set()
        q = quotient(h, h.cluster_partition())
        for cu, cv, u, v in q.inter_edges:
            key = tuple(sorted((u, v)))
            assert key not in seen
            seen.add(key)

    def test_intra_cluster_is_nucleus(self):
        h = HSN(CompleteGraph(4), 2)
        q = quotient(h, h.cluster_partition())
        for c, es in q.intra_edges.items():
            g = nx.Graph((u[0], v[0]) for u, v in es)
            assert nx.is_isomorphic(g, nx.complete_graph(4))

    def test_max_degree(self):
        # nucleus degree + at most (levels-1) swap links
        h = HSN(CompleteGraph(3), 3)
        assert h.max_degree <= (3 - 1) + 2

    def test_rejects_bad_nucleus_labels(self):
        from repro.topology.base import build_network

        bad = build_network(["x", "y"], [("x", "y")], "bad")
        with pytest.raises(ValueError, match="0..r-1"):
            HSN(bad, 2)

    def test_rejects_one_level(self):
        with pytest.raises(ValueError):
            HSN(CompleteGraph(3), 1)


class TestHHN:
    def test_is_hsn_with_hypercube_nucleus(self):
        h = HHN(2, 2)
        assert h.num_nodes == 16
        assert isinstance(h.nucleus, Hypercube)
        q = quotient(h, h.cluster_partition())
        for c, es in q.intra_edges.items():
            g = nx.Graph((u[0], v[0]) for u, v in es)
            assert nx.is_isomorphic(g, nx.hypercube_graph(2))

    def test_connected(self):
        assert HHN(2, 3).is_connected()
