"""Cube-connected cycles and reduced hypercubes (Section 5.2).

* :class:`CubeConnectedCycles` -- each node of an n-cube replaced by an
  n-node cycle; cycle position i carries the dimension-i cube link
  (ref. [22]).
* :class:`ReducedHypercube` -- each cycle replaced by a
  ``log2(n)``-dimensional hypercube (n must be a power of two); cluster
  node i still carries the dimension-i cube link (ref. [37]).

Both are hypercube PN clusters: quotient = n-cube with multiplicity 1,
which is what Section 5.2's layout uses (hypercube layout for the
quotient + recursive grid scheme inside the blocks).
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Edge, Network, Node
from repro.topology.partition import Partition

__all__ = ["CubeConnectedCycles", "ReducedHypercube"]


class CubeConnectedCycles(Network):
    """CCC(n): nodes ``(w, i)`` with w a hypercube address, i a cycle
    position in 0..n-1."""

    def __init__(self, n: int):
        if n < 3:
            raise ValueError("CCC needs n >= 3 (shorter cycles degenerate)")
        self.n = n
        self.name = f"CCC({n})"

    def _build_nodes(self) -> Sequence[Node]:
        return [(w, i) for w in range(1 << self.n) for i in range(self.n)]

    def _build_edges(self) -> Sequence[Edge]:
        n = self.n
        edges: list[Edge] = []
        for w in range(1 << n):
            for i in range(n - 1):
                edges.append(((w, i), (w, i + 1)))
            edges.append(((w, 0), (w, n - 1)))
            for i in range(n):
                peer = w ^ (1 << i)
                if w < peer:
                    edges.append(((w, i), (peer, i)))
        return edges

    def cluster_partition(self) -> Partition:
        """One cluster per hypercube address (the cycles)."""
        return Partition({v: v[0] for v in self.nodes}, name="ccc-cycles")


class ReducedHypercube(Network):
    """RH(log2 n, log2 n): an n-cube of log2(n)-dimensional hypercubes.

    ``n`` must be a power of two so the n-node cycle of the CCC can be
    replaced by a hypercube on the same node set.
    """

    def __init__(self, n: int):
        if n < 4 or n & (n - 1):
            raise ValueError("reduced hypercube needs n a power of two, >= 4")
        self.n = n
        self.cluster_dim = n.bit_length() - 1
        self.name = f"RH({self.cluster_dim},{self.cluster_dim})"

    def _build_nodes(self) -> Sequence[Node]:
        return [(w, i) for w in range(1 << self.n) for i in range(self.n)]

    def _build_edges(self) -> Sequence[Edge]:
        n = self.n
        edges: list[Edge] = []
        for w in range(1 << n):
            for i in range(n):
                for b in range(self.cluster_dim):
                    j = i ^ (1 << b)
                    if i < j:
                        edges.append(((w, i), (w, j)))
                peer = w ^ (1 << i)
                if w < peer:
                    edges.append(((w, i), (peer, i)))
        return edges

    def cluster_partition(self) -> Partition:
        return Partition({v: v[0] for v in self.nodes}, name="rh-clusters")
