"""The accel kernel registry: backend parity, byte for byte.

Every kernel in :mod:`repro.accel` promises that routing a check
through it never changes an observable result: validator verdicts and
error messages, cutwidth values and certificates, and the fast
engine's ``SimulationResult`` fields must be identical whichever
backend computed them.  This module checks the pure and numpy backends
against each other on the same zoo x layers matrix (plus the
counterexample corpus) as ``test_wiretable.py``, checks the kernelized
validator against the scalar reference battery on legal *and*
corrupted layouts, and runs a ``REPRO_ACCEL_BACKEND=pure`` subprocess
to pin the env override end to end.
"""

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro import accel
from repro.batch.spec import dispatch_scheme
from repro.check.generate import mutate_layout
from repro.check.shrink import iter_corpus
from repro.cli import _zoo_networks
from repro.grid.io import clone_layout
from repro.grid.validate import (
    LayoutError,
    _validate_scalar_reference,
    validate_layout,
)

CORPUS_DIR = Path(__file__).parent / "corpus"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"

_LAYOUT_CACHE: dict = {}


def _corpus_networks() -> list:
    nets = []
    seen = set()
    for _path, case in iter_corpus(CORPUS_DIR):
        if case.network.name not in seen:
            seen.add(case.network.name)
            nets.append(case.network)
    return nets


def _cases() -> list:
    cases = []
    for net in _zoo_networks():
        for L in (2, 4):
            cases.append((f"zoo:{net.name}:L{L}", net, L))
    for net in _corpus_networks():
        cases.append((f"corpus:{net.name}:L2", net, 2))
    return cases


_CASES = _cases()


def _layout(case_id: str, net, layers: int):
    lay = _LAYOUT_CACHE.get(case_id)
    if lay is None:
        lay = dispatch_scheme(net, layers=layers, scheme="auto")
        _LAYOUT_CACHE[case_id] = lay
    return lay


def _pin_rows(lay):
    rows = {label: i for i, label in enumerate(lay.placements)}
    u_rows = [rows[w.u] for w in lay.wires]
    v_rows = [rows[w.v] for w in lay.wires]
    return u_rows, v_rows


# ---------------------------------------------------------------------------
# Registry semantics


class TestRegistry:
    def test_active_backend_is_registered(self):
        assert accel.active_backend() in accel.BACKENDS
        assert "pure" in accel.BACKENDS

    def test_get_backend(self):
        assert accel.get_backend("pure") is accel.pure
        assert accel.get_backend() is accel.get_backend(
            accel.active_backend()
        )
        with pytest.raises(ValueError, match="unknown accel backend"):
            accel.get_backend("bogus")

    def test_backend_info_shape(self):
        info = accel.backend_info()
        assert info["accel"] in ("pure", "numpy")
        assert info["table"] in ("numpy", "fallback")
        assert info["engine"] in ("numpy", "python")
        assert isinstance(info["numpy_importable"], bool)

    def test_bad_env_value_rejected(self):
        proc = subprocess.run(
            [sys.executable, "-c", "import repro.accel"],
            env={**os.environ, "REPRO_ACCEL_BACKEND": "bogus",
                 "PYTHONPATH": str(SRC_DIR)},
            capture_output=True,
            text=True,
        )
        assert proc.returncode != 0
        assert "REPRO_ACCEL_BACKEND" in proc.stderr


# ---------------------------------------------------------------------------
# Kernel parity: pure vs numpy on legal layouts


@pytest.mark.skipif(not accel.HAVE_NUMPY, reason="numpy not importable")
@pytest.mark.parametrize(
    "case_id,net,layers", _CASES, ids=[c[0] for c in _CASES]
)
def test_kernel_parity_legal(case_id, net, layers):
    """Every kernel agrees across backends on every zoo/corpus layout."""
    lay = _layout(case_id, net, layers)
    table = lay.wire_table()
    pure = accel.get_backend("pure")
    vec = accel.get_backend("numpy")

    assert pure.edge_sweep(table) == vec.edge_sweep(table)
    assert pure.self_consistency_clean(table) == (
        vec.self_consistency_clean(table)
    )
    assert pure.layer_budget_clean(table, lay.layers) == (
        vec.layer_budget_clean(table, lay.layers)
    )
    assert pure.parity_clean(table) == vec.parity_clean(table)
    assert pure.bend_clean(table) == vec.bend_clean(table)
    assert pure.via_clean(table) == vec.via_clean(table)
    assert pure.node_overlap_clean(table) == vec.node_overlap_clean(table)
    assert pure.node_sweep_clean(table) == vec.node_sweep_clean(table)
    u_rows, v_rows = _pin_rows(lay)
    assert pure.pins_clean(table, u_rows, v_rows) == (
        vec.pins_clean(table, u_rows, v_rows)
    )
    pe = pure.wire_extents(table)
    ve = vec.wire_extents(table)
    assert [list(a) for a in pe] == [[int(x) for x in a] for a in ve]


@pytest.mark.parametrize(
    "case_id,net,layers", _CASES, ids=[c[0] for c in _CASES]
)
def test_kernelized_validator_accepts_legal(case_id, net, layers):
    """The kernelized validator and the scalar battery both accept."""
    lay = _layout(case_id, net, layers)
    validate_layout(lay)
    _validate_scalar_reference(lay)


# ---------------------------------------------------------------------------
# Verdict + message parity on corrupted layouts


@pytest.mark.parametrize(
    "case_id,net,layers",
    [c for c in _CASES if c[0].startswith("zoo")][:12],
    ids=[c[0] for c in _CASES if c[0].startswith("zoo")][:12],
)
def test_corrupted_verdict_and_message_parity(case_id, net, layers):
    """Kernelized vs scalar: same verdict AND same message, always.

    Random corruption of zoo layouts -- the kernel fast path must
    never accept a layout the scalar battery rejects, and on rejection
    the diagnosis re-runs the scalar sweep, so even the message text
    matches.
    """
    base = _layout(case_id, net, layers)
    rng = random.Random(hash(case_id) & 0xFFFF)
    for round_no in range(8):
        lay = clone_layout(base)
        applied = 0
        for _ in range(rng.randint(1, 3)):
            applied += mutate_layout(lay, rng)
        if not applied:
            continue
        try:
            validate_layout(lay, check_pins=False)
            fast = (True, "")
        except LayoutError as exc:
            fast = (False, str(exc))
        try:
            _validate_scalar_reference(lay, check_pins=False)
            ref = (True, "")
        except LayoutError as exc:
            ref = (False, str(exc))
        assert fast == ref, f"round {round_no}: {fast} != {ref}"


# ---------------------------------------------------------------------------
# Cutwidth kernels


class TestCutwidthParity:
    @pytest.mark.skipif(not accel.HAVE_NUMPY, reason="numpy not importable")
    def test_dp_tables_match(self):
        from repro.topology import CompleteGraph, Hypercube, Ring

        for net in (Ring(7), Hypercube(3), CompleteGraph(5)):
            n = net.num_nodes
            dp_p, cut_p = accel.get_backend("pure").cutwidth_dp(net, n)
            dp_v, cut_v = accel.get_backend("numpy").cutwidth_dp(net, n)
            assert list(dp_p) == [int(x) for x in dp_v]
            assert list(cut_p) == [int(x) for x in cut_v]

    @pytest.mark.skipif(not accel.HAVE_NUMPY, reason="numpy not importable")
    def test_cut_profile_matches(self):
        rng = random.Random(11)
        for _ in range(20):
            n = rng.randint(1, 12)
            pairs = []
            for _ in range(rng.randint(0, 24)):
                a, b = rng.randrange(n), rng.randrange(n)
                if a > b:
                    a, b = b, a
                pairs.append((a, b))
            p = accel.get_backend("pure").cut_profile(n, pairs)
            v = accel.get_backend("numpy").cut_profile(n, pairs)
            assert p == v

    def test_certificate_profile_equals_dp_value(self):
        from repro.collinear.cutwidth import (
            cutwidth_certificate,
            exact_cutwidth,
        )
        from repro.topology import Hypercube, KAryNCube

        for net in (Hypercube(3), KAryNCube(3, 2)):
            cw, order = cutwidth_certificate(net)
            assert cw == exact_cutwidth(net)
            assert sorted(map(repr, order)) == sorted(
                map(repr, net.nodes)
            )


# ---------------------------------------------------------------------------
# Engine kernel


@pytest.mark.skipif(not accel.HAVE_NUMPY, reason="numpy not importable")
def test_classify_bucket_parity():
    """Synthetic buckets: arrivals, latencies, and link groups match."""
    import numpy as np

    rng = random.Random(23)
    pure = accel.get_backend("pure")
    vec = accel.get_backend("numpy")
    for trial in range(30):
        n_msgs = rng.randint(20, 80)
        nhops = [rng.randint(0, 5) for _ in range(n_msgs)]
        offsets = [0]
        flat = []
        for h in nhops:
            flat.extend(rng.randrange(10) for _ in range(h))
            offsets.append(len(flat))
        starts = [rng.randint(0, 4) for _ in range(n_msgs)]
        hop = [rng.randint(0, nhops[i]) for i in range(n_msgs)]
        movers = sorted(rng.sample(range(n_msgs), rng.randint(16, n_msgs)))
        t_now = rng.randint(5, 40)
        tail = rng.choice((0, 3))
        p = pure.classify_bucket(
            movers, hop, t_now, tail, nhops, offsets[:-1], flat, starts
        )
        v = vec.classify_bucket(
            movers, hop, t_now, tail,
            np.asarray(nhops, dtype=np.int64),
            np.asarray(offsets[:-1], dtype=np.int64),
            np.asarray(flat, dtype=np.int64),
            np.asarray(starts, dtype=np.int64),
        )
        assert p[0] == v[0], f"trial {trial}: n_done"
        if p[0]:
            assert p[1] == v[1], f"trial {trial}: top"
        assert p[2] == v[2], f"trial {trial}: done_lats"
        assert p[3] == v[3], f"trial {trial}: groups"


# ---------------------------------------------------------------------------
# Env override, end to end


_SUBPROC_SCRIPT = r"""
import json, sys
from repro import accel
from repro.batch.spec import dispatch_scheme
from repro.cli import _zoo_networks
from repro.collinear.cutwidth import exact_cutwidth
from repro.grid.validate import validate_layout
from repro.routing.engine import HAVE_NUMPY, simulate_fast
from repro.routing.traffic import make_workload
from repro.topology import Hypercube, Ring

out = {
    "active": accel.active_backend(),
    "engine_numpy": HAVE_NUMPY,
    "info": accel.backend_info(),
}
net = Hypercube(3)
lay = dispatch_scheme(net, layers=4, scheme="auto")
out["report"] = validate_layout(lay)
out["cutwidth"] = exact_cutwidth(Ring(7))
msgs = make_workload("uniform", net, seed=5, rate=0.4, duration=6)
out["sim"] = simulate_fast(net, msgs).as_dict()
json.dump(out, sys.stdout)
"""


def _run_subproc(env_extra: dict) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROC_SCRIPT],
        env={**os.environ, "PYTHONPATH": str(SRC_DIR), **env_extra},
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_forced_pure_backend_matches_active():
    """``REPRO_ACCEL_BACKEND=pure`` flips every backend and changes
    no observable result: validator report, cutwidth, engine fields."""
    pure = _run_subproc({"REPRO_ACCEL_BACKEND": "pure"})
    assert pure["active"] == "pure"
    assert pure["engine_numpy"] is False
    assert pure["info"]["accel"] == "pure"
    assert pure["info"]["engine"] == "python"

    default = _run_subproc({})
    assert pure["report"] == default["report"]
    assert pure["cutwidth"] == default["cutwidth"]
    assert pure["sim"] == default["sim"]


@pytest.mark.skipif(not accel.HAVE_NUMPY, reason="numpy not importable")
def test_forced_numpy_backend(monkeypatch):
    out = _run_subproc({"REPRO_ACCEL_BACKEND": "numpy"})
    assert out["active"] == "numpy"
    assert out["info"]["accel_env"] == "numpy"
