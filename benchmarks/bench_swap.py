"""E4.3: Section 4.3 -- HSN/HHN area and the ISN-vs-butterfly factors.

Regenerates:

* the L-layer HSN area vs N^2/(4 L^2) (quotient = GHC over N/r
  clusters with r^2/4-track complete-graph channels);
* HHN = HSN with a hypercube nucleus, same asymptotics;
* ISN area ~ butterfly/4 and wire ~ butterfly/2.
"""

from repro.bench.harness import comparison_row
from repro.core import layout_butterfly, layout_hsn, layout_isn, measure
from repro.core.analysis import hsn_prediction, isn_prediction
from repro.core.metrics import weighted_diameter
from repro.topology import CompleteGraph, Hypercube


def test_hsn_area(benchmark, report):
    rows = []
    for r, l in ((4, 2), (6, 2), (8, 2), (3, 3), (4, 3)):
        for L in (2, 4):
            m = measure(layout_hsn(CompleteGraph(r), l, layers=L))
            p = hsn_prediction(r, l, L)
            rows.append(
                comparison_row([r, l, r**l, L], round(p.area), m.area)
            )
    report(
        "E4.3a: L-layer HSN area vs N^2/(4 L^2)",
        ["r", "levels", "N", "L", "paper", "measured", "ratio"],
        rows,
    )
    benchmark.pedantic(
        layout_hsn, args=(CompleteGraph(8), 2), rounds=1, iterations=1
    )


def test_hhn_matches_hsn_asymptotics(report, benchmark):
    rows = []
    for dim in (2, 3):
        r = 1 << dim
        hsn = measure(layout_hsn(CompleteGraph(r), 2))
        hhn = measure(layout_hsn(Hypercube(dim), 2))
        rows.append([dim, r * r, hsn.area, hhn.area,
                     f"{hhn.area / hsn.area:.2f}"])
    report(
        "E4.3b: HHN (hypercube nucleus) vs HSN (complete nucleus) area "
        "(same quotient channels; HHN's sparser nuclei cost no more)",
        ["nucleus dim", "N", "HSN area", "HHN area", "HHN/HSN"],
        rows,
    )
    for _, _, hsn_area, hhn_area, _ in rows:
        assert hhn_area <= hsn_area * 1.2
    benchmark(layout_hsn, Hypercube(2), 2)


def test_isn_vs_butterfly(report, benchmark):
    """The paper's factors (area 4x, wire 2x) are channel-level and
    asymptotic: the ISN halves every channel's track count *exactly*
    (its quotient multiplicity is 2 vs the butterfly's 4), which we
    assert, while the measured total-area ratio at feasible sizes is
    diluted by the identical cluster blocks both share and climbs
    toward 4 only as the channels outgrow the blocks."""
    rows = []
    for m in (3, 4, 5):
        bf_lay = layout_butterfly(m)
        isn_lay = layout_isn(m)
        bf, isn = measure(bf_lay), measure(isn_lay)
        # Channel-level factor 2 per direction (=> 4 in area), exact up
        # to the +1-per-channel block-attachment overhead.
        bf_tracks = sum(bf_lay.meta["row_tracks"]) + sum(bf_lay.meta["col_tracks"])
        isn_tracks = sum(isn_lay.meta["row_tracks"]) + sum(isn_lay.meta["col_tracks"])
        channels = bf_lay.meta["rows"] + bf_lay.meta["cols"]
        assert bf_tracks <= 2 * isn_tracks <= bf_tracks + 2 * channels
        area_ratio = bf.area / isn.area
        wire_ratio = bf.max_wire / isn.max_wire
        path_ratio = weighted_diameter(bf_lay, max_sources=2) / max(
            weighted_diameter(isn_lay, max_sources=2), 1
        )
        rows.append([
            m, f"{bf_tracks / isn_tracks:.2f}", f"{area_ratio:.2f}",
            f"{wire_ratio:.2f}", f"{path_ratio:.2f}",
        ])
        assert area_ratio > 1.4
        assert wire_ratio > 1.1
    report(
        "E4.3c: butterfly/ISN -- channel tracks exactly 2x per direction "
        "(paper's asymptotic area 4x, wire 2x); measured totals diluted "
        "by the shared cluster blocks",
        ["m", "track ratio (exact 2)", "area ratio (->4)",
         "wire ratio (->2)", "path ratio"],
        rows,
    )
    # The predictions encode the same factors by construction.
    from repro.core.analysis import butterfly_prediction

    assert isn_prediction(4, 2).area * 4 == butterfly_prediction(4, 2).area
    benchmark(layout_isn, 3)
