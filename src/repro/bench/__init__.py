"""Benchmark/report harness shared by benches and examples."""

from repro.bench.harness import (
    comparison_row,
    format_table,
    json_cell,
    print_table,
)

__all__ = ["print_table", "comparison_row", "format_table", "json_cell"]
