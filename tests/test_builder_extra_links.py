"""Builder: extra (diagonal) links with dedicated tracks (Section 5.3)."""

import pytest

from conftest import assert_layout_ok
from repro.core.builder import build_orthogonal_layout
from repro.core.spec import BlockCell, LayoutSpec, LinkSpec, NodeCell


def grid_spec(rows=3, cols=3, side=3, layers=2):
    cells = {
        (i, j): NodeCell((i, j), side) for i in range(rows) for j in range(cols)
    }
    return LayoutSpec(rows=rows, cols=cols, cells=cells, layers=layers,
                      name="extra-test")


class TestExtraLinks:
    @pytest.mark.parametrize("layers", [2, 4, 5, 8])
    def test_diagonal_link_routes(self, layers):
        spec = grid_spec(layers=layers)
        spec.extra_links = [LinkSpec((0, 0), (2, 2), (0, 0), (2, 2))]
        lay = build_orthogonal_layout(spec)
        assert_layout_ok(lay)
        assert lay.edge_multiset() == {((0, 0), (2, 2)): 1}

    def test_antidiagonal(self):
        spec = grid_spec()
        spec.extra_links = [LinkSpec((0, 2), (2, 0), (0, 2), (2, 0))]
        lay = build_orthogonal_layout(spec)
        assert_layout_ok(lay)

    def test_upward_extra_link(self):
        spec = grid_spec()
        spec.extra_links = [LinkSpec((2, 0), (0, 2), (2, 0), (0, 2))]
        lay = build_orthogonal_layout(spec)
        assert_layout_ok(lay)

    def test_same_row_extra_link(self):
        # An extra link may happen to be row-aligned; the dedicated-track
        # route must still be legal.
        spec = grid_spec()
        spec.extra_links = [LinkSpec((1, 0), (1, 2), (1, 0), (1, 2))]
        lay = build_orthogonal_layout(spec)
        assert_layout_ok(lay)

    def test_same_col_extra_link(self):
        spec = grid_spec()
        spec.extra_links = [LinkSpec((0, 1), (2, 1), (0, 1), (2, 1))]
        lay = build_orthogonal_layout(spec)
        assert_layout_ok(lay)

    def test_many_extras_get_dedicated_tracks(self):
        spec = grid_spec(side=5)
        spec.extra_links = [
            LinkSpec((0, 0), (2, 2), (0, 0), (2, 2), edge_key=0),
            LinkSpec((0, 1), (2, 0), (0, 1), (2, 0), edge_key=0),
            LinkSpec((0, 2), (2, 1), (0, 2), (2, 1), edge_key=0),
        ]
        lay = build_orthogonal_layout(spec)
        assert_layout_ok(lay)
        # All extras start in row 0: its channel holds 3 dedicated tracks.
        assert lay.meta["row_tracks"][0] == 3

    def test_extras_coexist_with_regular_links(self):
        spec = grid_spec(side=4)
        spec.row_links = [LinkSpec((0, 0), (0, 1), (0, 0), (0, 1))]
        spec.col_links = [LinkSpec((0, 0), (1, 0), (0, 0), (1, 0))]
        spec.extra_links = [LinkSpec((0, 0), (2, 2), (0, 0), (2, 2))]
        lay = build_orthogonal_layout(spec)
        assert_layout_ok(lay)
        assert len(lay.wires) == 3

    def test_extra_link_into_block(self):
        block = BlockCell("c", ["a", "b"], [("a", "b")], node_side=3)
        cells = {
            (0, 0): NodeCell("s", 3),
            (0, 1): NodeCell("t", 3),
            (1, 1): block,
        }
        spec = LayoutSpec(
            rows=2, cols=2, cells=cells,
            extra_links=[LinkSpec((0, 0), (1, 1), "s", "b")],
            name="extra-into-block",
        )
        lay = build_orthogonal_layout(spec)
        assert_layout_ok(lay)
        assert lay.edge_multiset()[("b", "s")] == 1

    def test_parallel_extras(self):
        spec = grid_spec(side=4)
        spec.extra_links = [
            LinkSpec((0, 0), (2, 2), (0, 0), (2, 2), edge_key=0),
            LinkSpec((0, 0), (2, 2), (0, 0), (2, 2), edge_key=1),
        ]
        lay = build_orthogonal_layout(spec)
        assert_layout_ok(lay)
        assert lay.edge_multiset()[((0, 0), (2, 2))] == 2
