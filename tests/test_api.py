"""Top-level API: dispatch and package exports."""

import pytest

import repro
from conftest import assert_layout_ok
from repro.core import layout_network
from repro.topology import (
    HSN,
    Butterfly,
    CompleteGraph,
    CubeConnectedCycles,
    EnhancedCube,
    FoldedHypercube,
    GeneralizedHypercube,
    Hypercube,
    IndirectSwapNetwork,
    KAryNCube,
    KAryNCubeCluster,
    ProductNetwork,
    ReducedHypercube,
    Ring,
    StarGraph,
)


DISPATCH_CASES = [
    Ring(5),
    KAryNCube(3, 2),
    Hypercube(4),
    FoldedHypercube(3),
    EnhancedCube(3),
    CompleteGraph(6),
    GeneralizedHypercube((3, 4)),
    ProductNetwork(Ring(4), Ring(3)),
    Butterfly(2),
    IndirectSwapNetwork(2),
    CubeConnectedCycles(3),
    ReducedHypercube(4),
    HSN(CompleteGraph(3), 2),
    KAryNCubeCluster(3, 2, 2),
    StarGraph(4),
]


class TestDispatch:
    @pytest.mark.parametrize("net", DISPATCH_CASES, ids=lambda n: n.name)
    def test_layout_network_roundtrip(self, net):
        lay = layout_network(net)
        assert_layout_ok(lay, net)

    @pytest.mark.parametrize("net", [Hypercube(4), KAryNCube(3, 2)], ids=lambda n: n.name)
    def test_layers_forwarded(self, net):
        lay = layout_network(net, layers=4)
        assert lay.layers == 4
        assert_layout_ok(lay, net)

    def test_fallback_for_custom_graph(self):
        from repro.topology.base import build_network

        net = build_network(["a", "b", "c"], [("a", "b"), ("b", "c")], "path")
        lay = layout_network(net)
        assert_layout_ok(lay, net)


class TestPackage:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet(self):
        lay = repro.layout_hypercube(6, layers=4)
        repro.validate_layout(lay)
        m = repro.measure(lay)
        assert m.area > 0 and m.volume == 4 * m.area
