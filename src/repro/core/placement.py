"""Placement optimization for generic-grid layouts.

The generic fallback (:func:`repro.core.schemes.layout_generic_grid`)
charges every non-row/column edge a dedicated horizontal and vertical
track, so its area is driven by how many edges the placement leaves
"diagonal".  This module searches placements to reduce that count --
the standard iterative-improvement loop of placement tools:

* cost = (#extra edges) * penalty + total Manhattan edge length
  (the second term breaks ties toward short row/column runs);
* moves = random node swaps, hill-climbing with a deterministic RNG;
  optionally a handful of restarts.

It is a heuristic: no optimality claim, just a measured improvement
(bench A5 shows ~20-40% area cuts on shuffle-exchange/de Bruijn/star
graphs over index order).
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.topology.base import Network

__all__ = ["optimize_placement", "placement_cost"]

Node = Hashable
Pos = tuple[int, int]


def placement_cost(
    network: Network,
    pos: dict[Node, Pos],
    *,
    extra_penalty: int = 8,
) -> int:
    """Cost of a placement: penalized extra edges + Manhattan length."""
    cost = 0
    for u, v in network.edges:
        (iu, ju), (iv, jv) = pos[u], pos[v]
        dist = abs(iu - iv) + abs(ju - jv)
        cost += dist
        if iu != iv and ju != jv:
            cost += extra_penalty
    return cost


def optimize_placement(
    network: Network,
    *,
    aspect: float = 1.0,
    seed: int = 2000,
    iterations: int | None = None,
    restarts: int = 2,
    extra_penalty: int = 8,
) -> dict[Node, Pos]:
    """Search a near-square grid placement minimizing the generic-grid
    cost.  Deterministic for a given seed."""
    import math

    nodes = list(network.nodes)
    n = len(nodes)
    cols = max(1, round(math.sqrt(n * aspect)))
    rows = -(-n // cols)
    slots: list[Pos] = [(i, j) for i in range(rows) for j in range(cols)]
    if iterations is None:
        iterations = 60 * n

    best_pos: dict[Node, Pos] | None = None
    best_cost = None
    rng = random.Random(seed)
    for attempt in range(max(restarts, 1)):
        order = nodes[:]
        if attempt:
            rng.shuffle(order)
        pos = {v: slots[i] for i, v in enumerate(order)}
        cost = placement_cost(network, pos, extra_penalty=extra_penalty)
        for _ in range(iterations):
            a, b = rng.sample(nodes, 2)
            pos[a], pos[b] = pos[b], pos[a]
            new_cost = placement_cost(network, pos, extra_penalty=extra_penalty)
            if new_cost <= cost:
                cost = new_cost
            else:
                pos[a], pos[b] = pos[b], pos[a]
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_pos = dict(pos)
    assert best_pos is not None
    return best_pos
