"""The observability subsystem: spans, metrics, run reports, CLI."""

import json
import threading

import pytest

from repro import layout_hypercube, measure, obs, validate_layout
from repro.obs.trace import NOOP_SPAN


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSpans:
    def test_disabled_is_noop(self):
        with obs.span("outer", k=1) as sp:
            sp.add("n", 3).set(x=2)
        assert sp is NOOP_SPAN
        assert obs.trace_roots() == []

    def test_nesting_builds_a_tree(self):
        obs.enable()
        with obs.span("outer", layers=4) as sp:
            with obs.span("inner_a"):
                with obs.span("leaf"):
                    pass
            with obs.span("inner_b"):
                pass
            sp.add("wires", 7).add("wires", 3)
        roots = obs.trace_roots()
        assert [r.name for r in roots] == ["outer"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert [c.name for c in outer.children[0].children] == ["leaf"]
        assert outer.attrs == {"layers": 4}
        assert outer.counts == {"wires": 10}
        assert outer.duration >= outer.children[0].duration >= 0.0
        assert outer.self_time() <= outer.duration

    def test_sequential_roots(self):
        obs.enable()
        with obs.span("first"):
            pass
        with obs.span("second"):
            pass
        assert [r.name for r in obs.trace_roots()] == ["first", "second"]

    def test_reset_clears(self):
        obs.enable()
        with obs.span("x"):
            pass
        obs.reset_trace()
        assert obs.trace_roots() == []

    def test_threads_do_not_interleave(self):
        obs.enable()

        def work(tag):
            with obs.span(f"root_{tag}"):
                for _ in range(50):
                    with obs.span("child"):
                        pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = obs.trace_roots()
        assert len(roots) == 4  # one tree per thread, never nested
        for r in roots:
            assert len(r.children) == 50
            assert all(c.name == "child" for c in r.children)

    def test_phase_totals_aggregates_by_name(self):
        obs.enable()
        for _ in range(3):
            with obs.span("phase"):
                with obs.span("sub"):
                    pass
        totals = obs.phase_totals()
        assert totals["phase"]["calls"] == 3
        assert totals["sub"]["calls"] == 3
        assert totals["phase"]["total_s"] >= totals["phase"]["self_s"]

    def test_format_span_tree(self):
        obs.enable()
        with obs.span("build", name="ring") as sp:
            sp.add("wires", 5)
            with obs.span("pack"):
                pass
        text = obs.format_span_tree()
        assert "build" in text and "  pack" in text
        assert "name=ring" in text and "wires:5" in text


class TestMetrics:
    def test_count_noop_when_disabled(self):
        obs.count("x", 5)
        assert obs.registry().snapshot()["counters"] == {}

    def test_counter_aggregation(self):
        obs.enable()
        obs.count("wires", 3)
        obs.count("wires", 4)
        obs.count("vias")
        snap = obs.registry().snapshot()
        assert snap["counters"] == {"wires": 7, "vias": 1}

    def test_counter_thread_safety(self):
        obs.enable()
        c = obs.registry().counter("hot")

        def bump():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000

    def test_gauge_last_value_wins(self):
        obs.enable()
        obs.gauge("depth", 3)
        obs.gauge("depth", 9)
        assert obs.registry().snapshot()["gauges"] == {"depth": 9}

    def test_histogram_buckets_and_stats(self):
        obs.enable()
        for v in (1, 2, 3, 100, 5000):
            obs.observe("q", v)
        h = obs.registry().snapshot()["histograms"]["q"]
        assert h["count"] == 5
        assert h["sum"] == 5106
        assert h["min"] == 1 and h["max"] == 5000
        assert h["buckets"]["le_1"] == 1
        assert h["buckets"]["le_2"] == 1
        assert h["buckets"]["le_4"] == 1
        assert h["buckets"]["le_128"] == 1
        assert h["buckets"]["overflow"] == 1

    def test_registry_reset(self):
        obs.enable()
        obs.count("x")
        obs.registry().reset()
        assert obs.registry().snapshot()["counters"] == {}

    def test_histogram_percentiles(self):
        obs.enable()
        h = obs.registry().histogram("lat")
        for v in range(1, 101):  # 1..100, near-uniform
            h.observe(v)
        assert h.percentile(1.0) == 100
        # Bucket interpolation keeps estimates within one bucket width.
        assert h.percentile(0.5) == pytest.approx(50, abs=15)
        assert h.percentile(0.9) == pytest.approx(90, abs=15)
        d = h.as_dict()
        assert d["p50"] <= d["p90"] <= d["p99"] <= 100

    def test_histogram_percentile_single_value_is_exact(self):
        obs.enable()
        h = obs.registry().histogram("const")
        for _ in range(10):
            h.observe(7)
        assert h.percentile(0.5) == 7
        assert h.percentile(0.99) == 7

    def test_histogram_percentile_empty_and_bad_q(self):
        h = obs.Histogram()
        assert h.percentile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.percentile(0.0)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_merge_folds_counters_gauges_histograms(self):
        obs.enable()
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.counter("jobs").inc(2)
        b.counter("jobs").inc(3)
        b.gauge("depth").set(9)
        for v in (1, 5, 2000):
            a.histogram("q").observe(v)
        for v in (2, 64):
            b.histogram("q").observe(v)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["jobs"] == 5
        assert snap["gauges"]["depth"] == 9
        q = snap["histograms"]["q"]
        assert q["count"] == 5
        assert q["sum"] == 2072
        assert q["min"] == 1 and q["max"] == 2000
        assert q["buckets"]["le_1"] == 1   # a's 1
        assert q["buckets"]["le_2"] == 1   # b's 2
        assert q["buckets"]["le_8"] == 1   # a's 5
        assert q["buckets"]["le_64"] == 1  # b's 64
        assert q["buckets"]["overflow"] == 1  # a's 2000

    def test_merge_histograms_with_mismatched_bounds_widens(self):
        """The satellite case: different bucket edges must union, not
        silently drop (the old merge ignored histograms entirely)."""
        obs.enable()
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.histogram("mix", bounds=(10, 100)).observe(7)
        a.histogram("mix").observe(500)  # overflow for a
        b.histogram("mix", bounds=(50,)).observe(30)
        b.histogram("mix").observe(40)
        a.merge(b.snapshot())
        h = a.snapshot()["histograms"]["mix"]
        assert sorted(
            int(k[3:]) for k in h["buckets"] if k != "overflow"
        ) == [10, 50, 100]
        assert h["count"] == 4
        assert h["sum"] == 577
        assert h["min"] == 7 and h["max"] == 500
        assert h["buckets"]["le_10"] == 1     # a's 7
        assert h["buckets"]["le_50"] == 2     # b's 30, 40
        assert h["buckets"]["le_100"] == 0
        assert h["buckets"]["overflow"] == 1  # a's 500

    def test_merge_percentiles_over_widened_edges(self):
        """Percentile estimates must stay sane on a merged histogram
        whose bucket edges were widened by the union: p50/p90/p99 are
        interpolated inside the *merged* bucket list, so edges from
        either side anchor them."""
        obs.enable()
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        ha = a.histogram("lat", bounds=(10, 20, 40, 80))
        for v in (5, 12, 18, 33, 70):
            ha.observe(v)
        hb = b.histogram("lat", bounds=(25, 50, 100, 200))
        for v in (22, 48, 95, 180, 199):
            hb.observe(v)
        a.merge(b.snapshot())
        merged = a.histogram("lat")
        snap = a.snapshot()["histograms"]["lat"]
        assert sorted(
            int(k[3:]) for k in snap["buckets"] if k != "overflow"
        ) == [10, 20, 25, 40, 50, 80, 100, 200]
        assert snap["count"] == 10
        assert snap["min"] == 5 and snap["max"] == 199
        p50 = merged.percentile(0.5)
        p90 = merged.percentile(0.9)
        p99 = merged.percentile(0.99)
        # rank 5 lands exactly on the le_40 bucket's edge; ranks 9 and
        # 9.9 interpolate inside (100, 200], clamped by max=199.
        assert p50 == pytest.approx(40.0)
        assert p90 == pytest.approx(149.5, rel=0.01)
        assert p99 == pytest.approx(194.05, rel=0.01)
        assert p50 <= p90 <= p99 <= snap["max"]

    def test_merge_creates_missing_histogram_with_incoming_bounds(self):
        obs.enable()
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        b.histogram("fresh", bounds=(3, 9)).observe(5)
        a.merge(b.snapshot())
        h = a.snapshot()["histograms"]["fresh"]
        assert h["count"] == 1
        assert h["buckets"]["le_9"] == 1

    def test_merge_is_associative_enough_for_worker_folds(self):
        """Folding worker snapshots one at a time, in worker order,
        yields the same totals as any single combined registry."""
        obs.enable()
        parent = obs.MetricsRegistry()
        workers = []
        for wid in range(3):
            w = obs.MetricsRegistry()
            w.counter("n").inc(wid + 1)
            for v in range(wid + 2):
                w.histogram("h").observe(v + 1)
            workers.append(w)
        for w in workers:
            parent.merge(w.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["n"] == 6
        assert snap["histograms"]["h"]["count"] == 2 + 3 + 4


class TestRunReport:
    def _traced_run(self):
        obs.enable()
        lay = layout_hypercube(3, layers=4)
        validate_layout(lay)
        measure(lay)
        return obs.collect_report(
            "unit", spec={"network": "hypercube:3"}, layers=4
        )

    def test_pipeline_phases_present(self):
        rep = self._traced_run()
        names = set()

        def walk(node):
            names.add(node["name"])
            for c in node["children"]:
                walk(c)

        for s in rep.spans:
            walk(s)
        assert {"build", "validate", "measure"} <= names

    def test_environment_stamp(self):
        from repro import __version__

        rep = self._traced_run()
        assert rep.environment["repro_version"] == __version__
        assert rep.environment["python"]
        assert rep.environment["platform"]

    def test_json_round_trip(self):
        rep = self._traced_run()
        clone = obs.RunReport.from_json(rep.to_json())
        assert clone.to_dict() == rep.to_dict()
        # And through a plain json pass (what CI's smoke job does).
        obs.validate_report(json.loads(rep.to_json()))

    def test_validate_report_rejects_bad_docs(self):
        rep = self._traced_run()
        good = rep.to_dict()
        for mutate, needle in [
            (lambda d: d.pop("name"), "name"),
            (lambda d: d.update(schema="bogus"), "schema"),
            (lambda d: d.pop("spans"), "spans"),
            (lambda d: d.pop("environment"), "environment"),
            (lambda d: d["spans"][0].pop("duration_ms"), "duration_ms"),
        ]:
            bad = json.loads(json.dumps(good))
            mutate(bad)
            with pytest.raises(ValueError, match=needle):
                obs.validate_report(bad)

    def test_counters_land_in_report(self):
        rep = self._traced_run()
        counters = rep.metrics["counters"]
        assert counters["builder.wires_routed"] > 0
        assert counters["validator.checks_run"] > 0
        assert counters["measure.layouts_measured"] == 1


class TestCliObservability:
    def test_stats_writes_valid_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.json"
        assert main(["stats", "--layers", "4", "--report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "pipeline phase timings" in text
        data = json.loads(out.read_text())
        obs.validate_report(data)
        assert data["name"] == "stats"
        assert data["layers"] == 4
        names = set()

        def walk(node):
            names.add(node["name"])
            for c in node["children"]:
                walk(c)

        for s in data["spans"]:
            walk(s)
        assert {"network", "build", "validate", "measure"} <= names
        # main() turns collection back off.
        assert not obs.enabled()

    def test_trace_flag_prints_span_tree(self, capsys):
        from repro.cli import main

        assert main(["predict", "hypercube:6", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "== span tree ==" in out

    def test_layout_report(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "layout.json"
        rc = main(
            ["layout", "hypercube:4", "-L", "4", "--validate",
             "--report", str(out)]
        )
        assert rc == 0
        data = json.loads(out.read_text())
        obs.validate_report(data)
        assert data["spec"]["network"] == "hypercube:4"
        assert data["metrics"]["counters"]["builder.wires_routed"] == 32
