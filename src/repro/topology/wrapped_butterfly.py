"""Wrapped butterflies: the cyclic variant of Section 4.2's network.

The wrapped butterfly WBF(m) identifies level m with level 0: nodes
``(level, row)`` with ``level`` in 0..m-1, and level-(m-1) nodes wrap
to level 0.  It is vertex-transitive and 4-regular, and -- like the
plain butterfly -- clusters into row pairs whose quotient is a
hypercube with small uniform link multiplicity, so the paper's GHC-
cluster layout strategy applies unchanged.  (The plain butterfly is
what Section 4.2 analyzes; the wrapped variant is the form most
parallel-machine literature uses, included here as the natural
extension.)
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Edge, Network, Node
from repro.topology.partition import Partition

__all__ = ["WrappedButterfly"]


class WrappedButterfly(Network):
    """WBF(m): m levels of 2^m rows, cyclic in the level dimension."""

    def __init__(self, m: int):
        if m < 3:
            raise ValueError(
                "m >= 3 (shorter level cycles degenerate to multi-edges)"
            )
        self.m = m
        self.rows = 1 << m
        self.levels = m
        self.name = f"wrapped-butterfly(m={m})"

    def _build_nodes(self) -> Sequence[Node]:
        return [
            (lvl, row) for row in range(self.rows) for lvl in range(self.m)
        ]

    def _build_edges(self) -> Sequence[Edge]:
        edges: list[Edge] = []
        for row in range(self.rows):
            for lvl in range(self.m):
                nxt = (lvl + 1) % self.m
                # Each undirected edge emitted once, from its source
                # level (with m >= 3 no (lvl, nxt) pair repeats).
                edges.append(((lvl, row), (nxt, row)))
                edges.append(((lvl, row), (nxt, row ^ (1 << lvl))))
        return edges

    def row_pair_partition(self) -> Partition:
        """Rows {2q, 2q+1} across all levels, as for the butterfly."""
        if self.m < 3:
            raise ValueError("row-pair partition needs m >= 3")
        return Partition(
            {(lvl, row): row >> 1 for (lvl, row) in self.nodes},
            name="wbf-row-pairs",
        )
