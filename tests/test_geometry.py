"""Unit tests for grid geometry primitives."""

import pytest

from repro.grid.geometry import Point, Rect, Segment


class TestPoint:
    def test_planar_projection(self):
        assert Point(3, 4, 2).planar() == (3, 4)

    def test_default_layer(self):
        assert Point(0, 0).layer == 1

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1  # type: ignore[misc]


class TestSegment:
    def test_horizontal(self):
        s = Segment(0, 5, 9, 5, 1)
        assert s.horizontal and not s.vertical
        assert s.length == 9
        assert s.line == ("h", 1, 5)
        assert s.span == (0, 9)

    def test_vertical(self):
        s = Segment(2, 1, 2, 7, 4)
        assert s.vertical and not s.horizontal
        assert s.length == 6
        assert s.line == ("v", 4, 2)
        assert s.span == (1, 7)

    def test_make_normalizes(self):
        s = Segment.make(9, 5, 0, 5, 1)
        assert (s.x1, s.y1, s.x2, s.y2) == (0, 5, 9, 5)

    def test_rejects_diagonal(self):
        with pytest.raises(ValueError, match="axis-aligned"):
            Segment(0, 0, 1, 1, 1)

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError, match="zero length"):
            Segment(3, 3, 3, 3, 1)

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError, match="normalized"):
            Segment(5, 0, 0, 0, 1)

    def test_rejects_bad_layer(self):
        with pytest.raises(ValueError, match="layer"):
            Segment(0, 0, 1, 0, 0)

    def test_planar_points(self):
        s = Segment(1, 2, 4, 2, 1)
        assert list(s.planar_points()) == [(1, 2), (2, 2), (3, 2), (4, 2)]

    def test_contains_point(self):
        s = Segment(1, 2, 4, 2, 1)
        assert s.contains_point(3, 2)
        assert not s.contains_point(5, 2)
        assert not s.contains_point(3, 3)

    def test_endpoints_carry_layer(self):
        a, b = Segment(0, 0, 0, 3, 6).endpoints()
        assert a.layer == b.layer == 6


class TestRect:
    def test_area(self):
        assert Rect(0, 0, 4, 4).area == 16
        assert Rect(2, 3, 5, 7).area == 35

    def test_contains_and_perimeter(self):
        r = Rect(0, 0, 4, 4)
        assert r.contains_point(0, 0)
        assert r.on_perimeter(0, 0)
        assert r.on_perimeter(4, 2)
        assert not r.on_perimeter(2, 2)
        assert r.contains_point(2, 2, strict=True)
        assert not r.contains_point(4, 2, strict=True)

    def test_intersects_open(self):
        a = Rect(0, 0, 4, 4)
        assert not a.intersects(Rect(4, 0, 4, 4))  # touching edges OK
        assert a.intersects(Rect(3, 3, 4, 4))
        assert not a.intersects(Rect(10, 10, 1, 1))

    def test_union_and_bounding(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(5, 1, 2, 4)
        u = a.union(b)
        assert (u.x0, u.y0, u.x1, u.y1) == (0, 0, 7, 5)
        assert Rect.bounding([a, b]) == u
        assert Rect.bounding([]) == Rect(0, 0, 0, 0)

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, -1, 2)

    def test_segment_crosses_interior_horizontal(self):
        r = Rect(2, 2, 4, 4)
        inside = Segment(0, 4, 10, 4, 1)  # crosses through the middle
        assert r.segment_crosses_interior(inside)
        on_edge = Segment(0, 2, 10, 2, 1)  # along the top boundary
        assert not r.segment_crosses_interior(on_edge)
        below = Segment(0, 9, 10, 9, 1)
        assert not r.segment_crosses_interior(below)

    def test_segment_crosses_interior_vertical(self):
        r = Rect(2, 2, 4, 4)
        assert r.segment_crosses_interior(Segment(4, 0, 4, 10, 2))
        assert not r.segment_crosses_interior(Segment(2, 0, 2, 10, 2))
        assert not r.segment_crosses_interior(Segment(6, 0, 6, 10, 2))

    def test_segment_touching_interior_partially(self):
        r = Rect(2, 2, 4, 4)
        # Ends inside the interior.
        assert r.segment_crosses_interior(Segment(0, 4, 3, 4, 1))
        # Stops exactly at the boundary: not interior.
        assert not r.segment_crosses_interior(Segment(0, 4, 2, 4, 1))
