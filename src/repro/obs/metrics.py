"""Counters, gauges, and histograms for the layout pipeline.

A :class:`MetricsRegistry` holds named instruments created on first
use: monotonically increasing :class:`Counter`\\ s (wires routed,
tracks packed, validator checks run), last-value :class:`Gauge`\\ s,
and :class:`Histogram`\\ s (queue depths, link utilization) with
power-of-two bucket boundaries by default.

Creation is lock-guarded so concurrent first-use from several threads
is safe; the per-instrument update path is a plain ``+=`` / ``append``
under CPython's atomic-enough semantics for our single-writer spans,
with a lock available via :meth:`MetricsRegistry.counter` consumers
that need strict cross-thread totals (the instruments themselves use
a lock for updates, so totals are exact).

The module-level default registry is what the ``obs`` helpers
(:func:`repro.obs.count` etc.) write into when tracing is enabled.
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "registry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v


class Histogram:
    """A distribution summary: count/sum/min/max plus bucket counts.

    ``bounds`` are inclusive upper bucket edges; values above the last
    edge land in the overflow bucket.  The default edges are powers of
    two, a good fit for queue depths and cycle counts.
    """

    __slots__ = (
        "_lock", "bounds", "buckets", "count", "total", "min", "max",
        "exemplars",
    )

    DEFAULT_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

    def __init__(self, bounds: tuple = DEFAULT_BOUNDS):
        self._lock = threading.Lock()
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        # Per-bucket exemplars: bucket label ("le_<edge>"/"overflow")
        # -> {"trace_id": ..., "value": ...}, last observation wins.
        # Keyed by edge label, not index, so widening needs no remap.
        self.exemplars: dict[str, dict] = {}

    def _bucket_key(self, index: int) -> str:
        if index < len(self.bounds):
            return f"le_{self.bounds[index]}"
        return "overflow"

    def observe(self, v: float, exemplar: str | None = None) -> None:
        with self._lock:
            self.count += 1
            self.total += v
            if self.min is None or v < self.min:
                self.min = v
            if self.max is None or v > self.max:
                self.max = v
            for i, edge in enumerate(self.bounds):
                if v <= edge:
                    self.buckets[i] += 1
                    break
            else:
                i = len(self.bounds)
                self.buckets[-1] += 1
            if exemplar is not None:
                self.exemplars[self._bucket_key(i)] = {
                    "trace_id": str(exemplar),
                    "value": v,
                }

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from buckets.

        The estimate interpolates linearly inside the bucket holding
        the rank, with the bucket's value range clamped to the
        observed ``min``/``max`` (so a single-bucket histogram reports
        exact percentiles and the overflow bucket tops out at ``max``
        rather than infinity).  Deterministic, and exact whenever all
        observations in the deciding bucket share one value.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = 0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            if cum + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else self.min
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                if lo is None:
                    lo = 0.0
                if hi is None:
                    hi = float(lo)
                # Project both edges into [min, max] *monotonically*
                # (clamp each endpoint into the observed range, rather
                # than lo=max(...) / hi=min(...) independently): after
                # a merge widens the bucket edges, a deciding bucket
                # can lie entirely outside [min, max], and the naive
                # clamp then crosses the edges (lo > hi) and silently
                # reports hi.  The projection keeps lo <= hi always.
                lo = _clamp(lo, self.min, self.max)
                hi = _clamp(hi, self.min, self.max)
                if hi <= lo:
                    return float(hi)
                frac = (rank - cum) / n
                # The interpolation can overshoot hi by an ulp when
                # frac rounds against a large hi-lo span; re-project.
                return _clamp(lo + (hi - lo) * frac, lo, hi)
            cum += n
        return float(self.max) if self.max is not None else 0.0

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        """Rebuild a histogram from its :meth:`as_dict` form.

        The round trip is exact: bucket counts, count/sum/min/max all
        come back verbatim, so percentile queries on the rebuilt
        histogram equal the original's.  This is how consumers of a
        serialized distribution (``SimulationResult.latency_hist``,
        run-report JSON) query percentiles without re-observing.
        """
        bounds, counts, overflow = _parse_buckets(data.get("buckets", {}))
        if bounds:
            h = cls(bounds)
            h.buckets = [*counts, overflow]
        else:
            h = cls()
        h.count = int(data.get("count", 0))
        h.total = float(data.get("sum", 0.0))
        h.min = data.get("min")
        h.max = data.get("max")
        for key, ex in (data.get("exemplars") or {}).items():
            h.exemplars[str(key)] = dict(ex)
        return h

    def as_dict(self) -> dict:
        doc = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "buckets": {
                f"le_{edge}": n for edge, n in zip(self.bounds, self.buckets)
            }
            | {"overflow": self.buckets[-1]},
        }
        # Exemplars ride as a sibling of "buckets" so pre-exemplar
        # consumers (and `_parse_buckets`) never see the new key.
        if self.exemplars:
            doc["exemplars"] = {k: dict(v) for k, v in self.exemplars.items()}
        return doc

    def _widen(self, new_bounds: tuple) -> None:
        """Rebucket onto ``new_bounds`` (a superset of ``self.bounds``).

        Every existing edge appears in ``new_bounds``, so each bucket
        count moves verbatim to the bucket ending at the same edge --
        counts are conserved exactly, at the cost of finer new edges
        inside an old bucket's range staying empty.
        """
        mapping = {edge: new_bounds.index(edge) for edge in self.bounds}
        buckets = [0] * (len(new_bounds) + 1)
        for edge, n in zip(self.bounds, self.buckets):
            buckets[mapping[edge]] += n
        buckets[-1] += self.buckets[-1]
        self.bounds = tuple(new_bounds)
        self.buckets = buckets

    def merge_dict(self, data: dict) -> None:
        """Fold another histogram's :meth:`as_dict` form into this one.

        Mismatched bucket bounds widen both sides to the sorted union
        of edges, so no count is dropped; summaries (count/sum/min/
        max) combine exactly, while bucket counts keep upper-edge
        placement (a count recorded against edge ``e`` stays at ``e``
        even if the union introduces finer edges below it).

        Exemplars survive in both directions: a snapshot from a
        pre-exemplar worker (no ``"exemplars"`` key) leaves ours in
        place, while incoming exemplars win per bucket (they are the
        newer observation).  Exemplar keys are edge labels, so they
        stay valid across the widening above.
        """
        other_bounds, other_counts, overflow = _parse_buckets(
            data.get("buckets", {})
        )
        with self._lock:
            if other_bounds != self.bounds:
                union = tuple(sorted(set(self.bounds) | set(other_bounds)))
                self._widen(union)
            index = {edge: i for i, edge in enumerate(self.bounds)}
            for edge, n in zip(other_bounds, other_counts):
                self.buckets[index[edge]] += n
            self.buckets[-1] += overflow
            self.count += int(data.get("count", 0))
            self.total += float(data.get("sum", 0.0))
            for key, pick in (("min", min), ("max", max)):
                v = data.get(key)
                if v is None:
                    continue
                mine = getattr(self, key)
                setattr(self, key, v if mine is None else pick(mine, v))
            for key, ex in (data.get("exemplars") or {}).items():
                self.exemplars[str(key)] = dict(ex)


def _clamp(v: float, lo: float | None, hi: float | None) -> float:
    """``v`` projected into ``[lo, hi]`` (either bound may be absent)."""
    if lo is not None and v < lo:
        v = lo
    if hi is not None and v > hi:
        v = hi
    return float(v)


def _parse_buckets(buckets: dict) -> tuple[tuple, list[int], int]:
    """Recover ``(bounds, counts, overflow)`` from an as_dict bucket map."""
    edges = []
    overflow = 0
    for key, n in buckets.items():
        if key == "overflow":
            overflow = int(n)
            continue
        text = key[3:] if key.startswith("le_") else key
        edge = float(text)
        if edge.is_integer():
            edge = int(edge)
        edges.append((edge, int(n)))
    edges.sort(key=lambda en: en[0])
    bounds = tuple(e for e, _ in edges)
    counts = [n for _, n in edges]
    return bounds, counts, overflow


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter())
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge())
        return g

    def histogram(self, name: str, bounds: tuple | None = None) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(
                    name,
                    Histogram(bounds) if bounds is not None else Histogram(),
                )
        return h

    def snapshot(self) -> dict:
        """A JSON-ready dump of every instrument."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: h.as_dict() for k, h in self._histograms.items()
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add; gauges take the incoming value (last-write-wins,
        matching :meth:`Gauge.set`); histograms fold bucket-by-bucket
        via :meth:`Histogram.merge_dict`, widening to the union of
        bucket bounds when the two sides disagree.  This is what the
        sweep/fuzz parents call on each worker's snapshot, in worker
        order, so the merged registry is deterministic for a given
        worker count.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            bounds, _, _ = _parse_buckets(data.get("buckets", {}))
            self.histogram(name, bounds or None).merge_dict(data)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _registry
