"""Merged histograms must keep percentile estimates sane.

Pins the ``lo > hi`` clamp bug: merging histograms with different
bucket bounds widens both sides to the union of edges, after which a
deciding bucket's ``(lo, hi]`` value range can lie entirely outside
the merged ``[min, max]``.  The naive two-sided clamp then *crossed*
the edges and interpolation ran backwards.  The property here is the
contract every caller assumes: any percentile of any merged histogram
lies within ``[min, max]`` and is monotone in ``q``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram, MetricsRegistry

_values = st.lists(
    st.floats(
        min_value=0.0,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=1,
    max_size=40,
)

_bounds = st.lists(
    st.sampled_from([1, 2, 3, 5, 8, 16, 50, 64, 100, 512, 1000, 4096]),
    min_size=1,
    max_size=6,
    unique=True,
).map(lambda edges: tuple(sorted(edges)))


def _hist(bounds, values):
    h = Histogram(bounds)
    for v in values:
        h.observe(v)
    return h


class TestMergedPercentiles:
    @given(a=_values, b=_values, ba=_bounds, bb=_bounds)
    @settings(max_examples=200, deadline=None)
    def test_percentile_within_min_max_and_monotone(self, a, b, ba, bb):
        merged = _hist(ba, a)
        merged.merge_dict(_hist(bb, b).as_dict())
        assert merged.count == len(a) + len(b)
        lo, hi = min(a + b), max(a + b)
        assert merged.min == lo and merged.max == hi
        qs = [0.01, 0.25, 0.50, 0.90, 0.99, 1.0]
        ps = [merged.percentile(q) for q in qs]
        for p in ps:
            assert lo <= p <= hi
        assert ps == sorted(ps)

    @given(a=_values, ba=_bounds, bb=_bounds)
    @settings(max_examples=100, deadline=None)
    def test_registry_merge_matches_direct_merge(self, a, ba, bb):
        """merge() through a registry snapshot equals merge_dict."""
        reg = MetricsRegistry()
        h = reg.histogram("h", ba)
        for v in a:
            h.observe(v)
        other = MetricsRegistry()
        oh = other.histogram("h", bb)
        for v in a:
            oh.observe(v)
        reg.merge(other.snapshot())
        direct = _hist(ba, a)
        direct.merge_dict(_hist(bb, a).as_dict())
        for q in (0.5, 0.9, 0.99):
            assert reg.histogram("h").percentile(q) == direct.percentile(q)

    def test_regression_deciding_bucket_outside_min_max(self):
        """The concrete failing shape: after widening, the deciding
        bucket's edges both exceed max, the old clamp made lo > hi."""
        a = Histogram((100,))
        a.observe(5.0)  # le_100 bucket, min=max=5
        b = Histogram((2, 100))
        b.observe(1.0)  # le_2 bucket
        a.merge_dict(b.as_dict())
        # a's single observation now sits in the (2, 100] bucket while
        # max == 5: lo=2 < max but plain clamping used to cross.
        for q in (0.5, 0.75, 0.99, 1.0):
            p = a.percentile(q)
            assert 1.0 <= p <= 5.0

    def test_single_value_exact_after_merge(self):
        a = Histogram((8,))
        b = Histogram((2, 8))
        for _ in range(3):
            a.observe(4.0)
            b.observe(4.0)
        a.merge_dict(b.as_dict())
        assert a.percentile(0.5) == 4.0
        assert a.percentile(0.99) == 4.0

    def test_empty_histogram_percentile_is_zero(self):
        h = Histogram()
        assert h.percentile(0.5) == 0.0
        h.merge_dict(Histogram((2, 4)).as_dict())
        assert h.percentile(0.99) == 0.0


class TestExemplarMerge:
    """Exemplars must survive merge/round-trip against pre-exemplar
    peers: widening may rebucket counts but never drops trace ids."""

    def test_as_dict_omits_empty_exemplars(self):
        h = Histogram((8,))
        h.observe(4.0)
        assert "exemplars" not in h.as_dict()

    def test_exemplar_round_trips_through_as_dict(self):
        h = Histogram((8, 64))
        h.observe(4.0, exemplar="a" * 32)
        h.observe(100.0, exemplar="b" * 32)
        doc = h.as_dict()
        assert doc["exemplars"]["le_8"]["trace_id"] == "a" * 32
        assert doc["exemplars"]["overflow"]["trace_id"] == "b" * 32
        back = Histogram.from_dict(doc)
        assert back.exemplars == h.exemplars
        assert back.as_dict() == doc

    def test_merge_from_pre_exemplar_peer_keeps_ours(self):
        """A peer snapshot without an "exemplars" key (an old worker)
        must widen the buckets without dropping our exemplars."""
        mine = Histogram((8,))
        mine.observe(4.0, exemplar="c" * 32)
        peer = Histogram((2, 8)).as_dict()
        assert "exemplars" not in peer
        mine.merge_dict(peer)
        assert mine.exemplars["le_8"]["trace_id"] == "c" * 32

    def test_merge_into_pre_exemplar_histogram_adopts_incoming(self):
        mine = Histogram((8,))
        mine.observe(4.0)
        peer = Histogram((8,))
        peer.observe(2.0, exemplar="d" * 32)
        mine.merge_dict(peer.as_dict())
        assert mine.exemplars["le_8"]["trace_id"] == "d" * 32

    def test_incoming_exemplar_wins_per_bucket(self):
        mine = Histogram((8, 64))
        mine.observe(4.0, exemplar="old-le8")
        mine.observe(32.0, exemplar="old-le64")
        peer = Histogram((8, 64))
        peer.observe(5.0, exemplar="new-le8")
        mine.merge_dict(peer.as_dict())
        # Incoming is newer for le_8; le_64 untouched.
        assert mine.exemplars["le_8"]["trace_id"] == "new-le8"
        assert mine.exemplars["le_64"]["trace_id"] == "old-le64"

    def test_registry_merge_carries_exemplars(self):
        reg = MetricsRegistry()
        reg.histogram("h", (8,)).observe(1.0)
        other = MetricsRegistry()
        other.histogram("h", (2, 8)).observe(1.5, exemplar="e" * 32)
        reg.merge(other.snapshot())
        assert reg.histogram("h").exemplars["le_2"]["trace_id"] == "e" * 32

    def test_exemplar_keys_stable_across_widening(self):
        """Edge-labeled keys mean widening needs no remap: after a
        merge introduces new edges, an old exemplar still names the
        same (edge-labeled) bucket."""
        mine = Histogram((100,))
        mine.observe(50.0, exemplar="f" * 32)
        mine.merge_dict(Histogram((2, 100)).as_dict())
        assert set(mine.exemplars) == {"le_100"}
        assert tuple(mine.bounds) == (2, 100)

    def test_prometheus_text_renders_and_skips_exemplars(self):
        from repro.obs.export import prometheus_text

        reg = MetricsRegistry()
        reg.histogram("serve.request_ms", (8, 64)).observe(
            4.0, exemplar="ab" * 16
        )
        reg.histogram("plain_ms", (8,)).observe(4.0)
        text = prometheus_text(reg.snapshot())
        lines = text.splitlines()
        tagged = [ln for ln in lines if "# {" in ln]
        assert any(
            'le="8"' in ln and f'trace_id="{"ab" * 16}"' in ln
            for ln in tagged
        )
        # Exemplar-free histograms render exactly as before.
        assert not any("plain_ms" in ln for ln in tagged)
