"""The legality validator must catch each rule violation."""

import pytest

from repro.grid.geometry import Rect, Segment
from repro.grid.layout import GridLayout
from repro.grid.validate import LayoutError, check_topology, validate_layout
from repro.grid.wire import Wire


def two_node_layout(layers=2):
    lay = GridLayout(layers=layers)
    lay.place("a", Rect(0, 10, 2, 2))
    lay.place("b", Rect(10, 10, 2, 2))
    return lay


def straight_wire(y=9, layer_h=1, layer_v=2, x1=1, x2=11):
    """a -> up -> across at y -> down -> b."""
    return Wire(
        "a",
        "b",
        [
            Segment.make(x1, 10, x1, y, layer_v),
            Segment.make(x1, y, x2, y, layer_h),
            Segment.make(x2, y, x2, 10, layer_v),
        ],
    )


class TestCleanLayouts:
    def test_minimal_passes(self):
        lay = two_node_layout()
        lay.add_wire(straight_wire())
        report = validate_layout(lay, check_parity=True)
        assert report["wires"] == 1
        assert report["segments"] == 3

    def test_crossing_wires_legal(self):
        # One horizontal on layer 1, one vertical on layer 2, crossing.
        lay = GridLayout(layers=2)
        lay.place("a", Rect(0, 4, 2, 2))
        lay.place("b", Rect(10, 4, 2, 2))
        lay.place("c", Rect(4, 0, 2, 2))
        lay.place("d", Rect(4, 10, 2, 2))
        lay.add_wire(Wire("a", "b", [Segment.make(2, 5, 10, 5, 1)]))
        lay.add_wire(Wire("c", "d", [Segment.make(5, 2, 5, 10, 2)]))
        validate_layout(lay, check_parity=True)

    def test_touching_same_layer_segments_legal(self):
        # Two collinear wires sharing only a grid point: a crossing, not
        # an overlap.
        lay = GridLayout(layers=2)
        lay.place("a", Rect(0, 2, 2, 2))
        lay.place("b", Rect(4, 2, 2, 2))
        lay.place("c", Rect(8, 2, 2, 2))
        lay.add_wire(Wire("a", "b", [Segment.make(2, 3, 4, 3, 1)]))
        lay.add_wire(Wire("b", "c", [Segment.make(6, 3, 8, 3, 1)]))
        validate_layout(lay)


class TestViolations:
    def test_layer_budget(self):
        lay = two_node_layout(layers=2)
        lay.add_wire(straight_wire(layer_h=3))
        with pytest.raises(LayoutError, match="budget"):
            validate_layout(lay)

    def test_parity(self):
        lay = two_node_layout(layers=4)
        lay.add_wire(straight_wire(layer_h=2, layer_v=1))
        with pytest.raises(LayoutError, match="parity"):
            validate_layout(lay, check_parity=True)
        validate_layout(lay)  # without parity it is still legal

    def test_overlap_same_layer(self):
        lay = two_node_layout()
        lay.add_wire(straight_wire(y=9))
        lay.add_wire(straight_wire(y=9, x1=0, x2=12))
        with pytest.raises(LayoutError, match="overlap"):
            validate_layout(lay)

    def test_overlap_different_layers_ok(self):
        lay = two_node_layout(layers=4)
        lay.add_wire(straight_wire(y=9, layer_h=1, layer_v=2, x1=1, x2=11))
        lay.add_wire(straight_wire(y=9, layer_h=3, layer_v=4, x1=0, x2=12))
        validate_layout(lay, check_parity=True)

    def test_knock_knee(self):
        # Two wires turning at (5, 5) with overlapping layer ranges.
        lay = GridLayout(layers=4)
        lay.place("a", Rect(0, 4, 1, 1))
        lay.place("b", Rect(4, 9, 1, 1))
        lay.place("c", Rect(9, 4, 1, 1))
        lay.place("d", Rect(4, 0, 1, 1))
        lay.add_wire(
            Wire(
                "a",
                "b",
                [Segment.make(1, 5, 5, 5, 1), Segment.make(5, 5, 5, 9, 2)],
            )
        )
        lay.add_wire(
            Wire(
                "c",
                "d",
                [Segment.make(9, 5, 5, 5, 1), Segment.make(5, 5, 5, 1, 2)],
            )
        )
        with pytest.raises(LayoutError, match="knock-knee"):
            validate_layout(lay, check_node_interference=False, check_pins=False)

    def test_stacked_vias_disjoint_layers_legal(self):
        # Same planar via point, disjoint layer ranges: legal in the
        # multilayer (3-D grid) model.
        lay = GridLayout(layers=4)
        lay.place("a", Rect(0, 4, 1, 1))
        lay.place("b", Rect(4, 9, 1, 1))
        lay.place("c", Rect(9, 4, 1, 1))
        lay.place("d", Rect(4, 0, 1, 1))
        lay.add_wire(
            Wire(
                "a",
                "b",
                [Segment.make(1, 5, 5, 5, 1), Segment.make(5, 5, 5, 9, 2)],
            )
        )
        lay.add_wire(
            Wire(
                "c",
                "d",
                [Segment.make(9, 5, 5, 5, 3), Segment.make(5, 5, 5, 1, 4)],
            )
        )
        validate_layout(lay, check_node_interference=False, check_pins=False)

    def test_overlapping_via_stacks_rejected(self):
        # Layer ranges {1,2} and {2,3} share layer 2 at the via point.
        lay = GridLayout(layers=4)
        lay.place("a", Rect(0, 4, 1, 1))
        lay.place("b", Rect(4, 9, 1, 1))
        lay.place("c", Rect(9, 4, 1, 1))
        lay.place("d", Rect(4, 0, 1, 1))
        lay.add_wire(
            Wire(
                "a",
                "b",
                [Segment.make(1, 5, 5, 5, 1), Segment.make(5, 5, 5, 9, 2)],
            )
        )
        lay.add_wire(
            Wire(
                "c",
                "d",
                [Segment.make(9, 5, 5, 5, 3), Segment.make(5, 5, 5, 1, 2)],
            )
        )
        with pytest.raises(LayoutError, match="via conflict|knock-knee"):
            validate_layout(lay, check_node_interference=False, check_pins=False)

    def test_wire_through_node_interior(self):
        lay = two_node_layout()
        lay.place("obstacle", Rect(4, 8, 3, 3))
        lay.add_wire(straight_wire(y=9))  # passes through (4..7, 9)
        with pytest.raises(LayoutError, match="interior"):
            validate_layout(lay, check_pins=False)

    def test_overlapping_nodes(self):
        lay = GridLayout(layers=2)
        lay.place("a", Rect(0, 0, 4, 4))
        lay.place("b", Rect(2, 2, 4, 4))
        with pytest.raises(LayoutError, match="squares overlap"):
            validate_layout(lay)

    def test_abutting_nodes_ok(self):
        lay = GridLayout(layers=2)
        lay.place("a", Rect(0, 0, 4, 4))
        lay.place("b", Rect(4, 0, 4, 4))
        validate_layout(lay)

    def test_pin_off_perimeter(self):
        lay = two_node_layout()
        # Wire floating in space, not touching node "a".
        lay.add_wire(
            Wire("a", "b", [Segment.make(5, 5, 11, 5, 1),
                            Segment.make(11, 5, 11, 10, 2)])
        )
        with pytest.raises(LayoutError, match="perimeter"):
            validate_layout(lay)

    def test_pin_conflict(self):
        lay = GridLayout(layers=2)
        lay.place("a", Rect(0, 4, 2, 2))
        lay.place("b", Rect(10, 4, 2, 2))
        lay.place("c", Rect(10, 0, 2, 2))
        lay.add_wire(Wire("a", "b", [Segment.make(2, 5, 10, 5, 1)]))
        lay.add_wire(
            Wire(
                "a",
                "c",
                [Segment.make(2, 5, 8, 5, 1), Segment.make(8, 5, 8, 2, 2),
                 Segment.make(8, 2, 10, 2, 1)],
            )
        )
        with pytest.raises(LayoutError, match="pin conflict|overlap"):
            validate_layout(lay)

    def test_unplaced_node(self):
        lay = GridLayout(layers=2)
        lay.place("a", Rect(0, 0, 2, 2))
        lay.add_wire(Wire("a", "ghost", [Segment.make(2, 1, 5, 1, 1)]))
        with pytest.raises(LayoutError, match="unplaced"):
            validate_layout(lay)

    def test_unmerged_collinear_segments(self):
        lay = two_node_layout()
        lay.add_wire(
            Wire(
                "a",
                "b",
                [
                    Segment.make(1, 10, 1, 9, 2),
                    Segment.make(1, 9, 5, 9, 1),
                    Segment.make(5, 9, 11, 9, 1),
                    Segment.make(11, 9, 11, 10, 2),
                ],
            )
        )
        with pytest.raises(LayoutError, match="merged"):
            validate_layout(lay)


class TestViaPiercing:
    def test_straight_wire_through_via_interior_rejected(self):
        lay = GridLayout(layers=4)
        lay.place("a", Rect(0, 4, 1, 1))
        lay.place("b", Rect(9, 4, 1, 1))
        lay.place("c", Rect(4, 0, 1, 1))
        lay.place("d", Rect(4, 9, 1, 1))
        # A: H on 1, via at (5,5), H on 3.
        lay.add_wire(
            Wire("a", "b", [Segment.make(1, 5, 5, 5, 1),
                            Segment.make(5, 5, 9, 5, 3)])
        )
        # B: vertical straight through (5,5) on layer 2 -- inside A's via.
        lay.add_wire(
            Wire("c", "d", [Segment.make(5, 1, 5, 9, 2)])
        )
        with pytest.raises(LayoutError, match="pierced"):
            validate_layout(lay, check_node_interference=False,
                            check_pins=False)

    def test_straight_wire_beside_via_ok(self):
        lay = GridLayout(layers=4)
        lay.place("a", Rect(0, 4, 1, 1))
        lay.place("b", Rect(9, 4, 1, 1))
        lay.place("c", Rect(6, 0, 1, 1))
        lay.place("d", Rect(6, 9, 1, 1))
        lay.add_wire(
            Wire("a", "b", [Segment.make(1, 5, 5, 5, 1),
                            Segment.make(5, 5, 9, 5, 3)])
        )
        lay.add_wire(Wire("c", "d", [Segment.make(7, 1, 7, 9, 2)]))
        validate_layout(lay, check_node_interference=False, check_pins=False)

    def test_segment_ending_at_via_point_is_crossing(self):
        # B's interior-layer segment *ends* exactly at the via's planar
        # point: endpoint sharing is a crossing, which stays legal.
        lay = GridLayout(layers=4)
        lay.place("a", Rect(0, 4, 1, 1))
        lay.place("b", Rect(9, 4, 1, 1))
        lay.place("c", Rect(4, 0, 1, 1))
        lay.place("d", Rect(0, 0, 1, 1))
        lay.add_wire(
            Wire("a", "b", [Segment.make(1, 5, 5, 5, 1),
                            Segment.make(5, 5, 9, 5, 3)])
        )
        # One straight vertical segment on layer 2 from c's square down
        # to exactly (5, 5): it touches the via point only at its end.
        lay.add_wire(Wire("c", "d", [Segment.make(5, 1, 5, 5, 2),
                                     Segment.make(5, 1, 1, 1, 1)]))
        validate_layout(lay, check_node_interference=False,
                        check_pins=False)


class TestTopologyCheck:
    def test_matches(self):
        lay = two_node_layout()
        lay.add_wire(straight_wire())
        check_topology(lay, [("a", "b")])
        check_topology(lay, [("b", "a")])  # orientation-free

    def test_missing_edge(self):
        lay = two_node_layout()
        lay.add_wire(straight_wire())
        with pytest.raises(LayoutError, match="differs"):
            check_topology(lay, [("a", "b"), ("a", "b")])

    def test_extra_edge(self):
        lay = two_node_layout()
        lay.add_wire(straight_wire())
        with pytest.raises(LayoutError, match="differs"):
            check_topology(lay, [])
