"""Service-level objectives: latency targets, error budget, burn rate.

An :class:`SLOConfig` states the objective — "``target`` of requests
complete within ``latency_ms`` and without a server error" — and
:func:`slo_snapshot` measures the serve path against it from the
cumulative ``serve.request_ms`` histogram plus the error counter,
all of which already flow through the metrics registry.

Definitions (all fractions in ``[0, 1]``):

* ``compliance``   — fraction of requests that met the objective
  (within latency, interpolated inside the deciding bucket) minus
  the server-error fraction;
* ``budget``       — ``1 - target``: the tolerated bad fraction;
* ``burn_rate``    — ``(1 - compliance) / budget``: 1.0 means the
  budget is being consumed exactly as provisioned, above 1.0 the
  objective will be missed;
* ``budget_remaining`` — fraction of the error budget left over the
  observed window (clamped at 0).

The gauges land in the shared registry (``slo.*``), are rendered in
``/metrics`` and the per-run ``metrics.prom``, and are read back by
the ``repro watch`` SLO panel via :func:`slo_from_prometheus`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from . import metrics as _metrics

__all__ = [
    "SLOConfig",
    "fraction_within",
    "slo_snapshot",
    "update_slo_gauges",
    "parse_prometheus_gauges",
    "slo_from_prometheus",
]

REQUEST_HIST = "serve.request_ms"
#: 5xx-only: client errors (4xx) don't burn the server's budget.
ERROR_COUNTER = "serve.errors_5xx"

GAUGE_COMPLIANCE = "slo.compliance"
GAUGE_BURN_RATE = "slo.burn_rate"
GAUGE_BUDGET_REMAINING = "slo.budget_remaining"
GAUGE_OBJECTIVE_MS = "slo.objective_ms"
GAUGE_TARGET = "slo.target"
GAUGE_REQUESTS = "slo.requests"


@dataclass(frozen=True)
class SLOConfig:
    """A latency objective over the serve path.

    ``latency_ms`` is the per-request latency bound; ``target`` the
    fraction of requests that must meet it (e.g. ``0.99`` = "99% of
    requests under 250 ms").
    """

    latency_ms: float = 250.0
    target: float = 0.99

    def __post_init__(self) -> None:
        if self.latency_ms <= 0:
            raise ValueError("latency_ms must be positive")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")

    @property
    def budget(self) -> float:
        return 1.0 - self.target


def fraction_within(hist: dict, threshold: float) -> Optional[float]:
    """Fraction of observations ``<= threshold`` from an as_dict form.

    Interpolates linearly inside the bucket that straddles the
    threshold (same estimator family as ``Histogram.percentile``).
    Returns ``None`` when the histogram is empty.
    """
    count = int(hist.get("count", 0))
    if count <= 0:
        return None
    bounds, counts, overflow = _metrics._parse_buckets(
        hist.get("buckets", {})
    )
    lo_min = hist.get("min")
    hi_max = hist.get("max")
    if hi_max is not None and threshold >= hi_max:
        return 1.0
    if lo_min is not None and threshold < lo_min:
        return 0.0
    cum = 0.0
    prev_edge = lo_min if lo_min is not None else 0.0
    for edge, n in zip(bounds, counts):
        if threshold <= edge:
            lo = _metrics._clamp(prev_edge, lo_min, hi_max)
            hi = _metrics._clamp(edge, lo_min, hi_max)
            if n and hi > lo:
                cum += n * max(
                    0.0, min(1.0, (threshold - lo) / (hi - lo))
                )
            elif n and threshold >= hi:
                cum += n
            return max(0.0, min(1.0, cum / count))
        cum += n
        prev_edge = edge
    # Threshold beyond the last finite edge: everything but a share
    # of the overflow bucket qualifies.
    if overflow and hi_max is not None and hi_max > prev_edge:
        cum += overflow * max(
            0.0, min(1.0, (threshold - prev_edge) / (hi_max - prev_edge))
        )
    return max(0.0, min(1.0, cum / count))


def slo_snapshot(
    config: SLOConfig,
    snapshot: Optional[dict] = None,
    *,
    hist_name: str = REQUEST_HIST,
    error_counter: str = ERROR_COUNTER,
) -> dict:
    """Measure the registry (or a snapshot of one) against ``config``."""
    if snapshot is None:
        snapshot = _metrics.registry().snapshot()
    hist = snapshot.get("histograms", {}).get(hist_name, {})
    requests = int(hist.get("count", 0))
    errors = int(snapshot.get("counters", {}).get(error_counter, 0))
    doc = {
        "objective_ms": config.latency_ms,
        "target": config.target,
        "requests": requests,
        "errors": errors,
        "compliance": None,
        "burn_rate": None,
        "budget_remaining": None,
    }
    within = fraction_within(hist, config.latency_ms)
    if within is None:
        return doc
    error_frac = min(1.0, errors / requests) if requests else 0.0
    compliance = max(0.0, within - error_frac)
    bad = 1.0 - compliance
    burn = bad / config.budget
    doc["compliance"] = compliance
    doc["burn_rate"] = burn
    doc["budget_remaining"] = max(0.0, 1.0 - burn)
    return doc


def update_slo_gauges(
    config: SLOConfig,
    registry: Optional[_metrics.MetricsRegistry] = None,
) -> dict:
    """Refresh the ``slo.*`` gauges from the current registry state.

    Returns the snapshot used, so callers rendering ``/stats`` or
    ``/metrics`` get one consistent view.
    """
    reg = registry if registry is not None else _metrics.registry()
    doc = slo_snapshot(config, reg.snapshot())
    reg.gauge(GAUGE_OBJECTIVE_MS).set(config.latency_ms)
    reg.gauge(GAUGE_TARGET).set(config.target)
    reg.gauge(GAUGE_REQUESTS).set(float(doc["requests"]))
    if doc["compliance"] is not None:
        reg.gauge(GAUGE_COMPLIANCE).set(doc["compliance"])
        reg.gauge(GAUGE_BURN_RATE).set(doc["burn_rate"])
        reg.gauge(GAUGE_BUDGET_REMAINING).set(doc["budget_remaining"])
    return doc


def parse_prometheus_gauges(text: str) -> dict:
    """Unlabeled ``name value`` samples from a Prometheus text file.

    Minimal on purpose: comments, labeled series (``_bucket{...}``),
    and unparsable lines are skipped.  Enough to read back the
    ``repro_slo_*`` gauges the serve daemon writes to its run dir.
    """
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#") or "{" in line:
            continue
        parts = line.split()
        if len(parts) != 2:
            continue
        try:
            out[parts[0]] = float(parts[1])
        except ValueError:
            continue
    return out


def slo_from_prometheus(text: str, prefix: str = "repro_") -> Optional[dict]:
    """Recover the SLO panel from a rendered metrics file.

    Returns ``None`` when the file carries no SLO gauges (e.g. a
    sweep run dir), so callers can omit the panel entirely.
    """
    values = parse_prometheus_gauges(text)

    def get(name: str) -> Optional[float]:
        return values.get(prefix + name.replace(".", "_"))

    objective = get(GAUGE_OBJECTIVE_MS)
    target = get(GAUGE_TARGET)
    if objective is None or target is None:
        return None
    doc = {
        "objective_ms": objective,
        "target": target,
        "requests": int(get(GAUGE_REQUESTS) or 0),
        "compliance": get(GAUGE_COMPLIANCE),
        "burn_rate": get(GAUGE_BURN_RATE),
        "budget_remaining": get(GAUGE_BUDGET_REMAINING),
    }
    return doc
