"""The table harness used by benches and examples."""

from repro.bench.harness import comparison_row, format_table, print_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        # Right-aligned columns with uniform width.
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [1234567.0], [12.5]])
        assert "0.123" in text
        assert "e+06" in text.replace("E", "e")

    def test_int_thousands(self):
        assert "1,024" in format_table(["n"], [[1024]])

    def test_strings_passthrough(self):
        assert "hello" in format_table(["s"], [["hello"]])


class TestComparisonRow:
    def test_ratio(self):
        row = comparison_row(["x"], 10.0, 15.0)
        assert row == ["x", 10.0, 15.0, 1.5]

    def test_zero_paper(self):
        row = comparison_row([], 0, 5)
        assert row[-1] != row[-1]  # NaN

    def test_print_table(self, capsys):
        print_table("title", ["a"], [[1]])
        out = capsys.readouterr().out
        assert "== title ==" in out
