"""E7: the introduction's performance argument, quantified.

"...the maximum length of wires can be reduced by a factor of
approximately t [and] the maximum total length of wires along the
routing path ... leading to lower cost and/or higher performance."

Under a standard wire-delay model (repeatered linear delay, plus an
unbuffered RC variant), the multilayer layouts' shorter wires turn
directly into faster clocks and lower message latencies, while the
folded baseline's performance is pinned at the 2-layer level.

The file also hosts the pipeline's own performance gates: the sweep
engine's cache and worker rows, and before/after rows for the two
measured hot loops (the exact-cutwidth DP inner scan and the
validator's node-interference sweep), each timed against a reference
reimplementation of the pre-optimization algorithm kept here.
"""

import bisect
import os
import time
from collections import defaultdict

from repro.bench.harness import timed_median
from repro.core import layout_hypercube
from repro.core.delay import DelayModel, performance
from repro.core.folding import fold_layout


def test_clock_and_latency_vs_layers(benchmark, report):
    base = layout_hypercube(10, layers=2, node_side="min")
    base_rep = performance(base, max_sources=8)
    rows = []
    for L in (2, 4, 8, 16):
        lay = layout_hypercube(10, layers=L, node_side="min")
        rep = performance(lay, max_sources=8)
        folded_rep = performance(fold_layout(base, L), max_sources=8)
        rows.append([
            L,
            f"{rep.clock_period:.0f}",
            f"{base_rep.clock_period / rep.clock_period:.2f}",
            f"{base_rep.clock_period / folded_rep.clock_period:.2f}",
            f"{rep.worst_latency:.0f}",
            f"{base_rep.worst_latency / rep.worst_latency:.2f}",
            f"{base_rep.avg_latency / rep.avg_latency:.2f}",
        ])
    report(
        "E7a: 10-cube clock period and message latency vs L "
        "(linear wire delay; folding stays at 1.00x)",
        ["L", "clock", "clock speedup", "clock speedup (fold)",
         "worst latency", "latency speedup", "avg speedup"],
        rows,
    )
    benchmark.pedantic(
        performance, args=(base,), kwargs={"max_sources": 8},
        rounds=1, iterations=1,
    )


def test_rc_wires_amplify(report, benchmark):
    rc = DelayModel(alpha=0.0, beta=0.05, router_delay=20.0)
    rows = []
    base_rep = None
    for L in (2, 4, 8):
        lay = layout_hypercube(10, layers=L, node_side="min")
        rep = performance(lay, rc, max_sources=4)
        if base_rep is None:
            base_rep = rep
        rows.append([
            L,
            f"{rep.max_wire_delay:.0f}",
            f"{base_rep.max_wire_delay / max(rep.max_wire_delay, 1e-9):.2f}",
            f"{base_rep.clock_period / rep.clock_period:.2f}",
        ])
    report(
        "E7b: unbuffered RC wires -- quadratic delay makes the L/2 wire "
        "reduction a ~(L/2)^2 delay win",
        ["L", "max wire delay", "delay ratio", "clock speedup"],
        rows,
    )
    benchmark(performance, layout_hypercube(8, node_side="min"), rc)


# ---------------------------------------------------------------------------
# E7c/E7d: sweep engine -- cache and worker rows


def test_sweep_cache_cold_vs_warm(report, tmp_path):
    """A cache-hit sweep must beat a cold sweep by >= 5x.

    Hits skip build, validation, *and* measurement -- the stored
    metrics come back directly -- so the warm pass is bounded by key
    hashing and one small JSON read per job.
    """
    from repro.batch import SweepRunner, standard_family_sweep

    spec = standard_family_sweep()
    cdir = tmp_path / "cache"

    t0 = time.perf_counter()
    cold = SweepRunner(cache_dir=cdir).run(spec)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = SweepRunner(cache_dir=cdir).run(spec)
    warm_s = time.perf_counter() - t0

    assert warm.rows() == cold.rows()
    assert all(r.source == "cache" for r in warm.results)
    speedup = cold_s / warm_s
    report(
        "E7c: standard family sweep, cold build vs cache hit "
        f"({cold.jobs} jobs)",
        ["pass", "jobs", "hits", "misses", "seconds", "speedup"],
        [
            ["cold", cold.jobs, cold.cache_stats.hits,
             cold.cache_stats.misses, f"{cold_s:.3f}", "1.00x"],
            ["warm", warm.jobs, warm.cache_stats.hits,
             warm.cache_stats.misses, f"{warm_s:.3f}",
             f"{speedup:.1f}x"],
        ],
    )
    assert speedup >= 5.0, (
        f"cache-hit sweep only {speedup:.1f}x faster than cold"
    )


def test_sweep_workers_cold(report, tmp_path):
    """1-worker vs 4-worker cold sweep on the standard family jobs.

    The merged rows must be identical whatever the worker count; the
    wall-clock ratio is reported honestly and only asserted to improve
    when the machine actually has more than one CPU (worker fan-out
    cannot beat serial on a single core).
    """
    from repro.batch import SweepRunner, standard_family_sweep

    spec = standard_family_sweep()
    jobs = len(spec.expand())
    assert jobs >= 8

    t0 = time.perf_counter()
    serial = SweepRunner(cache_dir=tmp_path / "c1").run(spec)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    par = SweepRunner(cache_dir=tmp_path / "c4", workers=4).run(spec)
    par_s = time.perf_counter() - t0

    assert par.rows() == serial.rows()
    cpus = os.cpu_count() or 1
    report(
        f"E7d: cold sweep, 1 vs 4 workers ({jobs} jobs, "
        f"{cpus} CPU(s) available)",
        ["workers", "jobs", "seconds", "speedup"],
        [
            [1, serial.jobs, f"{serial_s:.3f}", "1.00x"],
            [4, par.jobs, f"{par_s:.3f}", f"{serial_s / par_s:.2f}x"],
        ],
    )
    if cpus >= 2:
        assert par_s < serial_s, (
            f"4 workers ({par_s:.3f}s) not faster than 1 "
            f"({serial_s:.3f}s) on a {cpus}-CPU machine"
        )


# ---------------------------------------------------------------------------
# E7e/E7f: hot-loop before/after rows.  Each "before" is a faithful
# reimplementation of the pre-optimization algorithm, kept here so the
# gain stays measurable (and honest) as the optimized code evolves.


def _naive_exact_cutwidth(network) -> int:
    """The original DP: per-state Python scan of every removable bit."""
    index = network.index
    n = network.num_nodes
    if n <= 1:
        return 0
    weights: dict[tuple[int, int], int] = {}
    for u, v in network.edges:
        iu, iv = sorted((index[u], index[v]))
        weights[(iu, iv)] = weights.get((iu, iv), 0) + 1
    wadj: list[dict[int, int]] = [dict() for _ in range(n)]
    for (iu, iv), wt in weights.items():
        wadj[iu][iv] = wt
        wadj[iv][iu] = wt
    size = 1 << n
    INF = float("inf")
    dp = [INF] * size
    cut = [0] * size
    dp[0] = 0
    for s in range(1, size):
        v = (s & -s).bit_length() - 1
        prev = s & (s - 1)
        delta = 0
        for w, wt in wadj[v].items():
            delta += -wt if (prev >> w) & 1 else wt
        cut[s] = cut[prev] + delta
        best = INF
        t = s
        while t:
            u = (t & -t).bit_length() - 1
            t &= t - 1
            cand = dp[s ^ (1 << u)]
            if cand < best:
                best = cand
        dp[s] = max(best, cut[s])
    return int(dp[size - 1])


def test_cutwidth_dp_optimized(report):
    """Optimized exact-cutwidth DP: >= 2x at n=16, values unchanged.

    Every zoo network small enough for the DP must get the identical
    cutwidth from the naive reference and the optimized path.
    """
    from repro.cli import _zoo_networks
    from repro.collinear.cutwidth import DP_NODE_LIMIT, exact_cutwidth
    from repro.topology import Hypercube

    net = Hypercube(4)  # n = 16: the gate instance
    assert net.num_nodes == 16
    naive_value = _naive_exact_cutwidth(net)
    opt_value = exact_cutwidth(net)
    assert opt_value == naive_value
    naive_s = timed_median(lambda: _naive_exact_cutwidth(net))
    opt_s = timed_median(lambda: exact_cutwidth(net))

    checked = 0
    for zoo_net in _zoo_networks():
        if zoo_net.num_nodes > DP_NODE_LIMIT:
            continue
        assert exact_cutwidth(zoo_net) == _naive_exact_cutwidth(zoo_net), (
            f"cutwidth changed on {zoo_net.name}"
        )
        checked += 1

    speedup = naive_s / opt_s
    report(
        f"E7e: exact-cutwidth DP at n=16, median of 3 (values identical "
        f"on {checked} zoo networks <= {DP_NODE_LIMIT} nodes)",
        ["implementation", "cutwidth", "seconds", "speedup"],
        [
            ["naive per-state scan", naive_value, f"{naive_s:.4f}",
             "1.00x"],
            ["optimized DP", opt_value, f"{opt_s:.4f}",
             f"{speedup:.1f}x"],
        ],
    )
    assert speedup >= 2.0, f"optimized DP only {speedup:.1f}x faster"


def _naive_node_interference(layout) -> None:
    """The original sweep: every segment against every same-layer rect
    up to its x bound, without y-band pruning."""
    from repro.grid.validate import LayoutError

    by_layer: dict[int, list] = defaultdict(list)
    for p in layout.placements.values():
        by_layer[p.layer].append(p)
    for layer, placements in by_layer.items():
        rects = [(p.rect, p.node) for p in placements]
        rects.sort(key=lambda rn: rn[0].x0)
        xs = [r.x0 for r, _ in rects]
        for w in layout.wires:
            for s in w.segments:
                if s.layer != layer:
                    continue
                lo_x, hi_x = s.x1, s.x2
                i = bisect.bisect_right(xs, hi_x)
                for r, node in rects[:i]:
                    if r.x1 < lo_x:
                        continue
                    if r.segment_crosses_interior(s):
                        raise LayoutError(
                            f"wire {w.u}-{w.v} crosses node {node!r}"
                        )


def test_validator_node_sweep_optimized(report):
    """The y-banded node-interference sweep vs the naive x-only scan:
    same verdict, reported timing on the largest routine layout."""
    from repro.grid.validate import _check_node_interference

    lay = layout_hypercube(8, layers=4)

    # Both must accept: the layout is legal.
    naive_s = timed_median(lambda: _naive_node_interference(lay))
    opt_s = timed_median(lambda: _check_node_interference(lay))

    speedup = naive_s / opt_s
    report(
        "E7f: validator node-interference sweep on the 8-cube at L=4, "
        f"median of 3 ({len(lay.wires)} wires, {len(lay.placements)} nodes)",
        ["implementation", "seconds", "speedup"],
        [
            ["naive x-bound scan", f"{naive_s:.4f}", "1.00x"],
            ["y-banded sweep", f"{opt_s:.4f}", f"{speedup:.1f}x"],
        ],
    )
    assert opt_s <= naive_s, (
        f"banded sweep slower than naive scan: {opt_s:.4f}s vs "
        f"{naive_s:.4f}s"
    )


# ---------------------------------------------------------------------------
# E7g/E7h: the WireTable geometry kernel -- speed and memory rows.
# The "before" is the original object-graph pass kept here verbatim:
# per-wire Python walks over Segment objects.


def _naive_geometry_pass(layout):
    """The pre-WireTable metrics + delay precompute, object by object.

    Reimplements what ``measure()`` (geometry part) and
    ``layout_link_delays`` did before the table: bounding box over
    placement rects and per-wire segments, max/total wire length via
    ``Wire.length`` segment walks, and per-wire ceil'd link delays.
    """
    x0 = y0 = x1 = y1 = None

    def extend(ax0, ay0, ax1, ay1):
        nonlocal x0, y0, x1, y1
        if x0 is None:
            x0, y0, x1, y1 = ax0, ay0, ax1, ay1
        else:
            x0 = min(x0, ax0)
            y0 = min(y0, ay0)
            x1 = max(x1, ax1)
            y1 = max(y1, ay1)

    for p in layout.placements.values():
        r = p.rect
        extend(r.x0, r.y0, r.x1, r.y1)
    for w in layout.wires:
        for s in w.segments:
            extend(min(s.x1, s.x2), min(s.y1, s.y2),
                   max(s.x1, s.x2), max(s.y1, s.y2))

    max_wire = max((w.length for w in layout.wires), default=0)
    total_wire = sum(w.length for w in layout.wires)

    alpha, base = 1.0, 1.0
    delays: dict = {}
    for w in layout.wires:
        d = max(1, int(-(-(base + alpha * w.length) // 1)))
        for key in ((w.u, w.v), (w.v, w.u)):
            if key not in delays or d < delays[key]:
                delays[key] = d
    return (x0, y0, x1, y1), max_wire, total_wire, delays


def test_wiretable_geometry_speed(report):
    """E7g gate: measure() + link-delay precompute >= 3x vs the object
    pass on the 10-cube at L=4, steady state (table built and cached).

    The cold table build is timed and reported honestly but not gated:
    it is a one-time cost amortized over every later geometry query.
    """
    from repro.core.metrics import measure
    from repro.routing.paths import layout_link_delays

    lay = layout_hypercube(10, layers=4, node_side="min")

    t0 = time.perf_counter()
    table = lay.wire_table()
    build_s = time.perf_counter() - t0

    def table_pass():
        m = measure(lay)
        d = layout_link_delays(lay)
        return m, d

    # Equivalence first: identical numbers out of both passes.
    (bx0, by0, bx1, by1), naive_max, naive_total, naive_delays = (
        _naive_geometry_pass(lay)
    )
    m, d = table_pass()
    bb = lay.bounding_box()
    assert (bb.x0, bb.y0, bb.x1, bb.y1) == (bx0, by0, bx1, by1)
    assert (m.max_wire, m.total_wire) == (naive_max, naive_total)
    assert d == naive_delays

    naive_s = timed_median(lambda: _naive_geometry_pass(lay))
    opt_s = timed_median(table_pass)

    speedup = naive_s / opt_s
    report(
        "E7g: geometry pass (measure + link delays) on the 10-cube at "
        f"L=4, median of 3 ({len(lay.wires)} wires, "
        f"{table.num_segments} segments)",
        ["implementation", "seconds", "speedup"],
        [
            ["object-graph walk", f"{naive_s:.4f}", "1.00x"],
            ["WireTable (steady state)", f"{opt_s:.4f}",
             f"{speedup:.1f}x"],
            ["(table build, one-time)", f"{build_s:.4f}", None],
        ],
    )
    assert speedup >= 3.0, (
        f"WireTable geometry pass only {speedup:.1f}x faster"
    )


def test_wiretable_memory(report):
    """E7h gate: the flat geometry table stores the 10-cube L=4 layout
    in <= half the bytes of the Wire/Segment/Point object graph."""
    from repro.grid.table import HAVE_NUMPY, object_graph_bytes

    rows = []
    gate_ratio = None
    for n, L in ((8, 4), (10, 4)):
        lay = layout_hypercube(n, layers=L, node_side="min")
        obj = object_graph_bytes(lay)
        tab = lay.wire_table().nbytes()
        ratio = obj / tab
        rows.append([
            f"{n}-cube", L, len(lay.wires), f"{obj:,}", f"{tab:,}",
            f"{ratio:.1f}x",
        ])
        if n == 10:
            gate_ratio = ratio
    report(
        "E7h: layout representation bytes, object graph vs WireTable "
        f"(backend: {'numpy' if HAVE_NUMPY else 'fallback'})",
        ["layout", "L", "wires", "object graph B", "wire table B",
         "reduction"],
        rows,
    )
    assert gate_ratio is not None and gate_ratio >= 2.0, (
        f"WireTable only {gate_ratio:.1f}x smaller than the object graph"
    )


# ---------------------------------------------------------------------------
# E7i/E7j/E7k: the accel kernel registry and incremental revalidation.
# The "before" for E7i is the validator's own scalar battery (still the
# diagnosis path, so it cannot rot); for E7j it is a full revalidation
# after each edit.


def test_validator_kernels(report):
    """E7i gate: the kernelized validator >= 5x the scalar battery on
    the 10-cube at L=4 (numpy backend; reported-only on pure)."""
    from repro import accel
    from repro.grid.validate import (
        _validate_scalar_reference,
        validate_layout,
    )

    lay = layout_hypercube(10, layers=4, node_side="min")

    # Both paths must accept; the parity suite pins the error messages.
    scalar_s = timed_median(lambda: _validate_scalar_reference(lay))
    kernel_s = timed_median(lambda: validate_layout(lay))

    speedup = scalar_s / kernel_s
    backend = accel.active_backend()
    report(
        f"E7i: full validation battery on the 10-cube at L=4, median "
        f"of 3 ({len(lay.wires)} wires; accel backend: {backend})",
        ["implementation", "seconds", "speedup"],
        [
            ["scalar sweeps", f"{scalar_s:.4f}", "1.00x"],
            [f"accel kernels ({backend})", f"{kernel_s:.4f}",
             f"{speedup:.1f}x"],
        ],
    )
    if backend == "numpy":
        assert speedup >= 5.0, (
            f"kernelized validator only {speedup:.1f}x faster"
        )
    else:
        assert kernel_s <= scalar_s * 1.5, (
            f"pure kernels regress plain validation: {kernel_s:.4f}s vs "
            f"{scalar_s:.4f}s"
        )


def test_incremental_revalidation(report):
    """E7j gate: single-wire edit + incremental revalidation >= 10x an
    edit + full revalidation on the 10-cube at L=4 (>= 3x on pure)."""
    from repro import accel
    from repro.grid.validate import validate_layout
    from repro.grid.wire import Wire

    lay = layout_hypercube(10, layers=4, node_side="min")
    validate_layout(lay, incremental=True)  # attach + arm the tracker

    edit_idx = [
        i for i, w in enumerate(lay.wires) if w.riser is None
    ][:8]

    def clone_wire(i):
        w = lay.wires[i]
        return Wire(w.u, w.v, list(w.segments), edge_key=w.edge_key)

    state = {"k": 0}

    def edit_and_full():
        i = edit_idx[state["k"] % len(edit_idx)]
        state["k"] += 1
        lay.replace_wire(i, clone_wire(i))
        validate_layout(lay)

    def edit_and_incremental():
        i = edit_idx[state["k"] % len(edit_idx)]
        state["k"] += 1
        lay.replace_wire(i, clone_wire(i))
        validate_layout(lay, incremental=True)

    full_s = timed_median(edit_and_full)
    inc_s = timed_median(edit_and_incremental)

    speedup = full_s / inc_s
    backend = accel.active_backend()
    report(
        f"E7j: single-wire edit + revalidation on the 10-cube at L=4, "
        f"median of 3 ({len(lay.wires)} wires; accel backend: {backend})",
        ["implementation", "seconds", "speedup"],
        [
            ["edit + full sweep", f"{full_s:.4f}", "1.00x"],
            ["edit + dirty bands", f"{inc_s:.4f}", f"{speedup:.1f}x"],
        ],
    )
    floor = 10.0 if backend == "numpy" else 3.0
    assert speedup >= floor, (
        f"incremental revalidation only {speedup:.1f}x faster "
        f"(gate {floor:.0f}x on {backend})"
    )


def test_engine_classify_kernel(report):
    """E7k row: the vectorized bucket-classification kernel never loses
    to the pure mirror on a large bucket, and their outputs agree."""
    import random as _random

    import pytest as _pytest

    from repro import accel

    if not accel.HAVE_NUMPY:
        _pytest.skip("numpy not importable: no vector kernel to compare")
    import numpy as _np

    rng = _random.Random(42)
    n_msgs = 4096
    nhops = [rng.randint(1, 6) for _ in range(n_msgs)]
    flat: list[int] = []
    offsets = [0]
    for h in nhops:
        flat.extend(rng.randrange(512) for _ in range(h))
        offsets.append(len(flat))
    starts = [rng.randint(0, 8) for _ in range(n_msgs)]
    hop = [rng.randint(0, nhops[i]) for i in range(n_msgs)]
    movers = list(range(n_msgs))
    nhops_a = _np.asarray(nhops, dtype=_np.int64)
    rs_a = _np.asarray(offsets[:-1], dtype=_np.int64)
    flat_a = _np.asarray(flat, dtype=_np.int64)
    starts_a = _np.asarray(starts, dtype=_np.int64)

    pure = accel.get_backend("pure")
    vec = accel.get_backend("numpy")
    p = pure.classify_bucket(
        movers, hop, 100, 3, nhops, offsets[:-1], flat, starts
    )
    v = vec.classify_bucket(
        movers, hop, 100, 3, nhops_a, rs_a, flat_a, starts_a
    )
    assert p == v, "classify_bucket outputs diverge"

    pure_s = timed_median(lambda: pure.classify_bucket(
        movers, hop, 100, 3, nhops, offsets[:-1], flat, starts
    ))
    vec_s = timed_median(lambda: vec.classify_bucket(
        movers, hop, 100, 3, nhops_a, rs_a, flat_a, starts_a
    ))
    speedup = pure_s / vec_s
    report(
        f"E7k: engine bucket classification, {n_msgs} movers, median "
        "of 3 (outputs identical)",
        ["implementation", "seconds", "speedup"],
        [
            ["pure mirror", f"{pure_s:.4f}", "1.00x"],
            ["vector kernel", f"{vec_s:.4f}", f"{speedup:.1f}x"],
        ],
    )
    assert vec_s <= pure_s, (
        f"vector kernel lost to the pure mirror: {vec_s:.4f}s vs "
        f"{pure_s:.4f}s"
    )
