"""Node orders under which the paper's collinear track counts are met.

The recursions of Sections 3.1, 4.1 and 5.1 implicitly lay nodes out in
mixed-radix lexicographic order (the ``i``-th node of the ``j``-th copy
sits at position ``i*k + j`` after one doubling step, which telescopes
to digit-reversed lexicographic order).  These helpers produce those
orders explicitly so the generic engine reproduces the exact counts.
"""

from __future__ import annotations

from typing import Hashable, Sequence

__all__ = [
    "identity_order",
    "binary_order",
    "mixed_radix_order",
    "interleaved_copies_order",
    "folded_linear_order",
    "gray_order",
]


def identity_order(nodes: Sequence[Hashable]) -> list[Hashable]:
    return list(nodes)


def binary_order(dim: int) -> list[int]:
    """Hypercube nodes by binary value: the order whose max cut is
    exactly ``floor(2N/3)`` (Section 5.1; Harper's congestion result)."""
    return list(range(1 << dim))


def mixed_radix_order(radices: Sequence[int]) -> list[tuple[int, ...]]:
    """All digit tuples ``(d_{n-1}, ..., d_0)`` in lexicographic order.

    ``radices[0]`` is the radix of the most significant digit.  This is
    the row-major order the paper uses for k-ary n-cube and generalized
    hypercube collinear layouts.
    """
    out: list[tuple[int, ...]] = [()]
    for r in radices:
        out = [t + (d,) for t in out for d in range(r)]
    return out


def interleaved_copies_order(
    copies: int, inner: Sequence[Hashable]
) -> list[tuple[int, Hashable]]:
    """The doubling step of the paper's recursions: the ``i``-th node of
    the ``j``-th copy placed adjacent to the ``i``-th node of the
    ``(j-1)``-th copy.  Node labels become ``(copy, inner_label)``."""
    return [(j, v) for v in inner for j in range(copies)]


def folded_linear_order(k: int) -> list[int]:
    """The "folded" order of a k-ring: 0, k-1, 1, k-2, 2, ...

    Interleaving the two halves of the ring makes every ring edge span
    at most 2 positions, which is the folding trick Section 3.1 uses to
    cut the maximum wire length to ``O(N / (L k^2))`` at no track cost
    (the max cut stays 2).
    """
    out: list[int] = []
    lo, hi = 0, k - 1
    while lo <= hi:
        out.append(lo)
        if hi != lo:
            out.append(hi)
        lo += 1
        hi -= 1
    return out


def folded_mixed_radix_order(radices: Sequence[int]) -> list[tuple[int, ...]]:
    """Mixed-radix order with every digit folded boustrophedon-style."""
    out: list[tuple[int, ...]] = [()]
    for r in radices:
        fold = folded_linear_order(r)
        out = [t + (d,) for t in out for d in fold]
    return out


def gray_order(dim: int) -> list[int]:
    """Binary-reflected Gray order of hypercube nodes (used for the
    2-cube building block of Figure 4, where the 4-cycle must appear as
    a path plus one wrap edge)."""
    return [i ^ (i >> 1) for i in range(1 << dim)]
