"""Node-order helpers."""

import pytest

from repro.collinear.orders import (
    binary_order,
    folded_linear_order,
    folded_mixed_radix_order,
    gray_order,
    identity_order,
    interleaved_copies_order,
    mixed_radix_order,
)


class TestOrders:
    def test_identity(self):
        assert identity_order([3, 1, 2]) == [3, 1, 2]

    def test_binary(self):
        assert binary_order(3) == list(range(8))

    def test_mixed_radix_lex(self):
        order = mixed_radix_order([2, 3])
        assert order == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]

    def test_mixed_radix_counts(self):
        assert len(mixed_radix_order([3, 4, 2])) == 24

    def test_interleaved_copies(self):
        out = interleaved_copies_order(2, ["x", "y"])
        assert out == [(0, "x"), (1, "x"), (0, "y"), (1, "y")]

    @pytest.mark.parametrize("k", [3, 4, 5, 6, 9])
    def test_folded_linear_is_permutation(self, k):
        order = folded_linear_order(k)
        assert sorted(order) == list(range(k))

    @pytest.mark.parametrize("k", [4, 5, 6, 9])
    def test_folded_linear_shortens_ring_edges(self, k):
        """Every ring edge spans <= 2 positions under the folded order
        (the Section 3.1 wire-shortening trick)."""
        order = folded_linear_order(k)
        pos = {v: i for i, v in enumerate(order)}
        for i in range(k):
            j = (i + 1) % k
            assert abs(pos[i] - pos[j]) <= 2

    def test_folded_mixed_radix_is_permutation(self):
        out = folded_mixed_radix_order([3, 4])
        assert sorted(out) == mixed_radix_order([3, 4])

    def test_gray_adjacent_differ_one_bit(self):
        order = gray_order(4)
        assert sorted(order) == list(range(16))
        for a, b in zip(order, order[1:]):
            x = a ^ b
            assert x and not (x & (x - 1))
