"""E5.2: Section 5.2 -- CCC and reduced hypercubes as hypercube clusters.

Regenerates the L-layer area against 16 N^2/(9 L^2 log2^2 N) with
N = n 2^n, and checks the reduced hypercube tracks the CCC (the paper:
"asymptotically the same area").
"""

from repro.bench.harness import comparison_row
from repro.core import layout_ccc, layout_reduced_hypercube, measure
from repro.core.analysis import ccc_prediction, reduced_hypercube_prediction


def test_ccc_area(benchmark, report):
    rows = []
    for n in (3, 4, 5, 6):
        for L in (2, 4):
            m = measure(layout_ccc(n, layers=L))
            p = ccc_prediction(n, L)
            rows.append(
                comparison_row([n, p.num_nodes, L], round(p.area), m.area)
            )
    report(
        "E5.2a: L-layer CCC area vs 16 N^2/(9 L^2 log2^2 N)",
        ["n", "N", "L", "paper", "measured", "ratio"],
        rows,
    )
    benchmark.pedantic(layout_ccc, args=(5,), rounds=1, iterations=1)


def test_reduced_hypercube_tracks_ccc(report, benchmark):
    rows = []
    for n in (4, 8):
        ccc = measure(layout_ccc(n))
        rh = measure(layout_reduced_hypercube(n))
        p = reduced_hypercube_prediction(n, 2)
        rows.append([
            n, round(p.area), ccc.area, rh.area, f"{rh.area / ccc.area:.3f}",
        ])
        # The RH's denser clusters (hypercube strips, degree-4 nodes)
        # cost up to ~1.5x at these sizes; the gap is pure block pitch,
        # which the quotient channels outgrow as n -> inf (the paper's
        # "asymptotically the same area").
        assert 0.8 <= rh.area / ccc.area <= 1.6
    report(
        "E5.2b: reduced hypercube vs CCC area (paper: asymptotically "
        "equal; finite-size gap is cluster pitch only)",
        ["n", "paper", "CCC area", "RH area", "RH/CCC"],
        rows,
    )
    benchmark(layout_reduced_hypercube, 4)


def test_quotient_dominates(report, benchmark):
    """The paper's accounting: CCC area is dominated by its hypercube
    (inter-cluster) links; block (cycle) overhead is o()."""
    rows = []
    for n in (3, 4, 5):
        lay = layout_ccc(n)
        ch_w = sum(lay.meta["col_channel_extents"])
        ch_h = sum(lay.meta["row_channel_extents"])
        bb = lay.bounding_box()
        frac = (ch_w / bb.w + ch_h / bb.h) / 2
        rows.append([n, bb.w, ch_w, bb.h, ch_h, f"{frac:.2f}"])
    report(
        "E5.2c: share of CCC layout extent spent on quotient channels",
        ["n", "width", "channel W", "height", "channel H", "channel share"],
        rows,
    )
    benchmark(layout_ccc, 4)
