"""repro.obs: tracing, metrics, and machine-readable run reports.

Zero-dependency observability for the layout pipeline:

* :func:`span` -- nestable timing spans with attributes and counts,
  collected into a tree by a thread-safe in-process collector
  (:mod:`repro.obs.trace`);
* :func:`count` / :func:`observe` / :func:`gauge` -- named counters,
  histograms, and gauges in a process-wide registry
  (:mod:`repro.obs.metrics`);
* :class:`RunReport` -- a JSON document capturing spec, layer budget,
  metrics snapshot, span tree, and environment
  (:mod:`repro.obs.report`).

Everything is **off by default**: ``span`` returns a shared no-op and
the helpers return immediately, so instrumented hot paths pay one
boolean check.  ``enable()`` turns collection on (the CLI does this
for ``--trace`` / ``--report`` and for ``python -m repro stats``).

Usage::

    from repro import obs

    obs.enable()
    with obs.span("build", layers=4) as sp:
        ...
        sp.add("wires", 128)
    obs.count("builder.wires_routed", 128)
    report = obs.collect_report("my-run", layers=4)
    report.write("run.json")
"""

from repro.obs import trace as _trace
from repro.obs import logging  # noqa: F401  (structured JSONL logger)
from repro.obs import live  # noqa: F401  (heartbeats, watchdog, watch)
from repro.obs import context  # noqa: F401  (trace-context propagation)
from repro.obs import slo  # noqa: F401  (latency objectives, burn rate)
from repro.obs.context import (
    RequestLog,
    RequestRecord,
    RequestTrace,
    TraceContext,
    current_context,
    new_context,
    parse_traceparent,
    use_context,
)
from repro.obs.export import (
    chrome_trace,
    jsonl_events,
    prometheus_info,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from repro.obs.report import (
    REPORT_SCHEMA_VERSION,
    RunReport,
    collect_report,
    environment_info,
    validate_report,
)
from repro.obs.trace import (
    Span,
    SpanRecord,
    attach,
    current_span_name,
    disable,
    enable,
    enabled,
    find_spans,
    format_span_tree,
    phase_totals,
    reset_trace,
    span,
    span_names,
    trace_roots,
)

__all__ = [
    # switch
    "enable",
    "disable",
    "enabled",
    "reset",
    # tracing
    "span",
    "Span",
    "SpanRecord",
    "attach",
    "trace_roots",
    "reset_trace",
    "phase_totals",
    "format_span_tree",
    "current_span_name",
    "span_names",
    "find_spans",
    # trace context + request telemetry
    "context",
    "TraceContext",
    "RequestTrace",
    "RequestLog",
    "RequestRecord",
    "new_context",
    "parse_traceparent",
    "current_context",
    "use_context",
    # SLO tracking
    "slo",
    # live telemetry
    "logging",
    "live",
    # exporters
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "jsonl_events",
    "write_jsonl",
    "prometheus_info",
    "prometheus_text",
    "write_prometheus",
    # metrics
    "count",
    "observe",
    "gauge",
    "registry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    # reports
    "RunReport",
    "collect_report",
    "environment_info",
    "validate_report",
    "REPORT_SCHEMA_VERSION",
]


def count(name: str, n: int = 1) -> None:
    """Increment counter ``name`` by ``n`` (no-op while disabled)."""
    if _trace._enabled:
        registry().counter(name).inc(n)


def observe(
    name: str,
    value: float,
    bounds: tuple | None = None,
    *,
    exemplar: str | None = None,
) -> None:
    """Record ``value`` into histogram ``name`` (no-op while disabled).

    ``exemplar`` tags the receiving bucket with a trace id (last
    observation wins), surfaced in the Prometheus rendering and
    ``repro stats`` so a bucket links back to a concrete request.
    """
    if _trace._enabled:
        registry().histogram(name, bounds).observe(value, exemplar=exemplar)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op while disabled)."""
    if _trace._enabled:
        registry().gauge(name).set(value)


def reset() -> None:
    """Clear collected spans and all registry instruments."""
    reset_trace()
    registry().reset()
