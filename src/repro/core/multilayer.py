"""Track-to-layer assignment: the heart of the multilayer transform.

Section 2.4: a channel with ``h`` tracks is split into ``G = floor(L/2)``
groups of at most ``ceil(h / G)`` tracks; group ``g`` keeps its in-group
offset as physical position and moves its horizontal runs to layer
``2g + 1`` and its vertical runs to layer ``2g + 2``.  With ``L = 2``
this degenerates to the Thompson model (all horizontal on layer 1, all
vertical on layer 2).  Odd ``L`` uses ``L - 1`` wiring layers, which is
where the paper's ``L^2 - 1`` denominators come from.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LayerGroups", "TrackSlot"]


@dataclass(frozen=True, slots=True)
class TrackSlot:
    """Physical realization of a logical track: in-channel offset plus
    the layer pair of its group."""

    offset: int
    h_layer: int  # layer for horizontal runs of this group
    v_layer: int  # layer for vertical runs of this group


@dataclass(frozen=True, slots=True)
class LayerGroups:
    """Splits logical track indices of one channel into layer groups."""

    tracks: int
    layers: int

    @property
    def groups(self) -> int:
        return max(self.layers // 2, 1)

    @property
    def per_group(self) -> int:
        """Tracks per group: ceil(h / G); the channel's physical extent."""
        if self.tracks == 0:
            return 0
        g = self.groups
        return -(-self.tracks // g)

    def slot(self, track: int) -> TrackSlot:
        if not (0 <= track < self.tracks):
            raise ValueError(f"track {track} outside 0..{self.tracks - 1}")
        cap = self.per_group
        g = track // cap
        return TrackSlot(
            offset=track % cap, h_layer=2 * g + 1, v_layer=2 * g + 2
        )

    def physical_extent(self) -> int:
        """Grid lines the channel occupies (its width or height)."""
        return self.per_group
