"""Corpus replay: every saved counterexample must pass on current code.

Each ``tests/corpus/cx-*.json`` document is a shrunk network that once
violated a differential invariant (or a seeded coverage case).  The
replay runs each one through the full differential driver with the
original per-case seed, so the exact stochastic path that found the
bug -- layout corruptions included -- is retraced on every CI run.
"""

from pathlib import Path

import pytest

from repro.check.differential import check_case
from repro.check.shrink import iter_corpus

CORPUS_DIR = Path(__file__).parent / "corpus"

_ENTRIES = list(iter_corpus(CORPUS_DIR))


def test_corpus_is_present():
    assert CORPUS_DIR.is_dir()
    assert len(_ENTRIES) >= 3, "seed corpus documents are missing"


@pytest.mark.parametrize(
    "path,case",
    _ENTRIES,
    ids=[p.stem for p, _ in _ENTRIES],
)
def test_corpus_case_passes(path, case):
    result = check_case(case, mutation_rounds=6)
    assert result.ok, (
        f"{path.name} regressed: "
        + "; ".join(str(v) for v in result.violations)
    )


def test_corpus_networks_are_connected():
    for path, case in _ENTRIES:
        assert case.network.is_connected(), path.name
        assert case.network.num_nodes >= 2, path.name
