"""Mutation agreement: the fast validator and the brute-force oracle
must return the same verdict on randomly corrupted layouts.

Starting from valid layouts, apply small random mutations (shift a
segment, change a layer, stretch a span).  Any given mutation may be
harmless or illegal; the property under test is *agreement* -- the
production validator (line sweeps, structural indexes) and the oracle
(exhaustive occupancy hashing) accept or reject together.  This is the
strongest check we have that the fast validator's cleverness doesn't
hide soundness holes.

Known, documented asymmetry: wires that *turn* at a point they share
with another wire's segment are judged by bend/via rules in the fast
validator and by point-occupancy rules in the oracle; both implement
the same model, so verdicts still agree.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st
from strategies import clone_layout, mutate, verdicts_agree

from repro.core import layout_kary
from repro.core.schemes import layout_generic_grid
from repro.topology import Hypercube


class TestMutationAgreement:
    @given(st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_kary_mutations(self, seed):
        rng = random.Random(seed)
        lay = clone_layout(layout_kary(3, 2, layers=4))
        for _ in range(rng.randint(1, 3)):
            mutate(lay, rng)
        fast_ok, oracle_ok = verdicts_agree(lay)
        assert fast_ok == oracle_ok, (
            f"verdicts diverge (fast={fast_ok}, oracle={oracle_ok}) "
            f"for seed {seed}"
        )

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_hypercube_mutations(self, seed):
        rng = random.Random(seed)
        lay = clone_layout(layout_kary(4, 2, layers=2))
        mutate(lay, rng)
        fast_ok, oracle_ok = verdicts_agree(lay)
        assert fast_ok == oracle_ok

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_generic_grid_mutations(self, seed):
        rng = random.Random(seed)
        base = layout_generic_grid(Hypercube(3), layers=4)
        lay = clone_layout(base)
        for _ in range(2):
            mutate(lay, rng)
        fast_ok, oracle_ok = verdicts_agree(lay)
        assert fast_ok == oracle_ok

    def test_mutations_do_find_violations(self):
        """Sanity: the mutation space actually produces illegal layouts
        (otherwise agreement would be vacuous)."""
        rng = random.Random(0)
        rejected = 0
        for seed in range(60):
            rng = random.Random(seed)
            lay = clone_layout(layout_kary(3, 2, layers=4))
            mutate(lay, rng)
            fast_ok, _ = verdicts_agree(lay)
            rejected += not fast_ok
        assert rejected >= 5
