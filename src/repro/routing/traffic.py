"""Traffic patterns for network simulation.

The classic kernels used to evaluate interconnection networks: each
function returns a list of (source, destination) messages -- or timed
(source, destination, start_cycle) triples -- over the network's
nodes.  Randomized patterns are seeded for reproducibility.

The **workload zoo** behind :func:`make_workload` is what the engine
parity suite, the ``traffic`` fuzz stage, and the saturation sweeps
consume: a registry of named generators (:data:`WORKLOAD_KINDS`) that
are pure functions of ``(network, seed, parameters)``.  Every stream
is therefore deterministic per seed and *worker-invariant*: a parallel
consumer shards an already-generated stream with
:func:`shard_workload` (round-robin by message index), and
:func:`merge_shards` reassembles the exact original order for any
worker count -- generation itself never depends on how many workers
will consume it.

Trace replay closes the loop: :func:`save_trace`/:func:`load_trace`
serialize any message stream as JSONL, and ``make_workload("trace",
net, trace=...)`` re-validates and replays it, so measured traffic
from one run (or an external trace) can drive another.
"""

from __future__ import annotations

import json
import random
from typing import Hashable, Iterable

from repro.topology.base import Network
from repro.topology.hypercube import Hypercube

__all__ = [
    "random_permutation",
    "bit_complement",
    "transpose",
    "bit_reversal",
    "all_to_all",
    "hot_spot",
    "rate_injection",
    "uniform",
    "hotspot_traffic",
    "bursty",
    "adversarial_permutation",
    "trace_replay",
    "save_trace",
    "load_trace",
    "make_workload",
    "WORKLOAD_KINDS",
    "shard_workload",
    "merge_shards",
]

Node = Hashable
Message = tuple[Node, Node]


def random_permutation(network: Network, *, seed: int = 2000) -> list[Message]:
    """Every node sends to a distinct random node (a permutation)."""
    rng = random.Random(seed)
    nodes = list(network.nodes)
    targets = nodes[:]
    while True:
        rng.shuffle(targets)
        if all(s != t for s, t in zip(nodes, targets)):
            break
    return list(zip(nodes, targets))


def bit_complement(network: Network) -> list[Message]:
    """Hypercube-style worst case: node -> bitwise complement.

    For non-integer node labels, pairs node i with node N-1-i in
    canonical order (the same adversarial "maximum distance" spirit).
    """
    nodes = list(network.nodes)
    if isinstance(network, Hypercube):
        mask = (1 << network.n) - 1
        return [(u, u ^ mask) for u in nodes]
    n = len(nodes)
    return [(nodes[i], nodes[n - 1 - i]) for i in range(n) if i != n - 1 - i]


def transpose(network: Network) -> list[Message]:
    """Digit/bit transpose: swap the two halves of the address."""
    nodes = list(network.nodes)
    out: list[Message] = []
    if isinstance(network, Hypercube):
        n = network.n
        half = n // 2
        lo_mask = (1 << half) - 1
        for u in nodes:
            v = ((u & lo_mask) << (n - half)) | (u >> half)
            if u != v:
                out.append((u, v))
        return out
    for u in nodes:
        if isinstance(u, tuple):
            half = len(u) // 2
            v = u[half:] + u[:half]
            if v != u and v in network.index:
                out.append((u, v))
    if not out:
        raise ValueError(f"transpose undefined for {network.name}")
    return out


def all_to_all(network: Network) -> list[Message]:
    """Every ordered pair once (use on small networks)."""
    nodes = list(network.nodes)
    return [(u, v) for u in nodes for v in nodes if u != v]


def rate_injection(
    network: Network,
    *,
    rate: float,
    duration: int,
    seed: int = 2000,
) -> list[tuple[Node, Node, int]]:
    """Timed uniform-random traffic: each node injects a message to a
    uniformly random other node with probability ``rate`` per cycle,
    for ``duration`` cycles.  Returns (src, dst, start) triples for the
    simulator's load sweeps.
    """
    if not (0.0 < rate <= 1.0):
        raise ValueError("0 < rate <= 1")
    rng = random.Random(seed)
    nodes = list(network.nodes)
    out: list[tuple[Node, Node, int]] = []
    for t in range(duration):
        for u in nodes:
            if rng.random() < rate:
                v = rng.choice(nodes)
                while v == u:
                    v = rng.choice(nodes)
                out.append((u, v, t))
    return out


def hot_spot(
    network: Network, *, spot: Node | None = None, fraction: float = 1.0,
    seed: int = 2000,
) -> list[Message]:
    """A fraction of nodes all send to one hot node."""
    rng = random.Random(seed)
    nodes = list(network.nodes)
    target = spot if spot is not None else nodes[0]
    senders = [v for v in nodes if v != target]
    if fraction < 1.0:
        count = max(1, int(len(senders) * fraction))
        senders = rng.sample(senders, count)
    return [(s, target) for s in senders]


# ---------------------------------------------------------------------------
# Workload zoo


def uniform(
    network: Network, *, rate: float, duration: int, seed: int = 0,
) -> list[tuple[Node, Node, int]]:
    """Timed uniform-random traffic (the zoo name for rate injection)."""
    return rate_injection(network, rate=rate, duration=duration, seed=seed)


def hotspot_traffic(
    network: Network,
    *,
    rate: float,
    duration: int,
    seed: int = 0,
    hot_fraction: float = 0.5,
    spot: Node | None = None,
) -> list[tuple[Node, Node, int]]:
    """Timed traffic with a hot destination.

    Each cycle each node injects with probability ``rate``; the
    destination is the hot ``spot`` (default: the first node) with
    probability ``hot_fraction``, else uniform random -- the classic
    pattern whose saturation collapses far below uniform's knee.
    """
    if not (0.0 < rate <= 1.0):
        raise ValueError("0 < rate <= 1")
    if not (0.0 <= hot_fraction <= 1.0):
        raise ValueError("0 <= hot_fraction <= 1")
    rng = random.Random(seed)
    nodes = list(network.nodes)
    target = spot if spot is not None else nodes[0]
    if target not in network.index:
        raise ValueError(f"hot spot {target!r} is not a node")
    out: list[tuple[Node, Node, int]] = []
    for t in range(duration):
        for u in nodes:
            if rng.random() >= rate:
                continue
            if u != target and rng.random() < hot_fraction:
                v = target
            else:
                v = rng.choice(nodes)
                while v == u:
                    v = rng.choice(nodes)
            out.append((u, v, t))
    return out


def bursty(
    network: Network,
    *,
    rate: float,
    duration: int,
    seed: int = 0,
    p_on: float = 0.2,
    p_off: float = 0.3,
) -> list[tuple[Node, Node, int]]:
    """ON/OFF (bursty) traffic: a two-state Markov source per node.

    Each node flips OFF->ON with probability ``p_on`` and ON->OFF with
    ``p_off`` per cycle (geometric burst/idle lengths averaging
    ``1/p_off`` and ``1/p_on``); while ON it injects to a uniform
    random destination with probability ``rate``.  Long-run offered
    load is ``rate * p_on / (p_on + p_off)`` per node-cycle -- same
    average as a thinner uniform stream, but clustered, which is what
    stresses queue depth.
    """
    if not (0.0 < rate <= 1.0):
        raise ValueError("0 < rate <= 1")
    if not (0.0 < p_on <= 1.0 and 0.0 < p_off <= 1.0):
        raise ValueError("0 < p_on, p_off <= 1")
    rng = random.Random(seed)
    nodes = list(network.nodes)
    on = [False] * len(nodes)
    out: list[tuple[Node, Node, int]] = []
    for t in range(duration):
        for i, u in enumerate(nodes):
            if on[i]:
                if rng.random() < p_off:
                    on[i] = False
            elif rng.random() < p_on:
                on[i] = True
            if on[i] and rng.random() < rate:
                v = rng.choice(nodes)
                while v == u:
                    v = rng.choice(nodes)
                out.append((u, v, t))
    return out


def bit_reversal(network: Network) -> list[Message]:
    """Bit-reversal permutation (FFT/transpose-style worst case).

    On a :class:`Hypercube`, node addresses reverse their ``n`` bits.
    On any other network, canonical node *positions* reverse their
    bits within ``ceil(log2 N)`` digits; reversed positions landing at
    or beyond ``N`` are dropped (standard practice on non-power-of-two
    node counts), so the kernel is defined for every network.
    """
    nodes = list(network.nodes)
    n_nodes = len(nodes)
    if n_nodes < 2:
        return []
    if isinstance(network, Hypercube):
        bits = network.n
        rev = lambda u: int(format(u, f"0{bits}b")[::-1], 2)  # noqa: E731
        return [(u, rev(u)) for u in nodes if u != rev(u)]
    bits = max(1, (n_nodes - 1).bit_length())
    out: list[Message] = []
    for i, u in enumerate(nodes):
        j = int(format(i, f"0{bits}b")[::-1], 2)
        if j < n_nodes and j != i:
            out.append((u, nodes[j]))
    return out


def adversarial_permutation(
    network: Network, *, seed: int = 0,
) -> list[Message]:
    """A seeded max-distance permutation: every node sends far away.

    Greedy matching in seeded random node order: each source takes the
    hop-farthest still-unused destination (smallest canonical index on
    ties).  A source forced onto itself swaps destinations with an
    earlier pair, so on a connected network the result is always a
    derangement -- worst-case path lengths with none of the free
    self-sends.  Deterministic per seed; quadratic in N (all-sources
    BFS), so meant for evaluation-sized networks.
    """
    nodes = list(network.nodes)
    if len(nodes) < 2:
        return []
    index = network.index
    rng = random.Random(seed)
    order = nodes[:]
    rng.shuffle(order)
    taken: dict[Node, Node] = {}  # src -> dst, insertion in match order
    used: set[Node] = set()
    for src in order:
        dist = network.bfs_distances(src)
        best = None
        for v in nodes:
            if v in used:
                continue
            key = (-dist.get(v, 0), index[v])
            if best is None or key < best[0]:
                best = (key, v)
        dst = best[1]
        if dst == src:
            # Forced self-send: swap with an earlier pair (one always
            # exists on a connected network once N >= 2, because a
            # source only gets stuck on itself after every other
            # destination is taken).
            other = next((s for s in taken if taken[s] != src), None)
            if other is None:
                used.add(src)
                taken[src] = src
                continue
            taken[src] = taken[other]
            taken[other] = src
            used.add(src)
        else:
            taken[src] = dst
            used.add(dst)
    return [(u, taken[u]) for u in nodes]


def trace_replay(
    network: Network, *, trace: Iterable,
) -> list[tuple[Node, Node, int]]:
    """Validate and replay a recorded message stream on ``network``.

    ``trace`` rows are ``(src, dst)`` or ``(src, dst, start)``; every
    endpoint must be a node of ``network`` and starts must be
    non-negative ints.  Returns normalized timed triples in trace
    order (pairs get start 0), so a stream captured on one layout
    drives an identical simulation on another.
    """
    index = network.index
    out: list[tuple[Node, Node, int]] = []
    for row in trace:
        if len(row) == 3:
            src, dst, start = row
        else:
            src, dst = row
            start = 0
        if src not in index or dst not in index:
            raise ValueError(f"trace endpoint off-network: {(src, dst)!r}")
        if not isinstance(start, int) or start < 0:
            raise ValueError(f"bad trace start cycle: {start!r}")
        out.append((src, dst, start))
    return out


def _freeze_node(v):
    """JSON round-trip: lists (serialized tuples) back to tuples."""
    if isinstance(v, list):
        return tuple(_freeze_node(x) for x in v)
    return v


def save_trace(path, msgs: Iterable) -> int:
    """Write a message stream as JSONL rows ``[src, dst, start]``.

    Returns the number of rows written.  Pairs are stored with start
    0, so a saved trace always round-trips through timed replay.
    """
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for row in msgs:
            if len(row) == 3:
                src, dst, start = row
            else:
                src, dst = row
                start = 0
            fh.write(json.dumps([src, dst, start]) + "\n")
            n += 1
    return n


def load_trace(path) -> list[tuple[Node, Node, int]]:
    """Read a :func:`save_trace` JSONL file back into timed triples.

    Tuple node labels (serialized as JSON arrays) are restored to
    tuples, so traces of tuple-labeled networks replay unchanged.
    """
    out: list[tuple[Node, Node, int]] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            src, dst, start = json.loads(line)
            out.append((_freeze_node(src), _freeze_node(dst), int(start)))
    return out


#: The zoo: every named workload :func:`make_workload` can generate.
WORKLOAD_KINDS = (
    "uniform",
    "hotspot",
    "transpose",
    "bit-reversal",
    "bursty",
    "adversarial",
    "trace",
)


def make_workload(
    kind: str,
    network: Network,
    *,
    seed: int = 0,
    rate: float = 0.1,
    duration: int = 64,
    **params,
) -> list:
    """Generate one of the :data:`WORKLOAD_KINDS` streams.

    A single entry point with uniform seeding, used by the CLI, the
    saturation sweeps, the parity suite, and the ``traffic`` fuzz
    stage.  ``rate``/``duration`` drive the timed kinds (``uniform``,
    ``hotspot``, ``bursty``) and are ignored by the permutation kinds;
    extra ``params`` pass through to the generator (``hot_fraction``,
    ``spot``, ``p_on``, ``p_off``, ``trace``).  ``transpose`` raises
    :class:`ValueError` on networks where it is undefined, exactly as
    the bare kernel does.
    """
    if kind == "uniform":
        return uniform(network, rate=rate, duration=duration, seed=seed)
    if kind == "hotspot":
        return hotspot_traffic(
            network, rate=rate, duration=duration, seed=seed, **params
        )
    if kind == "transpose":
        return transpose(network)
    if kind == "bit-reversal":
        return bit_reversal(network)
    if kind == "bursty":
        return bursty(
            network, rate=rate, duration=duration, seed=seed, **params
        )
    if kind == "adversarial":
        return adversarial_permutation(network, seed=seed)
    if kind == "trace":
        trace = params.get("trace")
        if trace is None:
            raise ValueError("trace workload needs trace=... rows")
        return trace_replay(network, trace=trace)
    raise ValueError(
        f"unknown workload {kind!r}; known: {', '.join(WORKLOAD_KINDS)}"
    )


def shard_workload(msgs: list, worker: int, workers: int) -> list:
    """Worker ``worker``'s round-robin share of a generated stream.

    Sharding happens *after* generation, so the stream itself never
    depends on the worker count; :func:`merge_shards` reassembles the
    exact original order.
    """
    if workers < 1:
        raise ValueError("workers >= 1")
    if not 0 <= worker < workers:
        raise ValueError("0 <= worker < workers")
    return msgs[worker::workers]


def merge_shards(shards: list[list]) -> list:
    """Inverse of :func:`shard_workload`: interleave shards back.

    ``merge_shards([shard_workload(m, w, k) for w in range(k)]) == m``
    for every worker count ``k`` -- the worker-invariance property the
    traffic tests pin.
    """
    out = []
    k = len(shards)
    if not k:
        return out
    longest = max(len(s) for s in shards)
    for i in range(longest):
        for w in range(k):
            if i < len(shards[w]):
                out.append(shards[w][i])
    return out
