"""Content-addressed layout cache: keys, round-trips, corruption."""

import json

import pytest

from repro.batch.cache import (
    CACHE_SCHEMA_VERSION,
    LayoutCache,
    cache_key,
    network_fingerprint,
)
from repro.core.metrics import measure
from repro.core.schemes import layout_network
from repro.grid.io import layout_to_json
from repro.topology import Hypercube, Ring
from repro.topology.base import build_network


@pytest.fixture()
def cache(tmp_path):
    return LayoutCache(tmp_path / "cache")


def _store(cache, net, *, scheme="auto", layers=2, params=None):
    lay = layout_network(net, layers=layers)
    payload = layout_to_json(lay)
    metrics = measure(lay).as_dict()
    key, doc = cache.key_for(net, scheme=scheme, layers=layers, params=params)
    cache.put(key, doc, payload, metrics)
    return key, doc, payload, metrics


class TestKeys:
    def test_key_is_deterministic(self, cache):
        net = Ring(6)
        k1, d1 = cache.key_for(net, scheme="auto", layers=2)
        k2, d2 = cache.key_for(Ring(6), scheme="auto", layers=2)
        assert k1 == k2 and d1 == d2

    def test_key_changes_with_every_input(self, cache):
        net = Ring(6)
        base, _ = cache.key_for(net, scheme="auto", layers=2)
        variants = [
            cache.key_for(net, scheme="generic", layers=2)[0],
            cache.key_for(net, scheme="auto", layers=4)[0],
            cache.key_for(net, scheme="auto", layers=2,
                          params={"x": 1})[0],
            cache.key_for(Ring(7), scheme="auto", layers=2)[0],
        ]
        assert len({base, *variants}) == 5

    def test_key_changes_when_format_version_bumps(self, cache, monkeypatch):
        from repro.batch import cache as mod

        net = Ring(6)
        before, _ = cache.key_for(net, scheme="auto", layers=2)
        monkeypatch.setattr(mod, "FORMAT_VERSION", mod.FORMAT_VERSION + 1)
        bumped_fmt, _ = cache.key_for(net, scheme="auto", layers=2)
        monkeypatch.setattr(mod, "FORMAT_VERSION", mod.FORMAT_VERSION - 1)
        monkeypatch.setattr(
            mod, "CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1
        )
        bumped_schema, _ = cache.key_for(net, scheme="auto", layers=2)
        assert len({before, bumped_fmt, bumped_schema}) == 3

    def test_fingerprint_preserves_structure_order_and_name(self):
        a = build_network([0, 1, 2], [(0, 1), (1, 2)], "a")
        b = build_network([0, 1, 2], [(1, 2), (0, 1)], "a")  # edge order
        c = build_network([0, 1, 2], [(0, 1), (1, 2)], "c")  # name
        fps = [network_fingerprint(n) for n in (a, b, c)]
        assert len({cache_key(fp) for fp in fps}) == 3

    def test_same_structure_same_fingerprint_across_doors(self):
        """A graph rebuilt from the same node/edge stream fingerprints
        identically, whatever code path constructed it."""
        net = Hypercube(3)
        clone = build_network(net.nodes, net.edges, net.name)
        assert network_fingerprint(net) == network_fingerprint(clone)


class TestRoundTrip:
    def test_cold_build_vs_cache_hit_byte_identical(self, cache):
        net = Hypercube(3)
        key, doc, payload, metrics = _store(cache, net)
        entry = cache.get(key, doc)
        assert entry is not None
        assert entry.layout_json == payload  # byte-identical payload
        assert entry.metrics == metrics
        assert layout_to_json(entry.layout()) == payload
        assert cache.stats.hits == 1 and cache.stats.writes == 1

    def test_miss_on_absent_key(self, cache):
        key, doc = cache.key_for(Ring(5), scheme="auto", layers=2)
        assert cache.get(key, doc) is None
        assert cache.stats.misses == 1

    def test_metrics_optional(self, cache):
        net = Ring(5)
        lay = layout_network(net, layers=2)
        key, doc = cache.key_for(net, scheme="auto", layers=2)
        cache.put(key, doc, layout_to_json(lay))
        entry = cache.get(key, doc)
        assert entry is not None and entry.metrics is None


class TestCorruption:
    def _entry_path(self, cache, key):
        return cache.root / key[:2] / f"{key}.json"

    def test_truncated_entry_detected_and_rebuilt(self, cache):
        net = Ring(6)
        key, doc, payload, _ = _store(cache, net)
        path = self._entry_path(cache, key)
        path.write_text(path.read_text()[: len(payload) // 2])
        assert cache.get(key, doc) is None  # miss, not garbage
        assert cache.stats.corrupt == 1
        assert not path.exists()  # quarantined
        _store(cache, net)  # rebuild repopulates
        assert cache.get(key, doc).layout_json == payload

    def test_bitflip_in_payload_detected(self, cache):
        net = Ring(6)
        key, doc, payload, _ = _store(cache, net)
        path = self._entry_path(cache, key)
        stored = json.loads(path.read_text())
        stored["layout"] = stored["layout"].replace('"layers": 2', '"layers": 3')
        path.write_text(json.dumps(stored))  # digest now stale
        assert cache.get(key, doc) is None
        assert cache.stats.corrupt == 1

    def test_key_document_mismatch_is_a_miss(self, cache):
        """A swapped file (right digest, wrong key doc) is not trusted."""
        net = Ring(6)
        key, doc, _, _ = _store(cache, net)
        other_key, other_doc = cache.key_for(
            Ring(7), scheme="auto", layers=2
        )
        path = self._entry_path(cache, key)
        swapped = self._entry_path(cache, other_key)
        swapped.parent.mkdir(parents=True, exist_ok=True)
        swapped.write_text(path.read_text())
        assert cache.get(other_key, other_doc) is None
        assert cache.stats.corrupt == 1

    def test_non_dict_entry_is_corrupt(self, cache):
        key, doc = cache.key_for(Ring(5), scheme="auto", layers=2)
        path = self._entry_path(cache, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("[1, 2, 3]")
        assert cache.get(key, doc) is None
        assert cache.stats.corrupt == 1


class TestSingleFlight:
    """The duplicate-build race: concurrent getters of one cold key."""

    def _inputs(self, cache, net):
        lay = layout_network(net, layers=2)
        key, doc = cache.key_for(net, scheme="auto", layers=2)
        return key, doc, layout_to_json(lay), measure(lay).as_dict()

    def test_racing_getters_build_exactly_once(self, cache):
        """Two threads racing a cold key: one ``cache.build`` log
        event, one ``build()`` call, the loser reports coalesced."""
        import io
        import threading

        from repro.obs import logging as olog

        key, doc, payload, metrics = self._inputs(cache, Ring(6))
        sink = io.StringIO()
        olog.configure(stream=sink, level="debug")
        follower_arrived = threading.Event()
        builds = []

        def build():
            builds.append(threading.get_ident())
            # Hold the key in flight until the follower has committed
            # to get_or_build, then a beat longer so it lands in the
            # in-flight map rather than after the pop.
            follower_arrived.wait(timeout=5.0)
            import time

            time.sleep(0.2)
            return payload, metrics

        results = {}

        def leader():
            results["leader"] = cache.get_or_build(key, doc, build)

        def follower():
            follower_arrived.set()
            results["follower"] = cache.get_or_build(key, doc, build)

        try:
            t1 = threading.Thread(target=leader)
            t1.start()
            t2 = threading.Thread(target=follower)
            t2.start()
            t1.join(timeout=10)
            t2.join(timeout=10)
        finally:
            records = [
                json.loads(line)
                for line in sink.getvalue().splitlines()
                if line
            ]
            olog.close()
        assert len(builds) == 1
        build_events = [
            r for r in records if r["event"] == "cache.build"
        ]
        assert len(build_events) == 1
        sources = sorted(src for _, src in results.values())
        assert sources == ["built", "coalesced"]
        for entry, _ in results.values():
            assert entry.metrics == metrics
            assert entry.layout_json == payload
        assert cache.stats.coalesced == 1
        assert cache.stats.writes == 1

    def test_leader_reprobes_after_winning(self, cache):
        """A key stored between probe and flight entry is a hit, not a
        rebuild."""
        key, doc, payload, metrics = self._inputs(cache, Ring(6))
        cache.put(key, doc, payload, metrics)
        entry, source = cache.get_or_build(
            key, doc, lambda: (_ for _ in ()).throw(AssertionError)
        )
        assert source == "cache"
        assert entry.metrics == metrics

    def test_failed_build_propagates_to_followers(self, cache):
        import threading

        key, doc, _, _ = self._inputs(cache, Ring(6))
        follower_arrived = threading.Event()

        def build():
            follower_arrived.wait(timeout=5.0)
            import time

            time.sleep(0.1)
            raise ValueError("boom")

        errors = []

        def run(set_event):
            if set_event:
                follower_arrived.set()
            try:
                cache.get_or_build(key, doc, build)
            except ValueError as exc:
                errors.append(str(exc))

        t1 = threading.Thread(target=run, args=(False,))
        t1.start()
        t2 = threading.Thread(target=run, args=(True,))
        t2.start()
        t1.join(timeout=10)
        t2.join(timeout=10)
        assert errors.count("boom") == 2
        # The flight is gone: the key is retryable afterwards.
        lay = layout_network(Ring(6), layers=2)
        entry, source = cache.get_or_build(
            key, doc,
            lambda: (layout_to_json(lay), measure(lay).as_dict()),
        )
        assert source == "built"


class TestReadonly:
    def test_readonly_never_writes_or_deletes(self, tmp_path):
        rw = LayoutCache(tmp_path / "c")
        net = Ring(6)
        key, doc, payload, metrics = _store(rw, net)
        ro = LayoutCache(tmp_path / "c", readonly=True)
        assert ro.get(key, doc).layout_json == payload
        assert ro.put(key, doc, payload, metrics) is False
        # Corrupt the entry: readonly detects but must not unlink.
        path = rw.root / key[:2] / f"{key}.json"
        path.write_text("not json")
        assert ro.get(key, doc) is None
        assert path.exists()
        assert ro.stats.writes == 0
