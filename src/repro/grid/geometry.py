"""Grid geometry primitives for the multilayer grid model.

Coordinates are integer grid-line indices.  ``x`` grows to the right and
``y`` grows downward (matching how the paper's figures are drawn, with
track channels stacked above node rows).  Layers are numbered from 1;
layer parity is a *convention* of the layout schemes (horizontal
segments on odd layers, vertical segments on even layers) rather than a
requirement of the model itself, so the primitives here do not enforce
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Point", "Segment", "Rect"]


@dataclass(frozen=True, slots=True)
class Point:
    """A grid point on a specific layer."""

    x: int
    y: int
    layer: int = 1

    def planar(self) -> tuple[int, int]:
        """The (x, y) projection, ignoring the layer."""
        return (self.x, self.y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"P({self.x},{self.y}@{self.layer})"


@dataclass(frozen=True, slots=True)
class Segment:
    """An axis-aligned wire segment on a single layer.

    A segment is stored in normalized form: its endpoints are ordered so
    that ``(x1, y1) <= (x2, y2)`` lexicographically.  Zero-length
    segments are rejected -- a wire that changes layer without moving
    planar position is represented as a via between consecutive
    segments, not as a segment.
    """

    x1: int
    y1: int
    x2: int
    y2: int
    layer: int

    def __post_init__(self) -> None:
        if self.x1 != self.x2 and self.y1 != self.y2:
            raise ValueError(f"segment is not axis-aligned: {self}")
        if self.x1 == self.x2 and self.y1 == self.y2:
            raise ValueError(f"segment has zero length: {self}")
        if self.layer < 1:
            raise ValueError(f"layer must be >= 1: {self}")
        if (self.x1, self.y1) > (self.x2, self.y2):
            raise ValueError(
                "segment endpoints must be given in normalized order; "
                f"use Segment.make() to build from arbitrary endpoints: {self}"
            )

    @staticmethod
    def make(x1: int, y1: int, x2: int, y2: int, layer: int) -> "Segment":
        """Build a segment from endpoints in either order."""
        if (x1, y1) > (x2, y2):
            x1, y1, x2, y2 = x2, y2, x1, y1
        return Segment(x1, y1, x2, y2, layer)

    @property
    def horizontal(self) -> bool:
        return self.y1 == self.y2

    @property
    def vertical(self) -> bool:
        return self.x1 == self.x2

    @property
    def length(self) -> int:
        return (self.x2 - self.x1) + (self.y2 - self.y1)

    @property
    def line(self) -> tuple[str, int, int]:
        """Key identifying the (layer, grid line) this segment lies on.

        Two segments can conflict only if they share a line key; the
        validator groups segments by this key and sweeps the spans.
        """
        if self.horizontal:
            return ("h", self.layer, self.y1)
        return ("v", self.layer, self.x1)

    @property
    def span(self) -> tuple[int, int]:
        """The (lo, hi) extent along the segment's axis."""
        if self.horizontal:
            return (self.x1, self.x2)
        return (self.y1, self.y2)

    def endpoints(self) -> tuple[Point, Point]:
        return (
            Point(self.x1, self.y1, self.layer),
            Point(self.x2, self.y2, self.layer),
        )

    def planar_points(self) -> Iterator[tuple[int, int]]:
        """All grid points covered by the segment (projection)."""
        if self.horizontal:
            for x in range(self.x1, self.x2 + 1):
                yield (x, self.y1)
        else:
            for y in range(self.y1, self.y2 + 1):
                yield (self.x1, y)

    def contains_point(self, x: int, y: int) -> bool:
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2


@dataclass(frozen=True, slots=True)
class Rect:
    """An upright rectangle, used for node footprints and bounding boxes.

    The rectangle spans grid lines ``x0 .. x0+w`` and ``y0 .. y0+h``; a
    degree-``d`` Thompson node is a ``Rect`` with ``w == h == d``.  Area
    is measured in grid cells (``w * h``), matching the paper's
    convention that a degree-``d`` node occupies area ``d**2``.
    """

    x0: int
    y0: int
    w: int
    h: int

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise ValueError(f"negative rectangle extent: {self}")

    @property
    def x1(self) -> int:
        return self.x0 + self.w

    @property
    def y1(self) -> int:
        return self.y0 + self.h

    @property
    def area(self) -> int:
        return self.w * self.h

    def contains_point(self, x: int, y: int, *, strict: bool = False) -> bool:
        """Whether (x, y) lies in the rectangle.

        With ``strict=True`` only interior points count; perimeter
        points (where wire pins attach) are excluded.
        """
        if strict:
            return self.x0 < x < self.x1 and self.y0 < y < self.y1
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def on_perimeter(self, x: int, y: int) -> bool:
        return self.contains_point(x, y) and not self.contains_point(
            x, y, strict=True
        )

    def intersects(self, other: "Rect") -> bool:
        """Whether the two rectangles share interior area."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def union(self, other: "Rect") -> "Rect":
        x0 = min(self.x0, other.x0)
        y0 = min(self.y0, other.y0)
        x1 = max(self.x1, other.x1)
        y1 = max(self.y1, other.y1)
        return Rect(x0, y0, x1 - x0, y1 - y0)

    @staticmethod
    def bounding(rects: "list[Rect]") -> "Rect":
        if not rects:
            return Rect(0, 0, 0, 0)
        out = rects[0]
        for r in rects[1:]:
            out = out.union(r)
        return out

    def segment_crosses_interior(self, seg: Segment) -> bool:
        """Whether ``seg`` passes through the open interior."""
        if self.w == 0 or self.h == 0:
            return False
        lo, hi = seg.span
        if seg.horizontal:
            if not (self.y0 < seg.y1 < self.y1):
                return False
            return lo < self.x1 and hi > self.x0 and (
                max(lo, self.x0) < min(hi, self.x1)
                or (self.x0 < lo < self.x1)
                or (self.x0 < hi < self.x1)
            )
        if not (self.x0 < seg.x1 < self.x1):
            return False
        return max(lo, self.y0) < min(hi, self.y1) or (
            self.y0 < lo < self.y1
        ) or (self.y0 < hi < self.y1)
