#!/usr/bin/env python
"""A guided tour of the library's public API, end to end.

Walks one network -- the 6-cube -- through everything the library can
do with it: topology facts, collinear layout with an optimality
certificate, 2-D multilayer layout with validation, the folding
baseline, model classification, lower bounds, rendering, cost,
performance, routing, simulation and serialization.

Run:  python examples/api_tour.py
"""

import tempfile

from repro import (
    DelayModel,
    Hypercube,
    ascii_collinear,
    bisection_formula,
    dump_layout,
    fold_layout,
    hypercube_tracks,
    layout_hypercube,
    load_layout,
    measure,
    optimality_factor,
    paper_prediction,
    performance,
    svg_layout,
    validate_layout,
)
from repro.collinear import binary_order, collinear_layout
from repro.core.cost import CostModel, chip_cost
from repro.core.inspect import area_breakdown, channel_report
from repro.core.models import model_of
from repro.routing import bit_complement, dimension_order_route, simulate

N_DIM = 6


def main() -> None:
    # --- 1. topology ----------------------------------------------------
    net = Hypercube(N_DIM)
    print(f"network: {net.name} -- N={net.num_nodes}, links={net.num_edges},"
          f" degree={net.max_degree}, diameter={net.diameter()}")

    # --- 2. collinear layout with optimality certificate ----------------
    col = collinear_layout(net.nodes, net.edges, binary_order(N_DIM))
    print(f"\ncollinear tracks: {col.num_tracks} "
          f"(paper |2N/3| = {hypercube_tracks(N_DIM)}; "
          f"max-cut certificate = {col.max_cut()})")
    print(ascii_collinear(col, cell_width=2, label_nodes=False).splitlines()[0],
          "... (first track row)")

    # --- 3. 2-D multilayer layout ---------------------------------------
    lay = layout_hypercube(N_DIM, layers=8)
    validate_layout(lay)
    m = measure(lay)
    pred = paper_prediction("hypercube", N_DIM, layers=8)
    print(f"\nL=8 layout: area={m.area} (paper leading term "
          f"{pred.area:.0f}), max wire={m.max_wire}")
    print(f"model: {model_of(lay).name}")
    rep = channel_report(lay)
    bd = area_breakdown(lay)
    print(f"channels: busiest row={rep.busiest_row} tracks; "
          f"channel share of width={bd['channel_share_w']:.2f}")

    # --- 4. the folding baseline ----------------------------------------
    base = layout_hypercube(N_DIM, layers=2)
    folded = fold_layout(base, 8)
    validate_layout(folded)
    print(f"\nfolded baseline: area {measure(base).area} -> "
          f"{measure(folded).area}, max wire unchanged at "
          f"{measure(folded).max_wire}; model: {model_of(folded).name}")

    # --- 5. lower bound ---------------------------------------------------
    B = bisection_formula("hypercube", N_DIM)
    print(f"\nbisection B={B}; area factor over (B/L)^2: "
          f"{optimality_factor(m.area, B, 8):.1f}")

    # --- 6. cost & performance -------------------------------------------
    cost = chip_cost(lay, CostModel(defect_density=1e-5))
    perf = performance(lay, DelayModel(), max_sources=8)
    print(f"cost: {cost.total:,.0f} (yield {cost.yield_fraction:.2f}); "
          f"clock period {perf.clock_period:.0f}")

    # --- 7. routing & simulation ----------------------------------------
    route = lambda s, d: dimension_order_route(net, s, d)  # noqa: E731
    res = simulate(net, bit_complement(net), layout=lay, router=route,
                   mode="cut_through", message_length=4)
    print(f"bit-complement on this layout: makespan {res.makespan}, "
          f"avg latency {res.avg_latency:.0f}")

    # --- 8. rendering & serialization ------------------------------------
    with tempfile.NamedTemporaryFile("w", suffix=".svg", delete=False) as fh:
        fh.write(svg_layout(lay, legend=True))
        svg_path = fh.name
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fh:
        json_path = fh.name
    dump_layout(lay, json_path)
    back = load_layout(json_path)
    assert back.summary() == lay.summary()
    print(f"\nSVG -> {svg_path}\nJSON round-trip OK -> {json_path}")


if __name__ == "__main__":
    main()
