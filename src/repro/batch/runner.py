"""The parallel sweep engine: expand, fan out, merge deterministically.

:class:`SweepRunner` executes a :class:`~repro.batch.spec.SweepSpec`:

* every job is **pure** (network spec + scheme + layers -> layout +
  metrics), so jobs run in any order on any worker and the merged
  result -- jobs reassembled in spec order, with deterministic fields
  only -- is byte-for-byte independent of the worker count;
* every job is backed by the content-addressed
  :class:`~repro.batch.cache.LayoutCache` (when a cache directory is
  given): a hit skips build, validation *and* measurement, returning
  the stored metrics;
* with ``workers > 1`` each round-robin job slice runs in its own
  ``multiprocessing.Process`` (``fork`` start method where the
  platform offers it -- workers then inherit the warm interpreter;
  ``spawn`` elsewhere).  Workers hand results back through atomically
  written ``result-<wid>.json`` files in the run directory rather
  than a pool future, so one worker dying (OOM kill, SIGKILL) costs
  only its own slice: the parent still merges every surviving
  worker's rows and records the loss in ``worker_health``.  Workers
  run with observability on and the parent folds their full metric
  snapshots into its own :mod:`repro.obs` registry *and* re-roots
  their span forests under per-worker ``sweep.worker`` spans, so
  ``--report``, ``--trace``, and the ``--trace-out`` exporters see
  everything that happened in children;
* runs are observable **while they happen**: each worker keeps a
  ``heartbeat-<wid>.json`` fresh (jobs done, current job, RSS) on a
  jobs-or-seconds cadence, a :class:`repro.obs.live.Watchdog` thread
  in the parent classifies workers ``ok`` / ``stalled`` / ``dead``
  (verdicts land in :attr:`SweepResult.worker_health` and the
  structured log), and ``python -m repro watch RUNDIR`` renders the
  whole picture.  Give :class:`SweepRunner` a ``run_dir`` to keep
  those artifacts (plus a ``log.jsonl`` and the run manifest); without
  one, parallel runs use a throwaway directory.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field

from repro import obs
from repro.batch.cache import CacheStats, LayoutCache
from repro.batch.spec import SweepJob, SweepSpec, dispatch_scheme
from repro.core.metrics import measure
from repro.grid.io import layout_to_json
from repro.grid.validate import validate_layout
from repro.obs import context as ocontext
from repro.obs import live
from repro.obs import logging as olog

__all__ = [
    "JobResult",
    "SweepResult",
    "SweepRunner",
    "reroot_worker_spans",
    "run_sweep_job",
]

FAULT_ENV = "REPRO_SWEEP_FAULT"


@dataclass
class JobResult:
    """One job's outcome.

    ``row()`` is the deterministic projection (identical across worker
    counts and cache states); ``elapsed_s`` and ``source`` are
    run-dependent diagnostics.
    """

    job_id: str
    network: str
    scheme: str
    layers: int
    num_nodes: int
    num_edges: int
    metrics: dict
    source: str  # "built" | "cache"
    elapsed_s: float

    def row(self) -> dict:
        return {
            "job_id": self.job_id,
            "network": self.network,
            "scheme": self.scheme,
            "layers": self.layers,
            "N": self.num_nodes,
            "E": self.num_edges,
            "metrics": dict(self.metrics),
        }

    def as_dict(self) -> dict:
        return {
            **self.row(),
            "source": self.source,
            "elapsed_s": self.elapsed_s,
        }


@dataclass
class SweepResult:
    """A merged sweep outcome, job results in spec order."""

    spec: SweepSpec
    results: list[JobResult] = field(default_factory=list)
    workers: int = 1
    cache_stats: CacheStats = field(default_factory=CacheStats)
    elapsed_s: float = 0.0
    worker_health: dict[int, dict] = field(default_factory=dict)
    run_dir: str | None = None

    @property
    def jobs(self) -> int:
        return len(self.results)

    def lost_workers(self) -> list[int]:
        """Worker ids whose verdict ended ``dead`` or ``failed``."""
        return sorted(
            w
            for w, rec in self.worker_health.items()
            if rec.get("verdict") in ("dead", "failed")
        )

    def rows(self) -> list[dict]:
        """The deterministic merged output."""
        return [r.row() for r in self.results]

    def as_dict(self) -> dict:
        return {
            "schema": "repro.sweep-result/v1",
            "spec": self.spec.to_dict(),
            "workers": self.workers,
            "jobs": self.jobs,
            "cache": self.cache_stats.as_dict(),
            "elapsed_s": self.elapsed_s,
            "worker_health": {
                str(w): dict(rec)
                for w, rec in sorted(self.worker_health.items())
            },
            "run_dir": self.run_dir,
            "results": [r.as_dict() for r in self.results],
        }


def run_sweep_job(
    job: SweepJob,
    cache: LayoutCache | None = None,
    *,
    validate: bool = True,
) -> JobResult:
    """Execute one job: cache lookup, else build + validate + measure.

    Cached runs go through :meth:`LayoutCache.get_or_build`, so two
    threads racing the same cold key on one cache handle pay exactly
    one build (``source`` comes back ``"coalesced"`` for the waiter);
    the serve-side coalescer and the sweep workers share this path.
    """
    t0 = time.perf_counter()
    net = job.build_network()

    def build() -> tuple:
        # When a trace context is active -- a serve request shipped
        # into a pool worker, or a sweep run stamped its own -- the
        # job span carries the trace id and a request-style id, so a
        # built row links straight to its trace document.
        attrs: dict = {"job": job.job_id}
        ctx = ocontext.current_context()
        if ctx is not None:
            attrs["trace_id"] = ctx.trace_id
            attrs["request_id"] = (
                f"j{job.index:05d}-{ctx.trace_id[:8]}"
            )
        with obs.span("sweep.job", **attrs):
            layout = dispatch_scheme(
                net, layers=job.layers, scheme=job.scheme
            )
            if validate:
                validate_layout(layout)
            metrics = measure(layout).as_dict()
        obs.count("sweep.jobs_built")
        return layout, metrics

    if cache is not None:
        key, key_doc = cache.key_for(
            net, scheme=job.scheme, layers=job.layers,
        )
        entry, source = cache.get_or_build(
            key, key_doc, lambda: _serialized(build())
        )
        metrics = entry.metrics
    else:
        _, metrics = build()
        source = "built"
    return JobResult(
        job_id=job.job_id,
        network=job.network,
        scheme=job.scheme,
        layers=job.layers,
        num_nodes=net.num_nodes,
        num_edges=net.num_edges,
        metrics=metrics,
        source=source,
        elapsed_s=time.perf_counter() - t0,
    )


def _serialized(built: tuple) -> tuple:
    """``(layout, metrics) -> (layout_json, metrics)`` for the cache."""
    layout, metrics = built
    return layout_to_json(layout), metrics


def _maybe_fault(worker_id: int, jobs_done: int) -> None:
    """Honor ``REPRO_SWEEP_FAULT="<wid>:stop|kill"`` (tests/CI only).

    After worker ``wid`` finishes its first job -- so its heartbeat
    already carries real progress -- the worker SIGSTOPs or SIGKILLs
    *itself*, exercising the watchdog's stalled/dead paths against a
    real process without the test having to win a race against the
    scheduler.
    """
    spec = os.environ.get(FAULT_ENV)
    if not spec or jobs_done != 1:
        return
    try:
        wid_s, action = spec.split(":", 1)
        wid = int(wid_s)
    except ValueError:
        return
    if wid != worker_id:
        return
    import signal

    if action == "stop":
        os.kill(os.getpid(), signal.SIGSTOP)
    elif action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)


def _worker_main(payload: dict) -> None:
    """Per-slice process entry: run jobs, beat, write ``result-<wid>``.

    Everything the parent needs to merge deterministically goes into
    one atomically written JSON file: job rows keyed by spec index,
    the cache tally, the worker's full metrics snapshot (counters
    *and* histograms; the parent folds it via
    :meth:`MetricsRegistry.merge`), the serialized span forest the
    parent re-roots under a per-worker span, and the first job
    exception (if any) as a string.  A job failure still produces the
    file -- partial results beat none -- and the parent re-raises.
    """
    wid = payload["worker_id"]
    olog.fork_child(wid)
    if not olog.configured() and payload.get("log_path"):
        # spawn start method: module state did not survive, rebuild
        # the sink from the payload.
        olog.configure(
            payload["log_path"],
            run_id=payload.get("run_id"),
            worker_id=wid,
        )
    run_dir = payload["run_dir"]
    jobs = payload["jobs"]
    cache = (
        LayoutCache(payload["cache_dir"], readonly=payload["readonly"])
        if payload["cache_dir"] is not None
        else None
    )
    if payload["observe"]:
        # A fresh registry per worker: fork inherits the parent's
        # counts and spans, which must not be double-reported.
        obs.reset()
        obs.enable()
    trace_doc = payload.get("trace")
    if trace_doc:
        # Adopt the run's trace context (each worker got its own
        # span id), so sweep.job spans in children carry the same
        # trace id as the parent's.
        ocontext.set_context(ocontext.TraceContext.from_dict(trace_doc))
    hb = live.HeartbeatWriter(
        run_dir,
        wid,
        jobs_total=len(jobs),
        interval_s=payload["heartbeat_s"],
    )
    hb.beat(force=True)
    hb.start_pulse()
    olog.info("sweep.worker_start", worker_id=wid, jobs=len(jobs))
    results: list[dict] = []
    error = None
    for job in jobs:
        hb.current_job = job.job_id
        hb.beat(force=True)
        try:
            res = run_sweep_job(job, cache, validate=payload["validate"])
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            error = f"{type(exc).__name__}: {exc}"
            olog.error(
                "sweep.worker_error",
                worker_id=wid,
                job=job.job_id,
                error=error,
            )
            break
        results.append({"index": job.index, **res.as_dict()})
        hb.job_tick(
            cache=cache.stats.as_dict() if cache is not None else {},
        )
        _maybe_fault(wid, hb.jobs_done)
    snapshot = obs.registry().snapshot() if payload["observe"] else {}
    spans = (
        [r.as_dict() for r in obs.trace_roots()]
        if payload["observe"]
        else []
    )
    doc = {
        "worker_id": wid,
        "results": results,
        "cache_stats": cache.stats.as_dict() if cache is not None else {},
        "snapshot": snapshot,
        "spans": spans,
        "error": error,
    }
    live.write_json_atomic(
        os.path.join(run_dir, f"result-{wid}.json"), doc
    )
    hb.finish("failed" if error else "done")
    olog.info(
        "sweep.worker_done",
        worker_id=wid,
        jobs_done=len(results),
        error=error,
    )


def reroot_worker_spans(
    worker_id: int, span_docs: list, **attrs
) -> None:
    """Attach a worker's serialized span forest to the live trace.

    The forest is rebuilt and wrapped in one ``sweep.worker`` span
    whose attrs carry ``worker_id`` (the exporters key process rows
    off it) plus anything the caller adds; timing is derived from the
    children (monotonic clocks are shared across ``fork``, so child
    timestamps line up with the parent's spans).  No-op when tracing
    is disabled or the worker produced no spans.
    """
    if not span_docs or not obs.enabled():
        return
    children = [obs.SpanRecord.from_dict(d) for d in span_docs]
    start = min((c.start for c in children if c.start), default=0.0)
    end = max((c.end() for c in children), default=start)
    wrapper = obs.SpanRecord(
        name="sweep.worker",
        attrs={"worker_id": worker_id, **attrs},
        start=start,
        duration=max(0.0, end - start),
        children=children,
    )
    obs.attach(wrapper)


class SweepRunner:
    """Executes sweep specs with worker fan-out and a shared cache."""

    def __init__(
        self,
        *,
        cache_dir: str | os.PathLike | None = None,
        cache_readonly: bool = False,
        workers: int = 1,
        validate: bool = True,
        trace_out: str | os.PathLike | None = None,
        events_out: str | os.PathLike | None = None,
        run_dir: str | os.PathLike | None = None,
        metrics_out: str | os.PathLike | None = None,
        stall_after_s: float = live.DEFAULT_STALL_AFTER_S,
        heartbeat_s: float = live.DEFAULT_HEARTBEAT_S,
        watch_interval_s: float | None = None,
    ):
        self.cache_dir = cache_dir
        self.cache_readonly = cache_readonly
        self.workers = max(1, int(workers))
        self.validate = validate
        self.trace_out = trace_out
        self.events_out = events_out
        self.run_dir = run_dir
        self.metrics_out = metrics_out
        self.stall_after_s = stall_after_s
        self.heartbeat_s = heartbeat_s
        self.watch_interval_s = watch_interval_s

    def run(self, spec: SweepSpec) -> SweepResult:
        jobs = spec.expand()
        # An export request implies observation: turn collection on
        # for the run (and back off, if we enabled it) so the written
        # trace is never empty by accident.
        exporting = self.trace_out or self.events_out or self.metrics_out
        enabled_here = bool(exporting) and not obs.enabled()
        if enabled_here:
            obs.enable()
        run_dir = (
            None if self.run_dir is None else os.fspath(self.run_dir)
        )
        log_here = False
        tmp_dir = None
        if run_dir is not None:
            os.makedirs(run_dir, exist_ok=True)
            if not olog.configured():
                # A kept run directory always gets a log to tail.
                olog.configure(os.path.join(run_dir, live.LOG_NAME))
                log_here = True
        t0 = time.perf_counter()
        # Every run executes under a trace context: inherited when a
        # caller (e.g. a serve worker) already carries one, otherwise
        # a fresh root, so sweep.job spans are id-stitched the same
        # way serve requests are.
        run_ctx = ocontext.current_context() or ocontext.new_context()
        try:
            with ocontext.use_context(run_ctx), obs.span(
                "sweep.run", spec=spec.name, jobs=len(jobs),
                workers=self.workers, trace_id=run_ctx.trace_id,
            ):
                olog.info(
                    "sweep.start",
                    spec=spec.name,
                    jobs=len(jobs),
                    workers=self.workers,
                    trace=run_ctx.trace_id,
                )
                if self.workers == 1 or len(jobs) <= 1:
                    result = self._run_serial(spec, jobs, run_dir)
                else:
                    work_dir = run_dir
                    if work_dir is None:
                        # Workers hand results back through files, so
                        # a directory is needed even when the caller
                        # keeps nothing.
                        tmp_dir = tempfile.mkdtemp(prefix="repro-sweep-")
                        work_dir = tmp_dir
                    result = self._run_parallel(spec, jobs, work_dir)
            result.elapsed_s = time.perf_counter() - t0
            result.run_dir = run_dir
            obs.count("sweep.runs")
            obs.count("sweep.jobs", len(jobs))
            olog.info(
                "sweep.done",
                spec=spec.name,
                jobs=result.jobs,
                elapsed_s=round(result.elapsed_s, 4),
                cache=result.cache_stats.as_dict(),
                lost_workers=result.lost_workers(),
            )
            if run_dir is not None:
                live.update_run_manifest(
                    run_dir,
                    state="done",
                    jobs_done=result.jobs,
                    elapsed_s=round(result.elapsed_s, 4),
                )
            if self.trace_out:
                from repro.obs.export import write_chrome_trace

                write_chrome_trace(self.trace_out)
            if self.events_out:
                from repro.obs.export import write_jsonl

                write_jsonl(self.events_out)
            if self.metrics_out:
                from repro.obs.export import write_prometheus

                write_prometheus(self.metrics_out)
        finally:
            if enabled_here:
                obs.disable()
            if log_here:
                olog.close()
            if tmp_dir is not None:
                shutil.rmtree(tmp_dir, ignore_errors=True)
        return result

    def _open_cache(self) -> LayoutCache | None:
        if self.cache_dir is None:
            return None
        return LayoutCache(self.cache_dir, readonly=self.cache_readonly)

    def _run_serial(
        self, spec: SweepSpec, jobs: list[SweepJob], run_dir: str | None
    ) -> SweepResult:
        cache = self._open_cache()
        hb = None
        if run_dir is not None:
            live.write_run_manifest(
                run_dir,
                kind="sweep",
                spec=spec.name,
                jobs_total=len(jobs),
                workers=1,
            )
            hb = live.HeartbeatWriter(
                run_dir, 0,
                jobs_total=len(jobs),
                interval_s=self.heartbeat_s,
            )
            hb.beat(force=True)
            hb.start_pulse()
        results = []
        try:
            for job in jobs:
                if hb is not None:
                    hb.current_job = job.job_id
                    hb.beat(force=True)
                results.append(
                    run_sweep_job(job, cache, validate=self.validate)
                )
                if hb is not None:
                    hb.job_tick(
                        cache=(
                            cache.stats.as_dict()
                            if cache is not None
                            else {}
                        ),
                    )
        finally:
            if hb is not None:
                hb.finish("done" if len(results) == len(jobs) else "failed")
        out = SweepResult(spec=spec, results=results, workers=1)
        if cache is not None:
            out.cache_stats.merge(cache.stats)
        return out

    def _on_watch_tick(self, health: dict[int, dict]) -> None:
        """Watchdog callback: refresh live gauges + Prometheus file.

        Gauges, not counters: the merged registry of a parallel run
        must still equal a serial run's counters exactly (that
        determinism is pinned by tests), and gauges are the natural
        shape for last-value-wins liveness anyway.
        """
        if not obs.enabled():
            return
        done = sum(
            rec["jobs_done"]
            for rec in health.values()
            if isinstance(rec.get("jobs_done"), int)
        )
        verdicts = [rec.get("verdict") for rec in health.values()]
        obs.gauge("sweep.live.jobs_done", done)
        obs.gauge(
            "sweep.live.workers_ok",
            sum(1 for v in verdicts if v in ("ok", "done")),
        )
        obs.gauge(
            "sweep.live.workers_stalled",
            sum(1 for v in verdicts if v == "stalled"),
        )
        obs.gauge(
            "sweep.live.workers_dead",
            sum(1 for v in verdicts if v in ("dead", "failed")),
        )
        if self.metrics_out:
            from repro.obs.export import write_prometheus

            try:
                write_prometheus(self.metrics_out)
            except OSError:
                pass

    def _run_parallel(
        self, spec: SweepSpec, jobs: list[SweepJob], run_dir: str
    ) -> SweepResult:
        # Round-robin slices: contiguous runs of one family often share
        # cost structure, so interleaving balances the workers.
        slices = [
            s
            for s in (jobs[w::self.workers] for w in range(self.workers))
            if s
        ]
        live.write_run_manifest(
            run_dir,
            kind="sweep",
            spec=spec.name,
            jobs_total=len(jobs),
            workers=len(slices),
        )
        observe = obs.enabled()
        run_ctx = ocontext.current_context()
        log_path = None
        cfg_run_id = olog.run_id()
        if olog.configured():
            from repro.obs.logging import _config as _log_cfg

            log_path = _log_cfg.path if _log_cfg is not None else None
        ctx = _mp_context()
        procs = []
        for wid, s in enumerate(slices):
            payload = {
                "worker_id": wid,
                "jobs": s,
                "run_dir": run_dir,
                "cache_dir": (
                    None
                    if self.cache_dir is None
                    else os.fspath(self.cache_dir)
                ),
                "readonly": self.cache_readonly,
                "validate": self.validate,
                "observe": observe,
                "heartbeat_s": self.heartbeat_s,
                "log_path": log_path,
                "run_id": cfg_run_id,
                "trace": (
                    run_ctx.child().as_dict()
                    if run_ctx is not None
                    else None
                ),
            }
            p = ctx.Process(
                target=_worker_main,
                args=(payload,),
                name=f"repro-sweep-{wid}",
            )
            p.start()
            olog.info(
                "sweep.worker_spawn",
                worker_id=wid,
                worker_pid=p.pid,
                jobs=len(s),
            )
            procs.append(p)
        watchdog = live.Watchdog(
            run_dir,
            stall_after_s=self.stall_after_s,
            interval_s=self.watch_interval_s,
            on_tick=self._on_watch_tick,
        ).start()
        for p in procs:
            # A stalled (SIGSTOPped) worker blocks here while the
            # watchdog keeps flagging it; a killed one returns with
            # its exitcode and is settled below.
            p.join()
        # Joined (reaped) children now fail the pid probe, so the
        # final poll turns any silently-vanished worker into "dead".
        health = watchdog.stop()
        out = SweepResult(spec=spec, workers=self.workers)
        merged: dict[int, JobResult] = {}
        errors: list[tuple[int, str]] = []
        for wid, p in enumerate(procs):
            rec = health.get(wid) or {
                "worker_id": wid,
                "verdict": "dead",
                "state": None,
                "age_s": None,
                "pid": p.pid,
                "jobs_done": None,
                "jobs_total": len(slices[wid]),
                "rss_bytes": None,
                "current_job": None,
                "stalls": 0,
                "ever_stalled": False,
            }
            rec["exitcode"] = p.exitcode
            doc = _read_worker_result(run_dir, wid)
            if doc is None:
                # No result file: the worker died before handing
                # anything back.  Its jobs are simply absent from the
                # merge; everything else stays intact.
                rec["verdict"] = "dead"
                out.worker_health[wid] = rec
                olog.error(
                    "sweep.worker_lost",
                    worker_id=wid,
                    worker_pid=p.pid,
                    exitcode=p.exitcode,
                    jobs_lost=len(slices[wid]),
                )
                continue
            if doc.get("error"):
                errors.append((wid, doc["error"]))
            indices = []
            for jdoc in doc.get("results", []):
                jdoc = dict(jdoc)
                index = jdoc.pop("index")
                indices.append(index)
                merged[index] = JobResult(
                    job_id=jdoc["job_id"],
                    network=jdoc["network"],
                    scheme=jdoc["scheme"],
                    layers=jdoc["layers"],
                    num_nodes=jdoc["N"],
                    num_edges=jdoc["E"],
                    metrics=jdoc["metrics"],
                    source=jdoc["source"],
                    elapsed_s=jdoc["elapsed_s"],
                )
            out.cache_stats.merge(doc.get("cache_stats", {}))
            if doc.get("snapshot") and obs.enabled():
                obs.registry().merge(doc["snapshot"])
            reroot_worker_spans(
                wid, doc.get("spans", []),
                jobs=len(indices),
                indices=",".join(str(i) for i in sorted(indices)),
            )
            out.worker_health[wid] = rec
        out.results = [merged[i] for i in sorted(merged)]
        if errors:
            wid, err = errors[0]
            raise RuntimeError(f"sweep worker {wid} failed: {err}")
        return out


def _read_worker_result(run_dir: str, wid: int) -> dict | None:
    try:
        with open(os.path.join(run_dir, f"result-{wid}.json")) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def _mp_context():
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")
