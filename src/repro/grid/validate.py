"""Legality checker for the multilayer grid model.

The checks implement Section 2's rules:

1. **Edge-disjointness.** No two wires may overlap: on each layer,
   no grid *edge* (unit segment between adjacent grid points) is used
   by two wires.  Wires may cross at a grid point (Thompson's model
   explicitly allows crossings), so point sharing is legal as long as
   neither wire bends there.
2. **No knock-knees / shared vias.**  A grid point may be a bend or via
   of at most one wire.  (Two wires bending at the same point is the
   knock-knee configuration the Thompson model forbids, ref. [6].)
3. **Layer budget.**  Every segment lies on a layer in ``1..L``.
4. **Node interference.**  No wire segment passes through the open
   interior of any node square, and node squares are pairwise
   interior-disjoint.
5. **Pin attachment.**  Each wire's endpoints lie on the perimeter of
   the squares of the nodes it connects, and no two wires share a pin
   point of the same node.
6. **Self-consistency.**  Each wire is a connected path (enforced at
   construction) whose consecutive same-layer segments are not
   collinear (those should have been merged) and which does not
   overlap itself.

``validate_layout`` raises :class:`LayoutError` with a precise message
on the first violation, or returns a small report on success.

Execution strategy (fast accept, scalar diagnose): every check first
runs a vectorized *clean test* from the :mod:`repro.accel` backend
registry over the layout's cached :class:`~repro.grid.table.WireTable`.
A clean verdict is only returned when the scalar check provably
accepts; on suspicion the original scalar sweep re-runs and produces
its usual byte-identical error message (or accepts, for the few
deliberately conservative kernels).  Error paths therefore cost one
extra vector pass; accept paths -- the overwhelming majority in
sweeps, serving, and fuzzing -- skip the per-object walks entirely.

``validate_layout(layout, incremental=True)`` additionally enables
dirty-region revalidation: the layout grows a
:class:`~repro.grid.dirty.DirtyTracker`, mutations made through
``GridLayout.replace_wire`` / ``add_wire`` / ``place`` record touched
y-bands x layers, and subsequent incremental calls re-check only the
wires and nodes intersecting those bands.  The verdict is relative to
the last successful validation (conflicts purely among untouched
elements were ruled out then); the tracker falls back to a full sweep
when the dirty set exceeds ``incremental_threshold`` of the wires,
when bands pile up past ``DirtyTracker.MAX_BANDS``, or after
``invalidate_table`` signalled out-of-band mutation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable

from repro import accel as _accel
from repro import obs
from repro.grid.layout import GridLayout
from repro.grid.wire import Wire

__all__ = ["LayoutError", "validate_layout"]


class LayoutError(AssertionError):
    """A multilayer-grid-model rule violation."""


def validate_layout(
    layout: GridLayout,
    *,
    check_node_interference: bool = True,
    check_pins: bool = True,
    check_parity: bool = False,
    incremental: bool = False,
    incremental_threshold: float = 0.25,
) -> dict:
    """Check ``layout`` against the multilayer grid model rules.

    Parameters
    ----------
    check_node_interference:
        Verify no wire crosses a node interior and nodes are disjoint.
        (Quadratic-ish in crowded layouts; can be disabled for very
        large sweeps after spot-checking.)
    check_pins:
        Verify wire endpoints land on their nodes' perimeters, uniquely.
    check_parity:
        Additionally enforce the *scheme convention* that horizontal
        segments use odd layers and vertical segments even layers.  Not
        a model rule; useful when testing the orthogonal scheme.
    incremental:
        Re-check only the regions dirtied since the last successful
        validation (see the module docstring).  The first incremental
        call on a layout attaches the tracker and runs a full sweep.
    incremental_threshold:
        Fraction of the layout's wires above which an incremental call
        falls back to a full sweep (dirty sets that large re-check
        most of the layout anyway).

    Returns a report dict (counts of segments, conflicts checked); an
    incremental call adds an ``"incremental"`` sub-dict describing the
    mode taken (``full`` / ``bands`` / ``clean``).
    """
    if incremental:
        return _validate_incremental(
            layout,
            check_node_interference=check_node_interference,
            check_pins=check_pins,
            check_parity=check_parity,
            threshold=incremental_threshold,
        )
    report = _run_checks(
        layout,
        check_node_interference=check_node_interference,
        check_pins=check_pins,
        check_parity=check_parity,
    )
    tracker = layout._dirty
    if tracker is not None:
        tracker.reset_after_full(layout)
    return report


def _run_checks(
    layout: GridLayout,
    *,
    check_node_interference: bool,
    check_pins: bool,
    check_parity: bool,
) -> dict:
    checks: list = [_check_layer_budget]
    if check_parity:
        checks.append(_check_parity)
    checks += [
        _check_wire_self_consistency,
        _check_edge_disjointness,
        _check_bend_exclusivity,
        _check_via_occupancy,
    ]
    if check_node_interference:
        checks.append(_check_node_interference)
    if check_pins:
        checks.append(_check_pins)

    seg_count = 0
    with obs.span(
        "validate", wires=len(layout.wires), layers=layout.layers
    ) as sp:
        for check in checks:
            with obs.span(check.__name__.lstrip("_")):
                result = check(layout)
            if check is _check_edge_disjointness:
                seg_count = result
        sp.add("checks", len(checks)).add("segments", seg_count)
    obs.count("validator.layouts_validated")
    obs.count("validator.checks_run", len(checks))
    obs.count("validator.segments_checked", seg_count)
    return {
        "segments": seg_count,
        "wires": len(layout.wires),
        "nodes": len(layout.placements),
        "layers": layout.layers,
        "checks": len(checks),
    }


# ---------------------------------------------------------------------------
# Incremental revalidation


def _validate_incremental(
    layout: GridLayout,
    *,
    check_node_interference: bool,
    check_pins: bool,
    check_parity: bool,
    threshold: float,
) -> dict:
    from repro.grid.dirty import DirtyTracker

    kwargs = dict(
        check_node_interference=check_node_interference,
        check_pins=check_pins,
        check_parity=check_parity,
    )
    tracker = layout._dirty
    if tracker is None:
        tracker = DirtyTracker()
        layout._dirty = tracker
    if tracker.needs_full():
        report = _run_checks(layout, **kwargs)
        tracker.reset_after_full(layout)
        report["incremental"] = {"mode": "full", "reason": "untracked"}
        return report
    bands = tracker.coalesced_bands()
    if not bands:
        # Nothing touched since the last successful validation.
        obs.count("validator.incremental_clean")
        return {
            "segments": 0,
            "wires": 0,
            "nodes": 0,
            "layers": layout.layers,
            "checks": 0,
            "incremental": {"mode": "clean", "bands": 0, "wires_checked": 0},
        }
    sel = tracker.select_wires(bands)
    n_wires = len(layout.wires)
    if len(bands) > tracker.MAX_BANDS or len(sel) > threshold * n_wires:
        report = _run_checks(layout, **kwargs)
        tracker.reset_after_full(layout)
        report["incremental"] = {
            "mode": "full",
            "reason": "threshold",
            "bands": len(bands),
            "wires_dirty": len(sel),
        }
        return report
    sub = _band_sublayout(layout, sel, bands)
    with obs.span(
        "validate.incremental", bands=len(bands), wires=len(sel)
    ):
        report = _run_checks(sub, **kwargs)
    tracker.clear_bands()
    obs.count("validator.incremental_band_runs")
    report["incremental"] = {
        "mode": "bands",
        "bands": len(bands),
        "wires_checked": len(sel),
    }
    return report


def _band_sublayout(layout: GridLayout, wire_idx, bands) -> GridLayout:
    """The sub-layout of wires/nodes intersecting the dirty bands.

    Placements are filtered by y-band overlap (their layer is part of
    the band key for wires but nodes conflict via their own layer's
    segments, which the selected wires carry); every selected wire's
    endpoint nodes ride along so the pin check can resolve them.
    """
    wires = [layout.wires[i] for i in wire_idx]
    placements = {}
    for label, p in layout.placements.items():
        r = p.rect
        for y0, y1, _l0, _l1 in bands:
            if r.y1 >= y0 and r.y0 <= y1:
                placements[label] = p
                break
    for w in wires:
        for label in (w.u, w.v):
            if label not in placements:
                p = layout.placements.get(label)
                if p is not None:
                    placements[label] = p
    return GridLayout(
        layers=layout.layers,
        placements=placements,
        wires=wires,
        meta=layout.meta,
    )


# ---------------------------------------------------------------------------
# Checks: kernelized wrappers (fast accept) + scalar sweeps (diagnose)


def _check_layer_budget(layout: GridLayout) -> None:
    table = layout.wire_table()
    if _accel.get_backend().layer_budget_clean(table, layout.layers):
        return
    _layer_budget_scalar(layout)


def _layer_budget_scalar(layout: GridLayout) -> None:
    for w in layout.wires:
        used = w.layers_used()
        if used and (min(used) < 1 or max(used) > layout.layers):
            raise LayoutError(
                f"wire {w.u}-{w.v}: layers {sorted(used)} exceed the "
                f"L={layout.layers} budget"
            )


def _check_parity(layout: GridLayout) -> None:
    table = layout.wire_table()
    if _accel.get_backend().parity_clean(table):
        return
    _parity_scalar(layout)


def _parity_scalar(layout: GridLayout) -> None:
    for w in layout.wires:
        for s in w.segments:
            if s.horizontal and s.layer % 2 == 0:
                raise LayoutError(
                    f"parity: horizontal segment on even layer {s.layer} "
                    f"in wire {w.u}-{w.v}"
                )
            if s.vertical and s.layer % 2 == 1:
                raise LayoutError(
                    f"parity: vertical segment on odd layer {s.layer} "
                    f"in wire {w.u}-{w.v}"
                )


def _check_wire_self_consistency(layout: GridLayout) -> None:
    table = layout.wire_table()
    if _accel.get_backend().self_consistency_clean(table):
        return
    _self_consistency_scalar(layout)


def _self_consistency_scalar(layout: GridLayout) -> None:
    for w in layout.wires:
        for a, b in zip(w.segments, w.segments[1:]):
            if a.layer == b.layer and a.horizontal == b.horizontal:
                raise LayoutError(
                    f"wire {w.u}-{w.v}: consecutive collinear same-layer "
                    f"segments should be merged: {a} / {b}"
                )


def _check_edge_disjointness(layout: GridLayout) -> int:
    """Sweep each (layer, grid line) for properly-overlapping spans."""
    table = layout.wire_table()
    total, clean = _accel.get_backend().edge_sweep(table)
    if clean:
        return total
    return _edge_disjointness_scalar(layout)


def _edge_disjointness_scalar(layout: GridLayout) -> int:
    lines: dict[tuple, list[tuple[int, int, int]]] = defaultdict(list)
    for wi, w in enumerate(layout.wires):
        for s in w.segments:
            lo, hi = s.span
            lines[s.line].append((lo, hi, wi))
    total = 0
    for line, spans in lines.items():
        total += len(spans)
        spans.sort()
        # Sentinel must sit below any coordinate: spans may be negative
        # (e.g. corrupted layouts fed in by the differential fuzzer).
        max_hi: float = float("-inf")
        max_hi_owner = -1
        for lo, hi, wi in spans:
            if lo < max_hi:
                other = layout.wires[max_hi_owner]
                mine = layout.wires[wi]
                raise LayoutError(
                    f"overlap on {line}: wire {mine.u}-{mine.v} and wire "
                    f"{other.u}-{other.v} share grid edges in "
                    f"[{lo}, {min(hi, max_hi)}]"
                )
            if hi > max_hi:
                max_hi = hi
                max_hi_owner = wi
    return total


def _check_bend_exclusivity(layout: GridLayout) -> None:
    table = layout.wire_table()
    if _accel.get_backend().bend_clean(table):
        return
    _bend_exclusivity_scalar(layout)


def _bend_exclusivity_scalar(layout: GridLayout) -> None:
    """Bends and vias must be node-disjoint in the 3-D grid.

    A via between layers a and b occupies the 3-D grid nodes
    (x, y, a..b); a same-layer turn occupies (x, y, a).  Two wires may
    meet at the same planar point only if their occupied layer ranges
    are disjoint -- e.g. a layer-1/2 via and a layer-3/4 via may stack,
    but two same-layer turns at one point are a knock-knee and two
    overlapping via stacks would share a z-edge or node.
    """
    occupied: dict[tuple[int, int], list[tuple[int, int, int]]] = {}

    def claim(pt: tuple[int, int], lo: int, hi: int, wi: int) -> None:
        for (plo, phi, owner) in occupied.get(pt, ()):
            if owner != wi and lo <= phi and plo <= hi:
                a, b = layout.wires[owner], layout.wires[wi]
                raise LayoutError(
                    f"knock-knee / via conflict at {pt}: wires "
                    f"{a.u}-{a.v} (layers {plo}-{phi}) and {b.u}-{b.v} "
                    f"(layers {lo}-{hi}) occupy overlapping layers"
                )
        occupied.setdefault(pt, []).append((lo, hi, wi))

    for wi, w in enumerate(layout.wires):
        if w.riser is not None:
            x, y, zlo, zhi = w.riser
            claim((x, y), zlo, zhi, wi)
            continue
        bends = w.bends()
        for i in range(len(w.segments) - 1):
            s1, s2 = w.segments[i], w.segments[i + 1]
            lo = min(s1.layer, s2.layer)
            hi = max(s1.layer, s2.layer)
            claim(bends[i], lo, hi, wi)


def _check_via_occupancy(layout: GridLayout) -> None:
    table = layout.wire_table()
    if _accel.get_backend().via_clean(table):
        return
    _via_occupancy_scalar(layout)


def _via_occupancy_scalar(layout: GridLayout) -> None:
    """A via's z-run blocks its planar point on every layer it spans.

    The bend-exclusivity check covers via-vs-via and via-vs-bend; this
    one covers via-vs-*straight-segment*: no wire may run through a
    grid point occupied by another wire's via on one of the via's
    strictly interior layers.  (Sharing the via's *endpoint* layer at a
    point is a crossing, which the Thompson model permits; multi-layer
    fold vias of Section 2.2's folding baseline span three layers and
    are the main clients of this rule.)
    """
    import bisect

    # Collect the z-runs first: most layouts have few (or no) vias
    # spanning interior layers, and the line index below only needs
    # the layers those interiors touch.
    runs: list[tuple[int, Wire, tuple[int, int], int, int]] = []
    interior_layers: set[int] = set()
    for wi, w in enumerate(layout.wires):
        for pt, zlo, zhi in w.z_occupancy():
            if zhi - zlo >= 2:
                runs.append((wi, w, pt, zlo, zhi))
                interior_layers.update(range(zlo + 1, zhi))
    if not runs:
        return

    # Index spans per (orientation, layer, line-coordinate), restricted
    # to the layers some via interior crosses.
    lines: dict[tuple, list[tuple[int, int, int]]] = defaultdict(list)
    for wi, w in enumerate(layout.wires):
        for s in w.segments:
            if s.layer in interior_layers:
                lo, hi = s.span
                lines[s.line].append((lo, hi, wi))
    index: dict[tuple, tuple[list[int], list[int]]] = {}
    for key, spans in lines.items():
        spans.sort()
        prefix_max_hi: list[int] = []
        top = spans[0][1]
        for _, hi, _ in spans:
            if hi > top:
                top = hi
            prefix_max_hi.append(top)
        index[key] = ([lo for lo, _, _ in spans], prefix_max_hi)

    def segment_covers(key: tuple, coord: int, self_wire: int) -> int | None:
        spans = lines.get(key)
        if not spans:
            return None
        starts, prefix_max_hi = index[key]
        # Walk candidates with lo <= coord from the right; once the
        # prefix's max hi drops to coord, nothing earlier can reach it.
        i = bisect.bisect_right(starts, coord) - 1
        while i >= 0 and prefix_max_hi[i] > coord:
            lo, hi, wi = spans[i]
            # Exclude pure endpoint touching: that is a crossing.
            if lo < coord < hi and wi != self_wire:
                return wi
            i -= 1
        return None

    for wi, w, pt, zlo, zhi in runs:
        for layer in range(zlo + 1, zhi):
            x, y = pt
            hit = segment_covers(("h", layer, y), x, wi)
            if hit is None:
                hit = segment_covers(("v", layer, x), y, wi)
            if hit is not None:
                other = layout.wires[hit]
                raise LayoutError(
                    f"via of wire {w.u}-{w.v} at {pt} (layers "
                    f"{zlo}-{zhi}) is pierced on layer {layer} by "
                    f"wire {other.u}-{other.v}"
                )


def _check_node_interference(layout: GridLayout) -> None:
    """Nodes are interior-disjoint and unpierced, per active layer.

    The multilayer 3-D grid model embeds a node in its active layer(s)
    only: two nodes on *different* active layers may overlap in plan
    view (that is the whole point of folding, Section 2.2), and a wire
    conflicts with a node only when its segment's layer matches the
    node's.  Multilayer *2-D* grid layouts place every node on layer 1,
    so for them this degenerates to the planar rule.

    Both sweeps take the kernel fast path.  A clean node-overlap
    verdict is exact *and* establishes the band-disjointness the
    segment sweeps (kernel and scalar alike) rely on; on suspicion
    the scalar overlap sweep diagnoses -- or, by accepting,
    re-establishes that invariant -- before any segment sweep runs.
    """
    table = layout.wire_table()
    backend = _accel.get_backend()
    if not backend.node_overlap_clean(table):
        _node_overlap_scalar(layout)
    if backend.node_sweep_clean(table):
        return
    _node_seg_sweep_scalar(layout)


def _node_overlap_scalar(layout: GridLayout) -> None:
    by_layer: dict[int, list] = defaultdict(list)
    for p in layout.placements.values():
        by_layer[p.layer].append(p)

    for layer, placements in by_layer.items():
        # Sweep along whichever axis has more distinct coordinates:
        # collinear schemes stack every node in one column (or row), and
        # sweeping the shared axis would never retire anything from the
        # active set, degenerating to a quadratic all-pairs scan.
        if len({p.rect.x0 for p in placements}) >= len(
            {p.rect.y0 for p in placements}
        ):
            lo, hi = (lambda r: r.x0), (lambda r: r.x1)
        else:
            lo, hi = (lambda r: r.y0), (lambda r: r.y1)
        placements.sort(key=lambda p: lo(p.rect))
        active: list = []
        for p in placements:
            active = [q for q in active if hi(q.rect) > lo(p.rect)]
            for q in active:
                if p.rect.intersects(q.rect):
                    raise LayoutError(
                        f"node squares overlap on layer {layer}: "
                        f"{p.node!r} at {p.rect} and {q.node!r} at {q.rect}"
                    )
            active.append(p)


def _node_seg_sweep_scalar(layout: GridLayout) -> None:
    import bisect

    by_layer: dict[int, list] = defaultdict(list)
    for p in layout.placements.values():
        by_layer[p.layer].append(p)

    # Wire segments may not pass through the open interior of a node
    # on the segment's own layer.  This is the validator's hottest
    # sweep, so it prunes hard: segments are bucketed by layer once
    # (not rescanned per layer), and each layer's node rects are
    # grouped into y-bands -- same (y0, y1) extent -- inside which
    # interior-disjointness makes the x-intervals non-overlapping and
    # sorted, so a bisect plus a bounded backward walk visits only
    # rects whose x- and y-ranges genuinely overlap the segment's.
    segments_by_layer: dict[int, list[tuple]] = defaultdict(list)
    for w in layout.wires:
        for s in w.segments:
            if s.layer in by_layer:
                segments_by_layer[s.layer].append((s, w))

    for layer, segs in segments_by_layer.items():
        banded: dict[tuple[int, int], list] = defaultdict(list)
        for p in by_layer[layer]:
            # Zero-extent rects have no interior to cross, and (being
            # exempt from disjointness) would break the sorted-x1
            # invariant the backward walk relies on.
            if p.rect.w and p.rect.h:
                banded[(p.rect.y0, p.rect.y1)].append(p)
        bands = []
        for (y0, y1), ps in banded.items():
            ps.sort(key=lambda p: p.rect.x0)
            bands.append((y0, y1, [p.rect.x0 for p in ps], ps))
        for s, w in segs:
            sx_lo, sx_hi = (s.x1, s.x2) if s.x1 <= s.x2 else (s.x2, s.x1)
            sy_lo, sy_hi = (s.y1, s.y2) if s.y1 <= s.y2 else (s.y2, s.y1)
            for y0, y1, xs, ps in bands:
                if sy_hi <= y0 or sy_lo >= y1:
                    continue  # no strictly interior y in this band
                i = bisect.bisect_left(xs, sx_hi) - 1
                while i >= 0:
                    p = ps[i]
                    r = p.rect
                    if r.x1 <= sx_lo:
                        break  # x1 sorted within the band: done
                    if r.segment_crosses_interior(s):
                        raise LayoutError(
                            f"wire {w.u}-{w.v} crosses interior of node "
                            f"{p.node!r} at {r}: segment {s}"
                        )
                    i -= 1


def _check_pins(layout: GridLayout) -> None:
    table = layout.wire_table()
    rows: dict[Hashable, int] = {}
    for i, label in enumerate(layout.placements):
        rows[label] = i
    u_rows: list[int] = []
    v_rows: list[int] = []
    for w in layout.wires:
        iu = rows.get(w.u)
        iv = rows.get(w.v)
        if iu is None or iv is None:
            # Unplaced endpoint: let the scalar check raise its message.
            return _pins_scalar(layout)
        u_rows.append(iu)
        v_rows.append(iv)
    if _accel.get_backend().pins_clean(table, u_rows, v_rows):
        return
    _pins_scalar(layout)


def _pins_scalar(layout: GridLayout) -> None:
    pin_owner: dict[tuple[Hashable, tuple[int, int]], int] = {}
    for wi, w in enumerate(layout.wires):
        pairing = _orient_endpoints(layout, w)
        if pairing is None:
            raise LayoutError(
                f"wire {w.u}-{w.v}: endpoints {w.start}/{w.end} do not lie "
                f"on the perimeters of its nodes"
            )
        for node, pt in pairing:
            key = (node, pt.planar())
            prev = pin_owner.get(key)
            if prev is not None and prev != wi:
                other = layout.wires[prev]
                raise LayoutError(
                    f"pin conflict at {pt.planar()} on node {node!r}: "
                    f"wires {other.u}-{other.v} and {w.u}-{w.v}"
                )
            pin_owner[key] = wi


def _orient_endpoints(layout: GridLayout, w: Wire):
    """Match the wire's geometric endpoints to its (u, v) nodes.

    Multi-segment wires are traced from the u side, but a single-segment
    wire's stored order is normalization-dependent, so both pairings are
    tried.  Returns [(node, point), (node, point)] or None.
    """
    pu = layout.placements.get(w.u)
    pv = layout.placements.get(w.v)
    if pu is None or pv is None:
        raise LayoutError(f"wire {w.u}-{w.v} references an unplaced node")
    s, e = w.start, w.end
    if pu.rect.on_perimeter(s.x, s.y) and pv.rect.on_perimeter(e.x, e.y):
        return [(w.u, s), (w.v, e)]
    if pu.rect.on_perimeter(e.x, e.y) and pv.rect.on_perimeter(s.x, s.y):
        return [(w.u, e), (w.v, s)]
    return None


def _validate_scalar_reference(
    layout: GridLayout,
    *,
    check_node_interference: bool = True,
    check_pins: bool = True,
    check_parity: bool = False,
) -> None:
    """Run every scalar sweep directly, bypassing the accel kernels.

    The reference battery for the E7i bench and the cross-backend
    parity tests: same checks, same order, same error messages as
    ``validate_layout`` -- minus the kernel fast path.
    """
    _layer_budget_scalar(layout)
    if check_parity:
        _parity_scalar(layout)
    _self_consistency_scalar(layout)
    _edge_disjointness_scalar(layout)
    _bend_exclusivity_scalar(layout)
    _via_occupancy_scalar(layout)
    if check_node_interference:
        _node_overlap_scalar(layout)
        _node_seg_sweep_scalar(layout)
    if check_pins:
        _pins_scalar(layout)


def check_topology(layout: GridLayout, expected_edges: list[tuple]) -> None:
    """Verify the routed wires realize exactly ``expected_edges``.

    ``expected_edges`` is a list of (u, v) pairs (repeats = parallel
    edges).  Raises :class:`LayoutError` on any mismatch.
    """
    want: dict[tuple, int] = {}
    for u, v in expected_edges:
        a, b = _norm_pair(u, v)
        want[(a, b)] = want.get((a, b), 0) + 1
    have = layout.edge_multiset()
    if want != have:
        missing = {k: c for k, c in want.items() if have.get(k, 0) != c}
        extra = {k: c for k, c in have.items() if want.get(k, 0) != c}
        raise LayoutError(
            "routed edge multiset differs from the network: "
            f"missing/changed {dict(list(missing.items())[:5])} ... "
            f"extra/changed {dict(list(extra.items())[:5])}"
        )


def _norm_pair(u, v):
    from repro.grid.wire import _sort_key

    if _sort_key(v) < _sort_key(u):
        return v, u
    return u, v
