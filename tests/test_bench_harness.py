"""The table harness used by benches and examples."""

from repro.bench.harness import (
    comparison_row,
    format_table,
    json_cell,
    print_table,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        # Right-aligned columns with uniform width.
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [1234567.0], [12.5]])
        assert "0.123" in text
        assert "e+06" in text.replace("E", "e")

    def test_int_thousands(self):
        assert "1,024" in format_table(["n"], [[1024]])

    def test_strings_passthrough(self):
        assert "hello" in format_table(["s"], [["hello"]])

    def test_none_renders_dash(self):
        lines = format_table(["v"], [[None]]).splitlines()
        assert lines[-1].strip() == "-"

    def test_nan_renders_nan(self):
        lines = format_table(["v"], [[float("nan")]]).splitlines()
        assert lines[-1].strip() == "nan"

    def test_negative_small_floats(self):
        text = format_table(["v"], [[-0.25], [-1.5e-5], [-12.5], [-150.0]])
        assert "-0.250" in text
        assert "-1.500e-05" in text
        assert "-12.500" in text
        assert "-150.0" in text


class TestComparisonRow:
    def test_ratio(self):
        row = comparison_row(["x"], 10.0, 15.0)
        assert row == ["x", 10.0, 15.0, 1.5]

    def test_zero_paper_gives_none(self):
        row = comparison_row([], 0, 5)
        assert row[-1] is None
        lines = format_table(["p", "m", "ratio"], [row]).splitlines()
        assert lines[-1].split()[-1] == "-"

    def test_print_table(self, capsys):
        print_table("title", ["a"], [[1]])
        out = capsys.readouterr().out
        assert "== title ==" in out


class TestJsonCell:
    def test_passthrough(self):
        assert json_cell(3) == 3
        assert json_cell(2.5) == 2.5
        assert json_cell("x") == "x"
        assert json_cell(True) is True
        assert json_cell(None) is None

    def test_non_finite_floats_become_none(self):
        assert json_cell(float("nan")) is None
        assert json_cell(float("inf")) is None
        assert json_cell(float("-inf")) is None

    def test_other_objects_stringified(self):
        assert json_cell((1, 2)) == "(1, 2)"
