"""Smoke tests: the example scripts run end to end.

The heavyweight studies (performance_study, multilayer_scaling at
full size) are exercised by the benches; here we run the fast examples
exactly as a user would.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        return runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "8-cube under L wiring layers" in out
        assert "area ratio" in out

    def test_paper_figures(self, capsys, tmp_path, monkeypatch):
        # Redirect SVG output into tmp by running with cwd tricks is
        # unnecessary: the script writes next to itself; just check the
        # prints and that the files appear.
        run_example("paper_figures.py")
        out = capsys.readouterr().out
        for fig in ("Figure 1", "Figure 2", "Figure 3", "Figure 4"):
            assert fig in out
        for i in (1, 2, 3, 4):
            assert (EXAMPLES / f"figure{i}.svg").exists()

    def test_network_zoo(self, capsys):
        run_example("network_zoo.py")
        out = capsys.readouterr().out
        assert "network zoo" in out
        assert "butterfly" in out

    def test_chip_planner(self, capsys):
        run_example("chip_planner.py", ["32", "6", "250"])
        out = capsys.readouterr().out
        assert "Recommended fabric" in out

    def test_optimality_report(self, capsys):
        run_example("optimality_report.py")
        out = capsys.readouterr().out
        assert "exact cutwidth" in out
        assert "engine optimal; paper +2" in out

    def test_api_tour(self, capsys):
        run_example("api_tour.py")
        out = capsys.readouterr().out
        assert "max-cut certificate" in out
        assert "JSON round-trip OK" in out

    def test_fault_tolerance(self, capsys):
        run_example("fault_tolerance.py")
        out = capsys.readouterr().out
        assert "random link failures" in out
        assert "folded" in out
