"""Closed-form collinear track counts from the paper.

Each function returns the exact integer the paper derives; tests assert
the constructive layouts meet them exactly (not just asymptotically).
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "kary_tracks",
    "complete_graph_tracks",
    "ghc_tracks",
    "mixed_radix_ghc_tracks",
    "hypercube_tracks",
]


def kary_tracks(k: int, n: int) -> int:
    """f_k(n) = 2 (k^n - 1) / (k - 1)  (Section 3.1).

    Recurrence: f_k(1) = 2 (a ring needs two tracks), and
    f_k(n+1) = k f_k(n) + 2 (stack k copies, add an adjacent-edges track
    and a wrap track).  For k = 2, a "ring" of two nodes is a double
    edge in the torus reading of the recursion; the closed form still
    evaluates (f_2(n) = 2 (2^n - 1)), but binary k-ary n-cubes are
    better handled as hypercubes (Section 5.1).
    """
    if k < 2:
        raise ValueError("k-ary n-cube needs k >= 2")
    if n < 1:
        raise ValueError("n >= 1")
    return 2 * (k**n - 1) // (k - 1)


def complete_graph_tracks(n: int) -> int:
    """|N^2/4|: the strictly optimal collinear layout of K_N
    (Section 4.1, Figure 3, ref. [30])."""
    if n < 1:
        raise ValueError("N >= 1")
    return (n * n) // 4


def ghc_tracks(r: int, n: int) -> int:
    """(N - 1) |r^2/4| / (r - 1) for the radix-r, n-dimensional
    generalized hypercube (Section 4.1)."""
    if r < 2:
        raise ValueError("radix >= 2")
    if n < 1:
        raise ValueError("n >= 1")
    return (r**n - 1) * (r * r // 4) // (r - 1)


def mixed_radix_ghc_tracks(radices: Sequence[int]) -> int:
    """The general mixed-radix recurrence of Section 4.1:
    f(1) = |r_0^2/4|,  f(m+1) = r_m f(m) + |r_m^2/4|.

    ``radices`` is (r_{n-1}, ..., r_0), most significant first, matching
    :func:`repro.collinear.orders.mixed_radix_order`.
    """
    rs = list(radices)
    if not rs:
        raise ValueError("at least one radix")
    if any(r < 2 for r in rs):
        raise ValueError("all radices >= 2")
    f = rs[-1] ** 2 // 4
    for r in reversed(rs[:-1]):
        f = r * f + r * r // 4
    return f


def hypercube_tracks(dim: int) -> int:
    """|2N/3| tracks for the n-cube (Section 5.1, refs [28, 31]).

    This equals the cut-width of the hypercube under binary order:
    (2^{n+1} - 2)/3 for even n, (2^{n+1} - 1)/3 for odd n -- i.e.
    floor(2N/3) with N = 2^n.
    """
    if dim < 1:
        raise ValueError("dim >= 1")
    return (2 * (1 << dim)) // 3
