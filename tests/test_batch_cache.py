"""Content-addressed layout cache: keys, round-trips, corruption."""

import json

import pytest

from repro.batch.cache import (
    CACHE_SCHEMA_VERSION,
    LayoutCache,
    cache_key,
    network_fingerprint,
)
from repro.core.metrics import measure
from repro.core.schemes import layout_network
from repro.grid.io import layout_to_json
from repro.topology import Hypercube, Ring
from repro.topology.base import build_network


@pytest.fixture()
def cache(tmp_path):
    return LayoutCache(tmp_path / "cache")


def _store(cache, net, *, scheme="auto", layers=2, params=None):
    lay = layout_network(net, layers=layers)
    payload = layout_to_json(lay)
    metrics = measure(lay).as_dict()
    key, doc = cache.key_for(net, scheme=scheme, layers=layers, params=params)
    cache.put(key, doc, payload, metrics)
    return key, doc, payload, metrics


class TestKeys:
    def test_key_is_deterministic(self, cache):
        net = Ring(6)
        k1, d1 = cache.key_for(net, scheme="auto", layers=2)
        k2, d2 = cache.key_for(Ring(6), scheme="auto", layers=2)
        assert k1 == k2 and d1 == d2

    def test_key_changes_with_every_input(self, cache):
        net = Ring(6)
        base, _ = cache.key_for(net, scheme="auto", layers=2)
        variants = [
            cache.key_for(net, scheme="generic", layers=2)[0],
            cache.key_for(net, scheme="auto", layers=4)[0],
            cache.key_for(net, scheme="auto", layers=2,
                          params={"x": 1})[0],
            cache.key_for(Ring(7), scheme="auto", layers=2)[0],
        ]
        assert len({base, *variants}) == 5

    def test_key_changes_when_format_version_bumps(self, cache, monkeypatch):
        from repro.batch import cache as mod

        net = Ring(6)
        before, _ = cache.key_for(net, scheme="auto", layers=2)
        monkeypatch.setattr(mod, "FORMAT_VERSION", mod.FORMAT_VERSION + 1)
        bumped_fmt, _ = cache.key_for(net, scheme="auto", layers=2)
        monkeypatch.setattr(mod, "FORMAT_VERSION", mod.FORMAT_VERSION - 1)
        monkeypatch.setattr(
            mod, "CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1
        )
        bumped_schema, _ = cache.key_for(net, scheme="auto", layers=2)
        assert len({before, bumped_fmt, bumped_schema}) == 3

    def test_fingerprint_preserves_structure_order_and_name(self):
        a = build_network([0, 1, 2], [(0, 1), (1, 2)], "a")
        b = build_network([0, 1, 2], [(1, 2), (0, 1)], "a")  # edge order
        c = build_network([0, 1, 2], [(0, 1), (1, 2)], "c")  # name
        fps = [network_fingerprint(n) for n in (a, b, c)]
        assert len({cache_key(fp) for fp in fps}) == 3

    def test_same_structure_same_fingerprint_across_doors(self):
        """A graph rebuilt from the same node/edge stream fingerprints
        identically, whatever code path constructed it."""
        net = Hypercube(3)
        clone = build_network(net.nodes, net.edges, net.name)
        assert network_fingerprint(net) == network_fingerprint(clone)


class TestRoundTrip:
    def test_cold_build_vs_cache_hit_byte_identical(self, cache):
        net = Hypercube(3)
        key, doc, payload, metrics = _store(cache, net)
        entry = cache.get(key, doc)
        assert entry is not None
        assert entry.layout_json == payload  # byte-identical payload
        assert entry.metrics == metrics
        assert layout_to_json(entry.layout()) == payload
        assert cache.stats.hits == 1 and cache.stats.writes == 1

    def test_miss_on_absent_key(self, cache):
        key, doc = cache.key_for(Ring(5), scheme="auto", layers=2)
        assert cache.get(key, doc) is None
        assert cache.stats.misses == 1

    def test_metrics_optional(self, cache):
        net = Ring(5)
        lay = layout_network(net, layers=2)
        key, doc = cache.key_for(net, scheme="auto", layers=2)
        cache.put(key, doc, layout_to_json(lay))
        entry = cache.get(key, doc)
        assert entry is not None and entry.metrics is None


class TestCorruption:
    def _entry_path(self, cache, key):
        return cache.root / key[:2] / f"{key}.json"

    def test_truncated_entry_detected_and_rebuilt(self, cache):
        net = Ring(6)
        key, doc, payload, _ = _store(cache, net)
        path = self._entry_path(cache, key)
        path.write_text(path.read_text()[: len(payload) // 2])
        assert cache.get(key, doc) is None  # miss, not garbage
        assert cache.stats.corrupt == 1
        assert not path.exists()  # quarantined
        _store(cache, net)  # rebuild repopulates
        assert cache.get(key, doc).layout_json == payload

    def test_bitflip_in_payload_detected(self, cache):
        net = Ring(6)
        key, doc, payload, _ = _store(cache, net)
        path = self._entry_path(cache, key)
        stored = json.loads(path.read_text())
        stored["layout"] = stored["layout"].replace('"layers": 2', '"layers": 3')
        path.write_text(json.dumps(stored))  # digest now stale
        assert cache.get(key, doc) is None
        assert cache.stats.corrupt == 1

    def test_key_document_mismatch_is_a_miss(self, cache):
        """A swapped file (right digest, wrong key doc) is not trusted."""
        net = Ring(6)
        key, doc, _, _ = _store(cache, net)
        other_key, other_doc = cache.key_for(
            Ring(7), scheme="auto", layers=2
        )
        path = self._entry_path(cache, key)
        swapped = self._entry_path(cache, other_key)
        swapped.parent.mkdir(parents=True, exist_ok=True)
        swapped.write_text(path.read_text())
        assert cache.get(other_key, other_doc) is None
        assert cache.stats.corrupt == 1

    def test_non_dict_entry_is_corrupt(self, cache):
        key, doc = cache.key_for(Ring(5), scheme="auto", layers=2)
        path = self._entry_path(cache, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("[1, 2, 3]")
        assert cache.get(key, doc) is None
        assert cache.stats.corrupt == 1


class TestReadonly:
    def test_readonly_never_writes_or_deletes(self, tmp_path):
        rw = LayoutCache(tmp_path / "c")
        net = Ring(6)
        key, doc, payload, metrics = _store(rw, net)
        ro = LayoutCache(tmp_path / "c", readonly=True)
        assert ro.get(key, doc).layout_json == payload
        assert ro.put(key, doc, payload, metrics) is False
        # Corrupt the entry: readonly detects but must not unlink.
        path = rw.root / key[:2] / f"{key}.json"
        path.write_text("not json")
        assert ro.get(key, doc) is None
        assert path.exists()
        assert ro.stats.writes == 0
