#!/usr/bin/env python
"""Regenerate the paper's four figures.

* Figure 1 -- top view of a recursive grid layout (blocks in a 2-D grid
  with channels between them): rendered from the CCC(3) cluster layout.
* Figure 2 -- collinear layout of a 3-ary 2-cube (8 tracks).
* Figure 3 -- collinear layout of K_9 (20 tracks).
* Figure 4 -- collinear layout of a 4-cube (10 tracks).

ASCII art goes to stdout; SVG files are written next to this script
(figure1.svg .. figure4.svg) with layer-colored wires.

Run:  python examples/paper_figures.py
"""

import pathlib

from repro import ascii_collinear, svg_layout
from repro.collinear import (
    complete_recursive,
    hypercube_recursive,
    kary_recursive,
)
from repro.core import (
    layout_ccc,
    layout_collinear_network,
)
from repro.topology import CompleteGraph, Hypercube, KAryNCube

OUT = pathlib.Path(__file__).resolve().parent


def figure(n: int, title: str, art: str, svg: str) -> None:
    print(f"\n=== Figure {n}: {title} ===")
    print(art)
    path = OUT / f"figure{n}.svg"
    path.write_text(svg)
    print(f"[SVG written to {path}]")


def main() -> None:
    # Figure 2: collinear 3-ary 2-cube.
    lay2 = kary_recursive(3, 2)
    geo2 = layout_collinear_network(
        KAryNCube(3, 2), order=lay2.order, name="figure2"
    )
    figure(
        2,
        f"collinear 3-ary 2-cube, {lay2.num_tracks} tracks "
        "(paper: f_3(2) = 8)",
        ascii_collinear(lay2),
        svg_layout(geo2),
    )

    # Figure 3: collinear K_9.
    lay3 = complete_recursive(9)
    geo3 = layout_collinear_network(CompleteGraph(9), name="figure3")
    figure(
        3,
        f"collinear K9, {lay3.num_tracks} tracks (paper: |81/4| = 20)",
        ascii_collinear(lay3),
        svg_layout(geo3),
    )

    # Figure 4: collinear 4-cube.
    lay4 = hypercube_recursive(4)
    geo4 = layout_collinear_network(
        Hypercube(4), order=lay4.order, name="figure4"
    )
    figure(
        4,
        f"collinear 4-cube, {lay4.num_tracks} tracks (paper: |2*16/3| = 10)",
        ascii_collinear(lay4),
        svg_layout(geo4),
    )

    # Figure 1: recursive grid layout top view -- a grid of cluster
    # blocks with routing channels between them (CCC(3): 8 cycle
    # blocks arranged 4 x 2 around its quotient 3-cube).
    ccc = layout_ccc(3)
    print("\n=== Figure 1: recursive grid layout top view (CCC(3)) ===")
    print(
        f"blocks: {ccc.meta['clusters']}  grid: {ccc.meta['rows']}x"
        f"{ccc.meta['cols']}  row channels: {ccc.meta['row_tracks']} "
        f"col channels: {ccc.meta['col_tracks']}"
    )
    path = OUT / "figure1.svg"
    path.write_text(svg_layout(ccc))
    print(f"[SVG written to {path}]")


if __name__ == "__main__":
    main()
