"""Measured metrics, including weighted (routing-path) diameter."""

import pytest

from repro.core import layout_collinear_network, layout_hypercube, layout_kary, measure
from repro.core.metrics import weighted_diameter, wire_length_weights
from repro.topology import Hypercube, Ring


class TestMeasure:
    def test_snapshot_matches_layout(self):
        lay = layout_kary(3, 2)
        m = measure(lay)
        assert m.area == lay.area
        assert m.volume == lay.volume
        assert m.max_wire == lay.max_wire_length()
        assert m.num_nodes == 9
        assert m.path_wire is None

    def test_as_dict(self):
        m = measure(layout_kary(3, 2))
        d = m.as_dict()
        assert d["area"] == m.area and d["N"] == 9

    def test_path_wire_requested(self):
        m = measure(layout_kary(3, 2), path_wire=True)
        assert m.path_wire is not None
        assert m.path_wire >= m.max_wire  # at least one hop's wire


class TestWeights:
    def test_weights_cover_all_edges(self):
        lay = layout_collinear_network(Ring(6))
        adj = wire_length_weights(lay)
        assert set(adj) == set(range(6))
        assert all(len(nbrs) == 2 for nbrs in adj.values())

    def test_parallel_edges_keep_min(self):
        # Two parallel wires between a/b of different lengths.
        from repro.grid.geometry import Rect, Segment
        from repro.grid.layout import GridLayout
        from repro.grid.wire import Wire

        lay = GridLayout(layers=2)
        lay.place("a", Rect(0, 4, 2, 2))
        lay.place("b", Rect(10, 4, 2, 2))
        lay.add_wire(Wire("a", "b", [Segment.make(2, 5, 10, 5, 1)], edge_key=0))
        lay.add_wire(
            Wire(
                "a",
                "b",
                [
                    Segment.make(1, 4, 1, 0, 2),
                    Segment.make(1, 0, 11, 0, 1),
                    Segment.make(11, 0, 11, 4, 2),
                ],
                edge_key=1,
            )
        )
        adj = wire_length_weights(lay)
        assert dict(adj["a"])["b"] == 8


class TestWeightedDiameter:
    def test_ring_diameter(self):
        lay = layout_collinear_network(Ring(6))
        d = weighted_diameter(lay)
        # Worst pair needs at least the longest single wire.
        assert d >= lay.max_wire_length()

    def test_subsampling_lower_bounds(self):
        lay = layout_hypercube(5)
        full = weighted_diameter(lay)
        sampled = weighted_diameter(lay, max_sources=4)
        assert sampled <= full
        assert sampled > 0

    def test_hypercube_path_wire_scales_with_layers(self):
        """Claim (4): the routing-path wire total drops with L."""
        d2 = weighted_diameter(layout_hypercube(6, layers=2))
        d8 = weighted_diameter(layout_hypercube(6, layers=8))
        assert d8 < d2

    def test_sampling_monotone_in_sources(self):
        # More sources can only raise the (max-over-sources) estimate.
        lay = layout_hypercube(4)
        d1 = weighted_diameter(lay, max_sources=1)
        d4 = weighted_diameter(lay, max_sources=4)
        dall = weighted_diameter(lay)
        assert d1 <= d4 <= dall


class TestHypercubeMetricsSanity:
    def test_max_wire_close_to_half_row(self):
        """Binary order: the longest row wire spans half the row, which
        is the 2N/(3L) of Section 5.1 (up to node-size slack)."""
        lay = layout_hypercube(8, layers=2)
        m = measure(lay)
        # width ~ cols*(side + W_j); longest wire < width but > width/4
        assert m.width / 4 < m.max_wire < m.width + m.height
