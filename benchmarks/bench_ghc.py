"""E4.1: Section 4.1 -- generalized hypercubes.

Regenerates:

* the collinear recurrence f(m+1) = r f(m) + |r^2/4| exactly (and the
  mixed-radix variant);
* the L-layer area vs r^2 N^2/(4 L^2), incl. the odd-L variant;
* the maximum wire length vs r N/(2L) and the routing-path wire total
  vs r N/L (claim 4 at the family level).
"""

from repro.bench.harness import comparison_row
from repro.collinear.formulas import ghc_tracks, mixed_radix_ghc_tracks
from repro.collinear.recursions import ghc_recursive
from repro.core import layout_ghc, measure
from repro.core.analysis import ghc_prediction
from repro.core.metrics import weighted_diameter


def test_collinear_recurrence(benchmark, report):
    rows = []
    for radices in ((3, 3), (4, 4), (3, 4), (5, 5), (3, 3, 3)):
        lay = ghc_recursive(radices)
        want = mixed_radix_ghc_tracks(radices)
        assert lay.num_tracks == want
        rows.append([str(radices), want, lay.num_tracks, lay.max_cut()])
    report(
        "E4.1a: GHC collinear recurrence (paper) vs construction vs max cut",
        ["radices", "paper f", "constructed", "max cut (left-edge optimum)"],
        rows,
    )
    benchmark(ghc_recursive, (4, 4))


def test_area_sweep(benchmark, report):
    rows = []
    for r, n in ((4, 2), (6, 2), (8, 2), (4, 3)):
        for L in (2, 4):
            m = measure(layout_ghc((r,) * n, layers=L, node_side="min"))
            p = ghc_prediction(r, n, L)
            rows.append(comparison_row([r, n, L], round(p.area), m.area))
    report(
        "E4.1b: L-layer GHC area vs r^2 N^2/(4 L^2)",
        ["r", "n", "L", "paper", "measured", "ratio"],
        rows,
    )
    benchmark.pedantic(
        layout_ghc, args=((8, 8),), kwargs={"node_side": "min"},
        rounds=1, iterations=1,
    )


def test_odd_layers(report, benchmark):
    rows = []
    for L in (3, 5):
        m = measure(layout_ghc((6, 6), layers=L, node_side="min"))
        p = ghc_prediction(6, 2, L)
        rows.append(comparison_row([L], round(p.area), m.area))
    report(
        "E4.1c: odd-L GHC area vs r^2 N^2/(4 (L^2-1))",
        ["L", "paper", "measured", "ratio"],
        rows,
    )
    benchmark(layout_ghc, (4, 4), layers=3)


def test_wire_lengths(report, benchmark):
    rows = []
    for L in (2, 4, 8):
        lay = layout_ghc((6, 6), layers=L, node_side="min")
        m = measure(lay)
        p = ghc_prediction(6, 2, L)
        path = weighted_diameter(lay, max_sources=6)
        rows.append([
            L, round(p.max_wire, 1), m.max_wire,
            f"{m.max_wire / p.max_wire:.2f}",
            round(p.path_wire, 1), path, f"{path / p.path_wire:.2f}",
        ])
    report(
        "E4.1d: GHC max wire vs rN/(2L); routing-path wire vs rN/L",
        ["L", "paper wire", "measured", "ratio",
         "paper path", "measured", "ratio"],
        rows,
    )
    benchmark(layout_ghc, (6, 6), layers=4)
