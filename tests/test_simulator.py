"""Store-and-forward network simulator."""

import pytest

from repro.core import layout_hypercube
from repro.routing import (
    all_to_all,
    bit_complement,
    dimension_order_route,
    hot_spot,
    random_permutation,
    simulate,
)
from repro.topology import Hypercube, Ring


class TestSimulatorBasics:
    def test_single_message(self):
        net = Ring(6)
        res = simulate(net, [(0, 3)])
        # 3 hops x (1 delay + 1 router overhead).
        assert res.makespan == 6
        assert res.messages == 1
        assert res.max_latency == 6

    def test_zero_hop_message(self):
        net = Ring(5)
        res = simulate(net, [(2, 2)])
        assert res.makespan == 0

    def test_disjoint_messages_run_in_parallel(self):
        net = Ring(8)
        res = simulate(net, [(0, 1), (4, 5)])
        assert res.makespan == 2  # both one hop, no contention

    def test_contention_serializes(self):
        net = Ring(8)
        # Two messages over the same first link 0->1.
        res = simulate(net, [(0, 1), (0, 1)])
        assert res.makespan == 4  # second waits for the link
        assert res.max_link_load == 2
        assert res.busiest_link == (0, 1)

    def test_deterministic(self):
        net = Hypercube(4)
        msgs = random_permutation(net)
        a = simulate(net, msgs)
        b = simulate(net, msgs)
        assert a == b

    def test_custom_router(self):
        net = Hypercube(3)
        route = lambda s, d: dimension_order_route(net, s, d)  # noqa: E731
        res = simulate(net, bit_complement(net), router=route)
        assert res.messages == 8
        assert res.makespan > 0

    def test_layout_delays_slow_things_down(self):
        net = Hypercube(4)
        lay = layout_hypercube(4)
        fast = simulate(net, bit_complement(net))
        slow = simulate(net, bit_complement(net), layout=lay)
        assert slow.makespan > fast.makespan

    def test_guard_against_runaway(self):
        net = Ring(5)
        with pytest.raises(RuntimeError, match="max_cycles"):
            simulate(net, all_to_all(net), max_cycles=3)


class TestSimulatorScenarios:
    def test_hot_spot_congestion(self):
        net = Hypercube(4)
        hs = simulate(net, hot_spot(net, spot=0))
        perm = simulate(net, random_permutation(net))
        # All 15 messages funnel into node 0's few links.
        assert hs.max_link_load > perm.max_link_load

    def test_multilayer_layout_speeds_up_traffic(self):
        """The end-to-end performance claim: same network, same
        traffic, same routes -- the L=8 layout's shorter wires finish
        the pattern faster."""
        net = Hypercube(6)
        route = lambda s, d: dimension_order_route(net, s, d)  # noqa: E731
        msgs = bit_complement(net)
        l2 = simulate(
            net, msgs, layout=layout_hypercube(6, layers=2, node_side="min"),
            router=route,
        )
        l8 = simulate(
            net, msgs, layout=layout_hypercube(6, layers=8, node_side="min"),
            router=route,
        )
        assert l8.makespan < l2.makespan
        assert l8.avg_latency < l2.avg_latency

    def test_all_to_all_completes(self):
        net = Hypercube(3)
        res = simulate(net, all_to_all(net))
        assert res.messages == 56
        assert res.makespan >= res.max_latency

    def test_result_dict(self):
        net = Ring(4)
        d = simulate(net, [(0, 2)]).as_dict()
        assert set(d) == {
            "makespan", "avg_latency", "max_latency", "messages",
            "max_link_load", "busiest_link", "max_utilization",
            "avg_utilization", "queue_depth_hist",
            "latency_p50", "latency_p90", "latency_p99",
        }

    def test_latency_summaries_come_from_the_histogram(self):
        """avg/max/percentiles all derive from one obs Histogram, so
        every reporting surface quotes the same distribution."""
        from repro.obs.metrics import Histogram

        net = Ring(8)
        res = simulate(net, [(0, 1), (0, 2), (0, 3), (0, 4)])
        h = Histogram.from_dict(res.latency_hist)
        assert h.count == res.messages == 4
        assert res.avg_latency == h.mean
        assert res.max_latency == h.max
        assert res.latency_p50 == h.percentile(0.50)
        assert res.latency_p90 == h.percentile(0.90)
        assert res.latency_p99 == h.percentile(0.99)
        assert 0 < res.latency_p50 <= res.latency_p99 <= res.max_latency

    def test_latency_percentiles_exact_on_uniform_traffic(self):
        # Four messages over the same hop count: one latency value, so
        # every percentile is exact and equals avg and max.
        net = Ring(12)
        res = simulate(net, [(i, i + 2) for i in (0, 3, 6, 9)])
        assert res.latency_p50 == res.latency_p99 == res.max_latency
        assert res.avg_latency == res.max_latency

    def test_empty_run_has_zero_percentiles(self):
        res = simulate(Ring(4), [])
        assert res.latency_p50 == res.latency_p90 == res.latency_p99 == 0.0
        assert res.avg_latency == 0.0


class TestLinkObservability:
    def test_contended_link_fully_utilized(self):
        net = Ring(8)
        res = simulate(net, [(0, 1), (0, 1)])
        # Link (0, 1) is busy back-to-back for the whole makespan.
        assert res.link_utilization[(0, 1)] == 1.0
        assert res.max_utilization == 1.0
        # The second message waited once, alone in the queue.
        assert res.queue_depth_hist == {1: 1}

    def test_uncontended_run_has_empty_queue_hist(self):
        net = Ring(6)
        res = simulate(net, [(0, 3)])
        assert res.queue_depth_hist == {}
        # Each of the 3 links is busy 2 of the 6 cycles.
        assert res.link_utilization[(0, 1)] == pytest.approx(1 / 3)
        assert res.avg_utilization == pytest.approx(1 / 3)

    def test_deeper_queues_recorded(self):
        net = Ring(8)
        res = simulate(net, [(0, 1)] * 4)
        # Messages 2..4 queue behind the head: depths 1, 2, 3 observed.
        assert res.queue_depth_hist == {1: 1, 2: 1, 3: 1}
        assert res.link_utilization[(0, 1)] == 1.0

    def test_metrics_published_when_enabled(self):
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            net = Ring(8)
            simulate(net, [(0, 1), (0, 1)])
            snap = obs.registry().snapshot()
        finally:
            obs.disable()
            obs.reset()
        assert snap["counters"]["simulator.runs"] == 1
        assert snap["counters"]["simulator.messages"] == 2
        assert snap["counters"]["simulator.hops"] == 2
        assert snap["counters"]["simulator.events"] >= 3
        assert snap["histograms"]["simulator.queue_depth"]["count"] == 1
        util = snap["histograms"]["simulator.link_utilization"]
        assert util["count"] == 1
        assert util["max"] == 1.0

    def test_metrics_not_published_when_disabled(self):
        from repro import obs

        obs.reset()
        net = Ring(8)
        res = simulate(net, [(0, 1), (0, 1)])
        assert obs.registry().snapshot()["counters"] == {}
        # ...but the result still carries the observability fields.
        assert res.max_utilization == 1.0


class TestCutThrough:
    def test_pipelining_beats_store_and_forward(self):
        """Classic: SF ~ hops * L * d vs CT ~ hops * d + L."""
        net = Ring(8)
        sf = simulate(net, [(0, 4)], mode="store_forward", message_length=8)
        ct = simulate(net, [(0, 4)], mode="cut_through", message_length=8)
        assert sf.makespan == 4 * (8 + 1)  # 4 hops x (8 flits + router)
        assert ct.makespan == 4 * 2 + 7    # headers pipeline, tail +7
        assert ct.makespan < sf.makespan

    def test_single_flit_equal(self):
        net = Ring(8)
        sf = simulate(net, [(0, 3)], mode="store_forward", message_length=1)
        ct = simulate(net, [(0, 3)], mode="cut_through", message_length=1)
        assert sf.makespan == ct.makespan

    def test_serialization_contention(self):
        # Two long messages over the same link: the second waits for
        # the first's body even under cut-through.
        net = Ring(8)
        res = simulate(
            net, [(0, 2), (0, 2)], mode="cut_through", message_length=10
        )
        assert res.makespan > 14  # second delayed by >= serialization

    def test_zero_hop_no_tail(self):
        net = Ring(5)
        res = simulate(net, [(1, 1)], mode="cut_through", message_length=9)
        assert res.makespan == 0

    def test_bad_mode(self):
        net = Ring(4)
        with pytest.raises(ValueError, match="mode"):
            simulate(net, [(0, 1)], mode="teleport")

    def test_bad_length(self):
        net = Ring(4)
        with pytest.raises(ValueError, match="message_length"):
            simulate(net, [(0, 1)], message_length=0)

    def test_layout_wires_still_matter(self):
        net = Hypercube(6)
        route = lambda s, d: dimension_order_route(net, s, d)  # noqa: E731
        from repro.core import layout_hypercube

        l2 = simulate(
            net, bit_complement(net), mode="cut_through", message_length=4,
            layout=layout_hypercube(6, layers=2, node_side="min"),
            router=route,
        )
        l8 = simulate(
            net, bit_complement(net), mode="cut_through", message_length=4,
            layout=layout_hypercube(6, layers=8, node_side="min"),
            router=route,
        )
        assert l8.makespan < l2.makespan
