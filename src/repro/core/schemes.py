"""Per-family layout constructors.

Each function builds the :class:`~repro.core.spec.LayoutSpec` the paper
prescribes for a network family and runs the orthogonal multilayer
builder.  The common machinery is :func:`layout_grid` (place every node
at a grid position, classify each edge as row/column/extra) and
:func:`layout_cluster_network` (quotient + blocks: the PN-cluster
route of Sections 3.2, 4.2, 4.3 and 5.2).

All functions accept:

* ``layers`` -- the multilayer budget L (L = 2 is the Thompson model);
* ``node_side`` -- node square side, default the network's maximum
  degree (the Thompson convention); the scalability experiments sweep
  it upward.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

from repro.collinear.orders import folded_linear_order
from repro.core.builder import build_orthogonal_layout
from repro.core.spec import BlockCell, LayoutSpec, LinkSpec, NodeCell
from repro.grid.layout import GridLayout
from repro.topology.base import Network, Node
from repro.topology.butterfly import Butterfly
from repro.topology.cayley import CayleyGraph
from repro.topology.ccc import CubeConnectedCycles, ReducedHypercube
from repro.topology.clustered import KAryNCubeCluster
from repro.topology.complete import CompleteGraph
from repro.topology.ghc import GeneralizedHypercube
from repro.topology.hypercube import EnhancedCube, FoldedHypercube, Hypercube
from repro.topology.isn import IndirectSwapNetwork
from repro.topology.kary import KAryNCube, Ring
from repro.topology.partition import Partition, quotient
from repro.topology.product import ProductNetwork
from repro.topology.swap import HSN

__all__ = [
    "layout_grid",
    "layout_network",
    "layout_collinear_network",
    "layout_kary",
    "layout_hypercube",
    "layout_ghc",
    "layout_complete",
    "layout_product",
    "layout_folded_hypercube",
    "layout_enhanced_cube",
    "layout_cluster_network",
    "layout_butterfly",
    "layout_wrapped_butterfly",
    "layout_generic_grid",
    "layout_scc",
    "layout_isn",
    "layout_ccc",
    "layout_reduced_hypercube",
    "layout_hsn",
    "layout_kary_cluster",
    "layout_cayley",
]


# ---------------------------------------------------------------------------
# Generic machinery


def layout_grid(
    network: Network,
    position: Callable[[Node], tuple[int, int]],
    *,
    layers: int = 2,
    node_side: int | str | None = None,
    name: str | None = None,
) -> GridLayout:
    """Lay out ``network`` with each node at ``position(node)``.

    Edges within one grid row become row links, edges within one column
    become column links, and anything else becomes an extra link with
    dedicated tracks (Section 5.3's treatment of diameter links).

    ``node_side`` may be an int, ``None`` (the Thompson convention:
    side = max degree) or ``"min"`` (the smallest square whose sides
    can host this layout's pin demands -- the regime where the paper's
    wiring-dominated asymptotics show earliest).
    """
    pos = {v: position(v) for v in network.nodes}
    if node_side == "min":
        side = max(1, _min_pin_side(network, pos))
    elif node_side is None:
        side = max(network.max_degree, 1)
    else:
        side = node_side
    rows = max(i for i, _ in pos.values()) + 1
    cols = max(j for _, j in pos.values()) + 1
    taken: dict[tuple[int, int], Node] = {}
    for v, p in pos.items():
        if p in taken:
            raise ValueError(f"nodes {taken[p]!r} and {v!r} share cell {p}")
        taken[p] = v
    cells = {p: NodeCell(v, side) for v, p in pos.items()}

    row_links, col_links, extra_links = [], [], []
    keys: dict[tuple, int] = {}
    for u, v in network.edges:
        key = (pos[u], pos[v], u, v)
        edge_key = keys.get(key, 0)
        keys[key] = edge_key + 1
        link = LinkSpec(pos[u], pos[v], u, v, edge_key=edge_key)
        if link.same_row:
            row_links.append(link)
        elif link.same_col:
            col_links.append(link)
        else:
            extra_links.append(link)

    spec = LayoutSpec(
        rows=rows,
        cols=cols,
        cells=cells,
        row_links=row_links,
        col_links=col_links,
        extra_links=extra_links,
        layers=layers,
        name=name or network.name,
    )
    layout = build_orthogonal_layout(spec)
    layout.meta["network"] = network.name
    layout.meta["num_nodes"] = network.num_nodes
    layout.meta["node_side"] = side
    layout.meta["extra_link_count"] = len(extra_links)
    return layout


def _min_pin_side(network: Network, pos: dict[Node, tuple[int, int]]) -> int:
    """Largest per-node, per-side pin demand under ``pos``.

    Top pins serve row wires and extra-link stubs; right pins serve
    column wires and extra-link entries.  (Plain-node grids only --
    cluster layouts size members by total degree.)
    """
    top: dict[Node, int] = {}
    right: dict[Node, int] = {}
    for u, v in network.edges:
        (iu, ju), (iv, jv) = pos[u], pos[v]
        if iu == iv and ju != jv:
            top[u] = top.get(u, 0) + 1
            top[v] = top.get(v, 0) + 1
        elif ju == jv and iu != iv:
            right[u] = right.get(u, 0) + 1
            right[v] = right.get(v, 0) + 1
        else:
            top[u] = top.get(u, 0) + 1
            right[v] = right.get(v, 0) + 1
    demands = list(top.values()) + list(right.values())
    return max(demands, default=1)


def layout_collinear_network(
    network: Network,
    *,
    layers: int = 2,
    order: Sequence[Node] | None = None,
    node_side: int | None = None,
    name: str | None = None,
) -> GridLayout:
    """A collinear layout (all nodes in one row) under L layers.

    With L = 2 this realizes the paper's collinear constructions
    geometrically (Figures 2-4); with larger L it is the *multilayer
    collinear* baseline of Section 2.2, whose area shrinks by at most
    L/2 (only the channel height divides by the number of groups).
    """
    seq = list(order) if order is not None else list(network.nodes)
    if sorted(map(repr, seq)) != sorted(map(repr, network.nodes)):
        raise ValueError("order must be a permutation of the network's nodes")
    index = {v: j for j, v in enumerate(seq)}
    return layout_grid(
        network,
        lambda v: (0, index[v]),
        layers=layers,
        node_side=node_side,
        name=name or f"collinear {network.name}",
    )


def _digit_value(digits: Sequence[int], radices: Sequence[int]) -> int:
    val = 0
    for d, r in zip(digits, radices):
        val = val * r + d
    return val


def _folded_digit_rank(radices: Sequence[int]) -> Callable[[Sequence[int]], int]:
    """Rank of a digit tuple under per-digit boustrophedon order.

    Used by the ``folded=True`` variants: Section 3.1 folds each row and
    column so wrap links become short, cutting the maximum wire length
    to O(N/(L k^2)) without changing any track count.
    """
    ranks = [
        {d: i for i, d in enumerate(folded_linear_order(r))} for r in radices
    ]

    def rank(digits: Sequence[int]) -> int:
        val = 0
        for d, r, rk in zip(digits, radices, ranks):
            val = val * r + rk[d]
        return val

    return rank


# ---------------------------------------------------------------------------
# Product-family layouts (Sections 3.1, 4.1, 5.1)


def layout_kary(
    k: int,
    n: int,
    *,
    layers: int = 2,
    node_side: int | None = None,
    folded: bool = False,
    wraparound: bool = True,
) -> GridLayout:
    """Section 3.1: the k-ary n-cube.  Rows take the high ``ceil(n/2)``
    digits, columns the low ``floor(n/2)`` digits, so each row is a
    k-ary floor(n/2)-cube and each column a k-ary ceil(n/2)-cube."""
    net = KAryNCube(k, n, wraparound=wraparound)
    hi = (n + 1) // 2  # number of high digits (row coordinate)
    hi_radices = [k] * hi
    lo_radices = [k] * (n - hi)
    if folded:
        hi_rank = _folded_digit_rank(hi_radices)
        lo_rank = _folded_digit_rank(lo_radices)
    else:
        hi_rank = lambda ds: _digit_value(ds, hi_radices)  # noqa: E731
        lo_rank = lambda ds: _digit_value(ds, lo_radices)  # noqa: E731

    def position(v: tuple[int, ...]) -> tuple[int, int]:
        return (hi_rank(v[:hi]), lo_rank(v[hi:]) if n > hi else 0)

    return layout_grid(
        net, position, layers=layers, node_side=node_side,
        name=f"{net.name} L={layers}" + (" folded" if folded else ""),
    )


def layout_hypercube(
    n: int, *, layers: int = 2, node_side: int | None = None
) -> GridLayout:
    """Section 5.1: rows take the high ``ceil(n/2)`` bits (binary
    order), columns the low bits; each row/column is laid out by the
    binary-order collinear layout with floor(2 sqrt(N)/3)-ish tracks."""
    net = Hypercube(n)
    lo_bits = n // 2

    def position(v: int) -> tuple[int, int]:
        return (v >> lo_bits, v & ((1 << lo_bits) - 1))

    return layout_grid(
        net, position, layers=layers, node_side=node_side,
        name=f"{net.name} L={layers}",
    )


def layout_ghc(
    radices: Sequence[int],
    *,
    layers: int = 2,
    node_side: int | None = None,
    split: int | None = None,
) -> GridLayout:
    """Section 4.1: the generalized hypercube.  ``split`` = m gives the
    rows the high ``n - m`` digits and the columns the low ``m`` digits
    (default: m = floor(n/2))."""
    net = GeneralizedHypercube(radices)
    n = len(net.radices)
    m = split if split is not None else n // 2
    if not (0 <= m <= n):
        raise ValueError("split out of range")
    hi_radices = net.radices[: n - m]
    lo_radices = net.radices[n - m :]

    def position(v: tuple[int, ...]) -> tuple[int, int]:
        return (
            _digit_value(v[: n - m], hi_radices),
            _digit_value(v[n - m :], lo_radices) if m else 0,
        )

    return layout_grid(
        net, position, layers=layers, node_side=node_side,
        name=f"{net.name} L={layers}",
    )


def layout_complete(
    n: int, *, layers: int = 2, node_side: int | None = None
) -> GridLayout:
    """The strictly optimal collinear K_N layout (Figure 3), multilayered."""
    return layout_collinear_network(
        CompleteGraph(n), layers=layers, node_side=node_side
    )


def layout_product(
    a: Network,
    b: Network,
    *,
    layers: int = 2,
    node_side: int | None = None,
) -> GridLayout:
    """Section 3.2: lay out ``A x B`` from the factors' collinear
    layouts -- A along rows, B along columns."""
    net = ProductNetwork(a, b)
    a_index = a.index
    b_index = b.index

    def position(v: tuple) -> tuple[int, int]:
        x, y = v
        return (b_index[y], a_index[x])

    return layout_grid(
        net, position, layers=layers, node_side=node_side,
        name=f"{net.name} L={layers}",
    )


# ---------------------------------------------------------------------------
# Hypercube variants with extra links (Section 5.3)


def layout_folded_hypercube(
    n: int, *, layers: int = 2, node_side: int | None = None
) -> GridLayout:
    """Section 5.3: hypercube layout plus N/2 diameter links, each on a
    dedicated extra horizontal + vertical track."""
    net = FoldedHypercube(n)
    lo_bits = n // 2

    def position(v: int) -> tuple[int, int]:
        return (v >> lo_bits, v & ((1 << lo_bits) - 1))

    return layout_grid(
        net, position, layers=layers, node_side=node_side,
        name=f"{net.name} L={layers}",
    )


def layout_enhanced_cube(
    n: int, *, layers: int = 2, node_side: int | None = None, seed: int = 2000
) -> GridLayout:
    """Section 5.3: hypercube plus N random extra links."""
    net = EnhancedCube(n, seed=seed)
    lo_bits = n // 2

    def position(v: int) -> tuple[int, int]:
        return (v >> lo_bits, v & ((1 << lo_bits) - 1))

    return layout_grid(
        net, position, layers=layers, node_side=node_side,
        name=f"{net.name} L={layers}",
    )


# ---------------------------------------------------------------------------
# PN-cluster layouts (Sections 3.2, 4.2, 4.3, 5.2)


def layout_cluster_network(
    network: Network,
    partition: Partition,
    cluster_position: Callable[[Hashable], tuple[int, int]],
    *,
    layers: int = 2,
    node_side: int | None = None,
    member_order: Callable[[Hashable, list[Node]], list[Node]] | None = None,
    name: str | None = None,
) -> GridLayout:
    """The recursive grid layout scheme, one level deep (Section 2.3).

    The quotient multigraph of ``partition`` is laid out orthogonally
    with each supernode expanded into a strip block; inter-cluster links
    attach to the member nodes the topology dictates.
    """
    side = node_side if node_side is not None else max(network.max_degree, 1)
    q = quotient(network, partition)
    pos = {c: cluster_position(c) for c in q.clusters}
    rows = max(i for i, _ in pos.values()) + 1
    cols = max(j for _, j in pos.values()) + 1
    taken: dict[tuple[int, int], Hashable] = {}
    for c, p in pos.items():
        if p in taken:
            raise ValueError(f"clusters {taken[p]!r} and {c!r} share cell {p}")
        taken[p] = c

    cells = {}
    for c in q.clusters:
        members = q.members[c]
        ordered = (
            member_order(c, members) if member_order is not None else sorted(
                members, key=network.index.__getitem__
            )
        )
        cells[pos[c]] = BlockCell(
            label=c,
            nodes=ordered,
            edges=q.intra_edges[c],
            node_side=side,
        )

    row_links, col_links, extra_links = [], [], []
    keys: dict[tuple, int] = {}
    for cu, cv, u, v in q.inter_edges:
        key = (pos[cu], pos[cv], u, v)
        edge_key = keys.get(key, 0)
        keys[key] = edge_key + 1
        link = LinkSpec(pos[cu], pos[cv], u, v, edge_key=edge_key)
        if link.same_row:
            row_links.append(link)
        elif link.same_col:
            col_links.append(link)
        else:
            extra_links.append(link)

    spec = LayoutSpec(
        rows=rows,
        cols=cols,
        cells=cells,
        row_links=row_links,
        col_links=col_links,
        extra_links=extra_links,
        layers=layers,
        name=name or f"clustered {network.name}",
    )
    layout = build_orthogonal_layout(spec)
    layout.meta["network"] = network.name
    layout.meta["num_nodes"] = network.num_nodes
    layout.meta["node_side"] = side
    layout.meta["clusters"] = len(q.clusters)
    return layout


def _bit_split_position(bits: int) -> Callable[[int], tuple[int, int]]:
    lo = bits // 2

    def position(w: int) -> tuple[int, int]:
        return (w >> lo, w & ((1 << lo) - 1))

    return position


def layout_butterfly(
    m: int, *, layers: int = 2, node_side: int | None = None
) -> GridLayout:
    """Section 4.2: the butterfly as a (radix-2) GHC cluster -- quotient
    hypercube with 4 parallel links per pair, row-pair blocks."""
    net = Butterfly(m)
    part = net.row_pair_partition()

    def member_order(c, members):
        # Strip order: level-major, so straight edges are short and the
        # strip cutwidth stays O(1).
        return sorted(members)

    return layout_cluster_network(
        net,
        part,
        _bit_split_position(m - 1),
        layers=layers,
        node_side=node_side,
        member_order=member_order,
        name=f"{net.name} L={layers}",
    )


def layout_wrapped_butterfly(
    m: int, *, layers: int = 2, node_side: int | None = None
) -> GridLayout:
    """The wrapped butterfly, via the same row-pair GHC-cluster route
    as Section 4.2's plain butterfly (quotient hypercube, multiplicity
    4)."""
    from repro.topology.wrapped_butterfly import WrappedButterfly

    net = WrappedButterfly(m)
    part = net.row_pair_partition()
    return layout_cluster_network(
        net,
        part,
        _bit_split_position(m - 1),
        layers=layers,
        node_side=node_side,
        member_order=lambda c, ms: sorted(ms),
        name=f"{net.name} L={layers}",
    )


def layout_isn(
    m: int, *, layers: int = 2, node_side: int | None = None
) -> GridLayout:
    """Section 4.3: the indirect swap network; same structure as the
    butterfly with quotient multiplicity 2 instead of 4."""
    net = IndirectSwapNetwork(m)
    part = net.row_pair_partition()
    return layout_cluster_network(
        net,
        part,
        _bit_split_position(m - 1),
        layers=layers,
        node_side=node_side,
        member_order=lambda c, ms: sorted(ms),
        name=f"{net.name} L={layers}",
    )


def layout_ccc(
    n: int, *, layers: int = 2, node_side: int | None = None
) -> GridLayout:
    """Section 5.2: CCC as a hypercube cluster; cycle-order strips."""
    net = CubeConnectedCycles(n)
    part = net.cluster_partition()
    return layout_cluster_network(
        net,
        part,
        _bit_split_position(n),
        layers=layers,
        node_side=node_side,
        member_order=lambda w, ms: sorted(ms, key=lambda v: v[1]),
        name=f"{net.name} L={layers}",
    )


def layout_reduced_hypercube(
    n: int, *, layers: int = 2, node_side: int | None = None
) -> GridLayout:
    """Section 5.2: reduced hypercube; binary-order strips."""
    net = ReducedHypercube(n)
    part = net.cluster_partition()
    return layout_cluster_network(
        net,
        part,
        _bit_split_position(n),
        layers=layers,
        node_side=node_side,
        member_order=lambda w, ms: sorted(ms, key=lambda v: v[1]),
        name=f"{net.name} L={layers}",
    )


def layout_hsn(
    nucleus: Network,
    levels: int,
    *,
    layers: int = 2,
    node_side: int | None = None,
) -> GridLayout:
    """Section 4.3: HSN/HHN -- quotient is the (l-1)-dimensional radix-r
    GHC over the cluster addresses."""
    net = HSN(nucleus, levels)
    part = net.cluster_partition()
    r = net.r
    digits = levels - 1
    hi = digits - digits // 2
    hi_radices = [r] * hi
    lo_radices = [r] * (digits - hi)

    def position(c: tuple[int, ...]) -> tuple[int, int]:
        return (
            _digit_value(c[:hi], hi_radices),
            _digit_value(c[hi:], lo_radices) if digits > hi else 0,
        )

    return layout_cluster_network(
        net,
        part,
        position,
        layers=layers,
        node_side=node_side,
        member_order=lambda c, ms: sorted(ms, key=lambda v: v[0]),
        name=f"{net.name} L={layers}",
    )


def layout_kary_cluster(
    k: int,
    n: int,
    c: int,
    *,
    cluster: str = "hypercube",
    layers: int = 2,
    node_side: int | None = None,
) -> GridLayout:
    """Section 3.2: k-ary n-cube cluster-c."""
    net = KAryNCubeCluster(k, n, c, cluster=cluster)
    part = net.cluster_partition()
    hi = (n + 1) // 2
    hi_radices = [k] * hi
    lo_radices = [k] * (n - hi)

    def position(q: tuple[int, ...]) -> tuple[int, int]:
        return (
            _digit_value(q[:hi], hi_radices),
            _digit_value(q[hi:], lo_radices) if n > hi else 0,
        )

    return layout_cluster_network(
        net,
        part,
        position,
        layers=layers,
        node_side=node_side,
        member_order=lambda q, ms: sorted(ms, key=lambda v: v[1]),
        name=f"{net.name} L={layers}",
    )


def layout_generic_grid(
    network: Network,
    *,
    layers: int = 2,
    node_side: int | None = None,
    aspect: float = 1.0,
    optimize: bool = False,
    seed: int = 2000,
) -> GridLayout:
    """A 2-D layout for *any* network: nodes in a near-square grid,
    every non-row/column edge on dedicated tracks.

    This generalizes the Section 5.3 extra-link treatment into a
    universal fallback (each awkward edge costs one horizontal and one
    vertical track, split across the layer groups).  Area is
    O((sqrt(N) s + E/L)^2) -- far from optimal for structured networks,
    but it gives the "similar strategies apply" families of Section 4.3
    a legal, validated 2-D multilayer layout to compare against the
    specialized schemes.

    ``optimize=True`` runs the swap-based placement search of
    :mod:`repro.core.placement` instead of index order, typically
    cutting 20-40% of the area on unstructured graphs.
    """
    import math

    n = network.num_nodes
    if optimize:
        from repro.core.placement import optimize_placement

        pos_map = optimize_placement(network, aspect=aspect, seed=seed)

        def position(v: Node) -> tuple[int, int]:
            return pos_map[v]

    else:
        cols = max(1, round(math.sqrt(n * aspect)))
        index = network.index

        def position(v: Node) -> tuple[int, int]:
            i = index[v]
            return (i // cols, i % cols)

    return layout_grid(
        network, position, layers=layers, node_side=node_side,
        name=f"generic-grid {network.name} L={layers}"
        + (" optimized" if optimize else ""),
    )


def layout_scc(
    n: int, *, layers: int = 2, node_side: int | None = None
) -> GridLayout:
    """Star-connected cycles (Section 4.3's closing remark, ref. [15]).

    Clusters = all cycles sharing a last symbol; only the generator
    that swaps the last position crosses symbol classes, so the
    quotient is K_n with multiplicity (n-2)! -- the same structure as
    the star graph's own last-symbol decomposition -- laid out
    collinearly like the other Cayley families.
    """
    from repro.topology.cayley import StarConnectedCycles

    net = StarConnectedCycles(n)
    part = Partition(
        {v: v[0][-1] for v in net.nodes}, name="scc-last-symbol"
    )
    return layout_cluster_network(
        net,
        part,
        lambda c: (0, c),
        layers=layers,
        node_side=node_side,
        name=f"{net.name} L={layers}",
    )


def layout_cayley(
    net: CayleyGraph, *, layers: int = 2, node_side: int | None = None
) -> GridLayout:
    """Section 4.3's closing remark: star/pancake/bubble-sort/
    transposition graphs as complete-graph clusters (last-symbol
    decomposition; quotient K_n with uniform multiplicity)."""
    part = net.last_symbol_partition()
    return layout_cluster_network(
        net,
        part,
        lambda c: (0, c),
        layers=layers,
        node_side=node_side,
        name=f"{net.name} L={layers}",
    )


# ---------------------------------------------------------------------------
# Dispatch


def layout_network(
    network: Network, *, layers: int = 2, node_side: int | None = None
) -> GridLayout:
    """One-call layout for any supported network instance."""
    if isinstance(network, FoldedHypercube):
        return layout_folded_hypercube(
            network.n, layers=layers, node_side=node_side
        )
    if isinstance(network, EnhancedCube):
        return layout_enhanced_cube(
            network.n, layers=layers, node_side=node_side, seed=network.seed
        )
    if isinstance(network, Hypercube):
        return layout_hypercube(network.n, layers=layers, node_side=node_side)
    if isinstance(network, Ring):
        return layout_collinear_network(
            network, layers=layers, node_side=node_side
        )
    if isinstance(network, KAryNCubeCluster):
        return layout_kary_cluster(
            network.k,
            network.n,
            network.c,
            cluster=network.cluster_kind,
            layers=layers,
            node_side=node_side,
        )
    if isinstance(network, KAryNCube):
        return layout_kary(
            network.k,
            network.n,
            layers=layers,
            node_side=node_side,
            wraparound=network.wraparound,
        )
    if isinstance(network, GeneralizedHypercube):
        return layout_ghc(network.radices, layers=layers, node_side=node_side)
    if isinstance(network, CompleteGraph):
        return layout_complete(network.n, layers=layers, node_side=node_side)
    if isinstance(network, Butterfly):
        return layout_butterfly(network.m, layers=layers, node_side=node_side)
    from repro.topology.wrapped_butterfly import WrappedButterfly

    if isinstance(network, WrappedButterfly):
        return layout_wrapped_butterfly(
            network.m, layers=layers, node_side=node_side
        )
    from repro.topology.cayley import StarConnectedCycles

    if isinstance(network, StarConnectedCycles):
        return layout_scc(network.n, layers=layers, node_side=node_side)
    if isinstance(network, IndirectSwapNetwork):
        return layout_isn(network.m, layers=layers, node_side=node_side)
    if isinstance(network, CubeConnectedCycles):
        return layout_ccc(network.n, layers=layers, node_side=node_side)
    if isinstance(network, ReducedHypercube):
        return layout_reduced_hypercube(
            network.n, layers=layers, node_side=node_side
        )
    if isinstance(network, HSN):
        return layout_hsn(
            network.nucleus, network.levels, layers=layers, node_side=node_side
        )
    if isinstance(network, CayleyGraph):
        return layout_cayley(network, layers=layers, node_side=node_side)
    if isinstance(network, ProductNetwork):
        return layout_product(
            network.a, network.b, layers=layers, node_side=node_side
        )
    # Fallback: any graph has a collinear layout.
    return layout_collinear_network(
        network, layers=layers, node_side=node_side
    )
