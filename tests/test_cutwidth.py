"""Exact cutwidth: certifying the paper's collinear layouts optimal."""

import pytest

from repro.collinear import (
    collinear_layout,
    complete_graph_tracks,
    hypercube_tracks,
    kary_tracks,
)
from repro.collinear.cutwidth import (
    DP_NODE_LIMIT,
    cutwidth_certificate,
    exact_cutwidth,
    optimal_order,
)
from repro.topology import (
    CompleteGraph,
    GeneralizedHypercube,
    Hypercube,
    KAryNCube,
    Ring,
)
from repro.topology.base import build_network


class TestExactCutwidth:
    def test_path(self):
        net = build_network(range(6), [(i, i + 1) for i in range(5)], "path")
        assert exact_cutwidth(net) == 1

    @pytest.mark.parametrize("k", [3, 5, 8])
    def test_ring_is_two(self, k):
        assert exact_cutwidth(Ring(k)) == 2

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_complete_graph_formula_is_optimal(self, n):
        """Figure 3's |N^2/4| is *strictly* optimal (ref. [30])."""
        assert exact_cutwidth(CompleteGraph(n)) == complete_graph_tracks(n)

    @pytest.mark.parametrize("dim", [1, 2, 3, 4])
    def test_hypercube_formula_is_optimal(self, dim):
        """|2N/3| equals the true cutwidth: the Section 5.1 layout is
        exactly optimal among collinear layouts (Harper)."""
        assert exact_cutwidth(Hypercube(dim)) == hypercube_tracks(dim)

    @pytest.mark.parametrize("k,n", [(3, 1), (3, 2), (4, 2)])
    def test_kary_formula_is_optimal(self, k, n):
        assert exact_cutwidth(KAryNCube(k, n)) == kary_tracks(k, n)

    def test_ghc44_paper_recurrence_is_suboptimal(self):
        """Finding: the true cutwidth of GHC(4,4) is 18; the paper's
        recurrence gives 20, and our left-edge engine already achieves
        the optimum.  Consistent with the 1 + o(1) optimality claim."""
        from repro.collinear.formulas import mixed_radix_ghc_tracks
        from repro.collinear.recursions import ghc_construction_order

        net = GeneralizedHypercube((4, 4))
        opt = exact_cutwidth(net)
        assert opt == 18
        assert mixed_radix_ghc_tracks((4, 4)) == 20
        lay = collinear_layout(
            net.nodes, net.edges, ghc_construction_order((4, 4))
        )
        assert lay.num_tracks == opt

    def test_multigraph_edges_count(self):
        net = build_network([0, 1], [(0, 1), (0, 1), (0, 1)], "triple")
        assert exact_cutwidth(net) == 3

    def test_limit_guard(self):
        with pytest.raises(ValueError, match="limit"):
            exact_cutwidth(Hypercube(5), limit=20)

    def test_tiny(self):
        assert exact_cutwidth(build_network([0], [], "dot")) == 0


class TestCertificate:
    def test_dense_graph_certificate_matches_dp(self):
        """Regression: on K12 the certificate's profile recomputation
        (diff array + prefix sum) must reproduce the DP value exactly.
        The old per-edge gap walk is O(E * span) on dense graphs --
        and any profile bug shows up here as a value mismatch."""
        net = CompleteGraph(12)
        cw, order = cutwidth_certificate(net)
        assert cw == exact_cutwidth(net) == complete_graph_tracks(12)
        assert sorted(map(repr, order)) == sorted(map(repr, net.nodes))
        lay = collinear_layout(net.nodes, net.edges, order)
        assert lay.num_tracks == cw

    def test_certificate_on_multigraph(self):
        net = build_network([0, 1, 2], [(0, 1), (0, 1), (1, 2)], "multi")
        cw, order = cutwidth_certificate(net)
        assert cw == exact_cutwidth(net) == 2

    def test_certificate_empty(self):
        assert cutwidth_certificate(build_network([], [], "void")) == (0, [])


class TestNodeLimit:
    """All exact-DP entry points share one documented cap."""

    def test_default_limits_agree(self):
        import inspect

        from repro.collinear import cutwidth as mod

        for fn in (exact_cutwidth, optimal_order, cutwidth_certificate):
            sig = inspect.signature(fn)
            assert sig.parameters["limit"].default == mod.DP_NODE_LIMIT

    @pytest.mark.parametrize(
        "fn,name",
        [
            (exact_cutwidth, "exact_cutwidth"),
            (optimal_order, "optimal_order"),
            (cutwidth_certificate, "cutwidth_certificate"),
        ],
    )
    def test_over_limit_error_names_function_and_cap(self, fn, name):
        net = Hypercube(5)  # 32 nodes > any sane limit
        with pytest.raises(ValueError) as exc:
            fn(net, limit=DP_NODE_LIMIT)
        msg = str(exc.value)
        assert name in msg
        assert str(DP_NODE_LIMIT) in msg
        assert "32" in msg

    def test_at_limit_is_accepted(self):
        net = build_network(range(4), [(i, i + 1) for i in range(3)], "p4")
        assert exact_cutwidth(net, limit=4) == 1


class TestFallbackAgreement:
    """The pure-Python DP and the vectorized DP are interchangeable."""

    @pytest.mark.parametrize(
        "net",
        [Ring(7), Hypercube(3), CompleteGraph(6), KAryNCube(3, 2),
         build_network([0, 1, 2], [(0, 1), (0, 1), (1, 2)], "multi")],
        ids=lambda n: n.name,
    )
    def test_python_fallback_matches(self, net, monkeypatch):
        from repro import accel
        from repro.collinear import cutwidth as mod

        reference = exact_cutwidth(net)
        pure = accel.get_backend("pure")
        monkeypatch.setattr(mod._accel, "get_backend", lambda name=None: pure)
        assert exact_cutwidth(net) == reference
        cw, order = cutwidth_certificate(net)
        assert cw == reference
        lay = collinear_layout(net.nodes, net.edges, order)
        assert lay.num_tracks == reference


class TestOptimalOrder:
    @pytest.mark.parametrize(
        "net",
        [Ring(6), Hypercube(3), CompleteGraph(6), KAryNCube(3, 2)],
        ids=lambda n: n.name,
    )
    def test_order_achieves_cutwidth(self, net):
        order = optimal_order(net)
        assert sorted(map(repr, order)) == sorted(map(repr, net.nodes))
        lay = collinear_layout(net.nodes, net.edges, order)
        assert lay.num_tracks == exact_cutwidth(net)

    def test_empty(self):
        assert optimal_order(build_network([], [], "void")) == []
