"""Structure-of-arrays geometry kernel for routed layouts.

A :class:`WireTable` flattens a :class:`~repro.grid.layout.GridLayout`'s
wires into contiguous integer arrays -- segment endpoints and layers in
wire-major path order, per-wire index ranges (CSR offsets), and the
z-runs (vias and risers) -- so every downstream consumer of layout
geometry (metrics, link delays, serialization, the brute-force oracle's
occupancy expansion, the renderers) can read flat data instead of
re-walking per-wire ``Wire``/``Segment`` object graphs.  Thompson-style
grid layouts are natively flat integer data (paper Section 2.1), so the
table is both the fast path and the compact representation: on the
paper-scale cases it is several times smaller than the object graph
(``python -m repro stats --mem`` prints the accounting).

The table is **derived, immutable data**: it is built once per layout by
:meth:`GridLayout.wire_table` and cached there.  The cache is
revalidated against an identity stamp -- the number of placements plus
the ``id()`` of every ``Wire`` in ``layout.wires`` -- so appending a
wire, placing a node, or replacing a wire object (the mutation harness
in :mod:`repro.check` does exactly that) all invalidate it.  Mutating a
``Wire``'s *own* ``segments`` list in place is not detected and is
unsupported everywhere in this codebase: wires are replaced, never
edited.

Like :mod:`repro.collinear.cutwidth`, the module has a vectorized numpy
path and a pure-python fallback (``array``-module storage, loop
reductions) selected at import; set ``REPRO_TABLE_FALLBACK=1`` to force
the fallback even when numpy is importable (CI runs the parity suite
both ways).  Both paths produce byte-identical consumer outputs.
"""

from __future__ import annotations

import os
import sys
from array import array as _stdarray
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (layout -> table)
    from repro.grid.layout import GridLayout

try:  # vectorized path; the pure-python fallback mirrors it exactly
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

if os.environ.get("REPRO_TABLE_FALLBACK") == "1":
    _np = None

__all__ = ["WireTable", "object_graph_bytes", "HAVE_NUMPY"]

#: Whether the vectorized path is active (numpy importable and not
#: disabled via ``REPRO_TABLE_FALLBACK=1``).
HAVE_NUMPY = _np is not None


def _freeze(values: list[int], use_numpy: bool):
    """Materialize a built-up int list as the backing storage."""
    if use_numpy:
        return _np.asarray(values, dtype=_np.int64)
    return _stdarray("q", values)


def _freeze8(values: list[int], use_numpy: bool):
    """Like :func:`_freeze` but one byte per entry (small flag arrays)."""
    if use_numpy:
        return _np.asarray(values, dtype=_np.int8)
    return _stdarray("b", values)


class WireTable:
    """Flat-array view of one layout's wires.

    Array schema (all int64; ``W`` wires, ``S`` segments, ``Z`` z-runs):

    ``seg_x1, seg_y1, seg_x2, seg_y2, seg_layer``
        One entry per segment, in wire-major path order (exactly the
        order ``layout.wires[i].segments`` stores them), endpoints
        normalized as ``Segment`` stores them.
    ``seg_rev``
        int8 flag per segment: 1 when the wire's path traverses the
        segment from ``(x2, y2)`` to ``(x1, y1)`` (i.e. against the
        normalized endpoint order), else 0.  Together with the
        normalized endpoints this recovers the oriented path: the
        junction between consecutive segments ``i`` and ``i + 1`` is
        segment ``i``'s path *end*, ``(x1, y1)`` if ``seg_rev[i]``
        else ``(x2, y2)``.
    ``wire_seg_start``
        CSR offsets, length ``W + 1``: wire ``i``'s segments occupy
        rows ``wire_seg_start[i] : wire_seg_start[i + 1]``.
    ``zrun_x, zrun_y, zrun_lo, zrun_hi`` / ``wire_zrun_start``
        One entry per z-run -- a via between consecutive segments on
        different layers, or a riser's vertical run -- mirroring
        ``Wire.z_occupancy()`` exactly, with CSR offsets per wire.
    ``wire_length``
        ``Wire.length`` per wire (planar segment lengths; a riser's
        z-extent).
    ``wire_is_riser``
        1 for riser wires, else 0.
    ``node_x0, node_y0, node_x1, node_y1, node_layer``
        Placement rectangle corners and active layer, in
        ``layout.placements`` order (bounding-box input; node identity
        stays on the layout).
    """

    __slots__ = (
        "num_wires", "num_segments", "num_zruns", "uses_numpy",
        "seg_x1", "seg_y1", "seg_x2", "seg_y2", "seg_layer", "seg_rev",
        "wire_seg_start",
        "zrun_x", "zrun_y", "zrun_lo", "zrun_hi", "wire_zrun_start",
        "wire_length", "wire_is_riser",
        "node_x0", "node_y0", "node_x1", "node_y1", "node_layer",
        "_seg_rows", "_zrun_rows", "_lengths_list", "_units",
        "_endpoints",
    )

    def __init__(self, layout: "GridLayout", *, use_numpy: bool | None = None):
        if use_numpy is None:
            use_numpy = HAVE_NUMPY
        elif use_numpy and not HAVE_NUMPY:  # pragma: no cover - guard
            raise ValueError("numpy is not available")
        self.uses_numpy = use_numpy

        from repro.grid.wire import walk_path

        sx1: list[int] = []
        sy1: list[int] = []
        sx2: list[int] = []
        sy2: list[int] = []
        slay: list[int] = []
        srev: list[int] = []
        seg_start = [0]
        zx: list[int] = []
        zy: list[int] = []
        zlo: list[int] = []
        zhi: list[int] = []
        zrun_start = [0]
        wlen: list[int] = []
        wriser: list[int] = []

        for w in layout.wires:
            if w.riser is not None:
                x, y, lo, hi = w.riser
                zx.append(x)
                zy.append(y)
                zlo.append(lo)
                zhi.append(hi)
                wlen.append(hi - lo)
                wriser.append(1)
            else:
                segs = w.segments
                length = 0
                prev_layer = None
                for s, (_, end) in zip(segs, walk_path(segs, w.u, w.v)):
                    sx1.append(s.x1)
                    sy1.append(s.y1)
                    sx2.append(s.x2)
                    sy2.append(s.y2)
                    slay.append(s.layer)
                    srev.append(1 if end == (s.x1, s.y1) else 0)
                    length += (s.x2 - s.x1) + (s.y2 - s.y1)
                    if prev_layer is not None and prev_layer != s.layer:
                        # The junction is the *start* of this segment
                        # along the path == end of the previous one.
                        zx.append(start_x)
                        zy.append(start_y)
                        zlo.append(min(prev_layer, s.layer))
                        zhi.append(max(prev_layer, s.layer))
                    prev_layer = s.layer
                    start_x, start_y = end
                wlen.append(length)
                wriser.append(0)
            seg_start.append(len(sx1))
            zrun_start.append(len(zx))

        nx0: list[int] = []
        ny0: list[int] = []
        nx1: list[int] = []
        ny1: list[int] = []
        nlay: list[int] = []
        for p in layout.placements.values():
            nx0.append(p.rect.x0)
            ny0.append(p.rect.y0)
            nx1.append(p.rect.x1)
            ny1.append(p.rect.y1)
            nlay.append(p.layer)

        self.num_wires = len(layout.wires)
        self.num_segments = len(sx1)
        self.num_zruns = len(zx)
        self.seg_x1 = _freeze(sx1, use_numpy)
        self.seg_y1 = _freeze(sy1, use_numpy)
        self.seg_x2 = _freeze(sx2, use_numpy)
        self.seg_y2 = _freeze(sy2, use_numpy)
        self.seg_layer = _freeze(slay, use_numpy)
        self.seg_rev = _freeze8(srev, use_numpy)
        self.wire_seg_start = _freeze(seg_start, use_numpy)
        self.zrun_x = _freeze(zx, use_numpy)
        self.zrun_y = _freeze(zy, use_numpy)
        self.zrun_lo = _freeze(zlo, use_numpy)
        self.zrun_hi = _freeze(zhi, use_numpy)
        self.wire_zrun_start = _freeze(zrun_start, use_numpy)
        self.wire_length = _freeze(wlen, use_numpy)
        self.wire_is_riser = _freeze(wriser, use_numpy)
        self.node_x0 = _freeze(nx0, use_numpy)
        self.node_y0 = _freeze(ny0, use_numpy)
        self.node_x1 = _freeze(nx1, use_numpy)
        self.node_y1 = _freeze(ny1, use_numpy)
        self.node_layer = _freeze(nlay, use_numpy)
        self._seg_rows = None
        self._zrun_rows = None
        self._lengths_list = None
        self._units = None
        self._endpoints = None

    @classmethod
    def from_layout(
        cls, layout: "GridLayout", *, use_numpy: bool | None = None
    ) -> "WireTable":
        return cls(layout, use_numpy=use_numpy)

    # -- measurement ----------------------------------------------------

    def bounds(self) -> tuple[int, int, int, int] | None:
        """(x0, y0, x1, y1) over node rects and segment endpoints, or
        ``None`` when the layout has neither (risers never count,
        matching the object path)."""
        if self.num_segments == 0 and len(self.node_x0) == 0:
            return None
        if self.uses_numpy:
            xs = (self.node_x0, self.node_x1, self.seg_x1, self.seg_x2)
            ys = (self.node_y0, self.node_y1, self.seg_y1, self.seg_y2)
            x0 = min(int(a.min()) for a in xs if len(a))
            x1 = max(int(a.max()) for a in xs if len(a))
            y0 = min(int(a.min()) for a in ys if len(a))
            y1 = max(int(a.max()) for a in ys if len(a))
            return (x0, y0, x1, y1)
        xs = [a for a in (self.node_x0, self.node_x1, self.seg_x1, self.seg_x2) if len(a)]
        ys = [a for a in (self.node_y0, self.node_y1, self.seg_y1, self.seg_y2) if len(a)]
        return (
            min(min(a) for a in xs),
            min(min(a) for a in ys),
            max(max(a) for a in xs),
            max(max(a) for a in ys),
        )

    def wire_lengths(self) -> list[int]:
        """Per-wire routed lengths as plain ints (``Wire.length``)."""
        if self._lengths_list is None:
            if self.uses_numpy:
                self._lengths_list = self.wire_length.tolist()
            else:
                self._lengths_list = list(self.wire_length)
        return self._lengths_list

    def max_wire_length(self) -> int:
        if self.num_wires == 0:
            return 0
        if self.uses_numpy:
            return int(self.wire_length.max())
        return max(self.wire_length)

    def total_wire_length(self) -> int:
        if self.num_wires == 0:
            return 0
        if self.uses_numpy:
            return int(self.wire_length.sum())
        return sum(self.wire_length)

    def via_count(self) -> int:
        """``sum(len(w.vias()))``: one via per z-run (a riser's single
        z-run counts once, exactly as ``Wire.vias`` reports it)."""
        return self.num_zruns

    def layers_used(self) -> set[int]:
        """Union of segment layers and riser z-spans (inclusive),
        mirroring ``GridLayout.layers_used``: a via between two planar
        layers does *not* claim the layers it passes through."""
        if self.uses_numpy:
            used = set(_np.unique(self.seg_layer).tolist())
        else:
            used = set(self.seg_layer)
        starts = self.wire_zrun_start
        for wi, riser in enumerate(self.wire_is_riser):
            if riser:
                z = starts[wi]
                used.update(range(int(self.zrun_lo[z]), int(self.zrun_hi[z]) + 1))
        return used

    def link_delay_values(self, *, alpha: float = 1.0, base: float = 1.0) -> list[int]:
        """``max(1, ceil(base + alpha * length))`` per wire, vectorized."""
        if self.uses_numpy:
            d = _np.ceil(base + alpha * self.wire_length.astype(_np.float64))
            return _np.maximum(1, d.astype(_np.int64)).tolist()
        return [
            max(1, int(-(-(base + alpha * ln) // 1)))
            for ln in self.wire_length
        ]

    # -- row views (serialization, rendering) ---------------------------

    def segment_rows(self) -> list[list[int]]:
        """``[x1, y1, x2, y2, layer]`` per segment, wire-major path
        order -- exactly the lists ``layout_to_json`` serializes."""
        if self._seg_rows is None:
            if self.uses_numpy:
                stacked = _np.stack(
                    (self.seg_x1, self.seg_y1, self.seg_x2, self.seg_y2,
                     self.seg_layer),
                    axis=1,
                ) if self.num_segments else _np.empty((0, 5), dtype=_np.int64)
                self._seg_rows = stacked.tolist()
            else:
                self._seg_rows = [
                    [self.seg_x1[i], self.seg_y1[i], self.seg_x2[i],
                     self.seg_y2[i], self.seg_layer[i]]
                    for i in range(self.num_segments)
                ]
        return self._seg_rows

    def wire_segment_rows(self, wi: int) -> list[list[int]]:
        rows = self.segment_rows()
        starts = self.wire_seg_start
        return rows[int(starts[wi]):int(starts[wi + 1])]

    def zrun_rows(self) -> list[tuple[tuple[int, int], int, int]]:
        """``((x, y), z_lo, z_hi)`` per z-run (``Wire.z_occupancy``)."""
        if self._zrun_rows is None:
            self._zrun_rows = [
                ((int(self.zrun_x[i]), int(self.zrun_y[i])),
                 int(self.zrun_lo[i]), int(self.zrun_hi[i]))
                for i in range(self.num_zruns)
            ]
        return self._zrun_rows

    def wire_zruns(self, wi: int) -> list[tuple[tuple[int, int], int, int]]:
        rows = self.zrun_rows()
        starts = self.wire_zrun_start
        return rows[int(starts[wi]):int(starts[wi + 1])]

    def wire_vias(self, wi: int) -> list[tuple[int, int]]:
        """Planar via positions of wire ``wi`` (``Wire.vias``)."""
        return [pt for pt, _, _ in self.wire_zruns(wi)]

    def wire_endpoints(self):
        """Per-wire planar path pins ``(sx, sy, ex, ey)``, cached.

        ``(sx[i], sy[i])`` is wire ``i``'s path start (``Wire.start``)
        and ``(ex[i], ey[i])`` its path end (``Wire.end``), recovered
        from ``seg_rev``; a riser's start and end share its planar
        point.  Backing storage matches the table's (numpy arrays or
        stdlib ``array``).
        """
        if self._endpoints is not None:
            return self._endpoints
        W = self.num_wires
        if self.uses_numpy:
            if W == 0:
                empty = _np.empty(0, dtype=_np.int64)
                self._endpoints = (empty, empty, empty, empty)
                return self._endpoints
            starts = self.wire_seg_start
            first = starts[:-1]
            last = starts[1:] - 1
            riser = self.wire_is_riser.astype(bool)
            if self.num_segments:
                f = _np.clip(first, 0, self.num_segments - 1)
                l = _np.clip(last, 0, self.num_segments - 1)
                revf = self.seg_rev[f].astype(bool)
                revl = self.seg_rev[l].astype(bool)
                sx = _np.where(revf, self.seg_x2[f], self.seg_x1[f])
                sy = _np.where(revf, self.seg_y2[f], self.seg_y1[f])
                ex = _np.where(revl, self.seg_x1[l], self.seg_x2[l])
                ey = _np.where(revl, self.seg_y1[l], self.seg_y2[l])
            else:
                sx = _np.zeros(W, dtype=_np.int64)
                sy = _np.zeros(W, dtype=_np.int64)
                ex = _np.zeros(W, dtype=_np.int64)
                ey = _np.zeros(W, dtype=_np.int64)
            if riser.any():
                zi = self.wire_zrun_start[:-1][riser]
                sx[riser] = self.zrun_x[zi]
                sy[riser] = self.zrun_y[zi]
                ex[riser] = self.zrun_x[zi]
                ey[riser] = self.zrun_y[zi]
            self._endpoints = (sx, sy, ex, ey)
            return self._endpoints
        sx_l: list[int] = []
        sy_l: list[int] = []
        ex_l: list[int] = []
        ey_l: list[int] = []
        starts = self.wire_seg_start
        zstarts = self.wire_zrun_start
        for wi in range(W):
            if self.wire_is_riser[wi]:
                z = zstarts[wi]
                sx_l.append(self.zrun_x[z])
                sy_l.append(self.zrun_y[z])
                ex_l.append(self.zrun_x[z])
                ey_l.append(self.zrun_y[z])
                continue
            f = starts[wi]
            l = starts[wi + 1] - 1
            if self.seg_rev[f]:
                sx_l.append(self.seg_x2[f])
                sy_l.append(self.seg_y2[f])
            else:
                sx_l.append(self.seg_x1[f])
                sy_l.append(self.seg_y1[f])
            if self.seg_rev[l]:
                ex_l.append(self.seg_x1[l])
                ey_l.append(self.seg_y1[l])
            else:
                ex_l.append(self.seg_x2[l])
                ey_l.append(self.seg_y2[l])
        self._endpoints = (
            _freeze(sx_l, False), _freeze(sy_l, False),
            _freeze(ex_l, False), _freeze(ey_l, False),
        )
        return self._endpoints

    # -- occupancy expansion (oracle) -----------------------------------

    def _unit_expansion(self):
        """Bulk unit expansion of every segment, cached.

        Returns ``(edges, edge_start, points, point_start)`` where
        ``edges[k] = (x, y, layer, horizontal)`` is the lower endpoint
        of one unit grid edge, ``points`` covers every grid point of
        every segment (endpoints included, shared junctions repeated
        per segment -- exactly ``Segment.planar_points``), and the
        ``*_start`` arrays are per-wire CSR offsets.  Order is
        wire-major, path order, ascending coordinate within a segment.
        """
        if self._units is not None:
            return self._units
        if self.uses_numpy and self.num_segments:
            x1, y1 = self.seg_x1, self.seg_y1
            lens = (self.seg_x2 - x1) + (self.seg_y2 - y1)
            horiz = (self.seg_y1 == self.seg_y2)
            cum = _np.concatenate(([0], _np.cumsum(lens)))

            def expand(counts, count_cum):
                sid = _np.repeat(_np.arange(self.num_segments), counts)
                off = _np.arange(int(count_cum[-1])) - _np.repeat(
                    count_cum[:-1], counts
                )
                h = horiz[sid]
                ex = x1[sid] + _np.where(h, off, 0)
                ey = y1[sid] + _np.where(h, 0, off)
                return _np.stack(
                    (ex, ey, self.seg_layer[sid], h.astype(_np.int64)),
                    axis=1,
                ).tolist()

            edges = expand(lens, cum)
            pcum = cum + _np.arange(self.num_segments + 1)
            points = expand(lens + 1, pcum)
            edge_start = cum[self.wire_seg_start].tolist()
            point_start = pcum[self.wire_seg_start].tolist()
        else:
            edges, points = [], []
            edge_start, point_start = [0], [0]
            starts = self.wire_seg_start
            for wi in range(self.num_wires):
                for i in range(int(starts[wi]), int(starts[wi + 1])):
                    x, y = self.seg_x1[i], self.seg_y1[i]
                    lay = self.seg_layer[i]
                    if self.seg_y1[i] == self.seg_y2[i]:
                        for xx in range(x, self.seg_x2[i]):
                            edges.append([xx, y, lay, 1])
                        for xx in range(x, self.seg_x2[i] + 1):
                            points.append([xx, y, lay, 1])
                    else:
                        for yy in range(y, self.seg_y2[i]):
                            edges.append([x, yy, lay, 0])
                        for yy in range(y, self.seg_y2[i] + 1):
                            points.append([x, yy, lay, 0])
                edge_start.append(len(edges))
                point_start.append(len(points))
        self._units = (edges, edge_start, points, point_start)
        return self._units

    def wire_unit_edges(self, wi: int):
        """Unit planar grid edges of wire ``wi`` as
        ``((x, y, layer), (x', y', layer))`` pairs, in the order the
        brute-force oracle enumerates them."""
        edges, edge_start, _, _ = self._unit_expansion()
        out = []
        for x, y, lay, h in edges[edge_start[wi]:edge_start[wi + 1]]:
            if h:
                out.append(((x, y, lay), (x + 1, y, lay)))
            else:
                out.append(((x, y, lay), (x, y + 1, lay)))
        return out

    def wire_cover_points(self, wi: int) -> list[tuple[int, int, int]]:
        """Every ``(x, y, layer)`` grid point covered by wire ``wi``'s
        segments (junction points repeated per covering segment)."""
        _, _, points, point_start = self._unit_expansion()
        return [
            (x, y, lay)
            for x, y, lay, _ in points[point_start[wi]:point_start[wi + 1]]
        ]

    def wire_cover_point_rows(self, wi: int) -> list[list[int]]:
        """Raw ``[x, y, layer, horizontal]`` cover-point rows of wire
        ``wi`` (the ASCII renderer keys glyphs off the orientation)."""
        _, _, points, point_start = self._unit_expansion()
        return points[point_start[wi]:point_start[wi + 1]]

    # -- memory accounting ----------------------------------------------

    def nbytes(self) -> int:
        """Bytes held by the core arrays (derived row/expansion caches
        excluded -- they are transient render helpers, not the
        representation)."""
        total = 0
        for name in (
            "seg_x1", "seg_y1", "seg_x2", "seg_y2", "seg_layer", "seg_rev",
            "wire_seg_start", "zrun_x", "zrun_y", "zrun_lo", "zrun_hi",
            "wire_zrun_start", "wire_length", "wire_is_riser",
            "node_x0", "node_y0", "node_x1", "node_y1", "node_layer",
        ):
            arr = getattr(self, name)
            if self.uses_numpy:
                total += int(arr.nbytes)
            else:
                total += len(arr) * arr.itemsize
        return total


def object_graph_bytes(layout: "GridLayout") -> int:
    """Bytes held by the layout's *geometry object graph*: the wire
    list, ``Wire``/``Segment``/``Point`` instances, riser tuples, any
    materialized path-point caches, placement ``Placement``/``Rect``
    objects -- plus the coordinate ``int`` objects they reference
    (deduplicated by identity; CPython's small-int cache keeps shared
    ones from double-counting).  Node labels and ``meta`` are excluded:
    the :class:`WireTable` shares them with the object graph rather
    than replacing them, so they cancel out of the comparison
    ``python -m repro stats --mem`` prints.
    """
    seen: set[int] = set()

    def size(obj) -> int:
        if id(obj) in seen:
            return 0
        seen.add(id(obj))
        return sys.getsizeof(obj)

    total = size(layout.wires)
    for w in layout.wires:
        total += size(w) + size(w.segments)
        for s in w.segments:
            total += size(s)
            for v in (s.x1, s.y1, s.x2, s.y2, s.layer):
                total += size(v)
        if w.riser is not None:
            total += size(w.riser)
            for v in w.riser:
                total += size(v)
        pts = getattr(w, "_pts", None)
        if pts is not None:
            total += size(pts)
            for p in pts:
                total += size(p) + size(p.x) + size(p.y) + size(p.layer)
    total += size(layout.placements)
    for p in layout.placements.values():
        total += size(p) + size(p.rect)
        for v in (p.rect.x0, p.rect.y0, p.rect.w, p.rect.h, p.layer):
            total += size(v)
    return total
