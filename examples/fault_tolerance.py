#!/usr/bin/env python
"""Why lay out a folded hypercube at all? Fault tolerance.

Section 5.3 spends 49N^2/(9L^2) area on the folded hypercube's N/2
diameter links.  This study shows what that area buys: under random
link failures, the folded hypercube keeps routes short and traffic
fast where the plain hypercube degrades -- the original motivation of
ref. [1].

For failure rates 0..25%:

1. fail a random subset of links (seeded);
2. rebuild shortest-hop routes around the failures;
3. run a random permutation through both networks on their own
   multilayer layouts;
4. report reachability, average route length and makespan.

Run:  python examples/fault_tolerance.py
"""

import random

from repro import FoldedHypercube, Hypercube, layout_folded_hypercube, layout_hypercube
from repro.bench import print_table
from repro.routing import random_permutation, simulate
from repro.routing.paths import shortest_hop_routes

DIM = 6
SEED = 2000


def study(net, layout, fail_rate: float, rng: random.Random):
    edges = list(net.edges)
    failed = {
        e for e in edges if rng.random() < fail_rate
    }
    table = shortest_hop_routes(net, failed_links=failed)
    msgs = random_permutation(net, seed=SEED)
    reachable = []
    hops = []
    for s, d in msgs:
        try:
            route = table.route(s, d)
        except KeyError:
            continue
        reachable.append((s, d))
        hops.append(len(route) - 1)
    res = simulate(net, reachable, layout=layout, router=table)
    return {
        "failed": len(failed),
        "reach": len(reachable) / len(msgs),
        "avg_hops": sum(hops) / len(hops) if hops else float("inf"),
        "makespan": res.makespan,
    }


def main() -> None:
    cube = Hypercube(DIM)
    folded = FoldedHypercube(DIM)
    lay_cube = layout_hypercube(DIM, layers=4)
    lay_folded = layout_folded_hypercube(DIM, layers=4)

    rows = []
    for rate in (0.0, 0.1, 0.25, 0.4):
        rng = random.Random(SEED)
        a = study(cube, lay_cube, rate, rng)
        rng = random.Random(SEED)
        b = study(folded, lay_folded, rate, rng)
        rows.append([
            f"{rate:.0%}", a["failed"], b["failed"],
            f"{a['reach']:.2f}", f"{b['reach']:.2f}",
            f"{a['avg_hops']:.2f}", f"{b['avg_hops']:.2f}",
            a["makespan"], b["makespan"],
        ])
    print_table(
        f"{DIM}-cube vs folded {DIM}-cube under random link failures "
        "(random permutation traffic)",
        ["fail rate", "dead (cube)", "dead (folded)",
         "reach (cube)", "reach (folded)",
         "hops (cube)", "hops (folded)",
         "makespan (cube)", "makespan (folded)"],
        rows,
    )
    print(
        "\nThe folded hypercube's diameter links keep routes shorter and\n"
        "connectivity higher as failures mount -- the capability its\n"
        "extra layout area (49/9 vs 16/9 N^2/L^2) pays for."
    )


if __name__ == "__main__":
    main()
