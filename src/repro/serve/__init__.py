"""Layout-as-a-service: the `repro serve` daemon and its clients.

The serving stack, bottom to top:

* :mod:`repro.serve.protocol` -- zero-dependency HTTP/1.1 framing
  (both sides of the wire) with chunked JSONL streaming;
* :mod:`repro.serve.quotas` -- per-client token buckets and the
  global in-flight admission gate;
* :mod:`repro.serve.pool` -- long-lived worker processes running
  :func:`repro.batch.runner.run_sweep_job` behind an asyncio facade;
* :mod:`repro.serve.server` -- the daemon: routing, request
  coalescing, cache-first resolution, streaming sweeps;
* :mod:`repro.serve.loadgen` -- the trace-replaying load generator
  with :mod:`repro.obs`-backed latency percentiles.
"""

from repro.serve.loadgen import run_loadgen, synth_rows
from repro.serve.pool import WorkerPool
from repro.serve.protocol import (
    SERVE_SCHEMA,
    TRACE_HEADER,
    HttpError,
    http_request,
)
from repro.serve.quotas import AdmissionGate, QuotaManager, TokenBucket
from repro.serve.server import LayoutServer, ServeConfig, run_server

__all__ = [
    "SERVE_SCHEMA",
    "TRACE_HEADER",
    "AdmissionGate",
    "HttpError",
    "LayoutServer",
    "QuotaManager",
    "ServeConfig",
    "TokenBucket",
    "WorkerPool",
    "http_request",
    "run_loadgen",
    "run_server",
    "synth_rows",
]
