"""Cayley-graph networks vs. known structure and networkx oracles."""

import math

import networkx as nx
import pytest

from repro.topology import (
    BubbleSortGraph,
    PancakeGraph,
    StarConnectedCycles,
    StarGraph,
    TranspositionNetwork,
    quotient,
)


def to_nx(net):
    g = nx.Graph()
    g.add_nodes_from(net.nodes)
    g.add_edges_from(net.edges)
    return g


class TestStarGraph:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_counts(self, n):
        s = StarGraph(n)
        assert s.num_nodes == math.factorial(n)
        assert s.is_regular() and s.max_degree == n - 1
        assert s.is_connected()

    def test_diameter_star4(self):
        # Known: diameter of S_4 is floor(3(n-1)/2) = 4.
        assert StarGraph(4).diameter() == 4

    def test_last_symbol_quotient(self):
        s = StarGraph(4)
        q = quotient(s, s.last_symbol_partition())
        mult = q.multiplicity()
        assert len(q.clusters) == 4
        # Quotient is K_4 with multiplicity (n-2)! = 2.
        assert len(mult) == 6 and set(mult.values()) == {2}

    def test_clusters_are_smaller_stars(self):
        s = StarGraph(4)
        q = quotient(s, s.last_symbol_partition())
        s3 = to_nx(StarGraph(3))
        for c, es in q.intra_edges.items():
            assert nx.is_isomorphic(nx.Graph(es), s3)


class TestPancake:
    def test_counts(self):
        p = PancakeGraph(4)
        assert p.num_nodes == 24
        assert p.is_regular() and p.max_degree == 3

    def test_diameter_known_value(self):
        # Pancake number P(4) = 4.
        assert PancakeGraph(4).diameter() == 4

    def test_quotient_structure(self):
        p = PancakeGraph(4)
        q = quotient(p, p.last_symbol_partition())
        # Only the full reversal changes the last symbol: multiplicity
        # (n-2)! between complementary first-symbol clusters.
        assert set(q.multiplicity().values()) == {math.factorial(2)}


class TestBubbleSort:
    def test_counts(self):
        b = BubbleSortGraph(4)
        assert b.num_nodes == 24
        assert b.is_regular() and b.max_degree == 3

    def test_diameter_is_inversions(self):
        # Diameter = n(n-1)/2 (max inversion count).
        assert BubbleSortGraph(4).diameter() == 6

    def test_bipartite(self):
        assert nx.is_bipartite(to_nx(BubbleSortGraph(4)))


class TestTransposition:
    def test_counts(self):
        t = TranspositionNetwork(4)
        assert t.num_nodes == 24
        assert t.is_regular() and t.max_degree == 6

    def test_diameter(self):
        # n-1 transpositions sort any permutation of n symbols.
        assert TranspositionNetwork(4).diameter() == 3

    def test_contains_star_edges(self):
        star = set(map(frozenset, (map(tuple, e) for e in [])))
        s = StarGraph(4)
        t = TranspositionNetwork(4)
        t_edges = {frozenset(e) for e in t.edges}
        assert all(frozenset(e) in t_edges for e in s.edges)


class TestSCC:
    def test_counts(self):
        scc = StarConnectedCycles(4)
        assert scc.num_nodes == 24 * 3
        assert scc.is_regular() and scc.max_degree == 3
        assert scc.is_connected()

    def test_clusters_are_cycles(self):
        scc = StarConnectedCycles(4)
        q = quotient(scc, scc.cluster_partition())
        for c, es in q.intra_edges.items():
            g = nx.Graph(es)
            assert len(g) == 3 and all(d == 2 for _, d in g.degree())

    def test_quotient_is_star_graph(self):
        scc = StarConnectedCycles(4)
        q = quotient(scc, scc.cluster_partition())
        g = nx.Graph(list(q.multiplicity()))
        assert nx.is_isomorphic(g, to_nx(StarGraph(4)))
