"""Perf-regression tracker: trajectory records and bench-diff."""

import json

import pytest

from repro.bench.trajectory import (
    TRAJECTORY_SCHEMA,
    append_record,
    bench_diff,
    gate_ratios,
    git_sha,
    load_records,
    load_timings,
    trajectory_record,
)
from repro.cli import main

SUMMARY = {
    "schema": "repro.bench-summary/v1",
    "environment": {"python": "3.12"},
    "total_seconds": 12.5,
    "benches": [
        {"bench": "bench_kary", "seconds": 4.0},
        {"bench": "bench_performance", "seconds": 8.5},
    ],
}

PERF_RECORD = {
    "schema": "repro.bench-result/v1",
    "bench": "bench_performance",
    "tests": [
        {"test": "test_cache", "seconds": 5.0},
        {"test": "test_dp", "seconds": 3.5},
    ],
    "tables": [
        {
            "title": "E7c: cold vs warm",
            "headers": ["pass", "seconds", "speedup"],
            "rows": [["cold", "1.0", "1.00x"], ["warm", "0.1", "9.6x"]],
        },
        {
            "title": "E7h: memory",
            "headers": ["layout", "bytes", "reduction"],
            "rows": [["8-cube", "1", "2.9x"], ["10-cube", "2", "2.2x"]],
        },
        {
            "title": "no ratio column here",
            "headers": ["a", "b"],
            "rows": [["x", "y"]],
        },
    ],
}


TRAFFIC_RECORD = {
    "schema": "repro.bench-result/v1",
    "bench": "bench_traffic",
    "tests": [{"test": "test_engine_vs_oracle_gate", "seconds": 20.0}],
    "tables": [
        {
            "title": "E9d: batched engine vs per-packet oracle",
            "headers": ["messages", "oracle s", "engine s", "speedup"],
            "rows": [["524288", "192.0", "8.0", "24.0x"]],
        },
    ],
}


def _slowed(summary, factor):
    doc = json.loads(json.dumps(summary))
    for b in doc["benches"]:
        b["seconds"] = round(b["seconds"] * factor, 4)
    return doc


class TestRecord:
    def test_trajectory_record_contents(self):
        rec = trajectory_record(
            SUMMARY, {"bench_performance": PERF_RECORD}, sha="abc123"
        )
        assert rec["schema"] == TRAJECTORY_SCHEMA
        assert rec["git_sha"] == "abc123"
        assert rec["benches"] == {
            "bench_kary": 4.0, "bench_performance": 8.5,
        }
        assert rec["tests"]["bench_performance::test_cache"] == 5.0
        assert rec["gates"] == {"E7c": 9.6, "E7h": 2.2}
        assert rec["total_seconds"] == 12.5

    def test_traffic_gates_merge_into_record(self):
        rec = trajectory_record(
            SUMMARY,
            {
                "bench_performance": PERF_RECORD,
                "bench_traffic": TRAFFIC_RECORD,
            },
            sha="abc123",
        )
        assert rec["gates"] == {"E7c": 9.6, "E7h": 2.2, "E9d": 24.0}
        assert rec["tests"]["bench_traffic::test_engine_vs_oracle_gate"] == 20.0

    def test_traffic_result_file_carries_gates(self, tmp_path):
        p = tmp_path / "bench_traffic.json"
        p.write_text(json.dumps(TRAFFIC_RECORD))
        _, timings, gates = load_timings(p)
        assert timings == {"bench_traffic::test_engine_vs_oracle_gate": 20.0}
        assert gates == {"E9d": 24.0}

    def test_gate_ratios_skip_baseline_rows(self):
        gates = gate_ratios(PERF_RECORD)
        assert gates["E7c"] == 9.6  # not the 1.00x baseline row

    def test_git_sha_in_this_repo(self):
        sha = git_sha()
        assert sha is None or len(sha) == 40

    def test_append_and_load(self, tmp_path):
        path = tmp_path / "trajectory.jsonl"
        for sha in ("a" * 40, "b" * 40):
            append_record(
                path, trajectory_record(SUMMARY, None, sha=sha)
            )
        records = load_records(path)
        assert [r["git_sha"] for r in records] == ["a" * 40, "b" * 40]
        label, timings, gates = load_timings(path)
        assert label.endswith("bbbbbbbbbbbb")  # newest record wins
        assert timings["bench_kary"] == 4.0
        assert gates == {}


class TestLoadTimings:
    def test_summary_json(self, tmp_path):
        p = tmp_path / "BENCH_summary.json"
        p.write_text(json.dumps(SUMMARY))
        _, timings, gates = load_timings(p)
        assert timings == {"bench_kary": 4.0, "bench_performance": 8.5}
        assert gates == {}

    def test_bench_result_json(self, tmp_path):
        p = tmp_path / "bench_performance.json"
        p.write_text(json.dumps(PERF_RECORD))
        _, timings, gates = load_timings(p)
        assert timings == {
            "bench_performance::test_cache": 5.0,
            "bench_performance::test_dp": 3.5,
        }
        assert gates == {"E7c": 9.6, "E7h": 2.2}

    def test_unrecognized_document(self, tmp_path):
        p = tmp_path / "junk.json"
        p.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="unrecognized"):
            load_timings(p)

    def test_empty_trajectory(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_timings(p)


class TestBenchDiff:
    def _write(self, tmp_path, name, doc):
        p = tmp_path / name
        p.write_text(json.dumps(doc))
        return p

    def test_identical_runs_are_clean(self, tmp_path):
        old = self._write(tmp_path, "old.json", SUMMARY)
        new = self._write(tmp_path, "new.json", SUMMARY)
        diff = bench_diff(old, new)
        assert diff["regressions"] == []
        assert all(r[4] == "ok" for r in diff["rows"])

    def test_synthetic_slowdown_regresses(self, tmp_path):
        """The acceptance case: a 1.3x-slowed bench JSON must trip the
        default 15% threshold."""
        old = self._write(tmp_path, "old.json", SUMMARY)
        new = self._write(tmp_path, "new.json", _slowed(SUMMARY, 1.3))
        diff = bench_diff(old, new)
        assert set(diff["regressions"]) == {
            "bench_kary", "bench_performance",
        }
        worst = diff["rows"][0]
        assert worst[4] == "REGRESSION"
        assert worst[3] == pytest.approx(0.3, abs=0.01)

    def test_speedup_never_regresses(self, tmp_path):
        old = self._write(tmp_path, "old.json", SUMMARY)
        new = self._write(tmp_path, "new.json", _slowed(SUMMARY, 0.5))
        diff = bench_diff(old, new)
        assert diff["regressions"] == []
        assert all(r[4] == "improved" for r in diff["rows"])

    def test_threshold_is_respected(self, tmp_path):
        old = self._write(tmp_path, "old.json", SUMMARY)
        new = self._write(tmp_path, "new.json", _slowed(SUMMARY, 1.3))
        assert bench_diff(old, new, threshold=0.5)["regressions"] == []

    def test_gate_ratio_drop_regresses(self, tmp_path):
        old = self._write(tmp_path, "old.json", PERF_RECORD)
        worse = json.loads(json.dumps(PERF_RECORD))
        worse["tables"][0]["rows"][1][2] = "4.0x"  # E7c 9.6x -> 4.0x
        new = self._write(tmp_path, "new.json", worse)
        diff = bench_diff(old, new)
        assert diff["gate_regressions"] == ["E7c"]

    def test_disjoint_benches_reported_not_gated(self, tmp_path):
        other = json.loads(json.dumps(SUMMARY))
        other["benches"][0]["bench"] = "bench_new"
        old = self._write(tmp_path, "old.json", SUMMARY)
        new = self._write(tmp_path, "new.json", other)
        diff = bench_diff(old, new)
        assert diff["only_old"] == ["bench_kary"]
        assert diff["only_new"] == ["bench_new"]
        assert diff["regressions"] == []


class TestCli:
    def _write(self, tmp_path, name, doc):
        p = tmp_path / name
        p.write_text(json.dumps(doc))
        return str(p)

    def test_clean_diff_exits_zero(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", SUMMARY)
        new = self._write(tmp_path, "new.json", SUMMARY)
        assert main(["bench-diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "bench-diff: OK" in out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", SUMMARY)
        new = self._write(
            tmp_path, "new.json", _slowed(SUMMARY, 1.3)
        )
        assert main(["bench-diff", old, new]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "regression(s) past 15%" in out

    def test_threshold_flag(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", SUMMARY)
        new = self._write(
            tmp_path, "new.json", _slowed(SUMMARY, 1.3)
        )
        assert main(
            ["bench-diff", old, new, "--threshold", "0.5"]
        ) == 0
        capsys.readouterr()

    def test_one_sided_benches_exit_clean(self, tmp_path, capsys):
        """Added/removed benches are reported but never gate: a
        renamed bench must not fail CI as a phantom regression."""
        other = json.loads(json.dumps(SUMMARY))
        other["benches"][0]["bench"] = "bench_renamed"
        old = self._write(tmp_path, "old.json", SUMMARY)
        new = self._write(tmp_path, "new.json", other)
        assert main(["bench-diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "removed bench(es): bench_kary" in out
        assert "new bench(es): bench_renamed" in out
        assert "bench-diff: OK" in out

    def test_fully_disjoint_sides_exit_clean(self, tmp_path, capsys):
        other = json.loads(json.dumps(SUMMARY))
        for b in other["benches"]:
            b["bench"] = "fresh_" + b["bench"]
        old = self._write(tmp_path, "old.json", SUMMARY)
        new = self._write(tmp_path, "new.json", other)
        assert main(["bench-diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "no bench timings in common" in out
        assert "bench-diff: OK" in out

    def test_gate_ratio_drop_exits_nonzero(self, tmp_path, capsys):
        worse = json.loads(json.dumps(PERF_RECORD))
        worse["tables"][0]["rows"][1][2] = "4.0x"  # E7c 9.6x -> 4.0x
        old = self._write(tmp_path, "old.json", PERF_RECORD)
        new = self._write(tmp_path, "new.json", worse)
        assert main(["bench-diff", old, new]) == 1
        out = capsys.readouterr().out
        assert "performance-gate ratios" in out
        assert "E7c" in out
        assert "regression(s) past 15%" in out

    def test_against_committed_baseline(self, tmp_path, capsys):
        """The repo's own trajectory baseline must diff cleanly
        against itself -- the shape CI runs."""
        import pathlib

        baseline = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks" / "trajectory.jsonl"
        )
        if not baseline.exists():
            pytest.skip("no committed baseline")
        assert main(
            ["bench-diff", str(baseline), str(baseline)]
        ) == 0
        capsys.readouterr()