"""Pin allocation on node squares.

A degree-``d`` Thompson node is a ``d x d`` square, so each side offers
``d`` grid lines for pins (offsets ``0 .. d-1`` from the side's origin;
the far corner line is excluded so squares that abut never share a pin
point).  Distinct wires incident to one node always get distinct pins,
which is what lets touching intervals share a track: at a shared node
the wire arriving from the left/top exits on a smaller pin coordinate
than the wire departing right/down.

:class:`PinAllocator` enforces both properties: uniqueness, and
*ordered* allocation (callers register all requests for a node side
with a sort key, then freeze; pins are handed out in key order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

__all__ = ["PinAllocator", "PinRequest"]

Node = Hashable
Side = str  # "top" | "right" | "bottom" | "left"


@dataclass(slots=True)
class PinRequest:
    """A wire's request for one pin on a node side."""

    node: Node
    side: Side
    sort_key: tuple
    token: Hashable  # identifies the requesting wire end


@dataclass(slots=True)
class PinAllocator:
    """Collects pin requests, then assigns ordered offsets per side."""

    capacity: dict[tuple[Node, Side], int] = field(default_factory=dict)
    _requests: list[PinRequest] = field(default_factory=list)
    _assigned: dict[tuple[Node, Side, Hashable], int] | None = None

    def set_capacity(self, node: Node, side: Side, pins: int) -> None:
        self.capacity[(node, side)] = pins

    def request(
        self, node: Node, side: Side, sort_key: tuple, token: Hashable
    ) -> None:
        if self._assigned is not None:
            raise RuntimeError("allocator already frozen")
        self._requests.append(PinRequest(node, side, sort_key, token))

    def freeze(self) -> None:
        """Assign offsets: per (node, side), requests sorted by key get
        offsets 0, 1, 2, ...  Raises if capacity is exceeded."""
        groups: dict[tuple[Node, Side], list[PinRequest]] = {}
        for req in self._requests:
            groups.setdefault((req.node, req.side), []).append(req)
        assigned: dict[tuple[Node, Side, Hashable], int] = {}
        for (node, side), reqs in groups.items():
            cap = self.capacity.get((node, side))
            if cap is not None and len(reqs) > cap:
                raise ValueError(
                    f"node {node!r} side {side}: {len(reqs)} pins requested "
                    f"but the square only offers {cap} (raise node_side)"
                )
            reqs.sort(key=lambda r: r.sort_key)
            for off, req in enumerate(reqs):
                key = (node, side, req.token)
                if key in assigned:
                    raise ValueError(f"duplicate pin token {key!r}")
                assigned[key] = off
        self._assigned = assigned

    def offset(self, node: Node, side: Side, token: Hashable) -> int:
        if self._assigned is None:
            raise RuntimeError("freeze() the allocator before reading pins")
        return self._assigned[(node, side, token)]
