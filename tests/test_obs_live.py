"""Live telemetry: heartbeats, watchdog verdicts, `repro watch`.

The acceptance tests at the bottom exercise the ISSUE's contract: a
live 4-worker sweep is visible through ``watch --once --json``; a
SIGSTOP'd worker is flagged *stalled* (and recovers); a SIGKILL'd
worker is flagged *dead* without corrupting the merged SweepResult.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro import obs
from repro.batch import SweepRunner, SweepSpec
from repro.batch.runner import FAULT_ENV
from repro.cli import main
from repro.obs import live
from repro.obs import logging as olog

SPEC = SweepSpec(
    networks=["ring:8", "hypercube:3", "star:3", "complete:5"],
    layers=[2, 4],
    name="live-test",
)

FAST = dict(heartbeat_s=0.05, watch_interval_s=0.05)


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    monkeypatch.delenv(FAULT_ENV, raising=False)
    olog.close()
    obs.disable()
    obs.reset()
    yield
    olog.close()
    obs.disable()
    obs.reset()


def _wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    return None


def _log_events(run_dir) -> list[str]:
    try:
        with open(os.path.join(run_dir, live.LOG_NAME)) as fh:
            lines = fh.read().splitlines()
    except OSError:
        return []
    out = []
    for line in lines:
        try:
            out.append(json.loads(line)["event"])
        except (json.JSONDecodeError, KeyError):
            continue
    return out


class TestProbes:
    def test_rss_bytes_self(self):
        rss = live.rss_bytes()
        if rss is not None:  # /proc present (Linux)
            assert rss > 1 << 20  # a Python process exceeds 1 MiB

    def test_rss_bytes_missing_pid(self):
        assert live.rss_bytes(2**22 + 12345) is None

    def test_pid_alive(self):
        assert live.pid_alive(os.getpid())
        assert not live.pid_alive(-1)
        assert not live.pid_alive(0)

    def test_write_json_atomic_leaves_no_temp(self, tmp_path):
        path = tmp_path / "doc.json"
        live.write_json_atomic(path, {"a": 1, "odd": object()})
        assert json.loads(path.read_text())["a"] == 1
        assert list(tmp_path.iterdir()) == [path]


class TestManifest:
    def test_roundtrip_and_update(self, tmp_path):
        olog.configure(stream=__import__("io").StringIO(), run_id="r1")
        doc = live.write_run_manifest(tmp_path, kind="sweep", jobs_total=8)
        assert doc["schema"] == live.MANIFEST_SCHEMA
        assert doc["run_id"] == "r1"
        got = live.read_run_manifest(tmp_path)
        assert got["kind"] == "sweep" and got["jobs_total"] == 8
        live.update_run_manifest(tmp_path, state="done")
        got = live.read_run_manifest(tmp_path)
        assert got["state"] == "done" and got["jobs_total"] == 8

    def test_read_missing_is_none(self, tmp_path):
        assert live.read_run_manifest(tmp_path) is None
        assert live.read_run_manifest(tmp_path / "nope") is None


class TestHeartbeatWriter:
    def test_doc_shape(self, tmp_path):
        hb = live.HeartbeatWriter(tmp_path, 3, jobs_total=5)
        hb.beat(force=True)
        (doc,) = live.read_heartbeats(tmp_path).values()
        assert doc["schema"] == live.HEARTBEAT_SCHEMA
        assert doc["worker_id"] == 3
        assert doc["pid"] == os.getpid()
        assert doc["state"] == "running"
        assert doc["jobs_done"] == 0 and doc["jobs_total"] == 5
        assert isinstance(doc["mono"], float)

    def test_job_tick_forces_and_extra_persists(self, tmp_path):
        hb = live.HeartbeatWriter(tmp_path, 0, interval_s=3600)
        hb.job_tick("ring:8@L2", cache={"hits": 1, "misses": 2})
        hb.job_tick("ring:8@L4")
        doc = live.read_heartbeats(tmp_path)[0]
        assert doc["jobs_done"] == 2
        assert doc["current_job"] == "ring:8@L4"
        assert doc["extra"]["cache"] == {"hits": 1, "misses": 2}

    def test_plain_beat_rate_limited(self, tmp_path):
        hb = live.HeartbeatWriter(tmp_path, 0, interval_s=3600)
        hb.beat(force=True)
        first = live.read_heartbeats(tmp_path)[0]["mono"]
        hb.beat()  # inside the interval: dropped
        assert live.read_heartbeats(tmp_path)[0]["mono"] == first

    def test_pulse_advances_stamp(self, tmp_path):
        hb = live.HeartbeatWriter(tmp_path, 0, interval_s=0.02)
        hb.beat(force=True)
        first = live.read_heartbeats(tmp_path)[0]["mono"]
        hb.start_pulse()
        try:
            assert _wait_for(
                lambda: live.read_heartbeats(tmp_path)[0]["mono"] > first,
                timeout=5.0,
            )
        finally:
            hb.finish()
        assert live.read_heartbeats(tmp_path)[0]["state"] == "done"

    def test_finish_failed(self, tmp_path):
        hb = live.HeartbeatWriter(tmp_path, 1)
        hb.finish("failed")
        doc = live.read_heartbeats(tmp_path)[1]
        assert doc["state"] == "failed"
        assert doc["current_job"] is None

    def test_beat_survives_unwritable_dir(self, tmp_path):
        hb = live.HeartbeatWriter(tmp_path / "gone", 0)
        hb.beat(force=True)  # must not raise


class TestClassify:
    def _doc(self, **over):
        doc = {
            "pid": os.getpid(),
            "state": "running",
            "mono": time.monotonic(),
            "time_unix": time.time(),
        }
        doc.update(over)
        return doc

    def test_fresh_is_ok(self):
        verdict, age = live.classify_heartbeat(self._doc())
        assert verdict == "ok" and age < 1.0

    def test_terminal_states_win(self):
        assert live.classify_heartbeat(self._doc(state="done"))[0] == "done"
        assert (
            live.classify_heartbeat(self._doc(state="failed"))[0] == "failed"
        )
        # ...even when the pid is long gone (the worker exited).
        assert (
            live.classify_heartbeat(self._doc(state="done", pid=-5))[0]
            == "done"
        )

    def test_dead_pid(self):
        assert live.classify_heartbeat(self._doc(pid=-5))[0] == "dead"

    def test_stalled_when_stale(self):
        doc = self._doc(mono=time.monotonic() - 100)
        verdict, age = live.classify_heartbeat(doc, stall_after_s=1.0)
        assert verdict == "stalled"
        assert age == pytest.approx(100, abs=5)

    def test_wall_clock_fallback(self):
        # Monotonic stamp from a "previous boot": negative delta, so
        # the wall clock decides.
        doc = self._doc(
            mono=time.monotonic() + 10_000,
            time_unix=time.time() - 50,
        )
        verdict, age = live.classify_heartbeat(doc, stall_after_s=1.0)
        assert verdict == "stalled"
        assert age == pytest.approx(50, abs=5)

    def test_no_stamps_is_infinitely_old(self):
        verdict, age = live.classify_heartbeat(
            {"pid": os.getpid(), "state": "running"}
        )
        assert verdict == "stalled" and age == float("inf")


class TestWatchdog:
    def test_poll_classifies_and_counts_stalls(self, tmp_path):
        live.write_json_atomic(
            tmp_path / "heartbeat-0.json",
            {
                "pid": os.getpid(),
                "state": "running",
                "mono": time.monotonic() - 100,
                "jobs_done": 2,
            },
        )
        wd = live.Watchdog(tmp_path, stall_after_s=1.0)
        health = wd.poll()
        assert health[0]["verdict"] == "stalled"
        assert health[0]["stalls"] == 1 and health[0]["ever_stalled"]
        wd.poll()  # still stalled: not a new transition
        assert wd.health[0]["stalls"] == 1

    def test_recovery_keeps_ever_stalled(self, tmp_path):
        path = tmp_path / "heartbeat-0.json"
        live.write_json_atomic(
            path,
            {
                "pid": os.getpid(),
                "state": "running",
                "mono": time.monotonic() - 100,
            },
        )
        wd = live.Watchdog(tmp_path, stall_after_s=1.0)
        assert wd.poll()[0]["verdict"] == "stalled"
        live.write_json_atomic(
            path,
            {
                "pid": os.getpid(),
                "state": "running",
                "mono": time.monotonic(),
            },
        )
        rec = wd.stop()[0]
        assert rec["verdict"] == "ok"
        assert rec["ever_stalled"] and rec["stalls"] == 1

    def test_on_tick_exceptions_ignored(self, tmp_path):
        def boom(_):
            raise RuntimeError("tick")

        wd = live.Watchdog(tmp_path, stall_after_s=1.0, on_tick=boom)
        assert wd.poll() == {}


class TestWatchSnapshot:
    def test_empty_dir(self, tmp_path):
        snap = live.watch_snapshot(tmp_path)
        assert snap["schema"] == live.WATCH_SCHEMA
        assert snap["workers"] == []
        assert snap["totals"]["workers"] == 0
        assert snap["totals"]["jobs_total"] is None
        assert snap["manifest"] is None

    def test_totals_eta_and_hit_rate(self, tmp_path):
        live.write_run_manifest(
            tmp_path, kind="sweep", jobs_total=8, state="running"
        )
        # Backdate the start so jobs/sec and the ETA are well-defined.
        live.update_run_manifest(tmp_path, time_unix=time.time() - 10)
        for wid in range(2):
            live.write_json_atomic(
                tmp_path / f"heartbeat-{wid}.json",
                {
                    "pid": os.getpid(),
                    "state": "running",
                    "mono": time.monotonic(),
                    "time_unix": time.time(),
                    "jobs_done": 2,
                    "jobs_total": 4,
                    "rss_bytes": 1 << 20,
                    "extra": {"cache": {"hits": 3, "misses": 1}},
                },
            )
        totals = live.watch_snapshot(tmp_path)["totals"]
        assert totals["workers"] == 2 and totals["ok"] == 2
        assert totals["jobs_done"] == 4 and totals["jobs_total"] == 8
        assert totals["jobs_per_s"] == pytest.approx(0.4, rel=0.3)
        assert totals["eta_s"] == pytest.approx(10, rel=0.4)
        assert totals["cache_hits"] == 6 and totals["cache_misses"] == 2
        assert totals["cache_hit_rate"] == pytest.approx(0.75)

    def test_same_tick_snapshot_reports_unknown_rate(self, tmp_path):
        """A snapshot in the manifest's creation tick must not divide
        by the zero elapsed: jobs/sec and the ETA read unknown."""
        now = time.time()
        live.write_run_manifest(
            tmp_path, kind="sweep", jobs_total=8, state="running"
        )
        live.update_run_manifest(tmp_path, time_unix=now + 3600)
        # Wall clock appears *behind* the manifest stamp (clock skew /
        # same-tick write): elapsed clamps to 0.0.
        live.write_json_atomic(
            tmp_path / "heartbeat-0.json",
            {
                "pid": os.getpid(),
                "state": "running",
                "mono": time.monotonic(),
                "time_unix": now,
                "jobs_done": 3,
                "jobs_total": 8,
            },
        )
        totals = live.watch_snapshot(tmp_path)["totals"]
        assert totals["elapsed_s"] == 0.0
        assert totals["jobs_done"] == 3
        assert totals["jobs_per_s"] is None
        assert totals["eta_s"] is None

    def test_jobs_total_falls_back_to_manifest(self, tmp_path):
        live.write_run_manifest(tmp_path, jobs_total=12)
        live.write_json_atomic(
            tmp_path / "heartbeat-0.json",
            {
                "pid": os.getpid(),
                "state": "running",
                "mono": time.monotonic(),
                "jobs_done": 1,
                "jobs_total": None,
            },
        )
        assert live.watch_snapshot(tmp_path)["totals"]["jobs_total"] == 12

    def test_log_tail_included(self, tmp_path):
        olog.configure(tmp_path / live.LOG_NAME)
        for i in range(20):
            olog.info("tick", i=i)
        olog.close()
        snap = live.watch_snapshot(tmp_path, log_lines=5)
        assert len(snap["log_tail"]) == 5
        assert snap["log_tail"][-1]["i"] == 19

    def test_tail_log_skips_garbage(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"event": "a"}\nnot json\n{"event": "b"}\n')
        assert [d["event"] for d in live.tail_log(path)] == ["a", "b"]
        assert live.tail_log(tmp_path / "missing.jsonl") == []


class TestWatchCli:
    def test_missing_run_dir_fails(self, tmp_path, capsys):
        rc = main(["watch", str(tmp_path / "nope"), "--once"])
        assert rc == 1
        assert "no run directory" in capsys.readouterr().out

    def test_once_json_on_finished_run(self, tmp_path, capsys):
        rd = tmp_path / "run"
        res = SweepRunner(workers=2, run_dir=rd, **FAST).run(SPEC)
        assert res.jobs == 8
        assert main(["watch", str(rd), "--once", "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["schema"] == live.WATCH_SCHEMA
        assert snap["totals"]["done"] == snap["totals"]["workers"] == 2
        assert snap["totals"]["jobs_done"] == 8
        assert snap["manifest"]["state"] == "done"

    def test_follow_exits_when_run_done(self, tmp_path, capsys):
        rd = tmp_path / "run"
        SweepRunner(workers=2, run_dir=rd, **FAST).run(SPEC)
        # Not --once: the follow loop must notice state=done and exit.
        assert main(["watch", str(rd), "--interval", "0.05"]) == 0
        assert "workers" in capsys.readouterr().out


class TestLiveSweepAcceptance:
    """ISSUE acceptance: watch a real 4-worker sweep mid-flight."""

    def _run_async(self, runner, box):
        def target():
            try:
                box["result"] = runner.run(SPEC)
            except BaseException as exc:  # pragma: no cover - surfaced below
                box["error"] = exc

        t = threading.Thread(target=target, daemon=True)
        t.start()
        return t

    def test_watch_reports_every_worker_live(self, tmp_path, capsys):
        rd = tmp_path / "run"
        runner = SweepRunner(workers=4, run_dir=rd, **FAST)
        box: dict = {}
        t = self._run_async(runner, box)
        try:
            # Catch the run mid-flight: all four heartbeats present.
            snap = _wait_for(
                lambda: (
                    (s := live.watch_snapshot(rd, stall_after_s=30.0))
                    if os.path.isdir(rd)
                    and len(live.read_heartbeats(rd)) == 4
                    else None
                )
            )
        finally:
            t.join(timeout=60)
        assert snap is not None, "never saw 4 heartbeats"
        assert "error" not in box, box.get("error")
        assert not t.is_alive()

        live_verdicts = {"ok", "done"}
        assert len(snap["workers"]) == 4
        for w in snap["workers"]:
            assert w["verdict"] in live_verdicts
            assert isinstance(w["jobs_done"], int)
            assert isinstance(w["jobs_total"], int)
            assert w["age_s"] < 30.0  # fresh beat
            assert isinstance(w["pid"], int) and w["pid"] > 0
            if os.path.isdir("/proc"):
                assert w["rss_bytes"] and w["rss_bytes"] > 0

        # After completion the console contract still holds.
        res = box["result"]
        assert res.jobs == 8
        assert sorted(res.worker_health) == [0, 1, 2, 3]
        assert all(
            rec["verdict"] == "done"
            for rec in res.worker_health.values()
        )
        assert res.lost_workers() == []
        assert main(["watch", str(rd), "--once", "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["totals"]["done"] == 4
        assert out["totals"]["jobs_done"] == 8
        assert all(
            w["jobs_done"] is not None and w["rss_bytes"]
            for w in out["workers"]
        )

    def test_sigstop_worker_flagged_stalled_then_recovers(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULT_ENV, "1:stop")
        rd = tmp_path / "run"
        runner = SweepRunner(
            workers=4,
            run_dir=rd,
            stall_after_s=0.4,
            **FAST,
        )
        box: dict = {}
        t = self._run_async(runner, box)
        pid = None
        try:
            # The watchdog must flag the SIGSTOP'd worker within its
            # deadline; the structured log records the transition.
            assert _wait_for(
                lambda: "live.worker_stalled" in _log_events(rd)
            ), "watchdog never flagged the stopped worker"
            beats = live.read_heartbeats(rd)
            assert beats[1]["state"] == "running"
            pid = beats[1]["pid"]
            verdict, _ = live.classify_heartbeat(
                beats[1], stall_after_s=0.4
            )
            assert verdict == "stalled"
        finally:
            if pid is not None:
                try:
                    os.kill(pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass
            t.join(timeout=60)
            if pid is not None:  # belt and braces: never leak a T-state pid
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
        assert "error" not in box, box.get("error")
        assert not t.is_alive()

        # Resumed worker finished its slice: nothing lost, stall noted.
        res = box["result"]
        assert res.jobs == 8
        assert res.lost_workers() == []
        assert res.worker_health[1]["ever_stalled"]
        assert res.worker_health[1]["verdict"] == "done"
        assert "live.worker_recovered" in _log_events(rd) or (
            res.worker_health[1]["verdict"] == "done"
        )

    def test_sigkill_worker_flagged_dead_merge_survives(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULT_ENV, "1:kill")
        rd = tmp_path / "run"
        res = SweepRunner(
            workers=4,
            run_dir=rd,
            stall_after_s=0.4,
            **FAST,
        ).run(SPEC)

        # Worker 1 died after its first job; its slice (jobs 1 and 5)
        # is lost, every other worker's rows merged intact.
        assert res.worker_health[1]["verdict"] == "dead"
        assert res.lost_workers() == [1]
        assert res.jobs == 6
        merged = {r.job_id for r in res.results}
        expect = {
            j.job_id for j in SPEC.expand() if j.index % 4 != 1
        }
        assert merged == expect
        assert "live.worker_dead" in _log_events(rd) or (
            res.worker_health[1]["verdict"] == "dead"
        )
        # The loss is JSON-visible for downstream tooling.
        doc = json.loads(json.dumps(res.as_dict()))
        assert doc["worker_health"]["1"]["verdict"] == "dead"


class TestFuzzTelemetry:
    def test_fuzz_run_dir_heartbeats_and_health(self, tmp_path):
        from repro.check.differential import run_fuzz

        rd = tmp_path / "fuzz-run"
        rep = run_fuzz(seed=11, budget=9, workers=3, run_dir=rd)
        assert rep.cases_run == 9
        man = live.read_run_manifest(rd)
        assert man["kind"] == "fuzz"
        assert man["state"] == "done"
        beats = live.read_heartbeats(rd)
        assert sorted(beats) == [0, 1, 2]
        assert all(d["state"] == "done" for d in beats.values())
        assert sum(d["jobs_done"] for d in beats.values()) == 9
        assert sorted(rep.worker_health) == [0, 1, 2]
        assert all(
            rec["verdict"] == "done"
            for rec in rep.worker_health.values()
        )

    def test_fuzz_serial_run_dir(self, tmp_path):
        from repro.check.differential import run_fuzz

        rd = tmp_path / "fuzz-serial"
        rep = run_fuzz(seed=3, budget=4, workers=1, run_dir=rd)
        assert rep.cases_run == 4
        beats = live.read_heartbeats(rd)
        assert beats[0]["state"] == "done"
        assert beats[0]["jobs_done"] == 4
