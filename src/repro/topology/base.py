"""Base class for interconnection networks.

A :class:`Network` is an undirected graph (possibly a multigraph --
quotients of PN clusters have parallel edges) with hashable node labels.
Subclasses implement :meth:`_build_nodes` and :meth:`_build_edges`;
everything else (adjacency, degrees, connectivity, distances) is
derived and cached here.

The library deliberately does not depend on networkx; tests use it as
an independent oracle.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from functools import cached_property
from typing import Hashable, Iterable, Sequence

__all__ = ["Network", "build_network"]

Node = Hashable
Edge = tuple[Node, Node]


class Network(ABC):
    """An undirected interconnection network."""

    #: Human-readable family name, set by subclasses.
    name: str = "network"

    # -- construction hooks ---------------------------------------------

    @abstractmethod
    def _build_nodes(self) -> Sequence[Node]:
        """Return all node labels (deterministic order)."""

    @abstractmethod
    def _build_edges(self) -> Sequence[Edge]:
        """Return all undirected edges, each exactly once.

        Parallel edges may be repeated; self-loops are forbidden.
        """

    # -- derived, cached --------------------------------------------------

    @cached_property
    def nodes(self) -> list[Node]:
        out = list(self._build_nodes())
        if len(out) != len(set(out)):
            raise ValueError(f"{self.name}: duplicate node labels")
        return out

    @cached_property
    def edges(self) -> list[Edge]:
        node_set = set(self.nodes)
        out = []
        for u, v in self._build_edges():
            if u == v:
                raise ValueError(f"{self.name}: self-loop at {u!r}")
            if u not in node_set or v not in node_set:
                raise ValueError(f"{self.name}: edge ({u!r}, {v!r}) off-graph")
            out.append((u, v))
        return out

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @cached_property
    def adjacency(self) -> dict[Node, list[Node]]:
        adj: dict[Node, list[Node]] = {v: [] for v in self.nodes}
        for u, v in self.edges:
            adj[u].append(v)
            adj[v].append(u)
        return adj

    def degree(self, v: Node) -> int:
        return len(self.adjacency[v])

    @cached_property
    def max_degree(self) -> int:
        return max((len(ns) for ns in self.adjacency.values()), default=0)

    @cached_property
    def index(self) -> dict[Node, int]:
        """Canonical node numbering (position in :attr:`nodes`)."""
        return {v: i for i, v in enumerate(self.nodes)}

    # -- graph algorithms -------------------------------------------------

    def is_connected(self) -> bool:
        if not self.nodes:
            return True
        seen = {self.nodes[0]}
        queue = deque(seen)
        while queue:
            u = queue.popleft()
            for w in self.adjacency[u]:
                if w not in seen:
                    seen.add(w)
                    queue.append(w)
        return len(seen) == self.num_nodes

    def bfs_distances(self, source: Node) -> dict[Node, int]:
        dist = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for w in self.adjacency[u]:
                if w not in dist:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return dist

    def diameter(self) -> int:
        """Exact diameter by all-sources BFS (use on small networks)."""
        best = 0
        for v in self.nodes:
            dist = self.bfs_distances(v)
            if len(dist) != self.num_nodes:
                raise ValueError(f"{self.name} is disconnected")
            best = max(best, max(dist.values()))
        return best

    def shortest_path(self, u: Node, v: Node) -> list[Node]:
        """One shortest path, by BFS with parent pointers."""
        if u == v:
            return [u]
        parent: dict[Node, Node] = {u: u}
        queue = deque([u])
        while queue:
            a = queue.popleft()
            for w in self.adjacency[a]:
                if w not in parent:
                    parent[w] = a
                    if w == v:
                        path = [v]
                        while path[-1] != u:
                            path.append(parent[path[-1]])
                        return path[::-1]
                    queue.append(w)
        raise ValueError(f"no path {u!r} -> {v!r}")

    def is_regular(self) -> bool:
        degs = {len(ns) for ns in self.adjacency.values()}
        return len(degs) <= 1

    def edge_multiset(self) -> dict[tuple, int]:
        """Canonical (sorted-pair) edge multiset, for layout checks."""
        out: dict[tuple, int] = {}
        for u, v in self.edges:
            key = _norm(u, v)
            out[key] = out.get(key, 0) + 1
        return out

    # -- derived networks (used by the differential shrinker) -------------

    def induced_subgraph(
        self, keep: Iterable[Node], name: str | None = None
    ) -> "Network":
        """The subgraph induced by ``keep`` (node order preserved)."""
        keep_set = set(keep)
        nodes = [v for v in self.nodes if v in keep_set]
        edges = [
            (u, v)
            for u, v in self.edges
            if u in keep_set and v in keep_set
        ]
        return build_network(
            nodes, edges, name or f"{self.name}[{len(nodes)}]"
        )

    def without_edges(
        self, drop: Iterable[Edge], name: str | None = None
    ) -> "Network":
        """Remove one occurrence of each edge in ``drop`` (multiset
        semantics, orientation-insensitive); nodes are kept."""
        budget: dict[tuple, int] = {}
        for u, v in drop:
            key = _norm(u, v)
            budget[key] = budget.get(key, 0) + 1
        edges = []
        for u, v in self.edges:
            key = _norm(u, v)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                continue
            edges.append((u, v))
        leftover = {k: c for k, c in budget.items() if c > 0}
        if leftover:
            raise ValueError(f"edges not present: {leftover}")
        return build_network(list(self.nodes), edges, name or self.name)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}: N={self.num_nodes}, E={self.num_edges}>"


def _norm(u: Node, v: Node) -> tuple:
    a, b = (str(type(u)), repr(u)), (str(type(v)), repr(v))
    return (u, v) if a <= b else (v, u)


class _ExplicitNetwork(Network):
    """A network given by explicit node and edge lists."""

    def __init__(self, nodes: Iterable[Node], edges: Iterable[Edge], name: str):
        self._nodes = list(nodes)
        self._edges = list(edges)
        self.name = name

    def _build_nodes(self) -> Sequence[Node]:
        return self._nodes

    def _build_edges(self) -> Sequence[Edge]:
        return self._edges


def build_network(
    nodes: Iterable[Node], edges: Iterable[Edge], name: str = "custom"
) -> Network:
    """Wrap explicit node/edge lists as a :class:`Network`."""
    return _ExplicitNetwork(nodes, edges, name)
