"""Differential pipeline driver: every scheme, cross-checked.

Each generated network runs through every *applicable* layout scheme
and a battery of invariants, every one backed by an independent
reference model:

``collinear-tracks``
    the left-edge engine's track count equals the max edge-cut of the
    order (interval coloring = clique number), for the canonical and a
    seeded random order;
``cutwidth-cert``
    the exact-cutwidth DP's optimal order, realized through the
    engine, achieves exactly the DP value (n <= ``exact_limit``);
``cutwidth-lb``
    no order beats the DP value;
``layout-legal``
    the fast validator accepts every layout the schemes build;
``oracle-legal``
    so does the brute-force occupancy oracle;
``topology``
    the routed edge multiset equals the network's;
``validator-oracle``
    on randomly corrupted clones, the fast validator and the oracle
    return the *same* verdict;
``dirty-region``
    incremental (dirty-band) revalidation returns the same verdict as
    a from-scratch validation after every random edit sequence;
``area-lb`` / ``volume-lb`` / ``wire-lb``
    measured area/volume/total-wire respect the bisection and unit-edge
    lower bounds of :mod:`repro.core.bounds` (exact brute-force
    bisection, small n only);
``multilayer-area``
    the L-layer layout's area never exceeds the 2-layer layout's;
``fold-*``
    geometric folding preserves legality, the edge multiset and wire
    lengths (uniform-pitch layouts only);
``threedee-legal``
    3-D deck stacking of k^3 tori yields legal layouts;
``engine-parity``
    the batched event engine (:func:`repro.routing.simulate_fast`)
    reproduces the per-packet oracle field-for-field on seeded zoo
    workloads -- on both its backends when numpy is importable.

A violated invariant (or a crash anywhere in a stage) becomes a
:class:`Violation`; :func:`run_fuzz` streams cases from
:mod:`repro.check.generate`, tallies per-stage counters and spans into
:mod:`repro.obs`, and returns a :class:`FuzzReport`.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field

from repro import obs
from repro.batch.cache import LayoutCache
from repro.obs import live
from repro.obs import logging as olog
from repro.batch.spec import dispatch_scheme
from repro.check.generate import (
    CheckCase,
    generate_cases,
    mutate_layout,
    network_from_doc,
    network_to_doc,
)
from repro.collinear.cutwidth import cutwidth_certificate
from repro.collinear.engine import collinear_layout
from repro.core.bounds import (
    area_lower_bound,
    exact_bisection,
    volume_lower_bound,
    wire_lower_bound,
)
from repro.core.folding import fold_layout
from repro.core.metrics import measure
from repro.grid.io import clone_layout, layout_to_json
from repro.grid.layout import GridLayout
from repro.grid.oracle import OracleViolation, oracle_validate
from repro.grid.validate import LayoutError, check_topology, validate_layout
from repro.routing import layout_link_delays, make_workload, simulate
from repro.routing.engine import HAVE_NUMPY, simulate_fast
from repro.topology import DeBruijn, KAryNCube, Ring, ShuffleExchange, StarGraph

__all__ = [
    "Violation",
    "CheckResult",
    "FuzzReport",
    "STAGES",
    "check_case",
    "run_fuzz",
    "build_scheme_layout",
    "case_scheme",
]

STAGES = (
    "collinear",
    "cutwidth",
    "orthogonal",
    "agreement",
    "dirty-region",
    "folding",
    "threedee",
    "traffic",
)


@dataclass(frozen=True)
class Violation:
    """One broken invariant on one case."""

    invariant: str
    stage: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"[{self.stage}/{self.invariant}] {self.detail}"


@dataclass
class CheckResult:
    """Everything one case's differential run produced."""

    case: CheckCase
    violations: list[Violation] = field(default_factory=list)
    stages_run: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, invariant: str, stage: str, detail: str) -> None:
        self.violations.append(Violation(invariant, stage, detail))


@dataclass
class FuzzReport:
    """Aggregate outcome of one :func:`run_fuzz` sweep."""

    seed: int
    budget: int
    cases_run: int = 0
    kind_counts: dict = field(default_factory=dict)
    stage_counts: dict = field(default_factory=dict)
    failures: list[CheckResult] = field(default_factory=list)
    elapsed_s: float = 0.0
    worker_health: dict = field(default_factory=dict)

    @property
    def violations(self) -> int:
        return sum(len(r.violations) for r in self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures


# ---------------------------------------------------------------------------
# Scheme dispatch


def case_scheme(case: CheckCase) -> str:
    """The :data:`repro.batch.spec.SCHEMES` label the case routes to.

    Zoo instances go through their family constructors; generated and
    shrunk graphs take the universal near-square grid, which is the
    scheme under adversarial test.
    """
    net = case.network
    if case.kind == "zoo":
        if isinstance(net, (ShuffleExchange, DeBruijn)):
            return "generic"
        if isinstance(net, StarGraph):
            return "cayley"
        return "auto"
    return "generic"


def build_scheme_layout(
    case: CheckCase, layers: int, cache: LayoutCache | None = None
) -> GridLayout:
    """Build (or fetch from ``cache``) the case's layout.

    The cache is addressed by network structure + scheme + layers --
    the same keys the sweep runner writes -- so a fuzz run pointed at
    a sweep-populated cache directory skips rebuilding layouts the
    sweep already produced.  Fuzz workers open the cache read-only.
    """
    scheme = case_scheme(case)
    if cache is None:
        return dispatch_scheme(case.network, layers=layers, scheme=scheme)
    key, key_doc = cache.key_for(
        case.network, scheme=scheme, layers=layers
    )
    entry = cache.get(key, key_doc)
    if entry is not None:
        return entry.layout()
    lay = dispatch_scheme(case.network, layers=layers, scheme=scheme)
    cache.put(key, key_doc, layout_to_json(lay))
    return lay


# ---------------------------------------------------------------------------
# Stages


def _stage_collinear(case: CheckCase, res: CheckResult, opts: dict) -> None:
    net = case.network
    lay = collinear_layout(net.nodes, net.edges)
    lay.check()
    if lay.num_tracks != lay.max_cut():
        res.add(
            "collinear-tracks", "collinear",
            f"left-edge used {lay.num_tracks} tracks but the order's "
            f"max cut is {lay.max_cut()}",
        )
    rng = random.Random(case.seed ^ 0x5EED5EED)
    order = list(net.nodes)
    rng.shuffle(order)
    shuffled = collinear_layout(net.nodes, net.edges, order)
    shuffled.check()
    if shuffled.num_tracks != shuffled.max_cut():
        res.add(
            "collinear-tracks", "collinear",
            f"random order: {shuffled.num_tracks} tracks vs max cut "
            f"{shuffled.max_cut()}",
        )
    opts["_tracks"] = min(lay.num_tracks, shuffled.num_tracks)


def _stage_cutwidth(case: CheckCase, res: CheckResult, opts: dict) -> None:
    net = case.network
    if net.num_nodes > opts["exact_limit"]:
        res.skipped.append("cutwidth")
        return
    cw, order = cutwidth_certificate(net, limit=opts["exact_limit"])
    achieved = opts.get("_tracks")
    if achieved is not None and cw > achieved:
        res.add(
            "cutwidth-lb", "cutwidth",
            f"DP cutwidth {cw} exceeds an achieved track count "
            f"{achieved} -- the 'lower bound' is not one",
        )
    opt = collinear_layout(net.nodes, net.edges, order)
    opt.check()
    if opt.num_tracks != cw:
        res.add(
            "cutwidth-cert", "cutwidth",
            f"optimal order realizes {opt.num_tracks} tracks, DP "
            f"says {cw}",
        )


def _validate_both(
    lay: GridLayout, res: CheckResult, stage: str, label: str
) -> bool:
    ok = True
    try:
        validate_layout(lay)
    except LayoutError as exc:
        res.add("layout-legal", stage, f"{label}: {exc}")
        ok = False
    try:
        oracle_validate(lay)
    except OracleViolation as exc:
        res.add("oracle-legal", stage, f"{label}: {exc}")
        ok = False
    return ok


def _stage_orthogonal(case: CheckCase, res: CheckResult, opts: dict) -> None:
    net = case.network
    areas: dict[int, int] = {}
    bis = None
    if net.num_nodes <= opts["bisect_limit"]:
        bis = exact_bisection(net)
    for L in sorted(case.layers):
        lay = build_scheme_layout(case, L, opts.get("cache"))
        label = f"L={L}"
        if not _validate_both(lay, res, "orthogonal", label):
            continue
        try:
            check_topology(lay, net.edges)
        except LayoutError as exc:
            res.add("topology", "orthogonal", f"{label}: {exc}")
            continue
        m = measure(lay)
        areas[L] = m.area
        if net.num_edges and m.total_wire < wire_lower_bound(net.num_edges):
            res.add(
                "wire-lb", "orthogonal",
                f"{label}: total wire {m.total_wire} < |E| = "
                f"{net.num_edges}",
            )
        if bis is not None:
            alb = area_lower_bound(bis, L)
            if m.area < alb:
                res.add(
                    "area-lb", "orthogonal",
                    f"{label}: area {m.area} < bisection bound {alb} "
                    f"(B={bis})",
                )
            vlb = volume_lower_bound(bis, L)
            if m.volume < vlb:
                res.add(
                    "volume-lb", "orthogonal",
                    f"{label}: volume {m.volume} < bound {vlb} (B={bis})",
                )
        opts.setdefault("_layouts", {})[L] = lay
    if len(areas) >= 2:
        lo = min(areas)
        for L, a in areas.items():
            if L > lo and a > areas[lo]:
                res.add(
                    "multilayer-area", "orthogonal",
                    f"area at L={L} ({a}) exceeds area at L={lo} "
                    f"({areas[lo]})",
                )


def _stage_agreement(case: CheckCase, res: CheckResult, opts: dict) -> None:
    base = opts.get("_layouts", {}).get(max(case.layers))
    if base is None:
        base = build_scheme_layout(case, max(case.layers), opts.get("cache"))
    rng = random.Random(case.seed * 7919 + 17)
    for _ in range(opts["mutation_rounds"]):
        lay = clone_layout(base)
        applied = 0
        for _ in range(rng.randint(1, 3)):
            applied += mutate_layout(lay, rng)
        if not applied:
            continue
        try:
            validate_layout(
                lay, check_pins=False, check_node_interference=True
            )
            fast_ok = True
            fast_msg = ""
        except LayoutError as exc:
            fast_ok, fast_msg = False, str(exc)
        try:
            oracle_validate(lay)
            oracle_ok = True
            oracle_msg = ""
        except OracleViolation as exc:
            oracle_ok, oracle_msg = False, str(exc)
        if fast_ok != oracle_ok:
            res.add(
                "validator-oracle", "agreement",
                f"verdicts diverge: fast "
                f"{'accepts' if fast_ok else f'rejects ({fast_msg})'}, "
                f"oracle "
                f"{'accepts' if oracle_ok else f'rejects ({oracle_msg})'}",
            )


def _stage_dirty_region(case: CheckCase, res: CheckResult, opts: dict) -> None:
    """Incremental revalidation agrees with from-scratch validation.

    A clone of the case's largest-L layout is validated with
    ``incremental=True`` (arming the dirty tracker), then mutated in
    rounds of 1-3 random edits -- ``mutate_layout`` routes each through
    ``GridLayout.replace_wire``, so the tracker sees every one.  After
    every round the incremental verdict must match a from-scratch
    ``validate_layout`` of a fresh clone; only verdicts are compared
    (a broken layout may hold several conflicts, and the two paths may
    legitimately report different ones first).
    """
    base = opts.get("_layouts", {}).get(max(case.layers))
    if base is None:
        base = build_scheme_layout(case, max(case.layers), opts.get("cache"))
    lay = clone_layout(base)
    try:
        validate_layout(
            lay, check_pins=False, check_node_interference=True,
            incremental=True,
        )
    except LayoutError:
        # The base layout itself is rejected (scheme bug -- the
        # orthogonal stage reports it); no baseline to increment from.
        res.skipped.append("dirty-region")
        return
    rng = random.Random(case.seed ^ 0xD187E)
    for _ in range(opts["mutation_rounds"]):
        applied = 0
        for _ in range(rng.randint(1, 3)):
            applied += mutate_layout(lay, rng)
        if not applied:
            continue
        try:
            validate_layout(
                lay, check_pins=False, check_node_interference=True,
                incremental=True,
            )
            inc_ok, inc_msg = True, ""
        except LayoutError as exc:
            inc_ok, inc_msg = False, str(exc)
        try:
            validate_layout(
                clone_layout(lay), check_pins=False,
                check_node_interference=True,
            )
            full_ok, full_msg = True, ""
        except LayoutError as exc:
            full_ok, full_msg = False, str(exc)
        if inc_ok != full_ok:
            res.add(
                "dirty-region", "dirty-region",
                f"verdicts diverge: incremental "
                f"{'accepts' if inc_ok else f'rejects ({inc_msg})'}, "
                f"from-scratch "
                f"{'accepts' if full_ok else f'rejects ({full_msg})'}",
            )
            return


def _stage_folding(case: CheckCase, res: CheckResult, opts: dict) -> None:
    if 2 not in case.layers or max(case.layers) < 4:
        res.skipped.append("folding")
        return
    base = opts.get("_layouts", {}).get(2)
    if base is None:
        base = build_scheme_layout(case, 2, opts.get("cache"))
    widths = base.meta.get("col_widths")
    extents = base.meta.get("col_channel_extents")
    L = max(case.layers)
    slabs = L // 2
    if (
        widths is None
        or extents is None
        or len(widths) % slabs
        or len({w + e for w, e in zip(widths, extents)}) > 1
    ):
        res.skipped.append("folding")
        return
    folded = fold_layout(base, L)
    if not _validate_both(folded, res, "folding", f"fold L={L}"):
        return
    if folded.edge_multiset() != base.edge_multiset():
        res.add(
            "fold-topology", "folding",
            "folding changed the routed edge multiset",
        )
    if folded.total_wire_length() != base.total_wire_length():
        res.add(
            "fold-wire", "folding",
            f"total wire changed: {base.total_wire_length()} -> "
            f"{folded.total_wire_length()}",
        )


def _stage_threedee(case: CheckCase, res: CheckResult, opts: dict) -> None:
    net = case.network
    if not (
        case.kind == "zoo"
        and isinstance(net, KAryNCube)
        and net.wraparound
        and net.n == 3
        and 3 <= net.k <= 4
    ):
        res.skipped.append("threedee")
        return
    from repro.core.threedee import layout_product_3d

    k = net.k
    lay = layout_product_3d(Ring(k), Ring(k), Ring(k), layers=2 * k)
    _validate_both(lay, res, "threedee", f"{k}^3 torus decks")


def _result_mismatch(oracle, fast) -> str | None:
    """Describe the first field where the two results diverge."""
    for name in (
        "makespan", "messages", "avg_latency", "max_latency",
        "latency_hist", "max_link_load", "busiest_link",
        "link_utilization", "queue_depth_hist",
    ):
        a, b = getattr(oracle, name), getattr(fast, name)
        if a != b:
            return f"{name}: oracle {a!r} vs fast {b!r}"
    if list(oracle.link_utilization) != list(fast.link_utilization):
        return "link_utilization insertion order diverged"
    return None


def _stage_traffic(case: CheckCase, res: CheckResult, opts: dict) -> None:
    """Differential-test the batched engine against the oracle.

    Seeded zoo workloads over the case's network, with per-link delays
    taken from the orthogonal stage's largest-L layout when it was
    built (unit delays otherwise), under a seeded choice of switching
    mode and message length.  Every observable field of
    :class:`~repro.routing.SimulationResult` must match, on the pure
    python backend and -- when numpy imported -- the vectorized one.
    """
    net = case.network
    link_delay = None
    lay = opts.get("_layouts", {}).get(max(case.layers))
    if lay is not None:
        link_delay = layout_link_delays(lay)
    rng = random.Random(case.seed ^ 0x7AFF1C)
    kinds = ["uniform", rng.choice(
        ["hotspot", "bursty", "adversarial", "bit-reversal"]
    )]
    backends = [False] + ([True] if HAVE_NUMPY else [])
    for kind in kinds:
        msgs = make_workload(kind, net, seed=case.seed, rate=0.3, duration=8)
        mode, length = rng.choice(
            [("store_forward", 1), ("store_forward", 4), ("cut_through", 4)]
        )
        kwargs = dict(
            link_delay=link_delay, mode=mode, message_length=length,
        )
        oracle = simulate(net, msgs, **kwargs)
        for use_numpy in backends:
            fast = simulate_fast(net, msgs, use_numpy=use_numpy, **kwargs)
            diff = _result_mismatch(oracle, fast)
            if diff is not None:
                res.add(
                    "engine-parity", "traffic",
                    f"{kind}/{mode}/ml={length} "
                    f"use_numpy={use_numpy}: {diff}",
                )


_STAGE_FNS = {
    "collinear": _stage_collinear,
    "cutwidth": _stage_cutwidth,
    "orthogonal": _stage_orthogonal,
    "agreement": _stage_agreement,
    "dirty-region": _stage_dirty_region,
    "folding": _stage_folding,
    "threedee": _stage_threedee,
    "traffic": _stage_traffic,
}


# ---------------------------------------------------------------------------
# Driver


def check_case(
    case: CheckCase,
    *,
    stages: tuple[str, ...] | None = None,
    exact_limit: int = 12,
    bisect_limit: int = 12,
    mutation_rounds: int = 2,
    cache: LayoutCache | None = None,
) -> CheckResult:
    """Run ``case`` through every selected stage; collect violations.

    An unexpected exception inside a stage is itself recorded as a
    ``pipeline-crash`` violation -- the fuzzer keeps running and the
    crash becomes a shrinkable counterexample like any other.
    ``cache`` (usually read-only) lets stages fetch scheme layouts a
    sweep already built instead of rebuilding them.
    """
    res = CheckResult(case=case)
    opts = {
        "exact_limit": exact_limit,
        "bisect_limit": bisect_limit,
        "mutation_rounds": mutation_rounds,
        "cache": cache,
    }
    selected = stages if stages is not None else STAGES
    with obs.span(
        "fuzz.case",
        case=case.case_id,
        kind=case.kind,
        n=case.network.num_nodes,
    ):
        for stage in selected:
            fn = _STAGE_FNS[stage]
            with obs.span(f"fuzz.{stage}"):
                before = len(res.violations)
                try:
                    fn(case, res, opts)
                except Exception as exc:  # noqa: BLE001 - fuzzing boundary
                    res.add(
                        "pipeline-crash", stage,
                        f"{type(exc).__name__}: {exc}",
                    )
            res.stages_run.append(stage)
            obs.count(f"fuzz.stage.{stage}")
            found = len(res.violations) - before
            if found:
                obs.count("fuzz.violations_found", found)
    obs.count("fuzz.cases_run")
    if not res.ok:
        olog.warning(
            "fuzz.case_failed",
            case=case.case_id,
            kind=case.kind,
            violations=[
                [v.invariant, v.stage] for v in res.violations
            ],
        )
    return res


def _tally(report: FuzzReport, case: CheckCase, result: CheckResult) -> None:
    report.cases_run += 1
    report.kind_counts[case.kind] = report.kind_counts.get(case.kind, 0) + 1
    for st in result.stages_run:
        if st not in result.skipped:
            report.stage_counts[st] = report.stage_counts.get(st, 0) + 1


def _fuzz_worker(payload: tuple) -> dict:
    """Process-pool entry: check the cases assigned to one worker.

    Workers regenerate the seeded case stream themselves (networks
    need not cross the process boundary) and keep every case with
    ``index % nworkers == wid``; failing cases come back as plain
    documents the parent rebuilds, keyed by case index so the merge
    is invariant under worker count.  With a ``run_dir`` each worker
    also keeps a heartbeat fresh for the parent's watchdog and
    ``repro watch``.
    """
    (wid, nworkers, seed, budget, layers, max_nodes, stages, kinds,
     exact_limit, bisect_limit, mutation_rounds, max_failures,
     cache_dir, observe, run_dir, log_path, log_run_id) = payload
    olog.fork_child(wid)
    if not olog.configured() and log_path:
        olog.configure(log_path, run_id=log_run_id, worker_id=wid)
    cache = (
        LayoutCache(cache_dir, readonly=True) if cache_dir else None
    )
    if observe:
        # Fork inherits the parent's registry; reset so the counter
        # snapshot returned below holds only this worker's activity.
        obs.reset()
        obs.enable()
    hb = None
    if run_dir is not None:
        hb = live.HeartbeatWriter(
            run_dir, wid,
            jobs_total=(budget - wid + nworkers - 1) // nworkers,
        )
        hb.beat(force=True)
        hb.start_pulse()
    out: dict = {
        "cases_run": 0,
        "kind_counts": {},
        "stage_counts": {},
        "failures": [],
    }
    for i, case in enumerate(generate_cases(
        seed, budget, layers=layers, max_nodes=max_nodes, kinds=kinds,
    )):
        if i % nworkers != wid:
            continue
        if hb is not None:
            hb.current_job = case.case_id
            hb.beat(force=True)
        result = check_case(
            case,
            stages=stages,
            exact_limit=exact_limit,
            bisect_limit=bisect_limit,
            mutation_rounds=mutation_rounds,
            cache=cache,
        )
        out["cases_run"] += 1
        if hb is not None:
            hb.job_tick()
        out["kind_counts"][case.kind] = (
            out["kind_counts"].get(case.kind, 0) + 1
        )
        for st in result.stages_run:
            if st not in result.skipped:
                out["stage_counts"][st] = (
                    out["stage_counts"].get(st, 0) + 1
                )
        if not result.ok:
            out["failures"].append({
                "index": i,
                "case_id": case.case_id,
                "seed": case.seed,
                "kind": case.kind,
                "layers": list(case.layers),
                "network": network_to_doc(case.network),
                "violations": [
                    [v.invariant, v.stage, v.detail]
                    for v in result.violations
                ],
                "stages_run": list(result.stages_run),
                "skipped": list(result.skipped),
            })
            if (
                max_failures is not None
                and len(out["failures"]) >= max_failures
            ):
                break
    out["snapshot"] = obs.registry().snapshot() if observe else {}
    out["spans"] = (
        [r.as_dict() for r in obs.trace_roots()] if observe else []
    )
    if hb is not None:
        hb.finish("done")
    return out


def _run_fuzz_parallel(
    report: FuzzReport,
    workers: int,
    payload_base: tuple,
    max_failures: int | None,
    run_dir: str | None = None,
    stall_after_s: float = live.DEFAULT_STALL_AFTER_S,
) -> None:
    from concurrent.futures import ProcessPoolExecutor

    from repro.batch.runner import _mp_context

    from repro.batch.runner import reroot_worker_spans

    payloads = [
        (wid, workers) + payload_base for wid in range(workers)
    ]
    failures: list[tuple[int, CheckResult]] = []
    watchdog = None
    if run_dir is not None:
        watchdog = live.Watchdog(
            run_dir, stall_after_s=stall_after_s,
        ).start()
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=_mp_context()
    ) as pool:
        for wid, out in enumerate(pool.map(_fuzz_worker, payloads)):
            report.cases_run += out["cases_run"]
            for k, v in out["kind_counts"].items():
                report.kind_counts[k] = report.kind_counts.get(k, 0) + v
            for k, v in out["stage_counts"].items():
                report.stage_counts[k] = report.stage_counts.get(k, 0) + v
            for doc in out["failures"]:
                case = CheckCase(
                    case_id=doc["case_id"],
                    seed=doc["seed"],
                    kind=doc["kind"],
                    network=network_from_doc(doc["network"]),
                    layers=tuple(doc["layers"]),
                )
                res = CheckResult(
                    case=case,
                    violations=[
                        Violation(*v) for v in doc["violations"]
                    ],
                    stages_run=list(doc["stages_run"]),
                    skipped=list(doc["skipped"]),
                )
                failures.append((doc["index"], res))
            if out["snapshot"] and obs.enabled():
                obs.registry().merge(out["snapshot"])
            reroot_worker_spans(
                wid, out["spans"], cases=out["cases_run"]
            )
    if watchdog is not None:
        report.worker_health = watchdog.stop()
    failures.sort(key=lambda pair: pair[0])
    report.failures = [res for _, res in failures]
    if max_failures is not None:
        report.failures = report.failures[:max_failures]


def run_fuzz(
    seed: int = 0,
    budget: int = 100,
    *,
    layers: tuple[int, ...] = (2, 4),
    max_nodes: int = 12,
    stages: tuple[str, ...] | None = None,
    kinds: tuple[str, ...] | None = None,
    exact_limit: int = 12,
    bisect_limit: int = 12,
    mutation_rounds: int = 2,
    max_failures: int | None = None,
    workers: int = 1,
    cache_dir=None,
    run_dir=None,
    stall_after_s: float = live.DEFAULT_STALL_AFTER_S,
) -> FuzzReport:
    """Generate ``budget`` cases and differential-check each one.

    ``max_failures`` stops the sweep early once that many failing
    cases have accumulated (the shrinker wants only a handful).

    ``workers > 1`` fans the case stream across processes (case ``i``
    goes to worker ``i % workers``) and merges failures by case index,
    so with ``max_failures=None`` the report's cases, counts, and
    failures are identical for every worker count.  With a failure cap
    the parallel path caps per worker and truncates after the merge --
    deterministic per worker count, but it may check more cases than a
    serial early-stopped run.  ``cache_dir`` points every worker at a
    shared layout cache, opened read-only in workers (a serial run
    opens it read-write and populates it).

    ``run_dir`` turns on live telemetry: a run manifest, per-worker
    heartbeats, a ``log.jsonl`` sink (unless one is already
    configured), and -- for parallel runs -- a watchdog whose final
    per-worker verdicts land in :attr:`FuzzReport.worker_health`.
    ``python -m repro watch RUNDIR`` renders all of it live.
    """
    from repro.check.generate import KINDS

    report = FuzzReport(seed=seed, budget=budget)
    run_dir = None if run_dir is None else os.fspath(run_dir)
    log_here = False
    if run_dir is not None:
        os.makedirs(run_dir, exist_ok=True)
        if not olog.configured():
            olog.configure(os.path.join(run_dir, live.LOG_NAME))
            log_here = True
        live.write_run_manifest(
            run_dir,
            kind="fuzz",
            seed=seed,
            jobs_total=budget,
            workers=workers,
        )
    start = time.perf_counter()
    try:
        with obs.span(
            "fuzz.run", seed=seed, budget=budget, workers=workers
        ):
            olog.info(
                "fuzz.start", seed=seed, budget=budget, workers=workers
            )
            if workers > 1:
                log_path = None
                if olog.configured():
                    from repro.obs.logging import _config as _log_cfg

                    log_path = (
                        _log_cfg.path if _log_cfg is not None else None
                    )
                _run_fuzz_parallel(
                    report,
                    workers,
                    (
                        seed, budget, layers, max_nodes, stages,
                        kinds or KINDS, exact_limit, bisect_limit,
                        mutation_rounds, max_failures,
                        None if cache_dir is None else str(cache_dir),
                        obs.enabled(),
                        run_dir,
                        log_path,
                        olog.run_id(),
                    ),
                    max_failures,
                    run_dir,
                    stall_after_s,
                )
            else:
                cache = (
                    LayoutCache(cache_dir) if cache_dir is not None else None
                )
                hb = None
                if run_dir is not None:
                    hb = live.HeartbeatWriter(
                        run_dir, 0, jobs_total=budget,
                    )
                    hb.beat(force=True)
                    hb.start_pulse()
                try:
                    for case in generate_cases(
                        seed,
                        budget,
                        layers=layers,
                        max_nodes=max_nodes,
                        kinds=kinds or KINDS,
                    ):
                        if hb is not None:
                            hb.current_job = case.case_id
                            hb.beat(force=True)
                        result = check_case(
                            case,
                            stages=stages,
                            exact_limit=exact_limit,
                            bisect_limit=bisect_limit,
                            mutation_rounds=mutation_rounds,
                            cache=cache,
                        )
                        _tally(report, case, result)
                        if hb is not None:
                            hb.job_tick()
                        if not result.ok:
                            report.failures.append(result)
                            if (
                                max_failures is not None
                                and len(report.failures) >= max_failures
                            ):
                                break
                finally:
                    if hb is not None:
                        hb.finish("done")
        report.elapsed_s = time.perf_counter() - start
        olog.info(
            "fuzz.done",
            cases_run=report.cases_run,
            failures=len(report.failures),
            elapsed_s=round(report.elapsed_s, 4),
        )
        if run_dir is not None:
            live.update_run_manifest(
                run_dir,
                state="done",
                jobs_done=report.cases_run,
                elapsed_s=round(report.elapsed_s, 4),
            )
    finally:
        if log_here:
            olog.close()
    return report
