"""The paper's closed-form predictions (leading terms).

Every result quoted in Sections 3-5 is encoded here as a function of
the family parameters and the layer count L.  These are *leading terms*
-- the paper writes each as ``f(N, L) + o(f(N, L))`` -- so benches and
tests compare measured/predicted ratios and require them to approach 1
(or stay below 1 plus slack) as N grows, rather than exact equality.

Odd L: the orthogonal scheme uses L - 1 wiring layers, so area carries
a 1/(L^2 - 1) and volume an L/(L^2 - 1) factor (Sections 3.1, 4.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Prediction", "paper_prediction"]


@dataclass(frozen=True, slots=True)
class Prediction:
    """Leading-term predictions for one layout instance."""

    family: str
    num_nodes: int
    layers: int
    area: float
    volume: float
    max_wire: float | None = None
    path_wire: float | None = None

    def as_dict(self) -> dict:
        return {
            "family": self.family,
            "N": self.num_nodes,
            "L": self.layers,
            "area": self.area,
            "volume": self.volume,
            "max_wire": self.max_wire,
            "path_wire": self.path_wire,
        }


def _leff2(layers: int) -> float:
    """The paper's squared layer factor: L^2 for even L, L^2-1 for odd."""
    if layers % 2 == 0:
        return float(layers * layers)
    return float(layers * layers - 1)


def kary_prediction(k: int, n: int, layers: int) -> Prediction:
    """Section 3.1: area 16 N^2/(L^2 k^2); volume x L; folded max wire
    O(N/(L k^2)) (reported with constant 16 as the sweep normalizer)."""
    N = k**n
    area = 16 * N * N / (_leff2(layers) * k * k)
    return Prediction(
        family="kary",
        num_nodes=N,
        layers=layers,
        area=area,
        volume=area * layers,
        max_wire=16 * N / (layers * k * k),
    )


def ghc_prediction(r: int, n: int, layers: int) -> Prediction:
    """Section 4.1: area r^2 N^2/(4 L^2); max wire r N/(2 L); path wire
    r N/L."""
    N = r**n
    area = r * r * N * N / (4 * _leff2(layers))
    return Prediction(
        family="ghc",
        num_nodes=N,
        layers=layers,
        area=area,
        volume=area * layers,
        max_wire=r * N / (2 * layers),
        path_wire=r * N / layers,
    )


def hypercube_prediction(n: int, layers: int) -> Prediction:
    """Section 5.1: area 16 N^2/(9 L^2); max wire 2N/(3L)."""
    N = 1 << n
    area = 16 * N * N / (9 * _leff2(layers))
    return Prediction(
        family="hypercube",
        num_nodes=N,
        layers=layers,
        area=area,
        volume=area * layers,
        max_wire=2 * N / (3 * layers),
    )


def butterfly_prediction(m: int, layers: int) -> Prediction:
    """Section 4.2: area 4 N^2/(L^2 log2^2 N); max wire 2N/(L log2 N)."""
    N = (m + 1) * (1 << m)
    lg = math.log2(N)
    area = 4 * N * N / (_leff2(layers) * lg * lg)
    return Prediction(
        family="butterfly",
        num_nodes=N,
        layers=layers,
        area=area,
        volume=area * layers,
        max_wire=2 * N / (layers * lg),
    )


def isn_prediction(m: int, layers: int) -> Prediction:
    """Section 4.3: a quarter of the butterfly's area, half its wire."""
    b = butterfly_prediction(m, layers)
    return Prediction(
        family="isn",
        num_nodes=b.num_nodes,
        layers=layers,
        area=b.area / 4,
        volume=b.volume / 4,
        max_wire=(b.max_wire or 0) / 2,
    )


def hsn_prediction(r: int, levels: int, layers: int) -> Prediction:
    """Section 4.3: area N^2/(4 L^2); max wire N/(2L); path wire N/L."""
    N = r**levels
    area = N * N / (4 * _leff2(layers))
    return Prediction(
        family="hsn",
        num_nodes=N,
        layers=layers,
        area=area,
        volume=area * layers,
        max_wire=N / (2 * layers),
        path_wire=N / layers,
    )


def ccc_prediction(n: int, layers: int) -> Prediction:
    """Section 5.2: area 16 N^2/(9 L^2 log2^2 N) with N = n 2^n."""
    N = n * (1 << n)
    lg = math.log2(N)
    area = 16 * N * N / (9 * _leff2(layers) * lg * lg)
    return Prediction(
        family="ccc",
        num_nodes=N,
        layers=layers,
        area=area,
        volume=area * layers,
    )


def reduced_hypercube_prediction(n: int, layers: int) -> Prediction:
    """Section 5.2: asymptotically the same as the CCC."""
    N = n * (1 << n)
    lg = math.log2(N)
    area = 16 * N * N / (9 * _leff2(layers) * lg * lg)
    return Prediction(
        family="reduced-hypercube",
        num_nodes=N,
        layers=layers,
        area=area,
        volume=area * layers,
    )


def folded_hypercube_prediction(n: int, layers: int) -> Prediction:
    """Section 5.3: area 49 N^2/(9 L^2) -- the side is the hypercube's
    4N/(3L) plus N/L of dedicated extra tracks, i.e. 7N/(3L)."""
    N = 1 << n
    area = 49 * N * N / (9 * _leff2(layers))
    return Prediction(
        family="folded-hypercube",
        num_nodes=N,
        layers=layers,
        area=area,
        volume=area * layers,
    )


def enhanced_cube_prediction(n: int, layers: int) -> Prediction:
    """Section 5.3: area 100 N^2/(9 L^2) (side 4N/(3L) + 2N/L)."""
    N = 1 << n
    area = 100 * N * N / (9 * _leff2(layers))
    return Prediction(
        family="enhanced-cube",
        num_nodes=N,
        layers=layers,
        area=area,
        volume=area * layers,
    )


_FAMILIES = {
    "kary": kary_prediction,
    "ghc": ghc_prediction,
    "hypercube": hypercube_prediction,
    "butterfly": butterfly_prediction,
    "isn": isn_prediction,
    "hsn": hsn_prediction,
    "ccc": ccc_prediction,
    "reduced-hypercube": reduced_hypercube_prediction,
    "folded-hypercube": folded_hypercube_prediction,
    "enhanced-cube": enhanced_cube_prediction,
}


def paper_prediction(family: str, *args, layers: int) -> Prediction:
    """Dispatch to a family's prediction, e.g.
    ``paper_prediction("kary", k, n, layers=L)``."""
    try:
        fn = _FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown family {family!r}; known: {sorted(_FAMILIES)}"
        ) from None
    return fn(*args, layers)
