"""Collective-communication schedules.

The parallel algorithms the paper's networks exist to run communicate
through collectives; these schedules turn one collective into the
timed message list the simulator consumes, so layout geometry can be
evaluated against the workloads that matter:

* :func:`binomial_broadcast` -- the log-N hypercube broadcast: in round
  r the current holders forward across dimension r;
* :func:`recursive_doubling_allgather` -- all nodes exchange across
  dimension r in round r (N log N messages, the all-gather/all-reduce
  skeleton);
* :func:`schedule_rounds` -- generic helper: round r's messages are
  injected only after round r-1's (conservative barrier pacing with a
  caller-supplied round gap, since the simulator models links, not
  per-node completion dependencies).
"""

from __future__ import annotations

from typing import Hashable

from repro.topology.hypercube import Hypercube

__all__ = [
    "binomial_broadcast",
    "recursive_doubling_allgather",
    "schedule_rounds",
]

Node = Hashable


def binomial_broadcast(net: Hypercube, root: int = 0) -> list[list[tuple]]:
    """Rounds of the binomial-tree broadcast from ``root``.

    Round r: every node that already holds the datum sends it across
    dimension r.  Returns a list of rounds, each a list of (src, dst).
    """
    holders = [root]
    rounds: list[list[tuple]] = []
    for r in range(net.n):
        msgs = [(u, u ^ (1 << r)) for u in holders]
        rounds.append(msgs)
        holders = holders + [v for _, v in msgs]
    return rounds


def recursive_doubling_allgather(net: Hypercube) -> list[list[tuple]]:
    """Rounds of recursive doubling: in round r every node exchanges
    with its dimension-r neighbor (both directions)."""
    rounds = []
    for r in range(net.n):
        msgs = [(u, u ^ (1 << r)) for u in net.nodes]
        rounds.append(msgs)
    return rounds


def schedule_rounds(
    rounds: list[list[tuple]], *, round_gap: int
) -> list[tuple]:
    """Flatten rounds into timed (src, dst, start) messages.

    ``round_gap`` is the pacing between rounds; pick it at least the
    worst per-round completion (e.g. the layout's max wire delay plus
    router overhead) for a barrier-accurate schedule, or smaller to
    model overlapping rounds.
    """
    out: list[tuple] = []
    for r, msgs in enumerate(rounds):
        start = r * round_gap
        out.extend((src, dst, start) for src, dst in msgs)
    return out
