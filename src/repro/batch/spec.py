"""Declarative sweep specifications and the network-family registry.

A :class:`SweepSpec` names what to build -- networks (``family:args``
strings), layer budgets, and a layout scheme -- and :meth:`expand`\\ s
into an ordered list of independent :class:`SweepJob`\\ s, the unit the
runner fans out across worker processes and the cache addresses.

The ``FAMILIES`` registry (moved here from the CLI so both the CLI and
pickled sweep jobs resolve specs through one table) maps family names
to constructors; :func:`parse_network` turns ``"hypercube:8"`` into a
:class:`~repro.topology.base.Network`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.schemes import (
    layout_cayley,
    layout_generic_grid,
    layout_network,
)
from repro.grid.layout import GridLayout
from repro.topology import (
    HSN,
    Butterfly,
    CompleteGraph,
    CubeConnectedCycles,
    DeBruijn,
    EnhancedCube,
    FoldedHypercube,
    GeneralizedHypercube,
    Hypercube,
    IndirectSwapNetwork,
    KAryNCube,
    KAryNCubeCluster,
    Mesh,
    ReducedHypercube,
    Ring,
    ShuffleExchange,
    StarConnectedCycles,
    StarGraph,
    WrappedButterfly,
)
from repro.topology.base import Network

__all__ = [
    "FAMILIES",
    "SCHEMES",
    "SweepJob",
    "SweepSpec",
    "TrafficSpec",
    "dispatch_scheme",
    "parse_network",
    "standard_family_sweep",
]

FAMILIES = {
    "ring": lambda k: Ring(k),
    "mesh": lambda k, n: Mesh(k, n),
    "kary": lambda k, n: KAryNCube(k, n),
    "hypercube": lambda n: Hypercube(n),
    "folded-hypercube": lambda n: FoldedHypercube(n),
    "enhanced-cube": lambda n: EnhancedCube(n),
    "complete": lambda n: CompleteGraph(n),
    "ghc": lambda *rs: GeneralizedHypercube(rs),
    "butterfly": lambda m: Butterfly(m),
    "isn": lambda m: IndirectSwapNetwork(m),
    "ccc": lambda n: CubeConnectedCycles(n),
    "reduced-hypercube": lambda n: ReducedHypercube(n),
    "hsn": lambda r, l: HSN(CompleteGraph(r), l),
    "hhn": lambda d, l: HSN(Hypercube(d), l),
    "kary-cluster": lambda k, n, c: KAryNCubeCluster(k, n, c),
    "star": lambda n: StarGraph(n),
    "wrapped-butterfly": lambda m: WrappedButterfly(m),
    "shuffle-exchange": lambda n: ShuffleExchange(n),
    "de-bruijn": lambda n: DeBruijn(n),
    "scc": lambda n: StarConnectedCycles(n),
}


def parse_network(spec: str) -> Network:
    """Parse ``family:arg,arg`` into a Network instance."""
    family, _, argstr = spec.partition(":")
    family = family.strip().lower()
    if family not in FAMILIES:
        raise SystemExit(
            f"unknown network family {family!r}; known: "
            f"{', '.join(sorted(FAMILIES))}"
        )
    try:
        args = [int(a) for a in argstr.split(",") if a.strip() != ""]
        return FAMILIES[family](*args)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"bad arguments for {family!r}: {exc}") from exc


# ---------------------------------------------------------------------------
# Scheme dispatch

#: Scheme names a job may request.  ``auto`` is the paper's per-family
#: dispatch (star graphs through the Cayley cluster route,
#: shuffle-exchange / de Bruijn through the optimized generic grid,
#: everything else through its family constructor); ``generic`` and
#: ``generic-opt`` force the universal near-square grid (the fuzzer's
#: adversarial target), without / with order optimization; ``cayley``
#: forces the Cayley cluster scheme.
SCHEMES = ("auto", "generic", "generic-opt", "cayley")


def dispatch_scheme(
    net: Network, *, layers: int, scheme: str = "auto"
) -> GridLayout:
    """Build ``net``'s layout under the named scheme."""
    if scheme == "auto":
        if isinstance(net, (ShuffleExchange, DeBruijn)):
            return layout_generic_grid(net, layers=layers, optimize=True)
        if isinstance(net, StarGraph):
            return layout_cayley(net, layers=layers)
        return layout_network(net, layers=layers)
    if scheme == "generic":
        return layout_generic_grid(net, layers=layers)
    if scheme == "generic-opt":
        return layout_generic_grid(net, layers=layers, optimize=True)
    if scheme == "cayley":
        return layout_cayley(net, layers=layers)
    raise ValueError(f"unknown scheme {scheme!r}; known: {SCHEMES}")


# ---------------------------------------------------------------------------
# Jobs and specs


@dataclass(frozen=True)
class SweepJob:
    """One independent unit of sweep work (and one cache address)."""

    index: int
    network: str  # family:args spec string
    layers: int
    scheme: str = "auto"

    @property
    def job_id(self) -> str:
        return f"{self.network}@L{self.layers}/{self.scheme}"

    def build_network(self) -> Network:
        return parse_network(self.network)


@dataclass
class SweepSpec:
    """A declarative sweep: networks x layer budgets under one scheme."""

    networks: list[str] = field(default_factory=list)
    layers: list[int] = field(default_factory=lambda: [2, 4])
    scheme: str = "auto"
    name: str = "sweep"

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; known: {SCHEMES}"
            )

    def expand(self) -> list[SweepJob]:
        """The job list, in deterministic network-major order."""
        jobs = []
        for net in self.networks:
            for L in self.layers:
                jobs.append(
                    SweepJob(
                        index=len(jobs),
                        network=net,
                        layers=L,
                        scheme=self.scheme,
                    )
                )
        return jobs

    # -- (de)serialization, for --spec-file and run reports -------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "networks": list(self.networks),
            "layers": list(self.layers),
            "scheme": self.scheme,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SweepSpec":
        unknown = set(doc) - {"name", "networks", "layers", "scheme"}
        if unknown:
            raise ValueError(f"unknown sweep spec keys: {sorted(unknown)}")
        return cls(
            networks=[str(n) for n in doc.get("networks", [])],
            layers=[int(x) for x in doc.get("layers", [2, 4])],
            scheme=str(doc.get("scheme", "auto")),
            name=str(doc.get("name", "sweep")),
        )

    @classmethod
    def from_file(cls, path) -> "SweepSpec":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


@dataclass
class TrafficSpec:
    """A declarative traffic experiment: one workload on one network.

    The batch-side mirror of :func:`repro.routing.make_workload` plus
    the engine knobs -- everything needed to reproduce a simulation or
    a saturation sweep from a JSON document.  ``rates`` non-empty
    means a sweep (``rate`` is then ignored); ``params`` passes
    through to the workload generator (``hot_fraction``, ``p_on``,
    ...).
    """

    network: str
    workload: str = "uniform"
    rate: float = 0.1
    rates: list[float] = field(default_factory=list)
    duration: int = 64
    seed: int = 0
    layers: int = 2
    mode: str = "store_forward"
    message_length: int = 1
    engine: str = "fast"
    params: dict = field(default_factory=dict)

    _KEYS = (
        "network", "workload", "rate", "rates", "duration", "seed",
        "layers", "mode", "message_length", "engine", "params",
    )

    def __post_init__(self) -> None:
        from repro.routing.traffic import WORKLOAD_KINDS

        if self.workload not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"known: {', '.join(WORKLOAD_KINDS)}"
            )
        if self.engine not in ("fast", "oracle"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.mode not in ("store_forward", "cut_through"):
            raise ValueError(f"unknown mode {self.mode!r}")

    def build_network(self) -> Network:
        return parse_network(self.network)

    def run(self):
        """Execute the spec on its network's L-layer layout.

        Returns a :class:`~repro.routing.SimulationResult` for a
        single run, or ``{"rows", "knee"}`` when ``rates`` makes it a
        saturation sweep.
        """
        from repro.routing import (
            knee_point,
            make_workload,
            saturation_sweep,
            simulate,
            simulate_fast,
        )

        net = self.build_network()
        lay = layout_network(net, layers=self.layers)
        if self.rates:
            rows = saturation_sweep(
                net, rates=self.rates, duration=self.duration,
                workload=self.workload, seed=self.seed,
                engine=self.engine, layout=lay, mode=self.mode,
                message_length=self.message_length,
                workload_params=self.params or None,
            )
            return {"rows": rows, "knee": knee_point(rows)}
        msgs = make_workload(
            self.workload, net, seed=self.seed, rate=self.rate,
            duration=self.duration, **self.params,
        )
        run_fn = simulate_fast if self.engine == "fast" else simulate
        return run_fn(
            net, msgs, layout=lay, mode=self.mode,
            message_length=self.message_length,
        )

    def to_dict(self) -> dict:
        return {
            "network": self.network,
            "workload": self.workload,
            "rate": self.rate,
            "rates": list(self.rates),
            "duration": self.duration,
            "seed": self.seed,
            "layers": self.layers,
            "mode": self.mode,
            "message_length": self.message_length,
            "engine": self.engine,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "TrafficSpec":
        unknown = set(doc) - set(cls._KEYS)
        if unknown:
            raise ValueError(
                f"unknown traffic spec keys: {sorted(unknown)}"
            )
        if "network" not in doc:
            raise ValueError("traffic spec needs a network")
        return cls(
            network=str(doc["network"]),
            workload=str(doc.get("workload", "uniform")),
            rate=float(doc.get("rate", 0.1)),
            rates=[float(r) for r in doc.get("rates", [])],
            duration=int(doc.get("duration", 64)),
            seed=int(doc.get("seed", 0)),
            layers=int(doc.get("layers", 2)),
            mode=str(doc.get("mode", "store_forward")),
            message_length=int(doc.get("message_length", 1)),
            engine=str(doc.get("engine", "fast")),
            params=dict(doc.get("params", {})),
        )

    @classmethod
    def from_file(cls, path) -> "TrafficSpec":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


def standard_family_sweep(layers: tuple[int, ...] = (2, 4)) -> SweepSpec:
    """The default benchmark sweep: one representative per scheme
    family at sizes the whole pipeline (build + validate + measure)
    handles in well under a second each."""
    return SweepSpec(
        name="standard-families",
        networks=[
            "ring:16",
            "kary:4,2",
            "hypercube:5",
            "folded-hypercube:4",
            "complete:10",
            "ghc:4,4",
            "butterfly:3",
            "ccc:4",
            "star:4",
            "shuffle-exchange:5",
        ],
        layers=list(layers),
    )
