"""Multilayer 3-D grid layouts (deck stacking + risers)."""

import pytest

from repro.core import layout_kary, measure
from repro.core.threedee import (
    greedy_edge_coloring,
    layout_product_3d,
)
from repro.grid.validate import check_topology, validate_layout
from repro.grid.wire import Wire, WirePathError
from repro.topology import CompleteGraph, Hypercube, ProductNetwork, Ring


def product3(a, b, c):
    return ProductNetwork(ProductNetwork(a, b), c)


class TestRiserWires:
    def test_make_riser(self):
        w = Wire.make_riser("a", "b", 3, 4, 1, 5)
        assert w.length == 4
        assert w.vias() == [(3, 4)]
        assert w.layers_used() == {1, 2, 3, 4, 5}
        assert w.z_occupancy() == [((3, 4), 1, 5)]
        assert w.start.planar() == w.end.planar() == (3, 4)

    def test_riser_with_segments_rejected(self):
        from repro.grid.geometry import Segment

        with pytest.raises(WirePathError, match="riser"):
            Wire("a", "b", [Segment.make(0, 0, 1, 0, 1)], riser=(0, 0, 1, 3))

    def test_bad_riser_layers(self):
        with pytest.raises(WirePathError):
            Wire.make_riser("a", "b", 0, 0, 3, 3)


class TestEdgeColoring:
    def test_ring_two_colors(self):
        colors = greedy_edge_coloring(Ring(6))
        for u in range(6):
            incident = [c for (a, b), c in colors.items() if u in (a, b)]
            assert len(incident) == len(set(incident))

    def test_complete_graph(self):
        colors = greedy_edge_coloring(CompleteGraph(5))
        assert max(colors.values()) <= 2 * 4 - 1


class TestLayout3D:
    def test_torus_4x4x4(self):
        lay = layout_product_3d(Ring(4), Ring(4), Ring(4), layers=8)
        validate_layout(lay)
        check_topology(lay, product3(Ring(4), Ring(4), Ring(4)).edges)
        assert lay.meta["decks"] == 4
        assert lay.meta["active_layers"] == [1, 3, 5, 7]

    def test_hypercube_decks(self):
        lay = layout_product_3d(
            Hypercube(2), Hypercube(2), Hypercube(2), layers=8
        )
        validate_layout(lay)
        check_topology(
            lay, product3(Hypercube(2), Hypercube(2), Hypercube(2)).edges
        )

    def test_mixed_factors(self):
        lay = layout_product_3d(Ring(3), CompleteGraph(3), Ring(3), layers=6)
        validate_layout(lay)
        check_topology(lay, product3(Ring(3), CompleteGraph(3), Ring(3)).edges)

    def test_footprint_beats_2d(self):
        """The point of the 3-D model: same network, same L, much
        smaller footprint and volume."""
        lay3 = layout_product_3d(Ring(4), Ring(4), Ring(4), layers=8)
        m3 = measure(lay3)
        m2 = measure(layout_kary(4, 3, layers=8))
        assert m3.area < m2.area / 2
        assert m3.volume < m2.volume / 2
        assert m3.max_wire < m2.max_wire

    def test_riser_count(self):
        lay = layout_product_3d(Ring(4), Ring(4), Ring(4), layers=8)
        risers = [w for w in lay.wires if w.riser is not None]
        # |C-edges| x planar positions = 4 x 16
        assert len(risers) == 64

    def test_riser_pins_unique_per_position(self):
        lay = layout_product_3d(Ring(4), Ring(4), Ring(4), layers=8)
        seen = {}
        for w in lay.wires:
            if w.riser is None:
                continue
            x, y, zlo, zhi = w.riser
            for (pt, lo, hi, other) in seen.get((x, y), []):
                assert hi < zlo or zhi < lo  # stacked disjointly
            seen.setdefault((x, y), []).append(((x, y), zlo, zhi, w))

    def test_insufficient_layers(self):
        with pytest.raises(ValueError, match="layers"):
            layout_product_3d(Ring(4), Ring(4), Ring(4), layers=4)

    def test_too_small_nodes(self):
        with pytest.raises(ValueError, match="node_side|free top pins"):
            layout_product_3d(
                Ring(4), Ring(4), Ring(4), layers=8, node_side=2
            )

    def test_serialization_roundtrip(self):
        from repro.grid.io import layout_from_json, layout_to_json

        lay = layout_product_3d(Ring(3), Ring(3), Ring(3), layers=6)
        back = layout_from_json(layout_to_json(lay))
        assert back.summary() == lay.summary()
        validate_layout(back)
