"""Generic collinear layout engine.

Given a graph and a linear order of its nodes, every edge becomes an
interval between its endpoints' positions; packing those intervals into
tracks with the left-edge algorithm yields a collinear layout whose
track count equals the order's max cut -- provably the best possible
for that order (interval-graph coloring equals clique number).

The engine therefore serves two roles:

* it *constructs* the layouts behind the paper's recursions (Section
  3.1, 4.1, 5.1) from the right node orders, and
* it *certifies* them: ``CollinearLayout.num_tracks`` carries the
  max-cut lower bound along with the construction, so tests can assert
  the paper's closed forms exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

from repro import obs
from repro.grid.tracks import Interval, max_overlap, pack_intervals

__all__ = ["CollinearLayout", "collinear_layout"]

Edge = tuple[Hashable, Hashable]


@dataclass(slots=True)
class CollinearLayout:
    """A collinear layout: node order plus per-edge track assignment.

    Attributes
    ----------
    order:
        ``order[p]`` is the node at position ``p``.
    edges:
        The laid-out edges, as given (parallel edges appear repeatedly).
    tracks:
        ``tracks[e]`` is the track (0-based) of ``edges[e]``.
    num_tracks:
        Total number of tracks used.
    """

    order: list[Hashable]
    edges: list[Edge]
    tracks: list[int]
    num_tracks: int
    pos: dict[Hashable, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.pos:
            self.pos = {v: p for p, v in enumerate(self.order)}
        if len(self.pos) != len(self.order):
            raise ValueError("order contains duplicate nodes")

    @property
    def num_nodes(self) -> int:
        return len(self.order)

    def interval(self, e: int) -> tuple[int, int]:
        u, v = self.edges[e]
        a, b = self.pos[u], self.pos[v]
        return (a, b) if a <= b else (b, a)

    def max_cut(self) -> int:
        """The max-cut certificate for this order (== optimal tracks)."""
        return max_overlap(
            Interval(*self.interval(e)) for e in range(len(self.edges))
        )

    def cut_profile(self) -> list[int]:
        """Edges crossing each inter-position gap, left to right."""
        n = len(self.order)
        profile = [0] * max(n - 1, 0)
        for e in range(len(self.edges)):
            lo, hi = self.interval(e)
            for p in range(lo, hi):
                profile[p] += 1
        return profile

    def check(self) -> None:
        """Validate the track assignment (no in-track proper overlap)."""
        by_track: dict[int, list[tuple[int, int]]] = {}
        for e, t in enumerate(self.tracks):
            by_track.setdefault(t, []).append(self.interval(e))
        for t, ivs in by_track.items():
            ivs.sort()
            for (l1, h1), (l2, h2) in zip(ivs, ivs[1:]):
                if l2 < h1:
                    raise ValueError(
                        f"track {t}: intervals ({l1},{h1}) and ({l2},{h2}) overlap"
                    )
        if self.tracks and max(self.tracks) >= self.num_tracks:
            raise ValueError("track index exceeds num_tracks")
        for e, (u, v) in enumerate(self.edges):
            if u == v:
                raise ValueError(f"self-loop edge {e}: {u}")

    def is_optimal(self) -> bool:
        return self.num_tracks == self.max_cut()


def collinear_layout(
    nodes: Sequence[Hashable],
    edges: Sequence[Edge],
    order: Sequence[Hashable] | Callable[[Sequence[Hashable]], Sequence[Hashable]] | None = None,
) -> CollinearLayout:
    """Build an optimal collinear layout for the given order.

    Parameters
    ----------
    nodes, edges:
        The graph.  ``edges`` may contain parallel edges (each gets its
        own track slot), which the PN-cluster quotients of Sections 3.2
        and 4.2 rely on.
    order:
        The node order: an explicit sequence, a callable
        ``nodes -> sequence``, or ``None`` for the given node order.

    Returns a :class:`CollinearLayout` whose ``num_tracks`` equals the
    max cut of the order (left-edge optimality).
    """
    if order is None:
        seq = list(nodes)
    elif callable(order):
        seq = list(order(nodes))
    else:
        seq = list(order)
    if set(seq) != set(nodes) or len(seq) != len(set(seq)):
        raise ValueError("order must be a permutation of the nodes")
    pos = {v: p for p, v in enumerate(seq)}

    with obs.span(
        "collinear_layout", nodes=len(seq), edges=len(edges)
    ) as sp:
        intervals = []
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop not embeddable: {u}")
            a, b = pos[u], pos[v]
            if a > b:
                a, b = b, a
            intervals.append(Interval(a, b))
        assignment, num_tracks = pack_intervals(intervals)
        tracks = [assignment[i] for i in range(len(intervals))]
        sp.add("tracks", num_tracks)
    obs.count("collinear.layouts_built")
    obs.count("collinear.tracks_packed", num_tracks)
    obs.count("collinear.intervals_packed", len(intervals))
    return CollinearLayout(
        order=seq, edges=list(edges), tracks=tracks, num_tracks=num_tracks
    )
