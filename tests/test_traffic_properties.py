"""Property-based tests of the workload zoo (:mod:`repro.routing.traffic`).

The contracts the engine, the saturation sweeps, and the ``traffic``
fuzz stage all rely on:

* every generated message is well-formed -- endpoints on the network,
  no self-sends, start cycles inside ``[0, duration)``;
* the permutation kinds really are permutations (bijections, and for
  ``adversarial`` a derangement over *all* nodes);
* generation is a pure function of ``(network, seed, params)`` --
  identical seeds give identical streams;
* offered load is conserved under sharding: ``shard_workload`` splits
  a stream into an exact partition and ``merge_shards`` reassembles
  the original order for *any* worker count (worker invariance).
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from strategies import workload_cases

from repro.routing.traffic import (
    adversarial_permutation,
    load_trace,
    make_workload,
    merge_shards,
    save_trace,
    shard_workload,
    trace_replay,
    uniform,
)
from repro.topology import Hypercube, Ring

TIMED_KINDS = {"uniform", "hotspot", "bursty"}


def _gen(net, kind, seed, rate, duration):
    return make_workload(kind, net, seed=seed, rate=rate, duration=duration)


class TestWellFormed:
    @given(workload_cases())
    @settings(max_examples=80, deadline=None)
    def test_messages_on_network(self, case):
        net, kind, seed, rate, duration = case
        msgs = _gen(net, kind, seed, rate, duration)
        index = net.index
        for row in msgs:
            src, dst = row[0], row[1]
            assert src in index and dst in index
            assert src != dst
            if len(row) == 3:
                assert isinstance(row[2], int)
                assert 0 <= row[2] < duration
            else:
                assert kind not in TIMED_KINDS

    @given(workload_cases(kinds=TIMED_KINDS))
    @settings(max_examples=40, deadline=None)
    def test_offered_load_bounded(self, case):
        net, kind, seed, rate, duration = case
        msgs = _gen(net, kind, seed, rate, duration)
        # At most one injection per node per cycle, by construction.
        assert len(msgs) <= len(list(net.nodes)) * duration
        per_cycle: dict[tuple, int] = {}
        for src, _dst, start in msgs:
            key = (src, start)
            per_cycle[key] = per_cycle.get(key, 0) + 1
            assert per_cycle[key] == 1


class TestPermutations:
    @given(st.integers(0, 2**16), workload_cases(kinds=["adversarial"]))
    @settings(max_examples=40, deadline=None)
    def test_adversarial_is_derangement(self, _s, case):
        net, kind, seed, rate, duration = case
        msgs = _gen(net, kind, seed, rate, duration)
        nodes = list(net.nodes)
        srcs = [s for s, _d in msgs]
        dsts = [d for _s, d in msgs]
        # Every node sends exactly once, every node receives exactly
        # once, and nobody sends to itself: a derangement.
        assert sorted(srcs, key=repr) == sorted(nodes, key=repr)
        assert sorted(dsts, key=repr) == sorted(nodes, key=repr)
        assert all(s != d for s, d in msgs)

    @given(workload_cases(kinds=["bit-reversal", "transpose"]))
    @settings(max_examples=40, deadline=None)
    def test_address_kernels_are_injective(self, case):
        net, kind, seed, rate, duration = case
        msgs = _gen(net, kind, seed, rate, duration)
        srcs = [s for s, _d in msgs]
        dsts = [d for _s, d in msgs]
        # Partial permutations: distinct sources map to distinct
        # destinations (fixed points are dropped by the kernels).
        assert len(set(map(repr, srcs))) == len(srcs)
        assert len(set(map(repr, dsts))) == len(dsts)
        assert all(s != d for s, d in msgs)

    @given(st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_hypercube_kernels_are_involutions(self, n):
        net = Hypercube(n)
        for kind in ("bit-reversal",):
            pairs = dict(make_workload(kind, net))
            for s, d in pairs.items():
                assert pairs.get(d) == s


class TestDeterminism:
    @given(workload_cases())
    @settings(max_examples=60, deadline=None)
    def test_same_seed_same_stream(self, case):
        net, kind, seed, rate, duration = case
        a = _gen(net, kind, seed, rate, duration)
        b = _gen(net, kind, seed, rate, duration)
        assert a == b

    def test_distinct_seeds_distinct_streams(self):
        # Not a universal law (tiny durations can collide), so pin one
        # concrete case rather than asserting it property-wide.
        net = Hypercube(4)
        a = make_workload("uniform", net, seed=0, rate=0.5, duration=32)
        b = make_workload("uniform", net, seed=1, rate=0.5, duration=32)
        assert a != b


class TestWorkerInvariance:
    @given(workload_cases(), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_shard_merge_roundtrip(self, case, workers):
        net, kind, seed, rate, duration = case
        msgs = _gen(net, kind, seed, rate, duration)
        shards = [shard_workload(msgs, w, workers) for w in range(workers)]
        # Exact partition: offered load is conserved across workers...
        assert sum(len(s) for s in shards) == len(msgs)
        # ...and the original order is recoverable for any worker count.
        assert merge_shards(shards) == msgs

    @given(workload_cases(), st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_worker_count_invariant(self, case, k1, k2):
        net, kind, seed, rate, duration = case
        msgs = _gen(net, kind, seed, rate, duration)
        merged1 = merge_shards(
            [shard_workload(msgs, w, k1) for w in range(k1)]
        )
        merged2 = merge_shards(
            [shard_workload(msgs, w, k2) for w in range(k2)]
        )
        assert merged1 == merged2 == msgs


class TestTraceReplay:
    def test_replay_normalizes_pairs(self):
        net = Ring(6)
        msgs = [(0, 3), (1, 4, 7), (5, 2)]
        replayed = trace_replay(net, trace=msgs)
        assert replayed == [(0, 3, 0), (1, 4, 7), (5, 2, 0)]

    def test_save_load_roundtrip(self, tmp_path):
        net = Hypercube(3)
        msgs = uniform(net, rate=0.4, duration=12, seed=9)
        path = tmp_path / "trace.jsonl"
        assert save_trace(path, msgs) == len(msgs)
        assert load_trace(path) == msgs
        # And a loaded trace replays verbatim through the zoo entry.
        assert make_workload("trace", net, trace=load_trace(path)) == msgs

    def test_adversarial_quadratic_but_seeded(self):
        net = Ring(10)
        assert adversarial_permutation(net, seed=3) == adversarial_permutation(
            net, seed=3
        )
