"""GridLayout container measurements."""

import pytest

from repro.grid.geometry import Rect, Segment
from repro.grid.layout import GridLayout
from repro.grid.wire import Wire


def make_layout():
    lay = GridLayout(layers=4)
    lay.place("a", Rect(0, 5, 2, 2))
    lay.place("b", Rect(10, 5, 2, 2))
    lay.add_wire(
        Wire(
            "a",
            "b",
            [
                Segment.make(1, 5, 1, 2, 2),
                Segment.make(1, 2, 11, 2, 1),
                Segment.make(11, 2, 11, 5, 2),
            ],
        )
    )
    return lay


class TestMeasures:
    def test_bounding_box(self):
        lay = make_layout()
        bb = lay.bounding_box()
        assert (bb.x0, bb.y0) == (0, 2)
        assert (bb.x1, bb.y1) == (12, 7)

    def test_area_volume(self):
        lay = make_layout()
        assert lay.area == 12 * 5
        assert lay.volume == 4 * 12 * 5

    def test_wire_lengths(self):
        lay = make_layout()
        assert lay.max_wire_length() == 16
        assert lay.total_wire_length() == 16
        assert lay.via_count() == 2

    def test_layers_used(self):
        lay = make_layout()
        assert lay.layers_used() == {1, 2}

    def test_empty_layout(self):
        lay = GridLayout(layers=2)
        assert lay.area == 0
        assert lay.max_wire_length() == 0
        assert lay.bounding_box() == Rect(0, 0, 0, 0)

    def test_double_placement_rejected(self):
        lay = GridLayout(layers=2)
        lay.place("a", Rect(0, 0, 1, 1))
        with pytest.raises(ValueError, match="twice"):
            lay.place("a", Rect(5, 5, 1, 1))

    def test_edge_multiset(self):
        lay = make_layout()
        assert lay.edge_multiset() == {("a", "b"): 1}

    def test_summary_keys(self):
        s = make_layout().summary()
        for key in ("nodes", "wires", "area", "volume", "max_wire_length",
                    "layers", "layers_used", "vias"):
            assert key in s
        assert s["nodes"] == 2 and s["wires"] == 1
