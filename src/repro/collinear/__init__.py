"""Collinear (one-dimensional) layouts.

A *collinear layout* places all nodes of a network along a line and
routes every edge in one of a stack of parallel tracks (Section 3.1).
The paper builds its 2-D orthogonal layouts out of collinear layouts of
the row and column subnetworks, so this package is the combinatorial
core of the reproduction:

* :class:`~repro.collinear.engine.CollinearLayout` -- order + left-edge
  track assignment for an arbitrary graph, with the max-cut optimality
  certificate.
* :mod:`~repro.collinear.orders` -- the node orders under which the
  paper's track counts are met (mixed-radix lexicographic for k-ary
  n-cubes and generalized hypercubes, binary for hypercubes).
* :mod:`~repro.collinear.recursions` -- the paper's explicit bottom-up
  constructions (ring -> k-ary n-cube, complete graph -> generalized
  hypercube, 2-cube -> hypercube), reproducing Figures 2-4.
* :mod:`~repro.collinear.formulas` -- closed-form track counts
  (f_k(n), |N^2/4|, |2N/3|, the GHC recurrence).
"""

from repro.collinear.engine import CollinearLayout, collinear_layout
from repro.collinear.formulas import (
    complete_graph_tracks,
    ghc_tracks,
    hypercube_tracks,
    kary_tracks,
    mixed_radix_ghc_tracks,
)
from repro.collinear.orders import (
    binary_order,
    folded_linear_order,
    identity_order,
    mixed_radix_order,
)
from repro.collinear.cutwidth import exact_cutwidth, optimal_order
from repro.collinear.product import product_collinear
from repro.collinear.recursions import (
    complete_recursive,
    ghc_recursive,
    hypercube_recursive,
    kary_recursive,
    ring_recursive,
)
from repro.collinear.two_sided import two_sided_collinear_layout

__all__ = [
    "CollinearLayout",
    "collinear_layout",
    "kary_tracks",
    "complete_graph_tracks",
    "ghc_tracks",
    "mixed_radix_ghc_tracks",
    "hypercube_tracks",
    "identity_order",
    "binary_order",
    "mixed_radix_order",
    "folded_linear_order",
    "ring_recursive",
    "kary_recursive",
    "complete_recursive",
    "ghc_recursive",
    "hypercube_recursive",
    "exact_cutwidth",
    "optimal_order",
    "product_collinear",
    "two_sided_collinear_layout",
]
