"""Incremental revalidation: dirty-set bookkeeping and verdict parity.

The contract under test (see :mod:`repro.grid.dirty`): after a
successful validation, ``validate_layout(lay, incremental=True)``
re-checks only the wires and nodes intersecting the bands dirtied by
``add_wire`` / ``replace_wire`` / ``place`` since then, and its
verdict equals a from-scratch validation's -- with full-sweep
fallbacks on first call, on ``invalidate_table``, and past the dirty
threshold.
"""

import random

import pytest

from repro.batch.spec import dispatch_scheme
from repro.check.generate import mutate_layout
from repro.grid.dirty import DirtyTracker, wire_extent
from repro.grid.geometry import Rect, Segment
from repro.grid.io import clone_layout
from repro.grid.layout import GridLayout
from repro.grid.validate import LayoutError, validate_layout
from repro.grid.wire import Wire
from repro.topology import Hypercube


def two_pair_layout():
    """Two disjoint horizontal wires on layer 1, four nodes."""
    lay = GridLayout(layers=2)
    lay.place("a", Rect(0, 8, 2, 2))
    lay.place("b", Rect(10, 8, 2, 2))
    lay.place("c", Rect(0, 0, 2, 2))
    lay.place("d", Rect(10, 0, 2, 2))
    lay.add_wire(Wire("a", "b", [Segment.make(2, 9, 10, 9, 1)]))
    lay.add_wire(Wire("c", "d", [Segment.make(2, 1, 10, 1, 1)]))
    return lay


def inc_validate(lay, **kw):
    return validate_layout(
        lay, incremental=True, check_pins=False,
        check_node_interference=True, **kw,
    )


#: Band-path tests run on tiny layouts where any edit exceeds the
#: default 25%-of-wires threshold; lifting it isolates the band path.
BANDS = {"incremental_threshold": 1.0}


class TestModes:
    def test_first_call_attaches_and_full_sweeps(self):
        lay = two_pair_layout()
        assert lay._dirty is None
        rep = inc_validate(lay)
        assert rep["incremental"] == {"mode": "full", "reason": "untracked"}
        assert isinstance(lay._dirty, DirtyTracker)

    def test_untouched_layout_is_clean(self):
        lay = two_pair_layout()
        inc_validate(lay)
        rep = inc_validate(lay)
        assert rep["incremental"]["mode"] == "clean"
        assert rep["checks"] == 0

    def test_edit_takes_band_path(self):
        lay = two_pair_layout()
        inc_validate(lay)
        lay.replace_wire(
            1, Wire("c", "d", [Segment.make(2, 1, 10, 1, 2)])
        )
        rep = inc_validate(lay, **BANDS)
        inc = rep["incremental"]
        assert inc["mode"] == "bands"
        assert inc["wires_checked"] >= 1
        # A successful band run clears the dirty set.
        rep2 = inc_validate(lay)
        assert rep2["incremental"]["mode"] == "clean"

    def test_small_edit_falls_back_past_threshold(self):
        # Two wires: any one dirty wire is 50% > the default 25%.
        lay = two_pair_layout()
        inc_validate(lay)
        lay.replace_wire(
            1, Wire("c", "d", [Segment.make(2, 1, 10, 1, 2)])
        )
        rep = inc_validate(lay)
        assert rep["incremental"]["mode"] == "full"
        assert rep["incremental"]["reason"] == "threshold"

    def test_full_validate_rearms_tracker(self):
        lay = two_pair_layout()
        inc_validate(lay)
        lay.replace_wire(
            1, Wire("c", "d", [Segment.make(2, 1, 10, 1, 2)])
        )
        # A plain full validation also resets the attached tracker...
        validate_layout(lay, check_pins=False)
        rep = inc_validate(lay)
        assert rep["incremental"]["mode"] == "clean"


class TestDirtyBookkeeping:
    def test_replace_introducing_conflict_is_caught(self):
        lay = two_pair_layout()
        inc_validate(lay)
        # Move wire c-d on top of wire a-b: overlap on (h, 1, y=9).
        lay.replace_wire(
            1, Wire("c", "d", [Segment.make(2, 9, 10, 9, 1)])
        )
        with pytest.raises(LayoutError, match="overlap"):
            inc_validate(lay, **BANDS)

    def test_add_wire_conflict_is_caught(self):
        lay = two_pair_layout()
        inc_validate(lay)
        lay.add_wire(Wire("a", "b", [Segment.make(2, 9, 10, 9, 1)]))
        with pytest.raises(LayoutError, match="overlap"):
            inc_validate(lay, **BANDS)

    def test_place_conflict_is_caught(self):
        lay = two_pair_layout()
        inc_validate(lay)
        # A node square whose interior the a-b wire crosses at y=9.
        lay.place("e", Rect(4, 8, 2, 2))
        with pytest.raises(LayoutError, match="interior"):
            inc_validate(lay, **BANDS)

    def test_revert_after_failure_accepts(self):
        lay = two_pair_layout()
        inc_validate(lay)
        good = lay.wires[1]
        lay.replace_wire(
            1, Wire("c", "d", [Segment.make(2, 9, 10, 9, 1)])
        )
        with pytest.raises(LayoutError):
            inc_validate(lay, **BANDS)
        # Bands accumulate across failures: reverting the edit must be
        # enough for the next incremental call to accept again.
        lay.replace_wire(1, good)
        rep = inc_validate(lay, **BANDS)
        assert rep["incremental"]["mode"] == "bands"

    def test_invalidate_table_poisons_tracker(self):
        lay = two_pair_layout()
        inc_validate(lay)
        lay.invalidate_table()
        rep = inc_validate(lay)
        assert rep["incremental"] == {"mode": "full", "reason": "untracked"}

    def test_untracked_direct_mutation_with_invalidate(self):
        """The documented escape hatch: mutate ``wires`` directly, call
        ``invalidate_table``, and incremental mode stays sound via the
        full-sweep fallback."""
        lay = two_pair_layout()
        inc_validate(lay)
        lay.wires[1] = Wire("c", "d", [Segment.make(2, 9, 10, 9, 1)])
        lay.invalidate_table()
        with pytest.raises(LayoutError, match="overlap"):
            inc_validate(lay)


class TestFallbacks:
    def test_threshold_fallback(self):
        lay = dispatch_scheme(Hypercube(3), layers=4, scheme="auto")
        inc_validate(lay)
        for i in range(len(lay.wires) // 2):
            w = lay.wires[i]
            if w.riser is not None:
                continue
            lay.replace_wire(
                i, Wire(w.u, w.v, list(w.segments), edge_key=w.edge_key)
            )
        rep = inc_validate(lay, incremental_threshold=0.1)
        inc = rep["incremental"]
        assert inc["mode"] == "full"
        assert inc["reason"] == "threshold"
        # ... and the fallback re-arms: next call is clean.
        assert inc_validate(lay)["incremental"]["mode"] == "clean"

    def test_max_bands_fallback(self):
        lay = two_pair_layout()
        inc_validate(lay)
        tracker = lay._dirty
        # Distinct synthetic bands past the cap (coalescing keeps them
        # all), plus threshold=1.0 so only MAX_BANDS can trigger.
        for k in range(tracker.MAX_BANDS + 1):
            tracker.bands.append((k, k, 1, 1))
        rep = inc_validate(lay, incremental_threshold=1.0)
        assert rep["incremental"]["mode"] == "full"
        assert rep["incremental"]["reason"] == "threshold"


class TestTrackerUnit:
    def test_wire_extent(self):
        w = Wire("a", "b", [Segment.make(2, 9, 10, 9, 1)])
        assert wire_extent(w) == (9, 9, 1, 1)

    def test_select_wires_closed_intervals(self):
        t = DirtyTracker()
        t.full = False
        t.validated = True
        t.ymin = [0, 5]
        t.ymax = [2, 7]
        t.lmin = [1, 1]
        t.lmax = [2, 2]
        # Touching at y=2 counts (closed intervals); layer 3 excludes.
        assert t.select_wires([(2, 4, 1, 1)]) == [0]
        assert t.select_wires([(2, 6, 1, 2)]) == [0, 1]
        assert t.select_wires([(2, 6, 3, 3)]) == []

    def test_coalesced_bands_dedup_stable(self):
        t = DirtyTracker()
        t.bands = [(0, 1, 1, 1), (2, 3, 1, 1), (0, 1, 1, 1)]
        assert t.coalesced_bands() == [(0, 1, 1, 1), (2, 3, 1, 1)]

    def test_hooks_noop_while_full(self):
        t = DirtyTracker()
        t.on_add(Wire("a", "b", [Segment.make(0, 0, 2, 0, 1)]))
        t.on_place(Rect(0, 0, 2, 2), 1)
        assert t.bands == []
        assert t.needs_full()


class TestAgreementFuzz:
    def test_mini_fuzz_matches_from_scratch(self):
        """~30 seeded edit rounds on a real scheme layout: incremental
        and from-scratch verdicts agree at every step."""
        base = dispatch_scheme(Hypercube(3), layers=4, scheme="auto")
        lay = clone_layout(base)
        inc_validate(lay)
        rng = random.Random(0xD187E)
        for round_no in range(30):
            applied = 0
            for _ in range(rng.randint(1, 3)):
                applied += mutate_layout(lay, rng)
            if not applied:
                continue
            try:
                inc_validate(lay)
                inc = (True, "")
            except LayoutError as exc:
                inc = (False, "")
            try:
                validate_layout(
                    clone_layout(lay), check_pins=False,
                    check_node_interference=True,
                )
                full = (True, "")
            except LayoutError:
                full = (False, "")
            assert inc == full, f"round {round_no}"
