"""repro: multilayer VLSI layout for interconnection networks.

A from-scratch reproduction of

    Chi-Hsiang Yeh, Emmanouel A. Varvarigos, Behrooz Parhami,
    "Multilayer VLSI Layout for Interconnection Networks", ICPP 2000.

The library provides:

* the **multilayer grid model** substrate (:mod:`repro.grid`): grid
  geometry, wires with per-segment layers, layouts, and a legality
  validator;
* **network topologies** (:mod:`repro.topology`): every family the
  paper lays out, built from scratch;
* **collinear layouts** (:mod:`repro.collinear`): the generic
  order-plus-left-edge engine and the paper's explicit recursions with
  their exact track-count formulas;
* the **layout schemes** (:mod:`repro.core`): the orthogonal multilayer
  scheme, the recursive grid (PN-cluster) scheme, extra-link routing,
  the folding baselines and the paper's closed-form predictions;
* **rendering** (:mod:`repro.viz`): ASCII and SVG.

Quick start::

    from repro import layout_hypercube, validate_layout, measure

    lay = layout_hypercube(8, layers=8)   # 256-node hypercube, 8 layers
    validate_layout(lay)                  # multilayer grid model rules
    print(measure(lay).as_dict())
"""

from repro.collinear import (
    CollinearLayout,
    collinear_layout,
    complete_graph_tracks,
    exact_cutwidth,
    ghc_tracks,
    hypercube_tracks,
    kary_tracks,
    optimal_order,
)
from repro.core import (
    DelayModel,
    area_lower_bound,
    bisection_formula,
    build_orthogonal_layout,
    collinear_multilayer_metrics,
    exact_bisection,
    fold_layout,
    fold_metrics,
    layout_butterfly,
    layout_ccc,
    layout_collinear_network,
    layout_complete,
    layout_enhanced_cube,
    layout_folded_hypercube,
    layout_ghc,
    layout_hsn,
    layout_hypercube,
    layout_isn,
    layout_kary,
    layout_network,
    layout_product,
    layout_product_3d,
    layout_reduced_hypercube,
    measure,
    optimality_factor,
    paper_prediction,
    performance,
)
from repro.grid.io import dump_layout, layout_from_json, layout_to_json, load_layout
from repro.grid import GridLayout, LayoutError, validate_layout
from repro.topology import (
    HHN,
    HSN,
    Butterfly,
    CompleteGraph,
    CubeConnectedCycles,
    EnhancedCube,
    FoldedHypercube,
    GeneralizedHypercube,
    Hypercube,
    IndirectSwapNetwork,
    KAryNCube,
    Mesh,
    ProductNetwork,
    ReducedHypercube,
    Ring,
    StarGraph,
)
from repro.viz import ascii_collinear, ascii_grid_layout, svg_layout

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # grid
    "GridLayout",
    "LayoutError",
    "validate_layout",
    # collinear
    "CollinearLayout",
    "collinear_layout",
    "kary_tracks",
    "complete_graph_tracks",
    "ghc_tracks",
    "hypercube_tracks",
    "exact_cutwidth",
    "optimal_order",
    # topologies
    "Ring",
    "Mesh",
    "KAryNCube",
    "Hypercube",
    "FoldedHypercube",
    "EnhancedCube",
    "CompleteGraph",
    "GeneralizedHypercube",
    "ProductNetwork",
    "Butterfly",
    "CubeConnectedCycles",
    "ReducedHypercube",
    "HSN",
    "HHN",
    "IndirectSwapNetwork",
    "StarGraph",
    # schemes
    "build_orthogonal_layout",
    "layout_network",
    "layout_kary",
    "layout_hypercube",
    "layout_ghc",
    "layout_complete",
    "layout_product",
    "layout_collinear_network",
    "layout_product_3d",
    "layout_butterfly",
    "layout_isn",
    "layout_ccc",
    "layout_reduced_hypercube",
    "layout_hsn",
    "layout_folded_hypercube",
    "layout_enhanced_cube",
    # analysis
    "fold_metrics",
    "fold_layout",
    "collinear_multilayer_metrics",
    "paper_prediction",
    "measure",
    "exact_bisection",
    "bisection_formula",
    "area_lower_bound",
    "optimality_factor",
    "DelayModel",
    "performance",
    # io
    "layout_to_json",
    "layout_from_json",
    "dump_layout",
    "load_layout",
    # viz
    "ascii_collinear",
    "ascii_grid_layout",
    "svg_layout",
]
