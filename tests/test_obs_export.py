"""Trace exporters: Chrome trace-event JSON, JSONL, span round-trips."""

import json

import pytest

from repro import obs
from repro.batch.runner import reroot_worker_spans
from repro.obs.export import (
    chrome_trace,
    jsonl_events,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _small_trace():
    obs.enable()
    with obs.span("outer", layers=4) as sp:
        sp.add("wires", 3)
        with obs.span("inner"):
            pass
    obs.count("jobs", 7)
    obs.observe("depth", 2)
    obs.observe("depth", 9)


class TestSpanRoundTrip:
    def test_as_dict_from_dict_preserves_tree(self):
        _small_trace()
        root = obs.trace_roots()[0]
        clone = obs.SpanRecord.from_dict(root.as_dict())
        assert clone.name == "outer"
        assert clone.attrs == {"layers": 4}
        assert clone.counts == {"wires": 3}
        assert [c.name for c in clone.children] == ["inner"]
        assert clone.start == root.start
        assert clone.duration == pytest.approx(root.duration, abs=1e-3)

    def test_attach_under_open_span(self):
        obs.enable()
        sub = obs.SpanRecord(name="grafted", attrs={})
        with obs.span("parent"):
            obs.attach(sub)
        roots = obs.trace_roots()
        assert [c.name for c in roots[0].children] == ["grafted"]

    def test_attach_as_root_when_nothing_open(self):
        obs.enable()
        obs.attach(obs.SpanRecord(name="lone", attrs={}))
        assert [r.name for r in obs.trace_roots()] == ["lone"]

    def test_attach_noop_when_disabled(self):
        obs.attach(obs.SpanRecord(name="ghost", attrs={}))
        assert obs.trace_roots() == []


class TestChromeTrace:
    def test_span_events_have_required_fields(self):
        _small_trace()
        doc = chrome_trace()
        validate_chrome_trace(doc)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["outer", "inner"]
        for e in xs:
            assert isinstance(e["ts"], (int, float))
            assert isinstance(e["dur"], (int, float))
            assert e["pid"] == 0 and e["tid"] == 0
        outer, inner = xs
        assert outer["args"]["layers"] == 4
        assert outer["args"]["count.wires"] == 3
        # The child starts within the parent and ends no later.
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1

    def test_counters_and_histograms_become_counter_tracks(self):
        _small_trace()
        doc = chrome_trace()
        cs = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "C"}
        assert cs["jobs"]["args"]["value"] == 7
        assert cs["depth"]["args"]["count"] == 2
        assert "p50" in cs["depth"]["args"]

    def test_worker_subtrees_get_their_own_process_row(self):
        obs.enable()
        with obs.span("sweep.run"):
            for wid in (0, 1):
                child = obs.SpanRecord(
                    name="sweep.job", attrs={}, start=1.0, duration=0.5
                )
                wrapper = obs.SpanRecord(
                    name="sweep.worker",
                    attrs={"worker_id": wid},
                    start=1.0,
                    duration=0.5,
                    children=[child],
                )
                obs.attach(wrapper)
        doc = chrome_trace()
        validate_chrome_trace(doc)
        by_pid = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                by_pid.setdefault(e["pid"], []).append(e["name"])
        assert by_pid[0] == ["sweep.run"]
        assert by_pid[1] == ["sweep.worker", "sweep.job"]
        assert by_pid[2] == ["sweep.worker", "sweep.job"]
        meta = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert meta == {0: "main", 1: "worker 0", 2: "worker 1"}

    def test_write_and_validate(self, tmp_path):
        _small_trace()
        path = tmp_path / "trace.json"
        write_chrome_trace(path)
        validate_chrome_trace(json.loads(path.read_text()))

    def test_validate_rejects_bad_docs(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})
        good = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0, "dur": 1,
                 "pid": 0, "tid": 0},
            ]
        }
        validate_chrome_trace(good)
        for strip, needle in (
            ("ph", "ph"), ("ts", "ts"), ("pid", "pid"),
            ("tid", "tid"), ("dur", "dur"),
        ):
            bad = json.loads(json.dumps(good))
            bad["traceEvents"][0].pop(strip)
            with pytest.raises(ValueError, match=needle):
                validate_chrome_trace(bad)


class TestJsonl:
    def test_events_flatten_with_depth_and_metrics(self):
        _small_trace()
        events = jsonl_events()
        assert events[0]["type"] == "header"
        spans = [e for e in events if e["type"] == "span"]
        assert [(e["name"], e["depth"]) for e in spans] == [
            ("outer", 0), ("inner", 1),
        ]
        counters = {e["name"]: e for e in events if e["type"] == "counter"}
        assert counters["jobs"]["value"] == 7
        hists = {e["name"]: e for e in events if e["type"] == "histogram"}
        assert hists["depth"]["count"] == 2
        for key in ("p50", "p90", "p99", "mean", "min", "max"):
            assert key in hists["depth"]

    def test_write_is_one_json_object_per_line(self, tmp_path):
        _small_trace()
        path = tmp_path / "events.jsonl"
        write_jsonl(path)
        lines = path.read_text().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["schema"].startswith("repro.events-jsonl")
        assert any(p.get("type") == "span" for p in parsed)


class TestPrometheus:
    def test_counters_get_total_suffix_and_sanitized_names(self):
        text = prometheus_text(
            {"counters": {"cache.hits": 12, "sweep.jobs": 8}}
        )
        assert "# TYPE repro_cache_hits_total counter" in text
        assert "repro_cache_hits_total 12" in text
        assert "repro_sweep_jobs_total 8" in text

    def test_gauges_keep_name(self):
        text = prometheus_text(
            {"gauges": {"sweep.live.workers_ok": 4.0}}
        )
        assert "# TYPE repro_sweep_live_workers_ok gauge" in text
        # Integral floats render integral.
        assert "repro_sweep_live_workers_ok 4\n" in text

    def test_histogram_buckets_are_cumulative(self):
        obs.enable()
        h = obs.registry().histogram("lat", bounds=(1, 2, 8))
        for v in (0.5, 1.5, 5, 100):
            h.observe(v)
        text = prometheus_text()
        assert '# TYPE repro_lat histogram' in text
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="2"} 2' in text
        assert 'repro_lat_bucket{le="8"} 3' in text
        assert 'repro_lat_bucket{le="+Inf"} 4' in text
        assert "repro_lat_sum 107" in text
        assert "repro_lat_count 4" in text

    def test_leading_digit_name_prefixed(self):
        text = prometheus_text(
            {"counters": {"9lives": 1}}, prefix=""
        )
        assert "_9lives_total 1" in text

    def test_empty_snapshot_is_valid_exposition(self):
        assert prometheus_text({}) == "\n"

    def test_write_prometheus_atomic(self, tmp_path):
        path = tmp_path / "metrics.prom"
        text = write_prometheus(path, {"counters": {"n": 3}})
        assert path.read_text() == text
        assert text.endswith("\n")
        assert list(tmp_path.iterdir()) == [path]  # no temp litter

    def test_live_registry_snapshot_roundtrip(self):
        obs.enable()
        obs.count("sweep.runs")
        obs.observe("depth", 2)
        text = prometheus_text()
        assert "repro_sweep_runs_total 1" in text
        assert "repro_depth_count 1" in text


class TestRerootWorkerSpans:
    def test_wrapper_carries_worker_id_and_timing(self):
        obs.enable()
        docs = [
            {"name": "job", "start_s": 5.0, "duration_ms": 1000.0,
             "attrs": {}, "counts": {}, "children": []},
            {"name": "job", "start_s": 7.0, "duration_ms": 500.0,
             "attrs": {}, "counts": {}, "children": []},
        ]
        with obs.span("sweep.run"):
            reroot_worker_spans(3, docs, jobs=2)
        run = obs.trace_roots()[0]
        (worker,) = run.children
        assert worker.name == "sweep.worker"
        assert worker.attrs["worker_id"] == 3
        assert worker.attrs["jobs"] == 2
        assert worker.start == 5.0
        assert worker.duration == pytest.approx(2.5)
        assert [c.name for c in worker.children] == ["job", "job"]

    def test_noop_paths(self):
        obs.enable()
        reroot_worker_spans(0, [])
        assert obs.trace_roots() == []
        obs.disable()
        reroot_worker_spans(0, [{"name": "x", "attrs": {}, "counts": {},
                                 "children": []}])
        obs.enable()
        assert obs.trace_roots() == []
