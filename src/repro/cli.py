"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
layout   build a layout for a named network, print metrics, optionally
         validate and write SVG/JSON
sweep    expand a declarative sweep (families x sizes x L x scheme)
         into jobs, run them across worker processes backed by a
         content-addressed layout cache, tabulate the merged result
zoo      lay out the whole network zoo at a given L and tabulate
figures  regenerate the paper's collinear figures as ASCII
predict  print the paper's closed-form predictions for a family
simulate run a traffic kernel through a network on its layout
cost     price a layout under the cost model (area, layers, yield)
fold     geometrically fold a network's Thompson layout into L layers
stack    3-D deck stacking for a torus (A x B x C of rings)
stats    run the zoo traced and print a pipeline-phase timing breakdown
fuzz     differential fuzzing: random networks through every scheme,
         cross-checked against independent oracles
watch    live status console for a sweep/fuzz run directory: per-worker
         heartbeats, jobs/sec, ETA, cache hit-rate, log tail
         (``--once --json`` for scripts and CI)
bench-diff  compare two bench/trajectory JSONs and flag perf
         regressions past a threshold (nonzero exit on regression)
serve    run the layout daemon: an asyncio HTTP/JSON server answering
         (network, scheme, layers) requests from the layout cache,
         coalescing duplicate in-flight keys, building misses on a
         persistent worker pool, streaming sweeps as JSONL
loadgen  replay a request trace (save_trace JSONL rows reinterpreted
         as [network, layers, start]) against a live server and
         report p50/p90/p99 latency from repro.obs histograms

Every command also accepts ``--trace`` (print the span tree after the
run), ``--report FILE`` (write a machine-readable JSON run report),
``--trace-out FILE`` (write a Chrome trace-event file, loadable in
ui.perfetto.dev), ``--events-out FILE`` (write a JSONL event log for
grep/jq), ``--log-out FILE`` (structured JSONL logging; threshold via
``REPRO_LOG_LEVEL``), and ``--metrics-out FILE`` (Prometheus text
exposition, refreshed live during sweeps); see :mod:`repro.obs`.
``sweep`` and ``fuzz`` take ``--run-dir DIR`` to keep heartbeats, the
log, and the run manifest where ``repro watch`` can find them.

Network specs for ``layout`` are ``family:arg,arg,...``, e.g.::

    python -m repro layout hypercube:8 --layers 8 --svg cube.svg
    python -m repro layout kary:4,3 --layers 4 --validate
    python -m repro layout butterfly:4 --json bf.json
    python -m repro predict hypercube:10 --layers 8
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import obs
from repro.obs import live
from repro.obs import logging as olog
from repro.batch.spec import FAMILIES as _FAMILIES
from repro.batch.spec import SCHEMES, dispatch_scheme, parse_network
from repro.bench.harness import print_table
from repro.core import layout_network, measure, paper_prediction
from repro.core.schemes import layout_cayley
from repro.grid.io import dump_layout
from repro.grid.validate import check_topology, validate_layout
from repro.topology import (
    HSN,
    Butterfly,
    CompleteGraph,
    CubeConnectedCycles,
    DeBruijn,
    FoldedHypercube,
    GeneralizedHypercube,
    Hypercube,
    IndirectSwapNetwork,
    KAryNCube,
    ReducedHypercube,
    Ring,
    ShuffleExchange,
    StarConnectedCycles,
    StarGraph,
    WrappedButterfly,
)
from repro.viz import ascii_collinear, svg_layout

__all__ = ["main", "parse_network"]


def _cmd_layout(args) -> int:
    net = parse_network(args.network)
    if isinstance(net, StarGraph):
        lay = layout_cayley(net, layers=args.layers)
    else:
        lay = layout_network(net, layers=args.layers)
    if args.validate:
        validate_layout(lay)
        check_topology(lay, net.edges)
        print("validation: OK (multilayer grid model + exact topology)")
    m = measure(lay)
    print_table(
        f"{net.name} under L={args.layers}",
        ["N", "links", "W", "H", "area", "volume", "max wire"],
        [[net.num_nodes, net.num_edges, m.width, m.height, m.area,
          m.volume, m.max_wire]],
    )
    if args.svg:
        with open(args.svg, "w") as fh:
            fh.write(svg_layout(lay))
        print(f"SVG written to {args.svg}")
    if args.json:
        dump_layout(lay, args.json)
        print(f"JSON written to {args.json}")
    return 0


def _zoo_networks() -> list:
    return [
        Ring(12), KAryNCube(4, 2), Hypercube(5), FoldedHypercube(4),
        CompleteGraph(10), GeneralizedHypercube((4, 4)), Butterfly(3),
        WrappedButterfly(3), IndirectSwapNetwork(3),
        CubeConnectedCycles(4), ReducedHypercube(4),
        HSN(CompleteGraph(4), 2), StarGraph(4), StarConnectedCycles(4),
        ShuffleExchange(5), DeBruijn(5),
    ]


def _zoo_dispatch(net, layers: int):
    return dispatch_scheme(net, layers=layers, scheme="auto")


def _cmd_zoo(args) -> int:
    rows = []
    for net in _zoo_networks():
        lay = _zoo_dispatch(net, args.layers)
        validate_layout(lay)
        m = measure(lay)
        rows.append([net.name, net.num_nodes, m.area, m.volume, m.max_wire])
    print_table(
        f"network zoo at L={args.layers}",
        ["network", "N", "area", "volume", "max wire"],
        rows,
    )
    return 0


def _cmd_sweep(args) -> int:
    import json as _json

    from repro.batch import SweepRunner, SweepSpec, standard_family_sweep

    if args.spec_file:
        spec = SweepSpec.from_file(args.spec_file)
    elif args.networks:
        spec = SweepSpec(
            networks=list(args.networks),
            layers=list(args.layers),
            scheme=args.scheme,
        )
    else:
        spec = standard_family_sweep(tuple(args.layers))
        spec.scheme = args.scheme
    runner = SweepRunner(
        cache_dir=args.cache_dir,
        workers=args.workers,
        validate=args.validate,
        run_dir=args.run_dir,
        metrics_out=getattr(args, "metrics_out", None),
        stall_after_s=args.stall_after,
    )
    res = runner.run(spec)
    rows = [
        [
            r.network, r.scheme, r.layers, r.num_nodes, r.num_edges,
            r.metrics.get("area"), r.metrics.get("volume"),
            r.metrics.get("max_wire"), r.source,
            f"{r.elapsed_s * 1e3:.1f}",
        ]
        for r in res.results
    ]
    print_table(
        f"sweep {spec.name!r}: {res.jobs} job(s), "
        f"{res.workers} worker(s), {res.elapsed_s:.2f}s",
        ["network", "scheme", "L", "N", "links", "area", "volume",
         "max wire", "source", "ms"],
        rows,
    )
    if args.cache_dir:
        st = res.cache_stats
        print(
            f"cache: {st.hits} hit(s), {st.misses} miss(es), "
            f"{st.writes} write(s), {st.corrupt} corrupt"
        )
    lost = res.lost_workers()
    if lost:
        print(
            "WARNING: worker(s) "
            + ", ".join(str(w) for w in lost)
            + " lost (see worker_health / the run log); merged rows "
            "cover the surviving workers only"
        )
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(res.as_dict(), fh, indent=2)
        print(f"sweep result written to {args.json}")
    return 0


def _cmd_stats(args) -> int:
    """Run the zoo with tracing on; print the phase timing breakdown."""
    import time as _time

    from repro.accel import backend_info

    info = backend_info()
    print(
        f"backends: accel={info['accel']} table={info['table']} "
        f"engine={info['engine']}"
        + (
            f" (REPRO_ACCEL_BACKEND={info['accel_env']})"
            if info["accel_env"]
            else ""
        )
    )
    if getattr(args, "mem", False):
        return _cmd_stats_mem(args)
    cache = None
    if getattr(args, "cache_dir", None):
        from repro.batch.cache import LayoutCache

        cache = LayoutCache(args.cache_dir)
    obs.enable()
    nets = _zoo_networks()
    for net in nets:
        t0 = _time.perf_counter()
        with obs.span("network", network=net.name, N=net.num_nodes):
            entry = key = key_doc = None
            if cache is not None:
                key, key_doc = cache.key_for(
                    net, scheme="auto", layers=args.layers
                )
                entry = cache.get(key, key_doc)
            if entry is None or entry.metrics is None:
                lay = _zoo_dispatch(net, args.layers)
                validate_layout(lay)
                m = measure(lay)
                if cache is not None:
                    from repro.grid.io import layout_to_json

                    cache.put(
                        key, key_doc, layout_to_json(lay), m.as_dict()
                    )
        obs.observe(
            "stats.network_ms", (_time.perf_counter() - t0) * 1e3
        )
    totals = obs.phase_totals()
    grand = sum(t["self_s"] for t in totals.values()) or 1.0
    rows = [
        [
            name,
            t["calls"],
            f"{t['total_s'] * 1e3:,.2f}",
            f"{t['self_s'] * 1e3:,.2f}",
            f"{100 * t['self_s'] / grand:.1f}%",
        ]
        for name, t in sorted(
            totals.items(), key=lambda kv: -kv[1]["self_s"]
        )
    ]
    print_table(
        f"pipeline phase timings, zoo ({len(nets)} networks) "
        f"at L={args.layers}",
        ["phase", "calls", "total ms", "self ms", "self share"],
        rows,
    )
    snap = obs.registry().snapshot()
    if snap["counters"]:
        print_table(
            "pipeline counters (cache.* appear when --cache-dir is set)",
            ["counter", "value"],
            [[name, v] for name, v in sorted(snap["counters"].items())],
        )
    hists = snap["histograms"]
    if hists:
        print_table(
            "histogram summaries (percentiles estimated from buckets)",
            ["histogram", "count", "mean", "p50", "p90", "p99"],
            [
                [
                    name, h["count"], f"{h['mean']:.2f}",
                    f"{h['p50']:.2f}", f"{h['p90']:.2f}",
                    f"{h['p99']:.2f}",
                ]
                for name, h in sorted(hists.items())
            ],
        )
        _print_exemplars(hists)
    return 0


def _print_exemplars(hists: dict) -> None:
    """One row per retained exemplar: the trace behind each bucket."""
    rows = [
        [name, key, f"{ex['value']:.2f}", ex["trace_id"]]
        for name, h in sorted(hists.items())
        for key, ex in sorted((h.get("exemplars") or {}).items())
    ]
    if rows:
        print_table(
            "histogram exemplars (last trace observed per bucket)",
            ["histogram", "bucket", "ms", "trace id"],
            rows,
        )


def _cmd_stats_mem(args) -> int:
    """Layout-representation memory accounting over the zoo.

    For each network: bytes held by the wire/placement object graph
    versus the flat :class:`~repro.grid.table.WireTable`, and the
    reduction ratio.  The E7h performance gate asserts the ratio on
    the paper-scale 10-cube; this command is the interactive view.
    """
    from repro.grid.table import HAVE_NUMPY, object_graph_bytes

    rows = []
    tot_obj = tot_tab = 0
    for net in _zoo_networks():
        lay = _zoo_dispatch(net, args.layers)
        table = lay.wire_table()
        obj = object_graph_bytes(lay)
        tab = table.nbytes()
        tot_obj += obj
        tot_tab += tab
        rows.append([
            net.name, net.num_nodes, len(lay.wires), table.num_segments,
            f"{obj:,}", f"{tab:,}", f"{obj / tab:.1f}x",
        ])
    rows.append([
        "TOTAL", None, None, None,
        f"{tot_obj:,}", f"{tot_tab:,}", f"{tot_obj / tot_tab:.1f}x",
    ])
    print_table(
        f"layout representation memory, zoo at L={args.layers} "
        f"(WireTable backend: {'numpy' if HAVE_NUMPY else 'fallback'})",
        ["network", "N", "wires", "segments", "object graph B",
         "wire table B", "reduction"],
        rows,
    )
    return 0


def _cmd_figures(args) -> int:
    from repro.collinear import (
        complete_recursive,
        hypercube_recursive,
        kary_recursive,
    )

    for title, lay in (
        ("Figure 2: 3-ary 2-cube (8 tracks)", kary_recursive(3, 2)),
        ("Figure 3: K9 (20 tracks)", complete_recursive(9)),
        ("Figure 4: 4-cube (10 tracks)", hypercube_recursive(4)),
    ):
        print(f"\n=== {title} ===")
        print(ascii_collinear(lay))
    return 0


def _cmd_predict(args) -> int:
    family, _, argstr = args.network.partition(":")
    params = [int(a) for a in argstr.split(",") if a.strip()]
    p = paper_prediction(family, *params, layers=args.layers)
    print_table(
        f"paper leading terms: {family}{tuple(params)} at L={args.layers}",
        ["N", "area", "volume", "max wire", "path wire"],
        [[p.num_nodes, round(p.area, 1), round(p.volume, 1),
          None if p.max_wire is None else round(p.max_wire, 1),
          None if p.path_wire is None else round(p.path_wire, 1)]],
    )
    return 0


def _cmd_simulate(args) -> int:
    import json as _json

    from repro.routing import (
        WORKLOAD_KINDS,
        all_to_all,
        bit_complement,
        hot_spot,
        knee_point,
        load_trace,
        make_workload,
        random_permutation,
        saturation_sweep,
        simulate,
        simulate_fast,
        transpose,
    )

    net = parse_network(args.network)
    lay = layout_network(net, layers=args.layers)
    classic = {
        "bit-complement": bit_complement,
        "transpose": transpose,
        "random": random_permutation,
        "all-to-all": all_to_all,
        "hot-spot": hot_spot,
    }

    if args.saturation:
        rows = saturation_sweep(
            net,
            rates=args.saturation,
            duration=args.duration,
            workload=(
                args.kernel if args.kernel in WORKLOAD_KINDS else "uniform"
            ),
            seed=args.seed,
            engine=args.engine,
            layout=lay,
            mode=args.mode,
            message_length=args.message_length,
        )
        knee = knee_point(rows)
        if knee is None and len(args.saturation) < 2:
            print(
                "saturation: knee detection needs >= 2 rates to "
                "bracket a knee; reporting knee=none for this "
                f"{len(args.saturation)}-rate sweep"
            )
        print_table(
            f"{net.name} L={args.layers}: saturation sweep "
            f"({args.engine} engine, knee at "
            f"{'none in range' if knee is None else knee})",
            ["rate", "offered", "messages", "avg latency", "p50", "p99",
             "max util"],
            [[r["rate"], f"{r['offered']:.3f}", r["messages"],
              f"{r['avg_latency']:.1f}", r["p50"], r["p99"],
              f"{r['max_utilization']:.2f}"] for r in rows],
        )
        if args.json:
            with open(args.json, "w") as fh:
                _json.dump(
                    {"network": net.name, "layers": args.layers,
                     "engine": args.engine, "knee": knee, "rows": rows},
                    fh, indent=2,
                )
                fh.write("\n")
            print(f"sweep written to {args.json}")
        return 0

    if args.trace_file:
        msgs = make_workload("trace", net, trace=load_trace(args.trace_file))
    elif args.kernel in classic:
        msgs = classic[args.kernel](net)
    elif args.kernel in WORKLOAD_KINDS:
        msgs = make_workload(
            args.kernel, net, seed=args.seed, rate=args.rate,
            duration=args.duration,
        )
    else:
        known = ", ".join([*classic, *WORKLOAD_KINDS])
        raise SystemExit(
            f"unknown kernel {args.kernel!r}; known: {known}"
        )
    run = simulate_fast if args.engine == "fast" else simulate
    res = run(
        net, msgs, layout=lay, mode=args.mode,
        message_length=args.message_length,
    )
    print_table(
        f"{net.name} L={args.layers}: {args.kernel} "
        f"({args.mode}, {args.engine} engine)",
        ["messages", "makespan", "avg latency", "p99", "max latency",
         "max link load"],
        [[res.messages, res.makespan, f"{res.avg_latency:.1f}",
          res.latency_p99, res.max_latency, res.max_link_load]],
    )
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(res.as_dict(), fh, indent=2)
            fh.write("\n")
        print(f"result written to {args.json}")
    return 0


def _cmd_cost(args) -> int:
    from repro.core.cost import CostModel, chip_cost

    net = parse_network(args.network)
    model = CostModel(defect_density=args.defect_density)
    rows = []
    for L in args.layer_sweep or [args.layers]:
        lay = layout_network(net, layers=L)
        c = chip_cost(lay, model)
        rows.append([L, c.area, f"{c.yield_fraction:.3f}", f"{c.total:,.1f}"])
    print_table(
        f"{net.name} chip cost",
        ["L", "area", "yield", "cost"],
        rows,
    )
    return 0


def _cmd_fold(args) -> int:
    from repro.core.folding import fold_layout

    net = parse_network(args.network)
    base = layout_network(net, layers=2)
    folded = fold_layout(base, args.layers)
    validate_layout(folded)
    mb, mf = measure(base), measure(folded)
    print_table(
        f"folding {net.name} into L={args.layers}",
        ["", "area", "volume", "max wire"],
        [
            ["Thompson", mb.area, mb.volume, mb.max_wire],
            ["folded", mf.area, mf.volume, mf.max_wire],
        ],
    )
    if args.svg:
        from repro.viz import svg_layer_stack

        with open(args.svg, "w") as fh:
            fh.write(svg_layer_stack(folded))
        print(f"exploded SVG written to {args.svg}")
    return 0


def _cmd_stack(args) -> int:
    from repro.core.threedee import layout_product_3d
    from repro.topology import Ring

    k = args.k
    lay = layout_product_3d(Ring(k), Ring(k), Ring(k), layers=args.layers)
    validate_layout(lay)
    m = measure(lay)
    two_d = measure(
        layout_network(parse_network(f"kary:{k},3"), layers=args.layers)
    )
    print_table(
        f"{k}x{k}x{k} torus, 3-D decks vs 2-D at L={args.layers}",
        ["", "area", "volume", "max wire"],
        [
            ["3-D stacked", m.area, m.volume, m.max_wire],
            ["2-D layout", two_d.area, two_d.volume, two_d.max_wire],
        ],
    )
    if args.svg:
        from repro.viz import svg_layer_stack

        with open(args.svg, "w") as fh:
            fh.write(svg_layer_stack(lay))
        print(f"exploded SVG written to {args.svg}")
    return 0


def _cmd_fuzz(args) -> int:
    from repro.check import run_fuzz, save_counterexample, shrink_failing_case
    from repro.check.differential import STAGES

    stages = tuple(args.stages) if args.stages else None
    kinds = tuple(args.kinds) if args.kinds else None
    rep = run_fuzz(
        seed=args.seed,
        budget=args.budget,
        max_nodes=args.max_nodes,
        stages=stages,
        kinds=kinds,
        max_failures=args.max_failures,
        workers=args.workers,
        cache_dir=args.cache_dir,
        run_dir=args.run_dir,
    )
    stage_cols = list(stages or STAGES)
    print_table(
        f"differential fuzz: seed={rep.seed} budget={rep.budget}",
        ["cases", "violations", "elapsed s"] + stage_cols,
        [[rep.cases_run, rep.violations, f"{rep.elapsed_s:.1f}"]
         + [rep.stage_counts.get(s, 0) for s in stage_cols]],
    )
    if rep.ok:
        print("fuzz: OK (no invariant violations)")
        return 0
    for res in rep.failures:
        print(f"\nFAIL {res.case.describe()}")
        for v in res.violations:
            print(f"  [{v.stage}/{v.invariant}] {v.detail}")
        if args.shrink:
            small = shrink_failing_case(res)
            print(
                f"  shrunk to N={small.num_nodes} E={small.num_edges}: "
                f"{sorted(small.edges)}"
            )
            if args.corpus_dir:
                path = save_counterexample(
                    args.corpus_dir, small,
                    case=res.case, violations=res.violations,
                )
                print(f"  counterexample saved to {path}")
    print(f"\nfuzz: {rep.violations} violation(s) in "
          f"{len(rep.failures)} case(s)")
    return 1


def _cmd_serve(args) -> int:
    """Run the layout daemon until interrupted."""
    import asyncio

    from repro.serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        validate=args.validate,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        max_inflight=args.max_inflight,
        request_timeout_s=args.request_timeout,
        run_dir=args.run_dir,
        ready_file=args.ready_file,
        trace_sample=args.trace_sample,
        slo_latency_ms=args.slo_latency_ms,
        slo_target=args.slo_target,
        debug_requests=args.debug_requests,
    )
    try:
        asyncio.run(run_server(config))
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down")
    return 0


def _cmd_loadgen(args) -> int:
    """Replay a request trace against a server; report percentiles."""
    import json as _json

    from repro.routing.traffic import load_trace, save_trace
    from repro.serve.loadgen import run_loadgen, synth_rows

    if args.trace_file:
        rows = load_trace(args.trace_file)
    else:
        networks = args.networks or ["ring:8", "hypercube:3", "kary:3,2"]
        rows = synth_rows(
            networks,
            args.requests,
            layers=tuple(args.layers),
            seed=args.seed,
        )
    if args.save_trace:
        n = save_trace(args.save_trace, rows)
        print(f"request trace ({n} rows) written to {args.save_trace}")
    report = run_loadgen(
        args.host,
        args.port,
        rows,
        concurrency=args.concurrency,
        cycle_s=args.cycle_s,
        client_id=args.client,
        scheme=args.scheme,
        timeout=args.timeout,
        retries=args.retries,
        slowest=args.slowest,
    )
    lat = report["latency_ms"]
    print_table(
        f"loadgen vs {report['target']}: {report['ok']}/"
        f"{report['requests']} ok, {report['five_xx']} 5xx, "
        f"{report['retried']} retried, {report['elapsed_s']}s "
        f"({report['rps']} req/s)",
        ["metric", "ms"],
        [
            ["p50", lat["p50"]],
            ["p90", lat["p90"]],
            ["p99", lat["p99"]],
            ["mean", lat["mean"]],
            ["min", lat["min"]],
            ["max", lat["max"]],
        ],
    )
    if report["status"]:
        print(
            "status counts: "
            + ", ".join(
                f"{code}x{n}" for code, n in report["status"].items()
            )
        )
    if report.get("slowest"):
        print_table(
            f"slowest {len(report['slowest'])} requests "
            "(fetch /debug/trace/<trace id> on the server for "
            "the span tree)",
            ["ms", "network", "L", "source", "request id", "trace id"],
            [
                [
                    s["latency_ms"], s["network"], s["layers"],
                    s["source"] or "-", s["request_id"] or "-",
                    s["trace_id"] or "-",
                ]
                for s in report["slowest"]
            ],
        )
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"loadgen report written to {args.json}")
    if report["five_xx"] or not report["ok"]:
        return 1
    return 0


def _fmt_bytes(n) -> str:
    if not isinstance(n, (int, float)):
        return "-"
    return f"{n / (1 << 20):.1f}M"


def _fmt_eta(seconds) -> str:
    if seconds is None:
        return "-"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def _print_watch(snap: dict) -> None:
    man = snap.get("manifest") or {}
    tot = snap["totals"]
    jobs_total = tot["jobs_total"]
    print(
        f"run {snap['run_dir']}  kind={man.get('kind', '?')}  "
        f"state={man.get('state', 'running')}"
    )
    done = tot["jobs_done"]
    frac = (
        f" ({100 * done / jobs_total:.0f}%)"
        if isinstance(jobs_total, int) and jobs_total
        else ""
    )
    rate = tot["jobs_per_s"]
    hit = tot["cache_hit_rate"]
    print(
        f"jobs {done}/{jobs_total if jobs_total is not None else '?'}"
        f"{frac}  "
        f"{'%.2f' % rate if rate is not None else '-'} jobs/s  "
        f"eta {_fmt_eta(tot['eta_s'])}  "
        f"cache hit-rate "
        f"{'%.0f%%' % (100 * hit) if hit is not None else '-'}"
    )
    slo = snap.get("slo")
    if slo:
        comp = slo.get("compliance")
        burn = slo.get("burn_rate")
        print(
            f"slo {slo['objective_ms']:g}ms@"
            f"{100 * slo['target']:g}%  "
            f"requests {slo['requests']}  "
            f"compliance "
            f"{'%.2f%%' % (100 * comp) if comp is not None else '-'}  "
            f"burn rate "
            f"{'%.2f' % burn if burn is not None else '-'}"
            + (
                "  ** BUDGET BURNING **"
                if burn is not None and burn > 1.0
                else ""
            )
        )
    if snap["workers"]:
        print_table(
            f"workers ({tot['ok']} ok, {tot['done']} done, "
            f"{tot['stalled']} stalled, {tot['dead']} dead)",
            ["wid", "verdict", "pid", "jobs", "current job", "rss",
             "beat age s"],
            [
                [
                    w["worker_id"], w["verdict"], w["pid"],
                    f"{w['jobs_done']}/{w['jobs_total']}",
                    w["current_job"] or "-",
                    _fmt_bytes(w["rss_bytes"]),
                    f"{w['age_s']:.1f}",
                ]
                for w in snap["workers"]
            ],
        )
    else:
        print("no heartbeats yet")
    for rec in snap.get("log_tail", []):
        extras = " ".join(
            f"{k}={v}"
            for k, v in rec.items()
            if k not in ("ts", "level", "event", "run", "pid")
        )
        print(f"  [{rec.get('level', '?')}] {rec.get('event')} {extras}")


def _cmd_watch(args) -> int:
    """Tail a run directory's heartbeats + log; render live status."""
    import json as _json
    import time as _time

    if not os.path.isdir(args.run_dir):
        print(f"watch: no run directory at {args.run_dir}")
        return 1
    while True:
        snap = live.watch_snapshot(
            args.run_dir, stall_after_s=args.stall_after
        )
        if args.as_json:
            print(_json.dumps(snap, sort_keys=True))
        else:
            if not args.once and sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            _print_watch(snap)
        if args.once:
            return 0
        man = snap.get("manifest") or {}
        terminal = {"done", "failed", "dead"}
        if man.get("state") == "done" or (
            snap["workers"]
            and all(
                w["verdict"] in terminal for w in snap["workers"]
            )
        ):
            return 0
        _time.sleep(args.interval)


def _cmd_bench_diff(args) -> int:
    """Compare two bench documents; exit 1 on perf regressions."""
    from repro.bench.trajectory import bench_diff, format_diff_rows

    diff = bench_diff(args.old, args.new, threshold=args.threshold)
    pct = diff["threshold"] * 100
    if diff["rows"]:
        print_table(
            f"bench timings: {diff['old_label']} -> "
            f"{diff['new_label']} (threshold {pct:.0f}%)",
            ["table", "old s", "new s", "delta", "verdict"],
            format_diff_rows(diff["rows"]),
        )
    else:
        print("bench-diff: no bench timings in common")
    if diff["gate_rows"]:
        print_table(
            f"performance-gate ratios (drop > {pct:.0f}% regresses)",
            ["gate", "old ratio", "new ratio", "delta", "verdict"],
            format_diff_rows(diff["gate_rows"]),
        )
    for key, label in (("only_old", "removed"), ("only_new", "new")):
        if diff[key]:
            print(f"{label} bench(es): {', '.join(diff[key])}")
    bad = diff["regressions"] + diff["gate_regressions"]
    if bad:
        print(
            f"bench-diff: {len(bad)} regression(s) past "
            f"{pct:.0f}%: {', '.join(bad)}"
        )
        return 1
    print("bench-diff: OK (no regressions past threshold)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multilayer VLSI layout for interconnection networks "
        "(Yeh, Varvarigos & Parhami, ICPP 2000).",
    )
    # Observability flags shared by every subcommand.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--trace", action="store_true",
        help="collect spans and print the span tree after the command",
    )
    common.add_argument(
        "--report", metavar="FILE",
        help="write a machine-readable JSON run report to FILE",
    )
    common.add_argument(
        "--profile", metavar="FILE",
        help="run the command under cProfile and dump pstats to FILE",
    )
    common.add_argument(
        "--trace-out", metavar="FILE",
        help="write a Chrome trace-event JSON (open in ui.perfetto.dev "
        "or about:tracing; parallel sweeps get one row per worker)",
    )
    common.add_argument(
        "--events-out", metavar="FILE",
        help="write a line-delimited JSON event log (spans + metric "
        "samples) for grep/jq",
    )
    common.add_argument(
        "--log-out", metavar="FILE",
        help="append structured JSONL log records to FILE (level via "
        "REPRO_LOG_LEVEL: debug/info/warning/error, default info)",
    )
    common.add_argument(
        "--metrics-out", metavar="FILE",
        help="write counters/gauges/histograms in Prometheus text "
        "exposition format (refreshed live during parallel sweeps)",
    )

    def add_parser(name, **kw):
        return sub.add_parser(name, parents=[common], **kw)

    sub = parser.add_subparsers(dest="command", required=True)

    p = add_parser("layout", help="lay out one network")
    p.add_argument("network", help="family:args, e.g. hypercube:8 or kary:4,3")
    p.add_argument("--layers", "-L", type=int, default=2)
    p.add_argument("--validate", action="store_true")
    p.add_argument("--svg", metavar="FILE")
    p.add_argument("--json", metavar="FILE")
    p.set_defaults(fn=_cmd_layout)

    p = add_parser("zoo", help="lay out the network zoo")
    p.add_argument("--layers", "-L", type=int, default=4)
    p.set_defaults(fn=_cmd_zoo)

    p = add_parser(
        "sweep",
        help="run a declarative sweep with workers and a layout cache",
    )
    p.add_argument(
        "--networks", nargs="*", metavar="SPEC",
        help="family:args specs to sweep (default: the standard "
        "family sweep)",
    )
    p.add_argument(
        "--spec-file", metavar="FILE",
        help="load the sweep spec from a JSON file instead",
    )
    p.add_argument("--layers", "-L", type=int, nargs="*", default=[2, 4],
                   help="layer budgets to sweep (default: 2 4)")
    p.add_argument("--scheme", default="auto", choices=list(SCHEMES),
                   help="layout scheme for every job (default: auto)")
    p.add_argument("--workers", "-j", type=int, default=1,
                   help="worker processes (default: 1)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="content-addressed layout cache directory")
    p.add_argument("--json", metavar="FILE",
                   help="write the full sweep result as JSON to FILE")
    p.add_argument("--no-validate", dest="validate", action="store_false",
                   help="skip layout validation on cache misses")
    p.add_argument("--run-dir", metavar="DIR",
                   help="keep live-telemetry artifacts (heartbeats, "
                   "log.jsonl, manifest) in DIR for `repro watch`")
    p.add_argument("--stall-after", type=float,
                   default=live.DEFAULT_STALL_AFTER_S, metavar="S",
                   help="flag a worker stalled after S seconds without "
                   "a heartbeat (default %(default)s)")
    p.set_defaults(fn=_cmd_sweep)

    p = add_parser("figures", help="print the paper's figures (ASCII)")
    p.set_defaults(fn=_cmd_figures)

    p = add_parser("predict", help="print paper closed forms")
    p.add_argument("network", help="family:args, e.g. hypercube:10")
    p.add_argument("--layers", "-L", type=int, default=2)
    p.set_defaults(fn=_cmd_predict)

    p = add_parser("simulate", help="run a traffic kernel")
    p.add_argument("network")
    p.add_argument("--layers", "-L", type=int, default=2)
    p.add_argument("--kernel", default="bit-complement",
                   help="a classic kernel (bit-complement, transpose, "
                   "random, all-to-all, hot-spot) or a workload-zoo "
                   "kind (uniform, hotspot, bursty, adversarial, ...)")
    p.add_argument("--mode", default="store_forward",
                   choices=["store_forward", "cut_through"])
    p.add_argument("--message-length", type=int, default=1)
    p.add_argument("--engine", default="fast",
                   choices=["fast", "oracle"],
                   help="batched event engine (default) or the "
                   "per-packet oracle -- results are identical")
    p.add_argument("--rate", type=float, default=0.1,
                   help="injection rate for the timed zoo kinds")
    p.add_argument("--duration", type=int, default=64,
                   help="injection window (cycles) for the timed kinds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace-file", metavar="FILE",
                   help="replay a save_trace JSONL instead of a kernel")
    p.add_argument("--saturation", type=float, nargs="+", metavar="RATE",
                   help="sweep these offered loads and report the "
                   "latency curve + saturation knee")
    p.add_argument("--json", metavar="FILE",
                   help="also write the result (or sweep) as JSON")
    p.set_defaults(fn=_cmd_simulate)

    p = add_parser("cost", help="price a layout")
    p.add_argument("network")
    p.add_argument("--layers", "-L", type=int, default=2)
    p.add_argument("--layer-sweep", type=int, nargs="*")
    p.add_argument("--defect-density", type=float, default=0.0)
    p.set_defaults(fn=_cmd_cost)

    p = add_parser("fold", help="fold a Thompson layout into L layers")
    p.add_argument("network")
    p.add_argument("--layers", "-L", type=int, default=4)
    p.add_argument("--svg", metavar="FILE")
    p.set_defaults(fn=_cmd_fold)

    p = add_parser("stack", help="3-D deck stacking for a k^3 torus")
    p.add_argument("k", type=int)
    p.add_argument("--layers", "-L", type=int, default=8)
    p.add_argument("--svg", metavar="FILE")
    p.set_defaults(fn=_cmd_stack)

    p = add_parser(
        "stats",
        help="trace the zoo pipeline and print phase timings",
    )
    p.add_argument("--layers", "-L", type=int, default=4)
    p.add_argument(
        "--mem", action="store_true",
        help="report layout memory instead: object graph vs geometry "
        "table bytes for every zoo network",
    )
    p.add_argument(
        "--cache-dir", metavar="DIR",
        help="route zoo builds through a layout cache so the cache.* "
        "counters show up in the counters table",
    )
    p.set_defaults(fn=_cmd_stats)

    from repro.check.differential import STAGES as _STAGES
    from repro.check.generate import KINDS as _KINDS

    p = add_parser("fuzz", help="differential fuzzing with oracle checks")
    p.add_argument("--budget", type=int, default=200,
                   help="number of random cases to run (default 200)")
    p.add_argument("--seed", type=int, default=0,
                   help="run seed; every case is replayable from it")
    p.add_argument("--max-nodes", type=int, default=12,
                   help="size cap for generated networks (default 12)")
    p.add_argument("--stages", nargs="*", choices=list(_STAGES),
                   help="restrict to these pipeline stages")
    p.add_argument("--kinds", nargs="*", choices=list(_KINDS),
                   help="restrict to these case generators")
    p.add_argument("--max-failures", type=int, default=None,
                   help="stop after this many failing cases")
    p.add_argument("--workers", "-j", type=int, default=1,
                   help="fan cases across worker processes (default: 1)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="shared layout cache (read-only in workers)")
    p.add_argument("--corpus-dir", metavar="DIR",
                   help="save shrunk counterexamples into DIR")
    p.add_argument("--no-shrink", dest="shrink", action="store_false",
                   help="report failures raw, without delta-debugging")
    p.add_argument("--run-dir", metavar="DIR",
                   help="keep live-telemetry artifacts (heartbeats, "
                   "log.jsonl, manifest) in DIR for `repro watch`")
    p.set_defaults(fn=_cmd_fuzz)

    p = add_parser(
        "watch",
        help="live status console for a sweep/fuzz run directory",
    )
    p.add_argument("run_dir", help="the --run-dir of a sweep/fuzz run")
    p.add_argument("--once", action="store_true",
                   help="render one snapshot and exit")
    p.add_argument("--json", dest="as_json", action="store_true",
                   help="emit the raw status document as JSON instead "
                   "of tables")
    p.add_argument("--interval", type=float, default=1.0, metavar="S",
                   help="refresh period in seconds (default 1.0)")
    p.add_argument("--stall-after", type=float,
                   default=live.DEFAULT_STALL_AFTER_S, metavar="S",
                   help="age after which a heartbeat counts as stalled "
                   "(default %(default)s)")
    p.set_defaults(fn=_cmd_watch)

    p = add_parser(
        "serve",
        help="run the layout daemon (HTTP/JSON over the sweep engine)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="listen port; 0 picks a free one (default 8787)")
    p.add_argument("--workers", "-j", type=int, default=2,
                   help="persistent build worker processes (default 2)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="content-addressed layout cache; warm keys are "
                   "answered without touching the pool")
    p.add_argument("--quota-rate", type=float, default=0.0, metavar="R",
                   help="per-client tokens/second (X-Repro-Client "
                   "header); 0 disables quotas (default)")
    p.add_argument("--quota-burst", type=float, default=20.0, metavar="B",
                   help="per-client bucket size (default 20)")
    p.add_argument("--max-inflight", type=int, default=0, metavar="N",
                   help="global concurrent-request cap; past it the "
                   "server answers 503 (0 = unlimited)")
    p.add_argument("--request-timeout", type=float, default=120.0,
                   metavar="S",
                   help="per-build deadline before a 504 (default 120)")
    p.add_argument("--run-dir", metavar="DIR",
                   help="keep serve telemetry (worker heartbeats, "
                   "log.jsonl, manifest) in DIR for `repro watch`")
    p.add_argument("--ready-file", metavar="FILE",
                   help="write {host, port, pid} JSON once listening "
                   "(scripts poll this to learn a --port 0 binding)")
    p.add_argument("--no-validate", dest="validate", action="store_false",
                   help="skip layout validation on cache misses")
    p.add_argument("--trace-sample", type=float, default=1.0, metavar="R",
                   help="fraction of header-less requests whose span "
                   "tree is retained for /debug/trace (default 1.0; "
                   "inbound x-repro-trace flags always win)")
    p.add_argument("--slo-latency-ms", type=float, default=250.0,
                   metavar="MS",
                   help="SLO latency objective per request "
                   "(default 250)")
    p.add_argument("--slo-target", type=float, default=0.99, metavar="F",
                   help="fraction of requests that must meet the "
                   "objective (default 0.99)")
    p.add_argument("--debug-requests", type=int, default=256, metavar="N",
                   help="tail-sampled request ring size behind "
                   "/debug/requests (default 256)")
    p.set_defaults(fn=_cmd_serve)

    p = add_parser(
        "loadgen",
        help="replay a request trace against a server, report latency",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True,
                   help="port of the serve daemon under test")
    p.add_argument("--trace-file", metavar="FILE",
                   help="replay a save_trace JSONL of "
                   "[network, layers, start] rows")
    p.add_argument("--requests", "-n", type=int, default=50,
                   help="synthetic request count when no --trace-file "
                   "(default 50)")
    p.add_argument("--networks", nargs="*", metavar="SPEC",
                   help="network population for synthetic traces "
                   "(default: ring:8 hypercube:3 kary:3,2)")
    p.add_argument("--layers", "-L", type=int, nargs="*", default=[2, 4],
                   help="layer choices for synthetic traces")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--concurrency", "-c", type=int, default=1,
                   help="concurrent client connections (default 1)")
    p.add_argument("--cycle-s", type=float, default=0.0, metavar="S",
                   help="seconds per trace start-cycle; 0 = closed-loop "
                   "replay (default)")
    p.add_argument("--client", default="loadgen",
                   help="client-id prefix for the X-Repro-Client header")
    p.add_argument("--scheme", default="auto", choices=list(SCHEMES))
    p.add_argument("--timeout", type=float, default=60.0, metavar="S",
                   help="per-request timeout (default 60)")
    p.add_argument("--retries", type=int, default=3,
                   help="retry budget for 429/503 answers (default 3)")
    p.add_argument("--save-trace", metavar="FILE",
                   help="also write the replayed rows as a trace JSONL")
    p.add_argument("--slowest", type=int, default=5,
                   metavar="N",
                   help="name the N slowest requests (server request "
                   "id, trace id, source) in the report "
                   "(default %(default)s)")
    p.add_argument("--json", metavar="FILE",
                   help="write the full report document to FILE")
    p.set_defaults(fn=_cmd_loadgen)

    p = add_parser(
        "bench-diff",
        help="compare two bench/trajectory JSONs; exit 1 on regression",
    )
    p.add_argument(
        "old",
        help="baseline: trajectory .jsonl (newest record), "
        "BENCH_summary.json, or a bench-result JSON",
    )
    p.add_argument("new", help="candidate document, same formats")
    p.add_argument(
        "--threshold", type=float, default=0.15,
        help="fractional slowdown (or gate-ratio drop) that counts as "
        "a regression (default 0.15)",
    )
    p.set_defaults(fn=_cmd_bench_diff)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace = getattr(args, "trace", False)
    report_path = getattr(args, "report", None)
    profile_path = getattr(args, "profile", None)
    trace_out = getattr(args, "trace_out", None)
    events_out = getattr(args, "events_out", None)
    log_out = getattr(args, "log_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    observing = (
        trace or report_path or trace_out or events_out or metrics_out
        or args.command == "stats"
    )
    if observing:
        obs.reset()
        obs.enable()
    log_here = False
    if log_out:
        olog.configure(log_out)
        log_here = True
    olog.info(
        "cli.start",
        command=args.command,
        argv=list(argv) if argv is not None else sys.argv[1:],
    )
    profiler = None
    if profile_path:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        rc = args.fn(args)
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(profile_path)
            profiler = None
            print(f"profile written to {profile_path}")
        if trace:
            print("\n== span tree ==")
            print(obs.format_span_tree())
        if trace_out:
            obs.write_chrome_trace(trace_out)
            print(f"chrome trace written to {trace_out} "
                  "(open in ui.perfetto.dev)")
        if events_out:
            obs.write_jsonl(events_out)
            print(f"event log written to {events_out}")
        if metrics_out:
            obs.write_prometheus(metrics_out)
            print(f"prometheus metrics written to {metrics_out}")
        if report_path:
            layers = getattr(args, "layers", None)
            rep = obs.collect_report(
                args.command,
                spec={
                    k: v
                    for k, v in vars(args).items()
                    if k not in ("fn", "trace", "report", "profile",
                                 "trace_out", "events_out")
                    and isinstance(v, (str, int, float, bool, type(None)))
                },
                # sweep takes a *list* of layer budgets; the report
                # schema wants one int (or null).
                layers=layers if isinstance(layers, int) else None,
                command=list(argv) if argv is not None else sys.argv[1:],
            )
            rep.write(report_path)
            print(f"run report written to {report_path}")
    finally:
        if profiler is not None:
            profiler.disable()
        olog.info("cli.exit", command=args.command)
        if log_here:
            olog.close()
        if observing:
            obs.disable()
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
