"""Counters, gauges, and histograms for the layout pipeline.

A :class:`MetricsRegistry` holds named instruments created on first
use: monotonically increasing :class:`Counter`\\ s (wires routed,
tracks packed, validator checks run), last-value :class:`Gauge`\\ s,
and :class:`Histogram`\\ s (queue depths, link utilization) with
power-of-two bucket boundaries by default.

Creation is lock-guarded so concurrent first-use from several threads
is safe; the per-instrument update path is a plain ``+=`` / ``append``
under CPython's atomic-enough semantics for our single-writer spans,
with a lock available via :meth:`MetricsRegistry.counter` consumers
that need strict cross-thread totals (the instruments themselves use
a lock for updates, so totals are exact).

The module-level default registry is what the ``obs`` helpers
(:func:`repro.obs.count` etc.) write into when tracing is enabled.
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "registry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v


class Histogram:
    """A distribution summary: count/sum/min/max plus bucket counts.

    ``bounds`` are inclusive upper bucket edges; values above the last
    edge land in the overflow bucket.  The default edges are powers of
    two, a good fit for queue depths and cycle counts.
    """

    __slots__ = ("_lock", "bounds", "buckets", "count", "total", "min", "max")

    DEFAULT_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

    def __init__(self, bounds: tuple = DEFAULT_BOUNDS):
        self._lock = threading.Lock()
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, v: float) -> None:
        with self._lock:
            self.count += 1
            self.total += v
            if self.min is None or v < self.min:
                self.min = v
            if self.max is None or v > self.max:
                self.max = v
            for i, edge in enumerate(self.bounds):
                if v <= edge:
                    self.buckets[i] += 1
                    break
            else:
                self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                f"le_{edge}": n for edge, n in zip(self.bounds, self.buckets)
            }
            | {"overflow": self.buckets[-1]},
        }


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter())
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge())
        return g

    def histogram(self, name: str, bounds: tuple | None = None) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(
                    name,
                    Histogram(bounds) if bounds is not None else Histogram(),
                )
        return h

    def snapshot(self) -> dict:
        """A JSON-ready dump of every instrument."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: h.as_dict() for k, h in self._histograms.items()
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add, gauges take the incoming value (last-write-wins,
        matching :meth:`Gauge.set`).  Histogram summaries are not
        refoldable from their dict form and are ignored; the sweep
        workers that use this only emit counters.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _registry
