"""Batch execution: declarative sweeps, worker fan-out, layout cache.

The three pieces compose:

* :mod:`repro.batch.spec` -- :class:`SweepSpec` (networks x layers x
  scheme) expands into ordered :class:`SweepJob`\\ s; the family
  registry and scheme dispatch live here.
* :mod:`repro.batch.cache` -- :class:`LayoutCache`, a content-addressed
  on-disk store keyed by canonical network structure + scheme + params
  + serialization format version.
* :mod:`repro.batch.runner` -- :class:`SweepRunner` executes a spec
  serially or across worker processes, merging results
  deterministically (worker count never changes the merged output).
"""

from repro.batch.cache import (
    CACHE_SCHEMA_VERSION,
    CacheEntry,
    CacheStats,
    LayoutCache,
    cache_key,
    network_fingerprint,
)
from repro.batch.runner import JobResult, SweepResult, SweepRunner, run_sweep_job
from repro.batch.spec import (
    FAMILIES,
    SCHEMES,
    SweepJob,
    SweepSpec,
    TrafficSpec,
    dispatch_scheme,
    parse_network,
    standard_family_sweep,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheEntry",
    "CacheStats",
    "FAMILIES",
    "JobResult",
    "LayoutCache",
    "SCHEMES",
    "SweepJob",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "TrafficSpec",
    "cache_key",
    "dispatch_scheme",
    "network_fingerprint",
    "parse_network",
    "run_sweep_job",
    "standard_family_sweep",
]
