"""Wires: routed nets of the multilayer grid model.

A :class:`Wire` realizes one network edge as a connected rectilinear
path.  Consecutive segments must share a planar endpoint; where they
additionally differ in layer, the shared point is a *via* (an
inter-layer connector, Section 2.1 of the paper).  Where two
consecutive segments share layer and change direction, the shared point
is a *bend*; the Thompson model forbids two distinct wires from bending
at the same grid point (a knock-knee), which the validator checks.

Path connectivity is validated at construction by a tuple-level walk
(:func:`walk_path`); the full :class:`Point` vertex list is a *lazy*
derived property, materialized only when something actually asks for
``path_points``/``vias``/``bends`` -- at build time it used to be the
single largest avoidable allocation (it duplicates every segment
endpoint per wire), and the hot consumers now read the flat
:class:`~repro.grid.table.WireTable` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Sequence

from repro.grid.geometry import Point, Segment

__all__ = ["Wire", "WirePathError", "walk_path"]


class WirePathError(ValueError):
    """Raised when a wire's segments do not form a connected path."""


@dataclass(slots=True)
class Wire:
    """A routed connection between two network nodes.

    Parameters
    ----------
    u, v:
        The network nodes this wire connects (``u`` is the end the
        path's first segment starts at).
    segments:
        The rectilinear path, ordered from the ``u``-side pin to the
        ``v``-side pin.  Validated on construction.
    edge_key:
        Optional discriminator for parallel edges (multigraphs such as
        the butterfly quotient of Section 4.2 need it).
    riser:
        A pure z-direction wire (multilayer *3-D* grid model): the
        tuple ``(x, y, z_lo, z_hi)`` of a vertical run connecting nodes
        on two active layers at one planar point.  Mutually exclusive
        with ``segments``; build with :meth:`Wire.make_riser`.
    """

    u: Hashable
    v: Hashable
    segments: list[Segment]
    edge_key: int = 0
    riser: tuple[int, int, int, int] | None = None
    _pts: list[Point] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._pts = None
        if self.riser is not None:
            if self.segments:
                raise WirePathError(
                    f"wire {self.u}-{self.v}: riser wires carry no "
                    "planar segments"
                )
            x, y, zlo, zhi = self.riser
            if not (1 <= zlo < zhi):
                raise WirePathError(
                    f"wire {self.u}-{self.v}: bad riser layers {zlo}..{zhi}"
                )
            return
        if not self.segments:
            raise WirePathError(f"wire {self.u}-{self.v} has no segments")
        # Validate connectivity without materializing the vertex list.
        for _ in walk_path(self.segments, self.u, self.v):
            pass

    @property
    def _points(self) -> list[Point]:
        """The vertex list, traced lazily and cached."""
        pts = self._pts
        if pts is None:
            if self.riser is not None:
                x, y, zlo, zhi = self.riser
                pts = [Point(x, y, zlo), Point(x, y, zhi)]
            else:
                pts = _trace_path(self.segments, self.u, self.v)
            self._pts = pts
        return pts

    @staticmethod
    def make_riser(
        u: Hashable, v: Hashable, x: int, y: int, z_lo: int, z_hi: int,
        edge_key: int = 0,
    ) -> "Wire":
        """An inter-active-layer connection at planar point (x, y)."""
        return Wire(u, v, [], edge_key=edge_key, riser=(x, y, z_lo, z_hi))

    def path_points(self) -> list[Point]:
        """The wire's vertices in path order (u pin, bends, v pin)."""
        return list(self._points)

    @property
    def start(self) -> Point:
        """The pin point on the ``u`` side."""
        return self._points[0]

    @property
    def end(self) -> Point:
        """The pin point on the ``v`` side."""
        return self._points[-1]

    @property
    def length(self) -> int:
        """Total wire length in grid units (planar runs plus z-runs)."""
        if self.riser is not None:
            return self.riser[3] - self.riser[2]
        return sum(s.length for s in self.segments)

    def vias(self) -> list[tuple[int, int]]:
        """Planar positions where the wire changes layer."""
        if self.riser is not None:
            return [(self.riser[0], self.riser[1])]
        out: list[tuple[int, int]] = []
        for i in range(len(self.segments) - 1):
            s1, s2 = self.segments[i], self.segments[i + 1]
            if s1.layer != s2.layer:
                out.append(self._points[i + 1].planar())
        return out

    def bends(self) -> list[tuple[int, int]]:
        """Planar positions of interior vertices (direction or layer
        changes).  Used for knock-knee checking: no grid point may be a
        bend/via of two distinct wires."""
        return [p.planar() for p in self._points[1:-1]]

    def z_occupancy(self) -> list[tuple[tuple[int, int], int, int]]:
        """(planar point, z_lo, z_hi) for every z-run of the wire."""
        if self.riser is not None:
            x, y, zlo, zhi = self.riser
            return [((x, y), zlo, zhi)]
        out = []
        for i in range(len(self.segments) - 1):
            s1, s2 = self.segments[i], self.segments[i + 1]
            if s1.layer != s2.layer:
                lo = min(s1.layer, s2.layer)
                hi = max(s1.layer, s2.layer)
                out.append((self._points[i + 1].planar(), lo, hi))
        return out

    def layers_used(self) -> set[int]:
        if self.riser is not None:
            return set(range(self.riser[2], self.riser[3] + 1))
        return {s.layer for s in self.segments}

    def key(self) -> tuple[Hashable, Hashable, int]:
        """Canonical (sorted-endpoint) identity of the routed edge."""
        a, b = self.u, self.v
        if _sort_key(b) < _sort_key(a):
            a, b = b, a
        return (a, b, self.edge_key)


def _sort_key(node: Hashable) -> tuple:
    """Total order over heterogeneous node labels."""
    return (str(type(node)), repr(node))


def walk_path(
    segments: Sequence[Segment], u: Hashable, v: Hashable
) -> Iterator[tuple[tuple[int, int], tuple[int, int]]]:
    """Walk the path, yielding each segment's oriented planar endpoints.

    Yields one ``(start, end)`` pair of ``(x, y)`` tuples per segment,
    oriented along the path from the ``u`` pin; the junction between
    consecutive segments is segment ``i``'s ``end`` == segment
    ``i + 1``'s ``start``.  Raises :class:`WirePathError` on a
    disconnect -- this is the construction-time validity check, shared
    with the :class:`~repro.grid.table.WireTable` builder so the two
    can never disagree about orientation.
    """
    segs = segments
    first = segs[0]
    a = (first.x1, first.y1)
    b = (first.x2, first.y2)
    if len(segs) == 1:
        yield (a, b)
        return

    shared = _shared_planar(first, segs[1])
    if shared is None:
        raise WirePathError(
            f"wire {u}-{v}: segments 0 and 1 do not touch "
            f"({first} vs {segs[1]})"
        )
    # Start from whichever endpoint of the first segment is NOT shared.
    cur = shared
    yield ((b, a) if a == shared else (a, b))
    for i in range(1, len(segs)):
        seg = segs[i]
        e1 = (seg.x1, seg.y1)
        e2 = (seg.x2, seg.y2)
        if e1 == cur:
            nxt = e2
        elif e2 == cur:
            nxt = e1
        else:
            raise WirePathError(
                f"wire {u}-{v}: segment {i} does not continue the path "
                f"at {cur}: {seg}"
            )
        yield (cur, nxt)
        cur = nxt


def _trace_path(
    segments: Sequence[Segment], u: Hashable, v: Hashable
) -> list[Point]:
    """Orient each segment along the path and return the vertex list.

    Segments are stored normalized (endpoint-sorted); the path may
    traverse any of them in reverse.  The first segment's free endpoint
    is the ``u`` pin.  Each vertex is anchored on the layer of the
    segment *arriving* at it (so vias are explicit in the vertex list).
    """
    points: list[Point] = []
    for seg, (start, end) in zip(segments, walk_path(segments, u, v)):
        if not points:
            points.append(Point(start[0], start[1], seg.layer))
        points.append(Point(end[0], end[1], seg.layer))
    return points


def _shared_planar(a: Segment, b: Segment) -> tuple[int, int] | None:
    a_ends = {(a.x1, a.y1), (a.x2, a.y2)}
    b_ends = {(b.x1, b.y1), (b.x2, b.y2)}
    common = a_ends & b_ends
    if not common:
        return None
    if len(common) == 2:
        # Two segments sharing both endpoints: degenerate U-turn.
        raise WirePathError(f"segments share both endpoints: {a} / {b}")
    return next(iter(common))
