"""Interconnection-network topologies laid out in the paper.

Every network the paper lays out (or names as amenable to its schemes)
is generated from scratch here:

* product family: ring, mesh, k-ary n-cube, hypercube, generalized
  hypercube, arbitrary Cartesian products;
* hypercube variants: folded hypercube, enhanced cube;
* PN clusters: cube-connected cycles, reduced hypercube, k-ary n-cube
  cluster-c, generic product-network clusters;
* hierarchical/indirect: butterfly, hierarchical swap network (HSN),
  hierarchical hypercube network (HHN), indirect swap network (ISN);
* Cayley family (Section 4.3's closing remark): star, pancake,
  bubble-sort, transposition networks and star-connected cycles.

Plus the cluster-partition/quotient machinery of Section 3.2 used to
treat butterflies, CCCs and Cayley graphs as PN clusters.
"""

from repro.topology.base import Network, build_network
from repro.topology.butterfly import Butterfly
from repro.topology.cayley import (
    BubbleSortGraph,
    PancakeGraph,
    StarConnectedCycles,
    StarGraph,
    TranspositionNetwork,
)
from repro.topology.ccc import CubeConnectedCycles, ReducedHypercube
from repro.topology.clustered import KAryNCubeCluster, PNCluster
from repro.topology.complete import CompleteGraph
from repro.topology.ghc import GeneralizedHypercube
from repro.topology.hypercube import EnhancedCube, FoldedHypercube, Hypercube
from repro.topology.isn import IndirectSwapNetwork
from repro.topology.kary import KAryNCube, Mesh, Ring
from repro.topology.partition import Partition, quotient
from repro.topology.product import ProductNetwork
from repro.topology.shuffle import DeBruijn, ShuffleExchange
from repro.topology.swap import HHN, HSN
from repro.topology.wrapped_butterfly import WrappedButterfly

__all__ = [
    "Network",
    "build_network",
    "Ring",
    "Mesh",
    "KAryNCube",
    "Hypercube",
    "FoldedHypercube",
    "EnhancedCube",
    "CompleteGraph",
    "GeneralizedHypercube",
    "ProductNetwork",
    "Butterfly",
    "WrappedButterfly",
    "CubeConnectedCycles",
    "ReducedHypercube",
    "HSN",
    "HHN",
    "IndirectSwapNetwork",
    "KAryNCubeCluster",
    "PNCluster",
    "StarGraph",
    "PancakeGraph",
    "BubbleSortGraph",
    "TranspositionNetwork",
    "StarConnectedCycles",
    "ShuffleExchange",
    "DeBruijn",
    "Partition",
    "quotient",
]
