"""Bisection widths and layout lower bounds."""

import pytest

from repro.core import layout_ghc, layout_hypercube, layout_kary, measure
from repro.core.bounds import (
    area_lower_bound,
    bisection_formula,
    exact_bisection,
    kernighan_lin,
    optimality_factor,
)
from repro.topology import (
    CompleteGraph,
    GeneralizedHypercube,
    Hypercube,
    KAryNCube,
    Ring,
)


class TestExactBisection:
    def test_ring(self):
        assert exact_bisection(Ring(6)) == 2
        assert exact_bisection(Ring(9)) == 2

    def test_complete(self):
        assert exact_bisection(CompleteGraph(6)) == 9
        assert exact_bisection(CompleteGraph(7)) == 12

    def test_hypercube(self):
        assert exact_bisection(Hypercube(3)) == 4
        assert exact_bisection(Hypercube(4)) == 8

    def test_kary(self):
        assert exact_bisection(KAryNCube(4, 2)) == 8  # 2N/k

    def test_path_is_one(self):
        from repro.topology.base import build_network

        net = build_network(range(6), [(i, i + 1) for i in range(5)], "path")
        assert exact_bisection(net) == 1

    def test_tiny(self):
        from repro.topology.base import build_network

        assert exact_bisection(build_network([0], [], "dot")) == 0


class TestFormulas:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_hypercube_matches_exact(self, n):
        assert bisection_formula("hypercube", n) == exact_bisection(Hypercube(n))

    def test_kary_matches_exact(self):
        assert bisection_formula("kary", 4, 2) == exact_bisection(KAryNCube(4, 2))

    def test_complete_matches_exact(self):
        for n in (4, 5, 6, 7):
            assert bisection_formula("complete", n) == exact_bisection(
                CompleteGraph(n)
            )

    def test_ghc_matches_exact(self):
        assert bisection_formula("ghc", 4, 2) == exact_bisection(
            GeneralizedHypercube((4, 4))
        )

    def test_ring(self):
        assert bisection_formula("ring", 9) == 2

    def test_odd_radix_rejected(self):
        with pytest.raises(ValueError):
            bisection_formula("kary", 3, 2)

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            bisection_formula("klein-bottle", 3)


class TestKernighanLin:
    @pytest.mark.parametrize(
        "net",
        [Ring(8), Hypercube(3), Hypercube(4), KAryNCube(4, 2), CompleteGraph(8)],
        ids=lambda n: n.name,
    )
    def test_upper_bounds_exact(self, net):
        kl = kernighan_lin(net)
        exact = exact_bisection(net)
        assert kl >= exact
        # KL should be near-optimal on these structured graphs.
        assert kl <= 2 * exact + 2

    def test_deterministic(self):
        assert kernighan_lin(Hypercube(5)) == kernighan_lin(Hypercube(5))

    def test_scales_to_moderate_graphs(self):
        # 64 nodes: exact is infeasible, KL gives a certified ceiling.
        kl = kernighan_lin(Hypercube(6))
        assert kl >= bisection_formula("hypercube", 6)


class TestLowerBounds:
    def test_area_bound_arithmetic(self):
        assert area_lower_bound(128, 2) == 64 * 64
        assert area_lower_bound(128, 8) == 16 * 16
        assert area_lower_bound(0, 4) == 0
        assert area_lower_bound(10, 4) == 9  # ceil(10/4) = 3

    def test_layouts_respect_lower_bound(self):
        """Every constructed layout must sit above the trivial bound --
        a cross-cutting soundness check of the whole pipeline."""
        cases = [
            (layout_hypercube(6, layers=2), bisection_formula("hypercube", 6), 2),
            (layout_hypercube(6, layers=8), bisection_formula("hypercube", 6), 8),
            (layout_kary(4, 3, layers=2), bisection_formula("kary", 4, 3), 2),
            (layout_ghc((4, 4), layers=4), bisection_formula("ghc", 4, 2), 4),
        ]
        for lay, bis, L in cases:
            m = measure(lay)
            assert m.area >= area_lower_bound(bis, L)
            assert m.width * L >= bis
            assert m.height * L >= bis

    def test_optimality_factor_reasonable(self):
        """Abstract: 'optimal within a small constant factor'."""
        lay = layout_hypercube(10, layers=2, node_side="min")
        f = optimality_factor(
            measure(lay).area, bisection_formula("hypercube", 10), 2
        )
        assert 1.0 <= f <= 16.0  # paper's hypercube constant is 64/9 + o(1)

    def test_ghc_factor_approaches_paper_constant(self):
        """GHC: paper area r^2N^2/(4L^2) vs bound (rN/(4L))^2 -> factor
        4 + o(1), the '2 + o(1)' per side of Section 1."""
        lay = layout_ghc((8, 8), layers=2, node_side="min")
        f = optimality_factor(
            measure(lay).area, bisection_formula("ghc", 8, 2), 2
        )
        assert 3.0 <= f <= 10.0
