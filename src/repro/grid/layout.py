"""The :class:`GridLayout` container: placements + wires + layer count.

A layout's *area* is the area of the smallest upright rectangle
containing all nodes and wires (Section 2.2); its *volume* is
``layers * area``.  Both are exact integer quantities here, since the
model is the paper's own grid model rather than a physical substrate.

Measurement methods route through the layout's cached
:class:`~repro.grid.table.WireTable` -- a structure-of-arrays flattening
of the wire geometry built once per layout (see :meth:`GridLayout.wire_table`
for the cache-invalidation rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.grid.geometry import Rect, Segment
from repro.grid.wire import Wire

__all__ = ["Placement", "GridLayout"]


@dataclass(frozen=True, slots=True)
class Placement:
    """A node embedded as a square (or rectangle) in the active layer."""

    node: Hashable
    rect: Rect
    layer: int = 1


@dataclass(slots=True)
class GridLayout:
    """A complete multilayer grid layout.

    Attributes
    ----------
    layers:
        Number of wiring layers ``L`` the layout is entitled to use
        (the multilayer 2-D grid model).  Wires may use fewer -- with
        odd ``L`` the orthogonal scheme uses ``L - 1`` (Section 2.4) --
        but never more; the validator enforces the bound.
    placements:
        Node squares, keyed by node label.
    wires:
        Routed nets, one per network edge (parallel edges are separate
        wires distinguished by ``edge_key``).
    meta:
        Free-form provenance written by the layout schemes (scheme name,
        channel structure, track counts); benches and tests read it.
    """

    layers: int
    placements: dict[Hashable, Placement] = field(default_factory=dict)
    wires: list[Wire] = field(default_factory=list)
    meta: dict = field(default_factory=dict)
    _table: object = field(default=None, repr=False, compare=False)
    _table_stamp: tuple = field(default=(), repr=False, compare=False)
    #: Lazily attached :class:`repro.grid.dirty.DirtyTracker`; ``None``
    #: until the first ``validate_layout(..., incremental=True)`` call
    #: opts this layout into dirty-region bookkeeping.
    _dirty: object = field(default=None, repr=False, compare=False)

    # -- construction ---------------------------------------------------

    def place(self, node: Hashable, rect: Rect, layer: int = 1) -> None:
        if node in self.placements:
            raise ValueError(f"node placed twice: {node!r}")
        self.placements[node] = Placement(node, rect, layer)
        self._table = None
        if self._dirty is not None:
            self._dirty.on_place(rect, layer)

    def add_wire(self, wire: Wire) -> None:
        self.wires.append(wire)
        self._table = None
        if self._dirty is not None:
            self._dirty.on_add(wire)

    def replace_wire(self, i: int, wire: Wire) -> None:
        """Swap wire ``i`` for a new object, recording dirty regions.

        The canonical mutation: wires are immutable by convention, so
        edits replace whole :class:`Wire` objects.  Equivalent to
        ``layout.wires[i] = wire`` (the table stamp catches either),
        but this entry point also tells the attached dirty tracker, so
        incremental revalidation stays sound.
        """
        self.wires[i] = wire
        self._table = None
        if self._dirty is not None:
            self._dirty.on_replace(i, wire)

    # -- geometry kernel ------------------------------------------------

    def wire_table(self):
        """The layout's structure-of-arrays geometry kernel, cached.

        The mutation API (``place``, ``add_wire``, ``replace_wire``)
        drops the cache directly; direct ``wires[i] = ...`` assignment
        is caught by an identity stamp -- placement count plus the wire
        objects themselves, compared by ``is``.  The stamp holds strong
        references, so a replaced wire cannot be freed and have its
        ``id()`` recycled by a lookalike while the cache is alive (the
        allocator reuses addresses eagerly; comparing stored ``id()``
        ints alone served stale tables under exactly that reuse).
        Mutating a ``Wire``'s own ``segments`` list in place is still
        not detected -- wires are immutable by convention; replace
        them instead, or call ``invalidate_table()``.
        """
        from repro.grid.table import WireTable

        stamp = self._table_stamp
        if (
            self._table is None
            or stamp[0] != len(self.placements)
            or len(stamp[1]) != len(self.wires)
            or any(a is not b for a, b in zip(stamp[1], self.wires))
        ):
            self._table = WireTable.from_layout(self)
            self._table_stamp = (len(self.placements), tuple(self.wires))
        return self._table

    def invalidate_table(self) -> None:
        """Drop the cached :class:`WireTable` (rebuilt on next use).

        Also poisons any attached dirty tracker: an explicit
        invalidation signals out-of-band mutation, so the next
        incremental validation falls back to a full sweep.
        """
        self._table = None
        self._table_stamp = ()
        if self._dirty is not None:
            self._dirty.mark_all()

    # -- measurement ----------------------------------------------------

    def bounding_box(self) -> Rect:
        """Smallest upright rectangle containing all nodes and wires."""
        bounds = self.wire_table().bounds()
        if bounds is None:
            return Rect(0, 0, 0, 0)
        x0, y0, x1, y1 = bounds
        return Rect(x0, y0, x1 - x0, y1 - y0)

    @property
    def width(self) -> int:
        return self.bounding_box().w

    @property
    def height(self) -> int:
        return self.bounding_box().h

    @property
    def area(self) -> int:
        bb = self.bounding_box()
        return bb.w * bb.h

    @property
    def volume(self) -> int:
        return self.layers * self.area

    def max_wire_length(self) -> int:
        return self.wire_table().max_wire_length()

    def total_wire_length(self) -> int:
        return self.wire_table().total_wire_length()

    def layers_used(self) -> set[int]:
        return self.wire_table().layers_used()

    def via_count(self) -> int:
        return self.wire_table().via_count()

    # -- structure ------------------------------------------------------

    def edge_multiset(self) -> dict[tuple, int]:
        """Multiset of routed node pairs, for topology verification."""
        out: dict[tuple, int] = {}
        for w in self.wires:
            a, b, _ = w.key()
            key = (a, b)
            out[key] = out.get(key, 0) + 1
        return out

    def wire_lengths_by_edge(self) -> dict[tuple, int]:
        """Map (u, v, edge_key) -> routed length, endpoints sorted."""
        lengths = self.wire_table().wire_lengths()
        return {w.key(): ln for w, ln in zip(self.wires, lengths)}

    def segments(self) -> Iterable[tuple[Wire, Segment]]:
        for w in self.wires:
            for s in w.segments:
                yield (w, s)

    def summary(self) -> dict:
        """A metrics snapshot used by benches and EXPERIMENTS.md."""
        bb = self.bounding_box()
        return {
            "nodes": len(self.placements),
            "wires": len(self.wires),
            "layers": self.layers,
            "layers_used": len(self.layers_used()),
            "width": bb.w,
            "height": bb.h,
            "area": bb.w * bb.h,
            "volume": self.layers * bb.w * bb.h,
            "max_wire_length": self.max_wire_length(),
            "total_wire_length": self.total_wire_length(),
            "vias": self.via_count(),
        }
