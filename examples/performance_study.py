#!/usr/bin/env python
"""Performance study: from layout geometry to network performance.

Reproduces the paper's performance argument end to end for the 8-cube:

1. lay the network out under L = 2, 4, 8, 16 (and fold the L = 2
   layout as the baseline);
2. derive per-link delays from the routed wire lengths;
3. run classic traffic kernels (bit complement, transpose, random
   permutation) through a store-and-forward and a cut-through
   simulator with e-cube routing;
4. report clock-period and traffic speedups.

Run:  python examples/performance_study.py
"""

from repro import DelayModel, layout_hypercube, performance
from repro.bench import print_table
from repro.core.folding import fold_layout
from repro.routing import (
    bit_complement,
    dimension_order_route,
    random_permutation,
    simulate,
    transpose,
)
from repro.topology import Hypercube

DIM = 8


def main() -> None:
    net = Hypercube(DIM)
    route = lambda s, d: dimension_order_route(net, s, d)  # noqa: E731
    kernels = {
        "bit-complement": bit_complement(net),
        "transpose": transpose(net),
        "random permutation": random_permutation(net),
    }

    layouts = {
        L: layout_hypercube(DIM, layers=L, node_side="min")
        for L in (2, 4, 8, 16)
    }
    folded = fold_layout(layouts[2], 8)

    # Clock potential (performance module).
    rows = []
    base = performance(layouts[2], max_sources=8)
    for L, lay in layouts.items():
        rep = performance(lay, max_sources=8)
        rows.append([
            L, f"{rep.clock_period:.0f}",
            f"{base.clock_period / rep.clock_period:.2f}",
            f"{rep.worst_latency:.0f}",
            f"{base.worst_latency / rep.worst_latency:.2f}",
        ])
    rep_f = performance(folded, max_sources=8)
    rows.append([
        "8 (folded)", f"{rep_f.clock_period:.0f}",
        f"{base.clock_period / rep_f.clock_period:.2f}",
        f"{rep_f.worst_latency:.0f}",
        f"{base.worst_latency / rep_f.worst_latency:.2f}",
    ])
    print_table(
        f"{DIM}-cube clock and latency potential vs layers",
        ["L", "clock", "speedup", "worst latency", "speedup"],
        rows,
    )

    # Traffic simulation, both switching modes.
    for mode, length in (("store_forward", 4), ("cut_through", 4)):
        rows = []
        base_res = {}
        for L, lay in layouts.items():
            for name, msgs in kernels.items():
                res = simulate(
                    net, msgs, layout=lay, router=route, mode=mode,
                    message_length=length,
                )
                if L == 2:
                    base_res[name] = res.makespan
                rows.append([
                    name, L, res.makespan,
                    f"{base_res[name] / res.makespan:.2f}",
                ])
        print_table(
            f"{DIM}-cube {mode} traffic (message length {length} flits)",
            ["kernel", "L", "makespan", "speedup"],
            rows,
        )


if __name__ == "__main__":
    main()
