"""Shared hypothesis strategies and corruption helpers for the suite.

Consolidates the generators that used to live, duplicated, inside
``test_properties_builder``, ``test_properties_extended`` and
``test_validator_mutation``.  Random *network* generation and layout
*corruption* delegate to :mod:`repro.check.generate`, so the property
suite and the ``python -m repro fuzz`` driver draw from the same
distributions -- a counterexample found by either is replayable in the
other.

Strategies
----------
random_networks     connected graphs (spanning tree + density draw)
grid_specs          random R x C node grids with row/col/extra links
block_specs         1 x C block rows with random clusters and links
foldable_specs      uniform-pitch 2-layer specs foldable into 4/8
traffic_networks    networks for the workload zoo (incl. hypercubes)
workload_cases      (network, kind, seed, rate, duration) zoo draws

Helpers
-------
mutate              one seeded geometric mutation of a GridLayout
clone_layout        deep copy via the JSON round-trip
verdicts_agree      (fast_ok, oracle_ok) verdict pair for a layout
"""

import random

from hypothesis import strategies as st

from repro.check.generate import mutate_layout, random_connected_network
from repro.core.spec import BlockCell, LayoutSpec, LinkSpec, NodeCell
from repro.grid.io import clone_layout
from repro.grid.layout import GridLayout
from repro.grid.oracle import OracleViolation, oracle_validate
from repro.grid.validate import LayoutError, validate_layout
from repro.routing.traffic import WORKLOAD_KINDS
from repro.topology import Hypercube

__all__ = [
    "random_networks",
    "grid_specs",
    "block_specs",
    "foldable_specs",
    "traffic_networks",
    "workload_cases",
    "mutate",
    "clone_layout",
    "verdicts_agree",
]

# Layout corruption is the fuzzer's harness, re-exported under the
# test suite's historical name.
mutate = mutate_layout


@st.composite
def random_networks(draw, min_nodes=2, max_nodes=12):
    """Connected simple graphs from the fuzzer's distribution."""
    rng = random.Random(draw(st.integers(0, 10_000)))
    return random_connected_network(
        rng, min_nodes=min_nodes, max_nodes=max_nodes
    )


@st.composite
def traffic_networks(draw, min_nodes=2, max_nodes=14):
    """Networks the workload zoo runs on: random connected graphs from
    the fuzzer's distribution, mixed with small hypercubes (the only
    family where the address-arithmetic kernels -- transpose,
    bit-reversal on addresses -- take their specialized form).
    """
    if draw(st.booleans()):
        return Hypercube(draw(st.integers(2, 4)))
    rng = random.Random(draw(st.integers(0, 10_000)))
    return random_connected_network(
        rng, min_nodes=min_nodes, max_nodes=max_nodes
    )


@st.composite
def workload_cases(draw, kinds=None):
    """(network, kind, seed, rate, duration) draws over the zoo.

    ``transpose`` is pinned to hypercubes (it is undefined on the
    integer-labeled random graphs); ``trace`` is excluded by default
    because it replays rather than generates.
    """
    pool = list(kinds) if kinds else [k for k in WORKLOAD_KINDS if k != "trace"]
    kind = draw(st.sampled_from(pool))
    if kind == "transpose":
        net = Hypercube(draw(st.integers(2, 4)))
    else:
        net = draw(traffic_networks())
    seed = draw(st.integers(0, 2**16))
    rate = draw(st.sampled_from([0.05, 0.1, 0.25, 0.5, 1.0]))
    duration = draw(st.integers(1, 24))
    return net, kind, seed, rate, duration


@st.composite
def grid_specs(draw):
    """Random R x C node grids with row/column/extra links."""
    rows = draw(st.integers(1, 4))
    cols = draw(st.integers(1, 4))
    layers = draw(st.sampled_from([2, 3, 4, 5, 8]))
    side = draw(st.integers(4, 8))
    cells = {
        (i, j): NodeCell((i, j), side) for i in range(rows) for j in range(cols)
    }
    n_links = draw(st.integers(0, 12))
    row_links, col_links, extra_links = [], [], []
    keys: dict[tuple, int] = {}
    demand: dict[tuple, int] = {}
    for _ in range(n_links):
        i1 = draw(st.integers(0, rows - 1))
        j1 = draw(st.integers(0, cols - 1))
        i2 = draw(st.integers(0, rows - 1))
        j2 = draw(st.integers(0, cols - 1))
        if (i1, j1) == (i2, j2):
            continue
        # Respect pin capacity: at most `side` wires per node side.
        if demand.get((i1, j1), 0) >= side or demand.get((i2, j2), 0) >= side:
            continue
        demand[(i1, j1)] = demand.get((i1, j1), 0) + 1
        demand[(i2, j2)] = demand.get((i2, j2), 0) + 1
        key = ((i1, j1), (i2, j2))
        ek = keys.get(key, 0)
        keys[key] = ek + 1
        link = LinkSpec((i1, j1), (i2, j2), (i1, j1), (i2, j2), edge_key=ek)
        if i1 == i2:
            row_links.append(link)
        elif j1 == j2:
            col_links.append(link)
        else:
            extra_links.append(link)
    return LayoutSpec(
        rows=rows,
        cols=cols,
        cells=cells,
        row_links=row_links,
        col_links=col_links,
        extra_links=extra_links,
        layers=layers,
        name="random",
    )


@st.composite
def block_specs(draw):
    """1 x C rows of blocks with random small clusters and links."""
    cols = draw(st.integers(2, 4))
    layers = draw(st.sampled_from([2, 4, 6]))
    side = 6
    cells = {}
    members: dict[int, list] = {}
    for j in range(cols):
        m = draw(st.integers(1, 4))
        nodes = [f"b{j}m{i}" for i in range(m)]
        members[j] = nodes
        edges = [
            (nodes[i], nodes[i + 1])
            for i in range(m - 1)
            if draw(st.booleans())
        ]
        cells[(0, j)] = BlockCell(j, nodes, edges, node_side=side)
    links = []
    keys: dict[tuple, int] = {}
    for _ in range(draw(st.integers(0, 6))):
        j1 = draw(st.integers(0, cols - 1))
        j2 = draw(st.integers(0, cols - 1))
        if j1 == j2:
            continue
        u = draw(st.sampled_from(members[j1]))
        v = draw(st.sampled_from(members[j2]))
        key = (j1, j2, u, v)
        ek = keys.get(key, 0)
        keys[key] = ek + 1
        links.append(LinkSpec((0, j1), (0, j2), u, v, edge_key=ek))
    return LayoutSpec(
        rows=1, cols=cols, cells=cells, row_links=links, layers=layers,
        name="random-blocks",
    )


@st.composite
def foldable_specs(draw):
    """Uniform-pitch specs whose column count divides by 2 and 4."""
    rows = draw(st.integers(1, 3))
    cols = draw(st.sampled_from([4, 8]))
    side = draw(st.integers(4, 6))
    cells = {
        (i, j): NodeCell((i, j), side)
        for i in range(rows)
        for j in range(cols)
    }
    row_links, col_links = [], []
    keys = {}
    demand = {}
    for _ in range(draw(st.integers(0, 10))):
        i1 = draw(st.integers(0, rows - 1))
        j1 = draw(st.integers(0, cols - 1))
        i2 = draw(st.integers(0, rows - 1))
        j2 = draw(st.integers(0, cols - 1))
        if (i1, j1) == (i2, j2) or (i1 != i2 and j1 != j2):
            continue
        if demand.get((i1, j1), 0) >= side or demand.get((i2, j2), 0) >= side:
            continue
        demand[(i1, j1)] = demand.get((i1, j1), 0) + 1
        demand[(i2, j2)] = demand.get((i2, j2), 0) + 1
        key = ((i1, j1), (i2, j2))
        ek = keys.get(key, 0)
        keys[key] = ek + 1
        link = LinkSpec((i1, j1), (i2, j2), (i1, j1), (i2, j2), edge_key=ek)
        (row_links if i1 == i2 else col_links).append(link)
    return LayoutSpec(
        rows=rows, cols=cols, cells=cells,
        row_links=row_links, col_links=col_links,
        layers=2, name="foldable",
    )


def verdicts_agree(lay: GridLayout) -> tuple[bool, bool]:
    """(fast_ok, oracle_ok) verdict pair -- agreement is the property."""
    try:
        validate_layout(lay, check_pins=False, check_node_interference=True)
        fast_ok = True
    except LayoutError:
        fast_ok = False
    try:
        oracle_validate(lay)
        oracle_ok = True
    except OracleViolation:
        oracle_ok = False
    return fast_ok, oracle_ok
