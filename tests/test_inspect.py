"""Channel reports and density profiles."""

import pytest

from repro.collinear.recursions import kary_recursive
from repro.core import layout_hypercube, layout_kary
from repro.core.inspect import area_breakdown, channel_report, density_histogram


class TestChannelReport:
    def test_kary_channels(self):
        rep = channel_report(layout_kary(3, 2))
        assert rep.row_tracks == [2, 2, 2]
        assert rep.total_row_tracks == 6
        assert rep.busiest_row == 2

    def test_extents_respect_layers(self):
        rep4 = channel_report(layout_kary(3, 4, layers=4))
        rep2 = channel_report(layout_kary(3, 4, layers=2))
        assert rep4.row_tracks == rep2.row_tracks
        assert sum(rep4.row_extents) < sum(rep2.row_extents)

    def test_requires_builder_layout(self):
        from repro.grid.layout import GridLayout

        with pytest.raises(ValueError, match="metadata"):
            channel_report(GridLayout(layers=2))

    def test_as_dict(self):
        d = channel_report(layout_kary(3, 2)).as_dict()
        assert d["busiest_col"] == 2


class TestAreaBreakdown:
    def test_components_sum(self):
        bd = area_breakdown(layout_hypercube(6))
        assert bd["cell_width"] + bd["channel_width"] >= bd["width"]
        assert 0 < bd["channel_share_w"] < 1

    def test_channel_share_grows_with_size(self):
        small = area_breakdown(layout_hypercube(4, node_side="min"))
        big = area_breakdown(layout_hypercube(10, node_side="min"))
        assert big["channel_share_w"] > small["channel_share_w"]


class TestDensityHistogram:
    def test_profile_peak_matches_tracks(self):
        lay = kary_recursive(3, 2)
        art = density_histogram(lay)
        assert "peak 8 (tracks used: 8)" in art
        assert art.count("\n") == 8  # 8 gaps + footer line

    def test_single_node(self):
        from repro.collinear.engine import CollinearLayout

        lay = CollinearLayout(order=["x"], edges=[], tracks=[], num_tracks=0)
        assert "single node" in density_histogram(lay)
