"""The bench suite's perf trajectory and regression diff.

``benchmarks/results/*.json`` and ``BENCH_summary.json`` are single
snapshots; this module gives them a time axis and a gate:

* :func:`trajectory_record` distills one bench session (the summary
  document plus the per-bench records) into a compact record -- git
  SHA, timestamp, per-bench and per-test wall seconds, and the
  performance-gate ratios parsed out of the speedup/reduction columns
  of ``bench_performance`` (the E7 kernel gates, ``timed_median``
  medians) and ``bench_traffic`` (the E9 engine/traffic gates);
* :func:`append_record` appends it to ``benchmarks/trajectory.jsonl``,
  one JSON object per line, so the repo accumulates a perf history a
  PR reviewer can plot or ``jq`` through;
* :func:`bench_diff` compares two runs -- any mix of trajectory
  JSONL, ``BENCH_summary.json``, per-bench result JSON, or run-report
  documents -- and reports per-table deltas, flagging slowdowns past
  a threshold.  ``python -m repro bench-diff OLD NEW`` wraps it and
  exits nonzero on regression, which is how CI turns "this PR made
  the benches slower" into a red check instead of an anecdote.

Timings are wall-clock and machine-dependent: the default threshold
(15%) is deliberately wider than run-to-run noise on one machine, and
``bench_diff`` compares only benches present on both sides (new or
removed benches are reported, never gated on).
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import time

__all__ = [
    "TRAJECTORY_SCHEMA",
    "append_record",
    "bench_diff",
    "format_diff_rows",
    "gate_ratios",
    "git_sha",
    "load_timings",
    "trajectory_record",
]

TRAJECTORY_SCHEMA = "repro.bench-trajectory/v1"
DEFAULT_THRESHOLD = 0.15

#: Bench modules whose speedup/ratio columns are treated as gates.
GATE_BENCHES = ("bench_performance", "bench_traffic")


def git_sha(repo_root=None) -> str | None:
    """The current commit SHA, or None outside a usable git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root or os.getcwd(),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _parse_ratio(cell) -> float | None:
    """``"9.1x"`` / ``"2.0"`` -> 9.1 / 2.0; None when not a ratio."""
    if isinstance(cell, (int, float)) and not isinstance(cell, bool):
        return float(cell)
    if not isinstance(cell, str):
        return None
    text = cell.strip().rstrip("xX")
    try:
        return float(text.replace(",", ""))
    except ValueError:
        return None


def gate_ratios(perf_record: dict) -> dict[str, float]:
    """Extract the gate ratios from a gate bench's result record.

    Scans every table for ``speedup``/``reduction``-style columns and
    keeps the best (last-row) ratio, keyed by the table's ``E7x``
    prefix when it has one, else by the table title.  Tolerant by
    design: a renamed column yields a smaller dict, never a crash.
    """
    gates: dict[str, float] = {}
    for table in perf_record.get("tables", []):
        headers = [str(h).lower() for h in table.get("headers", [])]
        cols = [
            i for i, h in enumerate(headers)
            if "speedup" in h or "reduction" in h or h == "ratio"
        ]
        if not cols:
            continue
        title = str(table.get("title", ""))
        key = title.split(":", 1)[0].strip() or title
        best = None
        for row in table.get("rows", []):
            for i in cols:
                if i < len(row):
                    r = _parse_ratio(row[i])
                    if r is not None and r != 1.0:
                        best = r
        if best is not None:
            gates[key] = best
    return gates


def trajectory_record(
    summary: dict,
    per_bench: dict[str, dict] | None = None,
    *,
    sha: str | None = None,
) -> dict:
    """Distill one bench session into a trajectory record.

    ``summary`` is a ``BENCH_summary.json`` document; ``per_bench``
    optionally maps bench module name to its ``bench-result`` record
    (used for per-test seconds and, for the :data:`GATE_BENCHES`, the
    gate ratios).
    """
    benches = {
        b["bench"]: b.get("seconds", 0.0)
        for b in summary.get("benches", [])
    }
    tests: dict[str, float] = {}
    gates: dict[str, float] = {}
    for name, rec in (per_bench or {}).items():
        for t in rec.get("tests", []):
            tests[f"{name}::{t['test']}"] = t.get("seconds", 0.0)
        if name in GATE_BENCHES:
            gates.update(gate_ratios(rec))
    return {
        "schema": TRAJECTORY_SCHEMA,
        "git_sha": sha if sha is not None else git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "environment": summary.get("environment", {}),
        "total_seconds": summary.get("total_seconds"),
        "benches": benches,
        "tests": tests,
        "gates": gates,
    }


def append_record(path, record: dict) -> None:
    """Append one record to the trajectory JSONL at ``path``."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True))
        fh.write("\n")


def load_records(path) -> list[dict]:
    """Every record in a trajectory JSONL, oldest first."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def load_timings(path) -> tuple[str, dict[str, float], dict[str, float]]:
    """Normalize any bench document into ``(label, timings, gates)``.

    Accepts a trajectory JSONL (uses the newest record), a
    ``BENCH_summary.json``, a single per-bench ``bench-result`` JSON,
    or an already-loaded trajectory record written as plain JSON.
    ``timings`` maps a table/bench name to wall seconds.
    """
    path = pathlib.Path(path)
    if path.suffix == ".jsonl":
        records = load_records(path)
        if not records:
            raise ValueError(f"{path}: empty trajectory file")
        rec = records[-1]
        label = f"{path.name}@{(rec.get('git_sha') or 'unknown')[:12]}"
        return label, dict(rec.get("benches", {})), dict(
            rec.get("gates", {})
        )
    with path.open() as fh:
        doc = json.load(fh)
    schema = doc.get("schema", "")
    if schema == TRAJECTORY_SCHEMA:
        return (
            f"{path.name}@{(doc.get('git_sha') or 'unknown')[:12]}",
            dict(doc.get("benches", {})),
            dict(doc.get("gates", {})),
        )
    if schema == "repro.bench-summary/v1" or "benches" in doc:
        timings = {
            b["bench"]: b.get("seconds", 0.0)
            for b in doc.get("benches", [])
        }
        return path.name, timings, {}
    if schema == "repro.bench-result/v1" or "tests" in doc:
        name = doc.get("bench", path.stem)
        timings = {
            f"{name}::{t['test']}": t.get("seconds", 0.0)
            for t in doc.get("tests", [])
        }
        gates = gate_ratios(doc) if name in GATE_BENCHES else {}
        return path.name, timings, gates
    raise ValueError(
        f"{path}: unrecognized bench document (schema={schema!r})"
    )


def bench_diff(
    old_path,
    new_path,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> dict:
    """Compare two bench documents; flag slowdowns past ``threshold``.

    Returns ``{"rows", "regressions", "gate_regressions", "only_old",
    "only_new", "old_label", "new_label"}`` where each row is
    ``[name, old_s, new_s, delta_fraction, verdict]`` sorted worst
    first.  A *regression* is a shared bench whose new time exceeds
    the old by more than ``threshold`` (fractional), or a gate ratio
    that fell below ``1 - threshold`` of its old value.
    """
    old_label, old_t, old_g = load_timings(old_path)
    new_label, new_t, new_g = load_timings(new_path)
    rows = []
    regressions = []
    for name in sorted(set(old_t) & set(new_t)):
        o, n = old_t[name], new_t[name]
        delta = (n - o) / o if o else 0.0
        if delta > threshold:
            verdict = "REGRESSION"
            regressions.append(name)
        elif delta < -threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        rows.append([name, o, n, delta, verdict])
    rows.sort(key=lambda r: -r[3])
    gate_regressions = []
    gate_rows = []
    for name in sorted(set(old_g) & set(new_g)):
        o, n = old_g[name], new_g[name]
        drop = (o - n) / o if o else 0.0
        if drop > threshold:
            verdict = "REGRESSION"
            gate_regressions.append(name)
        else:
            verdict = "ok" if n <= o else "improved"
        gate_rows.append([name, o, n, -drop, verdict])
    return {
        "old_label": old_label,
        "new_label": new_label,
        "threshold": threshold,
        "rows": rows,
        "gate_rows": gate_rows,
        "regressions": regressions,
        "gate_regressions": gate_regressions,
        "only_old": sorted(set(old_t) - set(new_t)),
        "only_new": sorted(set(new_t) - set(old_t)),
    }


def format_diff_rows(rows: list) -> list[list]:
    """Render diff rows for :func:`repro.bench.harness.print_table`."""
    out = []
    for name, o, n, delta, verdict in rows:
        out.append([
            name,
            f"{o:.4f}",
            f"{n:.4f}",
            f"{delta * 100:+.1f}%",
            verdict,
        ])
    return out
