"""Cycle-driven store-and-forward network simulator.

Each link (directed edge) carries one message at a time and takes an
integer delay per traversal -- by default the layout-derived wire delay
of :func:`repro.routing.paths.layout_link_delays`, which is how the
paper's geometry becomes performance.  Simulation setup precomputes
every link delay in one vectorized pass over the layout's
:class:`~repro.grid.table.WireTable`, so even a large layout's delay
map costs one array ceil, not a walk of its wire objects.  Messages
follow precomputed
routes; contended links serve waiters in deterministic FIFO order, so
simulations are exactly reproducible.

The results quantify the introduction's claim chain: shorter wires
(multilayer layout) -> smaller link delays -> lower message latency and
makespan for the same traffic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro import obs
from repro.grid.layout import GridLayout
from repro.routing.paths import RoutingTable, layout_link_delays
from repro.topology.base import Network

__all__ = ["SimulationResult", "simulate"]

Node = Hashable
Message = tuple[Node, Node]


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Outcome of one traffic run.

    ``link_utilization`` maps each used directed link to the fraction
    of the makespan it was busy; ``queue_depth_hist`` counts, for every
    wait event (a message finding its next link busy), how many
    messages were then queued on that link -- ``{depth: events}``.
    Both are also published to the :mod:`repro.obs` metrics registry
    when observability is enabled.
    """

    makespan: int
    avg_latency: float
    max_latency: int
    messages: int
    max_link_load: int
    busiest_link: tuple[Node, Node] | None
    link_utilization: dict[tuple[Node, Node], float] = field(
        default_factory=dict
    )
    queue_depth_hist: dict[int, int] = field(default_factory=dict)

    @property
    def max_utilization(self) -> float:
        return max(self.link_utilization.values(), default=0.0)

    @property
    def avg_utilization(self) -> float:
        u = self.link_utilization
        return sum(u.values()) / len(u) if u else 0.0

    def as_dict(self) -> dict:
        return {
            "makespan": self.makespan,
            "avg_latency": self.avg_latency,
            "max_latency": self.max_latency,
            "messages": self.messages,
            "max_link_load": self.max_link_load,
            "busiest_link": self.busiest_link,
            "max_utilization": self.max_utilization,
            "avg_utilization": self.avg_utilization,
            "queue_depth_hist": dict(self.queue_depth_hist),
        }


@dataclass(slots=True)
class _Msg:
    idx: int
    route: list
    hop: int = 0
    start: int = 0
    done: int | None = None
    waiting_on: tuple | None = None


def simulate(
    network: Network,
    messages: list[Message],
    *,
    layout: GridLayout | None = None,
    router: RoutingTable | Callable[[Node, Node], list] | None = None,
    link_delay: dict[tuple[Node, Node], int] | None = None,
    default_delay: int = 1,
    router_overhead: int = 1,
    mode: str = "store_forward",
    message_length: int = 1,
    max_cycles: int = 10_000_000,
) -> SimulationResult:
    """Run ``messages`` through the network.

    Parameters
    ----------
    layout:
        If given (and ``link_delay`` is not), link delays come from the
        routed wire lengths; otherwise every link costs
        ``default_delay``.
    router:
        A :class:`RoutingTable`, a callable ``(src, dst) -> route``, or
        ``None`` for shortest-hop BFS routes.
    router_overhead:
        Extra cycles per hop (switch traversal).
    mode:
        ``"store_forward"`` -- a link holds the whole message for its
        full transit (busy = wire delay x message length);
        ``"cut_through"`` -- the header pipelines ahead while the body
        streams (per-hop header latency = wire delay + router; link
        busy only for the serialization time, and the tail lands
        ``message_length - 1`` cycles after the header).  The classic
        latency models: SF ~ hops * L * d;  CT ~ hops * d + L.
    message_length:
        Message size in flits (serialization units).

    Messages are ``(src, dst)`` pairs injected at cycle 0, or timed
    ``(src, dst, start_cycle)`` triples -- the form rate sweeps use to
    draw latency-vs-load curves.
    """
    if link_delay is None:
        if layout is not None:
            link_delay = layout_link_delays(layout)
        else:
            link_delay = {}

    if router is None:
        from repro.routing.paths import shortest_hop_routes

        table = shortest_hop_routes(network)
        get_route = table.route
    elif isinstance(router, RoutingTable):
        get_route = router.route
    else:
        get_route = router

    msgs = []
    for i, msg in enumerate(messages):
        if len(msg) == 3:
            src, dst, start = msg  # timed injection
        else:
            src, dst = msg
            start = 0
        msgs.append(_Msg(idx=i, route=get_route(src, dst), start=start))
    for m in msgs:
        if len(m.route) < 1:
            raise ValueError("empty route")

    if mode not in ("store_forward", "cut_through"):
        raise ValueError(f"unknown mode {mode!r}")
    if message_length < 1:
        raise ValueError("message_length >= 1")

    def delay_of(u: Node, v: Node) -> tuple[int, int]:
        """(header advance delay, link busy time) for one hop."""
        wire = link_delay.get((u, v), default_delay)
        if mode == "store_forward":
            d = wire * message_length + router_overhead
            return d, d
        # cut-through: header takes wire+router; the link streams the
        # body for message_length cycles.
        return wire + router_overhead, max(wire + router_overhead,
                                           message_length)

    # Event queue: (time, msg_idx) = message ready to take its next hop.
    # Links are busy until a recorded time; FIFO waiters by (arrival,
    # message index) via re-push with the link's free time.
    events: list[tuple[int, int]] = [(m.start, m.idx) for m in msgs]
    heapq.heapify(events)
    link_free: dict[tuple[Node, Node], int] = {}
    link_load: dict[tuple[Node, Node], int] = {}
    link_busy_time: dict[tuple[Node, Node], int] = {}
    waiters: dict[tuple[Node, Node], int] = {}
    depth_hist: dict[int, int] = {}
    finished = 0
    makespan = 0
    latencies: list[int] = []

    with obs.span(
        "simulate", messages=len(msgs), mode=mode,
        message_length=message_length,
    ) as sp:
        guard = 0
        while events:
            guard += 1
            if guard > max_cycles:
                raise RuntimeError("simulation exceeded max_cycles")
            t, idx = heapq.heappop(events)
            m = msgs[idx]
            if m.hop >= len(m.route) - 1:
                if m.done is None:
                    # Cut-through: the tail arrives message_length - 1
                    # cycles after the header (body streaming).
                    tail = message_length - 1 if mode == "cut_through" else 0
                    if len(m.route) == 1:
                        tail = 0
                    m.done = t + tail
                    finished += 1
                    makespan = max(makespan, m.done)
                    latencies.append(m.done - m.start)
                continue
            u, v = m.route[m.hop], m.route[m.hop + 1]
            link = (u, v)
            free_at = link_free.get(link, 0)
            if t < free_at:
                if m.waiting_on != link:
                    m.waiting_on = link
                    depth = waiters.get(link, 0) + 1
                    waiters[link] = depth
                    depth_hist[depth] = depth_hist.get(depth, 0) + 1
                heapq.heappush(events, (free_at, idx))
                continue
            if m.waiting_on is not None:
                waiters[m.waiting_on] -= 1
                m.waiting_on = None
            d, busy = delay_of(u, v)
            link_free[link] = t + busy
            link_busy_time[link] = link_busy_time.get(link, 0) + busy
            link_load[link] = link_load.get(link, 0) + 1
            m.hop += 1
            heapq.heappush(events, (t + d, idx))
        sp.add("events", guard)

    if finished != len(msgs):
        raise RuntimeError("simulation ended with unfinished messages")
    busiest = max(link_load, key=link_load.__getitem__) if link_load else None
    # Busy fractions clip at 1.0: the last transit may overrun the
    # makespan (its message already arrived; the tail streams on).
    link_utilization = {
        link: min(1.0, busy / makespan) if makespan else 0.0
        for link, busy in link_busy_time.items()
    }
    if obs.enabled():
        obs.count("simulator.runs")
        obs.count("simulator.events", guard)
        obs.count("simulator.messages", len(msgs))
        obs.count("simulator.hops", sum(link_load.values()))
        for util in link_utilization.values():
            obs.observe(
                "simulator.link_utilization", util,
                bounds=(0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
            )
        for depth, times in depth_hist.items():
            for _ in range(times):
                obs.observe("simulator.queue_depth", depth)
    return SimulationResult(
        makespan=makespan,
        avg_latency=sum(latencies) / len(latencies) if latencies else 0.0,
        max_latency=max(latencies, default=0),
        messages=len(msgs),
        max_link_load=link_load.get(busiest, 0) if busiest else 0,
        busiest_link=busiest,
        link_utilization=link_utilization,
        queue_depth_hist=depth_hist,
    )
