"""Folded hypercubes, enhanced cubes and partition machinery."""

import pytest

from repro.topology import (
    EnhancedCube,
    FoldedHypercube,
    Hypercube,
    Partition,
    Ring,
    quotient,
)


class TestFoldedHypercube:
    @pytest.mark.parametrize("n", [2, 3, 4, 6])
    def test_counts(self, n):
        f = FoldedHypercube(n)
        N = 2**n
        assert f.num_nodes == N
        assert f.num_edges == n * N // 2 + N // 2
        assert f.is_regular() and f.max_degree == n + 1

    def test_extra_links_are_complements(self):
        f = FoldedHypercube(4)
        for u, v in f.extra_links():
            assert u ^ v == 15

    def test_extra_link_count(self):
        assert len(FoldedHypercube(5).extra_links()) == 16

    def test_diameter_halves(self):
        # Folded hypercube diameter is ceil(n/2).
        assert FoldedHypercube(4).diameter() == 2
        assert Hypercube(4).diameter() == 4


class TestEnhancedCube:
    def test_counts(self):
        e = EnhancedCube(4)
        N = 16
        assert e.num_nodes == N
        assert e.num_edges == 4 * N // 2 + N  # N extra links

    def test_deterministic_by_seed(self):
        a = EnhancedCube(4, seed=7).extra_links()
        b = EnhancedCube(4, seed=7).extra_links()
        c = EnhancedCube(4, seed=8).extra_links()
        assert a == b
        assert a != c

    def test_extras_avoid_cube_edges_and_loops(self):
        e = EnhancedCube(5, seed=3)
        cube_edges = {tuple(sorted(x)) for x in Hypercube(5).edges}
        for u, v in e.extra_links():
            assert u != v
            assert tuple(sorted((u, v))) not in cube_edges


class TestPartition:
    def test_members_and_clusters(self):
        p = Partition({0: "a", 1: "a", 2: "b"})
        assert set(p.clusters()) == {"a", "b"}
        assert sorted(p.members()["a"]) == [0, 1]

    def test_quotient_requires_total_map(self):
        r = Ring(4)
        with pytest.raises(ValueError, match="cover"):
            quotient(r, Partition({0: "a"}))

    def test_quotient_edge_conservation(self):
        r = Ring(6)
        p = Partition({v: v // 2 for v in r.nodes})
        q = quotient(r, p)
        intra = sum(len(es) for es in q.intra_edges.values())
        assert intra + len(q.inter_edges) == r.num_edges

    def test_quotient_keeps_endpoints(self):
        r = Ring(6)
        p = Partition({v: v // 3 for v in r.nodes})
        q = quotient(r, p)
        for cu, cv, u, v in q.inter_edges:
            assert p.cluster_of(u) == cu and p.cluster_of(v) == cv

    def test_simple_edges(self):
        r = Ring(6)
        p = Partition({v: v // 2 for v in r.nodes})
        q = quotient(r, p)
        assert len(q.simple_edges()) == 3  # triangle of supernodes
