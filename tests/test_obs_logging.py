"""The structured JSONL logger: levels, context, sinks, CLI wiring."""

import io
import json
import os

import pytest

from repro import obs
from repro.obs import logging as olog


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    monkeypatch.delenv(olog.ENV_LEVEL, raising=False)
    olog.close()
    obs.disable()
    obs.reset()
    yield
    olog.close()
    obs.disable()
    obs.reset()


def _records(stream: io.StringIO) -> list[dict]:
    return [
        json.loads(line)
        for line in stream.getvalue().splitlines()
        if line
    ]


class TestLogger:
    def test_unconfigured_is_noop(self):
        # Must not raise, must not create any sink state.
        olog.info("nobody.listening", x=1)
        assert not olog.configured()
        assert olog.run_id() is None

    def test_record_shape(self):
        s = io.StringIO()
        rid = olog.configure(stream=s, run_id="cafe01", worker_id=3)
        assert rid == "cafe01"
        olog.info("sweep.start", jobs=8, spec="test")
        (rec,) = _records(s)
        assert rec["event"] == "sweep.start"
        assert rec["level"] == "info"
        assert rec["run"] == "cafe01"
        assert rec["worker"] == 3
        assert rec["pid"] == os.getpid()
        assert rec["jobs"] == 8 and rec["spec"] == "test"
        assert isinstance(rec["ts"], float)

    def test_level_threshold_filters(self):
        s = io.StringIO()
        olog.configure(stream=s, level="warning")
        olog.debug("a")
        olog.info("b")
        olog.warning("c")
        olog.error("d")
        assert [r["event"] for r in _records(s)] == ["c", "d"]

    def test_env_level_default(self, monkeypatch):
        monkeypatch.setenv(olog.ENV_LEVEL, "debug")
        s = io.StringIO()
        olog.configure(stream=s)
        olog.debug("visible")
        assert [r["event"] for r in _records(s)] == ["visible"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            olog.level_no("loud")

    def test_span_context_stamped(self):
        s = io.StringIO()
        olog.configure(stream=s)
        obs.enable()
        olog.info("outside")
        with obs.span("build"):
            with obs.span("pack"):
                olog.info("inside")
        recs = _records(s)
        assert "span" not in recs[0]
        assert recs[1]["span"] == "pack"  # innermost wins

    def test_span_context_off_when_disabled(self):
        s = io.StringIO()
        olog.configure(stream=s)
        with obs.span("build"):  # no-op span: tracing disabled
            olog.info("x")
        assert "span" not in _records(s)[0]

    def test_file_sink_appends(self, tmp_path):
        path = tmp_path / "log.jsonl"
        olog.configure(path)
        olog.info("first")
        olog.close()
        olog.configure(path, run_id="second-run")
        olog.info("second")
        olog.close()
        recs = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert [r["event"] for r in recs] == ["first", "second"]
        assert recs[0]["run"] != recs[1]["run"]

    def test_unserializable_field_stringified(self):
        s = io.StringIO()
        olog.configure(stream=s)
        olog.info("odd", obj=object())
        (rec,) = _records(s)
        assert rec["obj"].startswith("<object object")

    def test_log_never_raises_on_broken_sink(self, tmp_path):
        path = tmp_path / "log.jsonl"
        olog.configure(path)
        olog.info("ok")
        # Break the handle behind the logger's back.
        olog._config._fh.close()
        olog._config.stream = None
        olog._config._fh = open(os.devnull)  # read-only: write fails
        olog.info("dropped")  # must not raise

    def test_fork_child_keeps_path_and_run(self, tmp_path):
        path = tmp_path / "log.jsonl"
        rid = olog.configure(path, run_id="shared")
        olog.fork_child(worker_id=5)
        assert olog.configured()
        assert olog.run_id() == rid == "shared"
        olog.info("from-child")
        olog.close()
        (rec,) = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert rec["worker"] == 5
        assert rec["run"] == "shared"

    def test_fork_child_drops_stream_sink(self):
        olog.configure(stream=io.StringIO())
        olog.fork_child(worker_id=1)
        assert not olog.configured()

    def test_new_run_ids_are_distinct(self):
        assert olog.new_run_id() != olog.new_run_id()
        assert len(olog.new_run_id()) == 12


class TestInstrumentedCallSites:
    def test_cache_corruption_is_logged(self, tmp_path):
        from repro.batch.cache import LayoutCache
        from repro.topology import Ring

        s = io.StringIO()
        olog.configure(stream=s, level="debug")
        cache = LayoutCache(tmp_path / "cache")
        net = Ring(4)
        key, doc = cache.key_for(net, scheme="auto", layers=2)
        cache.put(key, doc, '{"fake": true}', {"area": 1})
        path = cache._path(key)
        path.write_text("{corrupt json")
        assert cache.get(key, doc) is None
        events = [r["event"] for r in _records(s)]
        assert "cache.write" in events
        assert "cache.corrupt" in events

    def test_cache_hit_and_miss_are_logged(self, tmp_path):
        from repro.batch.cache import LayoutCache
        from repro.topology import Ring

        s = io.StringIO()
        olog.configure(stream=s, level="debug")
        cache = LayoutCache(tmp_path / "cache")
        key, doc = cache.key_for(Ring(4), scheme="auto", layers=2)
        assert cache.get(key, doc) is None  # miss
        events = [r["event"] for r in _records(s)]
        assert events == ["cache.miss"]

    def test_timed_median_logs_label(self):
        from repro.bench.harness import timed_median

        s = io.StringIO()
        olog.configure(stream=s, level="debug")
        t = timed_median(lambda: None, repeats=2, label="noop")
        assert t >= 0.0
        (rec,) = _records(s)
        assert rec["event"] == "bench.timed"
        assert rec["label"] == "noop"
        assert rec["repeats"] == 2
        assert rec["seconds"] >= 0.0


class TestCliLogOut:
    def test_log_out_flag_writes_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "cli.jsonl"
        assert main(
            ["predict", "hypercube:6", "--log-out", str(out)]
        ) == 0
        capsys.readouterr()
        recs = [
            json.loads(line)
            for line in out.read_text().splitlines()
        ]
        events = [r["event"] for r in recs]
        assert events[0] == "cli.start"
        assert events[-1] == "cli.exit"
        assert recs[0]["run"] == recs[-1]["run"]
        # main() tears the sink down again.
        assert not olog.configured()

    def test_sweep_run_dir_gets_default_log(self, tmp_path, capsys):
        from repro.cli import main

        rd = tmp_path / "run"
        assert main([
            "sweep", "--networks", "ring:6", "-L", "2",
            "--run-dir", str(rd),
        ]) == 0
        capsys.readouterr()
        log = rd / "log.jsonl"
        assert log.exists()
        events = [
            json.loads(line)["event"]
            for line in log.read_text().splitlines()
        ]
        assert "sweep.start" in events
        assert "sweep.done" in events
        assert not olog.configured()
