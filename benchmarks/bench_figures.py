"""F1-F4: the paper's figures, regenerated and timed.

Figure 2 -- collinear 3-ary 2-cube (8 tracks);
Figure 3 -- collinear K_9 (20 tracks);
Figure 4 -- collinear 4-cube (10 tracks);
Figure 1 -- recursive-grid top view (grid of blocks + channels).
"""

from repro.collinear import (
    complete_recursive,
    hypercube_recursive,
    kary_recursive,
)
from repro.core import layout_ccc
from repro.grid.validate import validate_layout
from repro.viz import ascii_collinear, svg_layout


def test_figure2_collinear_kary(benchmark, report):
    lay = benchmark(kary_recursive, 3, 2)
    assert lay.num_tracks == 8
    art = ascii_collinear(lay)
    report(
        "F2: collinear 3-ary 2-cube",
        ["figure", "paper tracks", "measured", "optimal (max cut)"],
        [["Fig. 2", 8, lay.num_tracks, lay.max_cut()]],
    )
    print(art)


def test_figure3_collinear_k9(benchmark, report):
    lay = benchmark(complete_recursive, 9)
    assert lay.num_tracks == 20
    report(
        "F3: collinear K9",
        ["figure", "paper tracks", "measured", "optimal (max cut)"],
        [["Fig. 3", 20, lay.num_tracks, lay.max_cut()]],
    )


def test_figure4_collinear_4cube(benchmark, report):
    lay = benchmark(hypercube_recursive, 4)
    assert lay.num_tracks == 10
    report(
        "F4: collinear 4-cube",
        ["figure", "paper tracks", "measured", "optimal (max cut)"],
        [["Fig. 4", 10, lay.num_tracks, lay.max_cut()]],
    )


def test_figure1_recursive_grid(benchmark, report):
    lay = benchmark.pedantic(layout_ccc, args=(3,), rounds=1, iterations=1)
    validate_layout(lay)
    svg = svg_layout(lay)
    assert "<svg" in svg
    report(
        "F1: recursive grid layout top view (CCC(3) blocks)",
        ["figure", "blocks", "grid", "area"],
        [["Fig. 1", lay.meta["clusters"],
          f"{lay.meta['rows']}x{lay.meta['cols']}", lay.area]],
    )
