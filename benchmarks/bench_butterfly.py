"""E4.2: Section 4.2 -- butterfly networks as GHC clusters.

Regenerates:

* the structural reduction: row-pair clusters form a hypercube quotient
  with exactly 4 parallel links per adjacent pair;
* the L-layer area vs 4 N^2/(L^2 log2^2 N) and the max wire vs
  2N/(L log2 N).
"""

from repro.bench.harness import comparison_row
from repro.core import layout_butterfly, measure
from repro.core.analysis import butterfly_prediction
from repro.topology import Butterfly, quotient


def test_quotient_structure(benchmark, report):
    rows = []
    for m in (2, 3, 4, 5):
        bf = Butterfly(m)
        q = quotient(bf, bf.row_pair_partition())
        mult = set(q.multiplicity().values())
        assert mult == {4}
        rows.append([m, bf.num_nodes, len(q.clusters), sorted(mult)[0]])
    report(
        "E4.2a: butterfly row-pair quotient = hypercube with 4 links/pair",
        ["m", "N", "clusters", "link multiplicity"],
        rows,
    )
    bf = Butterfly(4)
    benchmark(quotient, bf, bf.row_pair_partition())


def test_area_sweep(benchmark, report):
    rows = []
    for m in (3, 4, 5, 6):
        for L in (2, 4):
            lay = layout_butterfly(m, layers=L)
            meas = measure(lay)
            p = butterfly_prediction(m, L)
            rows.append(
                comparison_row([m, p.num_nodes, L], round(p.area), meas.area)
            )
    report(
        "E4.2b: L-layer butterfly area vs 4 N^2/(L^2 log2^2 N)",
        ["m", "N", "L", "paper", "measured", "ratio"],
        rows,
    )
    benchmark.pedantic(layout_butterfly, args=(5,), rounds=1, iterations=1)


def test_max_wire(report, benchmark):
    rows = []
    for L in (2, 4, 8):
        m = measure(layout_butterfly(5, layers=L))
        p = butterfly_prediction(5, L)
        rows.append(comparison_row([5, L], round(p.max_wire, 1), m.max_wire))
    report(
        "E4.2c: butterfly max wire vs 2N/(L log2 N)",
        ["m", "L", "paper", "measured", "ratio"],
        rows,
    )
    benchmark(layout_butterfly, 3, layers=4)
