"""Trace context, request telemetry, and SLO math unit tests.

The serve e2e suite (``test_serve_trace.py``) exercises these pieces
through real sockets; here each piece is pinned in isolation --
traceparent parsing tolerance, contextvar propagation across threads
and tasks, RequestTrace tree assembly, RequestLog tail-sampling
retention, and the SLO estimator's bucket interpolation.
"""

import asyncio
import threading

import pytest

from repro.obs import context as ocontext
from repro.obs import slo as oslo
from repro.obs.metrics import Histogram, MetricsRegistry


class TestTraceparent:
    def test_round_trip(self):
        ctx = ocontext.new_context()
        back = ocontext.parse_traceparent(ctx.to_traceparent())
        assert back == ctx
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16

    def test_unsampled_flag_round_trips(self):
        ctx = ocontext.new_context(sampled=False)
        back = ocontext.parse_traceparent(ctx.to_traceparent())
        assert back is not None and back.sampled is False

    def test_child_keeps_trace_changes_span(self):
        ctx = ocontext.new_context()
        kid = ctx.child()
        assert kid.trace_id == ctx.trace_id
        assert kid.span_id != ctx.span_id
        assert kid.sampled == ctx.sampled

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "",
            "garbage",
            "00-abc-def-01",  # wrong lengths
            "00" + "-" + "g" * 32 + "-" + "0" * 16 + "-01",  # non-hex
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # zero trace
            "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # zero span
            "00-" + "1" * 32 + "-" + "1" * 16,  # missing flags
        ],
    )
    def test_malformed_header_degrades_to_none(self, bad):
        assert ocontext.parse_traceparent(bad) is None

    def test_dict_round_trip(self):
        ctx = ocontext.new_context(sampled=False)
        assert ocontext.TraceContext.from_dict(ctx.as_dict()) == ctx

    def test_should_sample_edges(self):
        assert ocontext.should_sample(1.0) is True
        assert ocontext.should_sample(0.0) is False


class TestContextPropagation:
    def test_use_context_scopes_and_restores(self):
        assert ocontext.current_context() is None
        ctx = ocontext.new_context()
        with ocontext.use_context(ctx):
            assert ocontext.current_context() is ctx
        assert ocontext.current_context() is None

    def test_threads_do_not_inherit_ambient_context(self):
        seen = []
        ctx = ocontext.new_context()
        with ocontext.use_context(ctx):
            t = threading.Thread(
                target=lambda: seen.append(ocontext.current_context())
            )
            t.start()
            t.join()
        # A fresh thread starts with the contextvar default; workers
        # receive their context explicitly via set_context.
        assert seen == [None]

    def test_asyncio_tasks_are_isolated(self):
        async def task(ctx):
            with ocontext.use_context(ctx):
                await asyncio.sleep(0)
                return ocontext.current_context().trace_id

        async def main():
            a, b = ocontext.new_context(), ocontext.new_context()
            return await asyncio.gather(task(a), task(b))

        ids = asyncio.run(main())
        assert len(set(ids)) == 2


class TestRequestTrace:
    def test_tree_assembly(self):
        ctx = ocontext.new_context()
        rt = ocontext.RequestTrace(ctx, "r000001-abc", path="/v1/layout")
        with rt.child("cache.probe", network="ring:8"):
            pass
        link = rt.link("f" * 32)
        root = rt.finish(200, source="built")
        assert root.attrs["trace_id"] == ctx.trace_id
        assert root.attrs["status"] == 200
        assert [c.name for c in root.children] == [
            "cache.probe", "serve.link",
        ]
        assert link.attrs["linked_trace_id"] == "f" * 32
        assert root.duration is not None and root.duration >= 0
        assert rt.latency_ms >= 0

    def test_finish_marks_5xx_as_error(self):
        rt = ocontext.RequestTrace(ocontext.new_context(), "r1")
        rt.finish(500, error="boom")
        assert rt.error == "boom"
        rt2 = ocontext.RequestTrace(ocontext.new_context(), "r2")
        rt2.finish(404)
        assert rt2.error is None


def _rec(request_id, status=200, latency_ms=1.0, **kw):
    return ocontext.RequestRecord(
        request_id=request_id,
        trace_id=f"t-{request_id}",
        path="/v1/layout",
        status=status,
        latency_ms=latency_ms,
        time_unix=0.0,
        **kw,
    )


class TestRequestLog:
    def test_errors_survive_recent_eviction(self):
        log = ocontext.RequestLog(capacity=4)
        log.add(_rec("err", status=503, latency_ms=1.0))
        for i in range(10):
            log.add(_rec(f"ok{i}", latency_ms=0.1))
        tags = {
            d["request_id"]: d["retained"] for d in log.requests()
        }
        assert "err" in tags and "error" in tags["err"]

    def test_slowest_survive_eviction(self):
        log = ocontext.RequestLog(capacity=10, keep_slow=2)
        log.add(_rec("slow", latency_ms=500.0))
        for i in range(30):
            log.add(_rec(f"fast{i}", latency_ms=0.5))
        ids = {d["request_id"] for d in log.requests()}
        assert "slow" in ids

    def test_find_by_either_id(self):
        log = ocontext.RequestLog(capacity=4)
        log.add(_rec("abc"))
        assert log.find("abc") is not None
        assert log.find("t-abc") is not None
        assert log.find("nope") is None
        assert log.find("") is None

    def test_dropped_counts_only_fully_evicted(self):
        log = ocontext.RequestLog(capacity=2, keep_slow=1, keep_errors=1)
        log.add(_rec("keep", latency_ms=100.0))  # slowest: retained
        log.add(_rec("a", latency_ms=1.0))
        log.add(_rec("b", latency_ms=1.0))  # evicts "keep" from recent
        log.add(_rec("c", latency_ms=1.0))  # evicts "a" entirely
        snap = log.snapshot()
        assert snap["added"] == 4
        assert snap["dropped"] == 1

    def test_requests_limit_newest_first(self):
        log = ocontext.RequestLog(capacity=8)
        for i in range(5):
            log.add(_rec(f"r{i}"))
        docs = log.requests(limit=2)
        assert [d["request_id"] for d in docs] == ["r4", "r3"]


class TestSLO:
    def test_fraction_within_interpolates(self):
        h = Histogram((10.0, 100.0))
        for v in (5.0, 50.0, 95.0, 200.0):
            h.observe(v)
        d = h.as_dict()
        assert oslo.fraction_within(d, 200.0) == 1.0
        assert oslo.fraction_within(d, 1.0) == 0.0
        mid = oslo.fraction_within(d, 100.0)
        assert 0.5 <= mid <= 1.0
        assert oslo.fraction_within({"count": 0}, 10.0) is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            oslo.SLOConfig(latency_ms=0)
        with pytest.raises(ValueError):
            oslo.SLOConfig(target=1.0)
        assert oslo.SLOConfig(target=0.99).budget == pytest.approx(0.01)

    def test_snapshot_and_burn_rate(self):
        reg = MetricsRegistry()
        h = reg.histogram(oslo.REQUEST_HIST, (10.0, 100.0))
        for _ in range(98):
            h.observe(5.0)
        h.observe(5000.0)
        h.observe(5000.0)
        reg.counter(oslo.ERROR_COUNTER).inc(0)
        cfg = oslo.SLOConfig(latency_ms=100.0, target=0.99)
        doc = oslo.slo_snapshot(cfg, reg.snapshot())
        assert doc["requests"] == 100
        # 98/100 within objective: burn rate ~2x the 1% budget.
        assert doc["compliance"] == pytest.approx(0.98, abs=0.01)
        assert doc["burn_rate"] == pytest.approx(2.0, abs=1.0)

    def test_errors_burn_budget(self):
        reg = MetricsRegistry()
        h = reg.histogram(oslo.REQUEST_HIST, (10.0,))
        for _ in range(10):
            h.observe(1.0)
        reg.counter(oslo.ERROR_COUNTER).inc(5)
        doc = oslo.slo_snapshot(
            oslo.SLOConfig(latency_ms=10.0, target=0.9), reg.snapshot()
        )
        assert doc["compliance"] == pytest.approx(0.5)
        assert doc["burn_rate"] == pytest.approx(5.0)

    def test_gauges_round_trip_through_prometheus(self):
        from repro.obs.export import prometheus_text

        reg = MetricsRegistry()
        h = reg.histogram(oslo.REQUEST_HIST, (10.0, 100.0))
        for _ in range(20):
            h.observe(5.0)
        cfg = oslo.SLOConfig(latency_ms=100.0, target=0.95)
        doc = oslo.update_slo_gauges(cfg, reg)
        text = prometheus_text(reg.snapshot())
        back = oslo.slo_from_prometheus(text)
        assert back is not None
        assert back["objective_ms"] == 100.0
        assert back["target"] == 0.95
        assert back["requests"] == 20
        assert back["compliance"] == pytest.approx(doc["compliance"])
        assert back["burn_rate"] == pytest.approx(doc["burn_rate"])

    def test_no_slo_gauges_reads_as_none(self):
        assert oslo.slo_from_prometheus("# just a comment\n") is None
        # A sweep metrics file has counters but no slo gauges.
        assert (
            oslo.slo_from_prometheus("repro_sweep_jobs_total 4\n")
            is None
        )
