"""Left-edge packing and max-overlap: unit + property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.tracks import Interval, cuts, max_overlap, pack_intervals, verify_packing


class TestInterval:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Interval(3, 3)
        with pytest.raises(ValueError):
            Interval(4, 2)


class TestPacking:
    def test_disjoint_share_one_track(self):
        ivs = [Interval(0, 1), Interval(2, 3), Interval(4, 9)]
        _, n = pack_intervals(ivs)
        assert n == 1

    def test_touching_share_one_track(self):
        ivs = [Interval(0, 3), Interval(3, 6), Interval(6, 9)]
        assignment, n = pack_intervals(ivs)
        assert n == 1
        assert verify_packing(ivs, assignment)

    def test_nested_need_two(self):
        ivs = [Interval(0, 9), Interval(2, 4)]
        _, n = pack_intervals(ivs)
        assert n == 2

    def test_ring_structure(self):
        # k-1 unit edges + one wrap edge: the paper's 2-track ring.
        k = 7
        ivs = [Interval(i, i + 1) for i in range(k - 1)] + [Interval(0, k - 1)]
        assignment, n = pack_intervals(ivs)
        assert n == 2
        assert verify_packing(ivs, assignment)

    def test_complete_graph_count(self):
        n = 8
        ivs = [
            Interval(i, j) for i in range(n) for j in range(i + 1, n)
        ]
        _, tracks = pack_intervals(ivs)
        assert tracks == n * n // 4  # |N^2/4|, Section 4.1

    def test_empty_input(self):
        assignment, n = pack_intervals([])
        assert assignment == {} and n == 0

    def test_tuple_endpoints(self):
        # The builder packs refined (cell, rank) coordinates.
        ivs = [
            Interval((0, 1), (4, 0)),
            Interval((4, 1), (8, 0)),
            Interval((0, 0), (8, 1)),
        ]
        assignment, n = pack_intervals(ivs)
        assert n == 2
        assert verify_packing(ivs, assignment)


class TestMaxOverlap:
    def test_simple(self):
        assert max_overlap([Interval(0, 2), Interval(1, 3)]) == 2
        assert max_overlap([Interval(0, 2), Interval(2, 4)]) == 1
        assert max_overlap([]) == 0

    def test_cuts_profile(self):
        ivs = [Interval(0, 2), Interval(1, 3)]
        assert cuts(ivs, [0, 1, 2]) == [1, 2, 1]


@st.composite
def interval_lists(draw):
    n = draw(st.integers(1, 60))
    out = []
    for _ in range(n):
        lo = draw(st.integers(0, 50))
        hi = draw(st.integers(lo + 1, 52))
        out.append(Interval(lo, hi))
    return out


class TestPackingProperties:
    @given(interval_lists())
    @settings(max_examples=200, deadline=None)
    def test_left_edge_is_optimal(self, ivs):
        """Track count equals max proper overlap (clique number)."""
        assignment, n = pack_intervals(ivs)
        assert n == max_overlap(ivs)
        assert verify_packing(ivs, assignment)

    @given(interval_lists())
    @settings(max_examples=100, deadline=None)
    def test_every_interval_assigned(self, ivs):
        assignment, n = pack_intervals(ivs)
        assert sorted(assignment) == list(range(len(ivs)))
        assert all(0 <= t < n for t in assignment.values())

    @given(interval_lists())
    @settings(max_examples=100, deadline=None)
    def test_permutation_invariant_count(self, ivs):
        """The optimal count is order-independent."""
        _, n1 = pack_intervals(ivs)
        _, n2 = pack_intervals(list(reversed(ivs)))
        assert n1 == n2
