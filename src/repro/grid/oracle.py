"""Brute-force reference validator (testing oracle).

:func:`repro.grid.validate.validate_layout` uses line sweeps and
structural indexes for speed; this module re-implements the multilayer
grid model's rules the *obvious* way -- enumerate every occupied 3-D
grid edge and node into hash maps and look for collisions.  It is
quadratically slower but so simple it can serve as an independent
oracle: property tests run both over random layouts and require
identical verdicts.

The *rule logic* stays naive; only the geometry expansion (unit grid
edges and covered points per wire) is read from the layout's
:class:`~repro.grid.table.WireTable`, which enumerates in exactly the
order the hand-rolled loops did.  The table is itself parity-tested
against the object path, so the oracle's independence from the fast
validator's sweep structures is preserved.

Occupancy rules enumerated here (Section 2.2's node- and edge-disjoint
embedding, with the Thompson crossing allowance):

* every unit planar edge (x,y,l)-(x+1,y,l) or (x,y,l)-(x,y+1,l) is
  used by at most one wire;
* every unit z edge (x,y,l)-(x,y,l+1) -- from vias, layer-spanning
  turns and risers -- is used by at most one wire;
* a grid *point* may be shared by two wires only if neither turns or
  changes layer there (crossing allowed, knock-knee not);
* wires stay clear of node interiors on the node's active layer, and
  node footprints on one layer are interior-disjoint.
"""

from __future__ import annotations

from collections import defaultdict

from repro.grid.layout import GridLayout

__all__ = ["oracle_validate", "OracleViolation"]


class OracleViolation(AssertionError):
    """A rule violation found by the brute-force oracle."""


def _wire_z_edges(table, wi):
    for (pt, zlo, zhi) in table.wire_zruns(wi):
        x, y = pt
        for z in range(zlo, zhi):
            yield ((x, y, z), (x, y, z + 1))


def _wire_turn_points(w):
    """Planar points where the wire turns or changes layer, with the
    layer set it occupies there."""
    if w.riser is not None:
        x, y, zlo, zhi = w.riser
        yield ((x, y), set(range(zlo, zhi + 1)))
        return
    pts = w.path_points()
    for i in range(len(w.segments) - 1):
        s1, s2 = w.segments[i], w.segments[i + 1]
        lo = min(s1.layer, s2.layer)
        hi = max(s1.layer, s2.layer)
        yield (pts[i + 1].planar(), set(range(lo, hi + 1)))


def oracle_validate(layout: GridLayout) -> None:
    """Raise :class:`OracleViolation` on the first broken rule."""
    table = layout.wire_table()
    # 1. Unit-edge exclusivity (planar and z).  Planar re-use is
    # illegal even within one wire (rule 6: a wire may not overlap
    # itself -- the fast validator's sweep rejects it owner-blind);
    # same-wire z re-use mirrors the fast validator's bend rule, which
    # only compares distinct wires.
    edge_owner: dict[tuple, int] = {}
    for wi, w in enumerate(layout.wires):
        for e in table.wire_unit_edges(wi):
            prev = edge_owner.get(e)
            if prev == wi:
                raise OracleViolation(
                    f"wire {w.u}-{w.v} overlaps itself on grid edge {e}"
                )
            if prev is not None:
                a, b = layout.wires[prev], layout.wires[wi]
                raise OracleViolation(
                    f"grid edge {e} used by wires {a.u}-{a.v} and {b.u}-{b.v}"
                )
            edge_owner[e] = wi
        for e in _wire_z_edges(table, wi):
            prev = edge_owner.get(e)
            if prev is not None and prev != wi:
                a, b = layout.wires[prev], layout.wires[wi]
                raise OracleViolation(
                    f"grid edge {e} used by wires {a.u}-{a.v} and {b.u}-{b.v}"
                )
            edge_owner[e] = wi

    # 2. Turn/via point exclusivity by occupied layer sets.
    point_claims: dict[tuple, list[tuple[set, int]]] = defaultdict(list)
    for wi, w in enumerate(layout.wires):
        for pt, layers in _wire_turn_points(w):
            for (other_layers, owner) in point_claims[pt]:
                if owner != wi and layers & other_layers:
                    a, b = layout.wires[owner], layout.wires[wi]
                    raise OracleViolation(
                        f"turn/via conflict at {pt}: {a.u}-{a.v} vs "
                        f"{b.u}-{b.v} on layers {sorted(layers & other_layers)}"
                    )
            point_claims[pt].append((layers, wi))
    # 2b. A via's interior layers also exclude straight traversals.
    point_on_layer: dict[tuple, set[int]] = defaultdict(set)
    for wi in range(table.num_wires):
        for key in table.wire_cover_points(wi):
            point_on_layer[key].add(wi)
    for wi, w in enumerate(layout.wires):
        for (pt, zlo, zhi) in table.wire_zruns(wi):
            for z in range(zlo + 1, zhi):
                owners = point_on_layer.get((pt[0], pt[1], z), set()) - {wi}
                if owners:
                    other = layout.wires[next(iter(owners))]
                    raise OracleViolation(
                        f"via of {w.u}-{w.v} at {pt} pierced on layer {z} "
                        f"by {other.u}-{other.v}"
                    )

    # 3. Node interference (per active layer).
    cells: dict[tuple, object] = {}
    for p in layout.placements.values():
        r = p.rect
        for x in range(r.x0, r.x1):
            for y in range(r.y0, r.y1):
                key = (x, y, p.layer)
                if key in cells:
                    raise OracleViolation(
                        f"nodes {cells[key]!r} and {p.node!r} overlap at "
                        f"{key}"
                    )
                cells[key] = p.node
    # A wire edge inside a node's interior on its layer: both endpoints
    # of the unit edge strictly inside, or the edge crossing interior.
    interiors: set[tuple] = set()
    for p in layout.placements.values():
        r = p.rect
        for x in range(r.x0 + 1, r.x1):
            for y in range(r.y0 + 1, r.y1):
                interiors.add((x, y, p.layer))
    for wi, w in enumerate(layout.wires):
        for (x, y, layer) in table.wire_cover_points(wi):
            if (x, y, layer) in interiors:
                raise OracleViolation(
                    f"wire {w.u}-{w.v} enters a node interior at "
                    f"({x}, {y}, layer {layer})"
                )
