"""Indirect swap networks (Section 4.3, ref. [35]).

Reference [35] (where ISNs are defined) is unavailable; the paper uses
exactly one structural fact about them: an R x R ISN partitions into
``r (log2 R + o(log R))``-node clusters whose quotient is a generalized
hypercube with **two** links between neighboring clusters -- half the
butterfly's four -- which is why its area is ~4x smaller and its wire
length ~2x shorter than a same-size butterfly.

We therefore build the ISN as the butterfly-like indirect network in
which each level-i cross *pair* of rows is joined by a single cross
edge (from the row whose bit i is 0) instead of the butterfly's two.
With the same row-pair clustering as the butterfly, the quotient is the
binary hypercube with multiplicity 2, reproducing the paper's factor-4
area and factor-2 wire-length relations exactly.  This substitution is
recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Edge, Network, Node
from repro.topology.partition import Partition

__all__ = ["IndirectSwapNetwork"]


class IndirectSwapNetwork(Network):
    """Butterfly-like network with one cross edge per level/row-pair."""

    def __init__(self, m: int):
        if m < 1:
            raise ValueError("m >= 1")
        self.m = m
        self.rows = 1 << m
        self.levels = m + 1
        self.name = f"ISN(m={m})"

    def _build_nodes(self) -> Sequence[Node]:
        return [
            (lvl, row) for row in range(self.rows) for lvl in range(self.levels)
        ]

    def _build_edges(self) -> Sequence[Edge]:
        edges: list[Edge] = []
        for row in range(self.rows):
            for lvl in range(self.m):
                edges.append(((lvl, row), (lvl + 1, row)))  # straight
                if not (row >> lvl) & 1:  # one cross edge per pair
                    edges.append(((lvl, row), (lvl + 1, row ^ (1 << lvl))))
        return edges

    def row_pair_partition(self) -> Partition:
        """Same clustering as :meth:`Butterfly.row_pair_partition`;
        yields quotient multiplicity 2 instead of 4."""
        if self.m < 2:
            raise ValueError("row-pair partition needs m >= 2")
        mapping = {(lvl, row): row >> 1 for (lvl, row) in self.nodes}
        return Partition(mapping, name="isn-row-pairs")
