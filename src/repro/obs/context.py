"""Trace context propagation and request-level telemetry.

Zero-dependency W3C-traceparent-style context: a ``TraceContext``
carries a 128-bit trace id, a 64-bit span id, and a sampling
decision across process and machine boundaries.  The wire format is
the familiar ``00-<trace_id>-<span_id>-<flags>`` string carried in
the ``x-repro-trace`` header (see ``repro.serve.protocol``).

Two more pieces live here because every layer of the stack needs
them and none may import anything heavy:

* ``RequestTrace`` -- an *explicit* span-tree builder for contexts
  where the thread-local collector in ``repro.obs.trace`` cannot be
  used (the asyncio server multiplexes many requests on one thread,
  so nesting through the global stack would interleave strangers).
* ``RequestLog`` -- a tail-sampling ring buffer of completed
  requests: a bounded window of recent traffic that *always* retains
  errors and the slowest decile, so "why was p99 high" has an answer
  after the fact.

Everything here is stdlib-only and safe to import from anywhere.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from .trace import SpanRecord

TRACEPARENT_VERSION = "00"

_FLAG_SAMPLED = 0x01


def _hex_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """An immutable trace-context record.

    ``trace_id`` is 32 lowercase hex chars, ``span_id`` 16; the pair
    plus the sampling flag round-trips through ``to_traceparent``.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def child(self) -> "TraceContext":
        """A new context in the same trace with a fresh span id."""
        return TraceContext(self.trace_id, _hex_id(8), self.sampled)

    def to_traceparent(self) -> str:
        flags = _FLAG_SAMPLED if self.sampled else 0
        return (
            f"{TRACEPARENT_VERSION}-{self.trace_id}"
            f"-{self.span_id}-{flags:02x}"
        )

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceContext":
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=str(data.get("span_id") or _hex_id(8)),
            sampled=bool(data.get("sampled", True)),
        )


def new_context(sampled: bool = True) -> TraceContext:
    """A fresh root context with random trace and span ids."""
    return TraceContext(_hex_id(16), _hex_id(8), sampled)


def _is_hex(text: str) -> bool:
    try:
        int(text, 16)
    except ValueError:
        return False
    return True


def parse_traceparent(text: Optional[str]) -> Optional[TraceContext]:
    """Parse a traceparent-style header; ``None`` on any malformation.

    Tolerant by design: a bad header from an old client degrades to
    "no inbound context" rather than a 4xx.
    """
    if not text:
        return None
    parts = text.strip().lower().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if len(version) != 2 or not _is_hex(version):
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id):
        return None
    if len(span_id) != 16 or not _is_hex(span_id):
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(
        trace_id, span_id, bool(int(flags, 16) & _FLAG_SAMPLED)
    )


def should_sample(rate: float, rng: Optional[random.Random] = None) -> bool:
    """Head-sampling coin flip for requests with no inbound context."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    roll = rng.random() if rng is not None else random.random()
    return roll < rate


# ---------------------------------------------------------------------------
# Current-context propagation (threads *and* asyncio tasks).

_current: contextvars.ContextVar[Optional[TraceContext]] = (
    contextvars.ContextVar("repro_trace_context", default=None)
)


def current_context() -> Optional[TraceContext]:
    return _current.get()


def set_context(ctx: Optional[TraceContext]) -> contextvars.Token:
    return _current.set(ctx)


def reset_context(token: contextvars.Token) -> None:
    with contextlib.suppress(ValueError):
        _current.reset(token)


@contextlib.contextmanager
def use_context(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    token = set_context(ctx)
    try:
        yield ctx
    finally:
        reset_context(token)


# ---------------------------------------------------------------------------
# Explicit span-tree assembly for multiplexed (asyncio) request handling.


class RequestTrace:
    """Builds one request's span tree without the thread-local stack.

    The asyncio server runs every in-flight request on the same
    thread, so ``obs.span`` would nest concurrent requests into each
    other.  ``RequestTrace`` assembles the per-request ``SpanRecord``
    tree explicitly instead; the finished root is interchangeable
    with collector-produced spans (same clock, same exporters).
    """

    def __init__(
        self, ctx: TraceContext, request_id: str,
        name: str = "serve.request", **attrs: Any,
    ) -> None:
        self.ctx = ctx
        self.request_id = request_id
        self.root = SpanRecord(
            name=name,
            attrs={
                "trace_id": ctx.trace_id,
                "request_id": request_id,
                **attrs,
            },
            start=time.perf_counter(),
        )
        self.status: Optional[int] = None
        self.error: Optional[str] = None
        self._done = False

    def annotate(self, **attrs: Any) -> None:
        self.root.attrs.update(attrs)

    @contextlib.contextmanager
    def child(self, name: str, **attrs: Any) -> Iterator[SpanRecord]:
        """A timed child span; safe to hold across ``await``."""
        rec = SpanRecord(
            name=name, attrs=dict(attrs), start=time.perf_counter()
        )
        try:
            yield rec
        finally:
            rec.duration = time.perf_counter() - rec.start
            self.root.children.append(rec)

    def attach(self, rec: SpanRecord) -> None:
        """Graft a prebuilt subtree (e.g. a worker forest) under root."""
        self.root.children.append(rec)

    def link(self, trace_id: str, reason: str = "coalesced") -> SpanRecord:
        """Record a link-span pointing at another trace.

        Used by coalesced followers: rather than duplicating the
        leader's build subtree, the follower's trace carries exactly
        one span whose attrs name the leader's trace id.
        """
        rec = SpanRecord(
            name="serve.link",
            attrs={"linked_trace_id": trace_id, "link": reason},
            start=time.perf_counter(),
        )
        self.root.children.append(rec)
        return rec

    def finish(self, status: int, **attrs: Any) -> SpanRecord:
        if not self._done:
            self._done = True
            self.root.duration = time.perf_counter() - self.root.start
        self.status = status
        self.root.attrs["status"] = status
        self.root.attrs.update(attrs)
        if status >= 500:
            self.error = str(attrs.get("error") or f"http {status}")
        return self.root

    @property
    def latency_ms(self) -> float:
        dur = self.root.duration
        if dur is None:
            dur = time.perf_counter() - self.root.start
        return dur * 1000.0


# ---------------------------------------------------------------------------
# Tail-sampling ring buffer of completed requests.


@dataclass
class RequestRecord:
    """One completed request as retained by ``RequestLog``."""

    request_id: str
    trace_id: str
    path: str
    status: int
    latency_ms: float
    time_unix: float
    sampled: bool = True
    source: Optional[str] = None
    error: Optional[str] = None
    attrs: dict = field(default_factory=dict)
    root: Optional[SpanRecord] = None
    seq: int = 0

    def summary(self, retained: Optional[list] = None) -> dict:
        doc = {
            "request_id": self.request_id,
            "trace_id": self.trace_id,
            "path": self.path,
            "status": self.status,
            "latency_ms": round(self.latency_ms, 3),
            "time_unix": self.time_unix,
            "sampled": self.sampled,
            "has_spans": self.root is not None,
        }
        if self.source is not None:
            doc["source"] = self.source
        if self.error is not None:
            doc["error"] = self.error
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if retained is not None:
            doc["retained"] = retained
        return doc


class RequestLog:
    """Tail-sampling retention for completed requests.

    Three overlapping pools, each bounded:

    * ``recent`` -- the last ``capacity`` requests, FIFO;
    * ``errors`` -- the last ``keep_errors`` requests with a 5xx
      status or an error annotation (never evicted by traffic);
    * ``slow`` -- the ``keep_slow`` slowest requests seen so far
      (the "slowest decile": default ``capacity // 10``).

    A request may appear in several pools; lookups dedupe.  All
    methods are thread-safe.
    """

    def __init__(
        self,
        capacity: int = 256,
        keep_errors: Optional[int] = None,
        keep_slow: Optional[int] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.capacity = max(1, int(capacity))
        self.keep_errors = (
            max(1, self.capacity // 4)
            if keep_errors is None
            else max(0, int(keep_errors))
        )
        self.keep_slow = (
            max(1, self.capacity // 10)
            if keep_slow is None
            else max(0, int(keep_slow))
        )
        self._clock = clock
        self._lock = threading.Lock()
        self._seq = 0
        self._recent: list[RequestRecord] = []
        self._errors: list[RequestRecord] = []
        self._slow: list[RequestRecord] = []
        self._added = 0
        self._dropped = 0

    def add(self, record: RequestRecord) -> None:
        with self._lock:
            self._seq += 1
            record.seq = self._seq
            if not record.time_unix:
                record.time_unix = self._clock()
            self._added += 1
            self._recent.append(record)
            if len(self._recent) > self.capacity:
                evicted = self._recent.pop(0)
                if not self._retained_elsewhere(evicted):
                    self._dropped += 1
            if self.keep_errors and (
                record.status >= 500 or record.error is not None
            ):
                self._errors.append(record)
                if len(self._errors) > self.keep_errors:
                    self._errors.pop(0)
            if self.keep_slow:
                self._slow.append(record)
                self._slow.sort(
                    key=lambda r: (-r.latency_ms, -r.seq)
                )
                del self._slow[self.keep_slow:]

    def _retained_elsewhere(self, record: RequestRecord) -> bool:
        return any(
            r.seq == record.seq for r in self._errors
        ) or any(r.seq == record.seq for r in self._slow)

    def _pools(self, record: RequestRecord) -> list:
        tags = []
        if any(r.seq == record.seq for r in self._recent):
            tags.append("recent")
        if any(r.seq == record.seq for r in self._errors):
            tags.append("error")
        if any(r.seq == record.seq for r in self._slow):
            tags.append("slow")
        return tags

    def _all_records(self) -> list[RequestRecord]:
        seen: dict[int, RequestRecord] = {}
        for rec in self._recent + self._errors + self._slow:
            seen[rec.seq] = rec
        return sorted(seen.values(), key=lambda r: -r.seq)

    def requests(self, limit: Optional[int] = None) -> list[dict]:
        """Retained requests, newest first, tagged with their pools."""
        with self._lock:
            docs = [
                rec.summary(retained=self._pools(rec))
                for rec in self._all_records()
            ]
        if limit is not None:
            docs = docs[: max(0, int(limit))]
        return docs

    def find(self, ident: str) -> Optional[RequestRecord]:
        """Look up by trace id or request id."""
        if not ident:
            return None
        with self._lock:
            for rec in self._all_records():
                if ident in (rec.trace_id, rec.request_id):
                    return rec
        return None

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "keep_errors": self.keep_errors,
                "keep_slow": self.keep_slow,
                "added": self._added,
                "dropped": self._dropped,
                "retained": len(self._all_records()),
                "errors_retained": len(self._errors),
            }
