"""Hand-rolled HTTP/1.1 framing for the layout server and loadgen.

Like every other transport layer in this repo (structured logs,
heartbeats, Prometheus exposition) the serving protocol is
zero-dependency: requests and responses are parsed and written
directly over :mod:`asyncio` stream pairs.  The subset implemented is
exactly what the JSON service needs --

* request line + headers + ``Content-Length`` bodies (no trailers,
  no multipart, no TLS);
* keep-alive by default (HTTP/1.1 semantics): a connection serves
  requests until the client sends ``Connection: close`` or EOF;
* ``Transfer-Encoding: chunked`` responses for the JSONL progress
  streams of large sweep requests (each chunk is one complete JSON
  line, so consumers can parse incrementally);
* a tiny :class:`HttpError` carrying a status code and a JSON-able
  message, raised anywhere in a handler and rendered uniformly.

Both sides of the wire live here so the server, the load generator,
and the tests share one framing implementation.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "CLIENT_HEADER",
    "DEFAULT_MAX_BODY",
    "MAX_HEADER_BYTES",
    "SERVE_SCHEMA",
    "TRACE_HEADER",
    "ChunkedJsonWriter",
    "HttpError",
    "HttpRequest",
    "http_request",
    "json_body",
    "read_request",
    "read_response",
    "send_json",
    "send_response",
]

SERVE_SCHEMA = "repro.serve/v1"

#: Parse limits: a request head (line + headers) beyond this is a 400,
#: a declared body beyond ``max_body`` is a 413.
MAX_HEADER_BYTES = 32 * 1024
DEFAULT_MAX_BODY = 16 * 1024 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Header naming the requesting client for per-client quotas; absent
#: clients share one ``"anonymous"`` bucket.
CLIENT_HEADER = "x-repro-client"

#: W3C-traceparent-style trace context header
#: (``00-<32hex trace>-<16hex span>-<2hex flags>``); parsed with
#: :func:`repro.obs.context.parse_traceparent`.  Malformed values
#: degrade to "no inbound context", never a 4xx.
TRACE_HEADER = "x-repro-trace"


class HttpError(Exception):
    """An HTTP failure a handler wants rendered as a JSON error body."""

    def __init__(
        self, status: int, message: str, *, retry_after: float | None = None
    ):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


@dataclass
class HttpRequest:
    """One parsed request: line, lower-cased headers, raw body."""

    method: str
    target: str
    path: str
    query: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The body as a JSON object (400 on anything else)."""
        if not self.body:
            return {}
        try:
            doc = json.loads(self.body)
        except ValueError as exc:
            raise HttpError(400, f"request body is not JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise HttpError(400, "request body must be a JSON object")
        return doc

    @property
    def client_id(self) -> str:
        return str(self.headers.get(CLIENT_HEADER) or "anonymous")

    @property
    def wants_close(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int = DEFAULT_MAX_BODY
) -> HttpRequest | None:
    """Parse one request; ``None`` on a clean EOF between requests."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(400, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_s = headers.get("content-length", "0")
    try:
        length = int(length_s)
    except ValueError:
        raise HttpError(400, f"bad Content-Length: {length_s!r}") from None
    if length < 0:
        raise HttpError(400, f"bad Content-Length: {length_s!r}")
    if length > max_body:
        raise HttpError(413, f"request body over {max_body} bytes")
    body = await reader.readexactly(length) if length else b""
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=unquote(split.path),
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def json_body(obj) -> bytes:
    return (json.dumps(obj, sort_keys=True) + "\n").encode()


def _head(
    status: int,
    *,
    content_type: str,
    content_length: int | None,
    chunked: bool = False,
    retry_after: float | None = None,
    close: bool = False,
) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}", f"Content-Type: {content_type}"]
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    elif content_length is not None:
        lines.append(f"Content-Length: {content_length}")
    if retry_after is not None:
        lines.append(f"Retry-After: {max(0, int(retry_after + 0.999))}")
    lines.append(f"Connection: {'close' if close else 'keep-alive'}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    *,
    content_type: str = "text/plain; charset=utf-8",
    retry_after: float | None = None,
    close: bool = False,
) -> None:
    writer.write(
        _head(
            status,
            content_type=content_type,
            content_length=len(body),
            retry_after=retry_after,
            close=close,
        )
        + body
    )
    await writer.drain()


async def send_json(
    writer: asyncio.StreamWriter,
    status: int,
    obj,
    *,
    retry_after: float | None = None,
    close: bool = False,
) -> None:
    await send_response(
        writer,
        status,
        json_body(obj),
        content_type="application/json",
        retry_after=retry_after,
        close=close,
    )


class ChunkedJsonWriter:
    """A chunked JSONL response: one JSON document per chunk/line.

    The sweep endpoint streams progress through this -- each
    :meth:`send` is one complete JSON line flushed as one HTTP chunk,
    so a client can parse the stream incrementally while jobs are
    still running.
    """

    def __init__(self, writer: asyncio.StreamWriter):
        self._writer = writer
        self._started = False

    async def start(self, status: int = 200) -> None:
        if self._started:
            return
        self._started = True
        self._writer.write(
            _head(
                status,
                content_type="application/jsonl",
                content_length=None,
                chunked=True,
            )
        )
        await self._writer.drain()

    async def send(self, obj) -> None:
        if not self._started:
            await self.start()
        chunk = json_body(obj)
        self._writer.write(
            f"{len(chunk):x}\r\n".encode("latin-1") + chunk + b"\r\n"
        )
        await self._writer.drain()

    async def finish(self) -> None:
        if not self._started:
            await self.start()
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()


# ---------------------------------------------------------------------------
# client side (loadgen + tests)


async def read_response(
    reader: asyncio.StreamReader, *, max_body: int = DEFAULT_MAX_BODY
) -> tuple[int, dict, bytes]:
    """``(status, headers, body)`` for one response.

    Handles ``Content-Length`` bodies and ``chunked`` transfer
    encoding (the two framings the server emits); a missing length
    means read-to-EOF, the HTTP/1.0 fallback.
    """
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ValueError(f"malformed status line: {lines[0]!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding", "").lower() == "chunked":
        body = bytearray()
        while True:
            size_line = await reader.readuntil(b"\r\n")
            size = int(size_line.strip().split(b";")[0], 16)
            if size == 0:
                await reader.readuntil(b"\r\n")
                break
            if len(body) + size > max_body:
                raise ValueError("chunked response too large")
            body += await reader.readexactly(size)
            await reader.readexactly(2)  # trailing CRLF
        return status, headers, bytes(body)
    if "content-length" in headers:
        length = int(headers["content-length"])
        if length > max_body:
            raise ValueError("response body too large")
        return status, headers, await reader.readexactly(length)
    return status, headers, await reader.read(max_body)


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    *,
    body: dict | None = None,
    headers: dict | None = None,
    timeout: float = 60.0,
) -> tuple[int, dict, bytes]:
    """One-shot request on a fresh connection (tests, simple scripts).

    The load generator keeps its own persistent connections; this
    helper trades efficiency for convenience.
    """

    async def _go():
        reader, writer = await asyncio.open_connection(host, port)
        try:
            payload = json_body(body) if body is not None else b""
            head = [
                f"{method} {path} HTTP/1.1",
                f"Host: {host}:{port}",
                f"Content-Length: {len(payload)}",
                "Connection: close",
            ]
            if body is not None:
                head.append("Content-Type: application/json")
            for name, value in (headers or {}).items():
                head.append(f"{name}: {value}")
            writer.write(
                ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload
            )
            await writer.drain()
            return await read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return await asyncio.wait_for(_go(), timeout)
