"""Replay a request trace against a layout server, report percentiles.

``python -m repro loadgen`` drives :mod:`repro.serve.server` the way
the routing simulator drives a network: from a **trace**.  The file
format is exactly :func:`repro.routing.traffic.save_trace`'s JSONL --
one ``[a, b, start]`` row per line -- reinterpreted for serving as
``[network_spec, layers, start_cycle]``::

    ["hypercube:3", 2, 0]
    ["ring:8", 4, 1]

so traces are generated, saved, loaded, and versioned with the same
tooling as routing workloads.  ``start_cycle`` maps to wall-clock via
``--cycle-s`` (0 = closed-loop replay: every connection fires its
next request the moment the previous answer lands).

Latencies land in a :class:`repro.obs.metrics.Histogram`
(``loadgen.latency_ms``), so the p50/p90/p99 in the report come from
the same bucket-interpolated estimator as every other percentile in
this repo -- and flow through ``--metrics-out`` / ``--trace-out``
like any other run.  Requests answered 429/503 honor ``Retry-After``
and are retried a bounded number of times; the *final* status of each
row is what the report counts.
"""

from __future__ import annotations

import asyncio
import json
import random
import time

from repro import obs
from repro.obs import context as ocontext
from repro.obs import logging as olog
from repro.serve.protocol import (
    CLIENT_HEADER,
    TRACE_HEADER,
    json_body,
    read_response,
)

__all__ = [
    "DEFAULT_SLOWEST",
    "LOADGEN_SCHEMA",
    "run_loadgen",
    "synth_rows",
]

LOADGEN_SCHEMA = "repro.loadgen/v1"

#: Millisecond buckets fine enough that sub-ms cache hits and
#: multi-second builds both resolve to meaningful percentiles.
LATENCY_BOUNDS_MS = (
    0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 125, 250, 500,
    1000, 2000, 4000, 8000, 16000,
)

HIST_NAME = "loadgen.latency_ms"

#: How many of the slowest requests the report names by id.
DEFAULT_SLOWEST = 5


def synth_rows(
    networks: list[str],
    n: int,
    *,
    layers: tuple[int, ...] = (2, 4),
    seed: int = 0,
) -> list[tuple[str, int, int]]:
    """``n`` synthetic request rows over ``networks`` x ``layers``.

    Deterministic in ``seed``; repeated keys are the norm (that is the
    point -- a serving workload re-asks popular questions, which is
    what exercises the cache and the coalescer).
    """
    rng = random.Random(seed)
    return [
        (rng.choice(networks), rng.choice(list(layers)), i)
        for i in range(n)
    ]


class _Conn:
    """One persistent keep-alive connection, reopened on error."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None

    async def _ensure(self) -> None:
        if self.writer is None or self.writer.is_closing():
            self.reader, self.writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def request(
        self, path: str, body: dict, headers: dict
    ) -> tuple[int, dict, bytes]:
        await self._ensure()
        assert self.reader is not None and self.writer is not None
        payload = json_body(body)
        head = [
            f"POST {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
        ]
        for name, value in headers.items():
            head.append(f"{name}: {value}")
        self.writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload
        )
        await self.writer.drain()
        return await read_response(self.reader)

    async def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self.writer = None


async def _replay(
    host: str,
    port: int,
    rows: list,
    *,
    concurrency: int,
    cycle_s: float,
    client_id: str,
    scheme: str,
    timeout: float,
    retries: int,
    slowest: int,
) -> dict:
    hist = obs.registry().histogram(HIST_NAME, LATENCY_BOUNDS_MS)
    status_counts: dict[int, int] = {}
    final: list[int] = []
    samples: list[dict] = []
    retried = 0
    queue: asyncio.Queue = asyncio.Queue()
    for row in rows:
        queue.put_nowait(row)
    t0 = time.perf_counter()

    async def slot(slot_id: int) -> None:
        nonlocal retried
        conn = _Conn(host, port)
        headers = {CLIENT_HEADER: f"{client_id}-{slot_id}"}
        try:
            while True:
                try:
                    network, layers, start = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                if cycle_s > 0:
                    due = t0 + float(start) * cycle_s
                    delay = due - time.perf_counter()
                    if delay > 0:
                        await asyncio.sleep(delay)
                body = {
                    "network": str(network),
                    "scheme": scheme,
                    "layers": int(layers),
                }
                status = 0
                for attempt in range(retries + 1):
                    # Every attempt gets its own trace context: the
                    # server reroots its spans under this trace id,
                    # so a slow sample links straight to a
                    # /debug/trace/<id> document.
                    ctx = ocontext.new_context()
                    sent = time.perf_counter()
                    try:
                        status, resp_headers, resp_body = (
                            await asyncio.wait_for(
                                conn.request(
                                    "/v1/layout",
                                    body,
                                    {
                                        **headers,
                                        TRACE_HEADER: ctx.to_traceparent(),
                                    },
                                ),
                                timeout,
                            )
                        )
                    except (
                        ConnectionError,
                        asyncio.IncompleteReadError,
                        asyncio.TimeoutError,
                        OSError,
                        ValueError,
                    ) as exc:
                        await conn.close()
                        status = 0
                        olog.warning(
                            "loadgen.transport_error",
                            slot=slot_id,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                        continue
                    status_counts[status] = (
                        status_counts.get(status, 0) + 1
                    )
                    if status == 200:
                        latency_ms = (
                            time.perf_counter() - sent
                        ) * 1000.0
                        hist.observe(latency_ms, exemplar=ctx.trace_id)
                        try:
                            doc = json.loads(resp_body)
                        except ValueError:
                            doc = {}
                        samples.append(
                            {
                                "latency_ms": round(latency_ms, 3),
                                "network": str(network),
                                "layers": int(layers),
                                "request_id": doc.get("request_id"),
                                "trace_id": doc.get(
                                    "trace_id", ctx.trace_id
                                ),
                                "source": doc.get("source"),
                            }
                        )
                        break
                    if status in (429, 503) and attempt < retries:
                        retried += 1
                        try:
                            backoff = float(
                                resp_headers.get("retry-after", "0.1")
                            )
                        except ValueError:
                            backoff = 0.1
                        await asyncio.sleep(min(max(backoff, 0.05), 5.0))
                        continue
                    break
                final.append(status)
        finally:
            await conn.close()

    await asyncio.gather(
        *(slot(i) for i in range(max(1, concurrency)))
    )
    elapsed = time.perf_counter() - t0
    ok = sum(1 for s in final if s == 200)
    five_xx = sum(1 for s in final if s >= 500)
    latency = {
        "count": hist.count,
        "p50": round(hist.percentile(0.50), 3) if hist.count else None,
        "p90": round(hist.percentile(0.90), 3) if hist.count else None,
        "p99": round(hist.percentile(0.99), 3) if hist.count else None,
        "mean": (
            round(hist.total / hist.count, 3) if hist.count else None
        ),
        "min": round(hist.min, 3) if hist.min is not None else None,
        "max": round(hist.max, 3) if hist.max is not None else None,
    }
    # Slowest-N by latency: the report names the exact requests
    # behind a bad p99, with the server-assigned request id and the
    # source (cold build vs coalesced vs cache) of each.
    slow = sorted(
        samples, key=lambda s: -s["latency_ms"]
    )[: max(0, slowest)]
    return {
        "schema": LOADGEN_SCHEMA,
        "target": f"{host}:{port}",
        "requests": len(rows),
        "completed": len(final),
        "ok": ok,
        "five_xx": five_xx,
        "retried": retried,
        "status": {
            str(k): v for k, v in sorted(status_counts.items())
        },
        "concurrency": max(1, concurrency),
        "latency_ms": latency,
        "slowest": slow,
        "elapsed_s": round(elapsed, 4),
        "rps": round(len(final) / elapsed, 2) if elapsed > 0 else None,
    }


def run_loadgen(
    host: str,
    port: int,
    rows: list,
    *,
    concurrency: int = 1,
    cycle_s: float = 0.0,
    client_id: str = "loadgen",
    scheme: str = "auto",
    timeout: float = 60.0,
    retries: int = 3,
    slowest: int = DEFAULT_SLOWEST,
) -> dict:
    """Replay ``rows`` and return the latency/status report document.

    Enables :mod:`repro.obs` collection for the replay if it is not
    already on, so the ``loadgen.latency_ms`` histogram always exists
    for the report (and for ``--metrics-out``).  Each request carries
    a fresh ``x-repro-trace`` context; the report's ``slowest`` list
    names the ``slowest``-N requests by server-assigned request id,
    trace id, and source.
    """
    enabled_here = not obs.enabled()
    if enabled_here:
        obs.enable()
    try:
        report = asyncio.run(
            _replay(
                host,
                port,
                list(rows),
                concurrency=concurrency,
                cycle_s=cycle_s,
                client_id=client_id,
                scheme=scheme,
                timeout=timeout,
                retries=retries,
                slowest=slowest,
            )
        )
    finally:
        if enabled_here:
            # Leave the registry intact (the caller may export it);
            # just stop collecting.
            obs.disable()
    olog.info(
        "loadgen.done",
        requests=report["requests"],
        ok=report["ok"],
        five_xx=report["five_xx"],
        p99_ms=report["latency_ms"]["p99"],
    )
    return report
