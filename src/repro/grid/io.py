"""Layout serialization: GridLayout <-> JSON.

Layouts are plain geometric data, so they round-trip exactly.  Node
labels are arbitrary hashables in memory; serialization encodes the
common cases (ints, strings, and arbitrarily nested tuples of those)
with a type tag so deserialization restores identical labels.
"""

from __future__ import annotations

import json
from typing import Hashable

from repro.grid.geometry import Rect, Segment
from repro.grid.layout import GridLayout
from repro.grid.wire import Wire

__all__ = [
    "FORMAT_VERSION",
    "layout_to_json",
    "layout_from_json",
    "dump_layout",
    "load_layout",
    "clone_layout",
    "encode_label",
    "decode_label",
    "canonical_json",
]

FORMAT_VERSION = 1


def canonical_json(doc) -> str:
    """The canonical JSON form of ``doc``: sorted keys, no whitespace.

    The one serialization the content-addressed cache hashes, so two
    structurally equal documents always produce the same key.
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _encode_label(label: Hashable):
    if isinstance(label, bool) or label is None:
        raise TypeError(f"unsupported node label: {label!r}")
    if isinstance(label, (int, str)):
        return label
    if isinstance(label, tuple):
        return {"t": [_encode_label(x) for x in label]}
    raise TypeError(f"unsupported node label type: {type(label).__name__}")


def _decode_label(obj):
    if isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, dict) and set(obj) == {"t"}:
        return tuple(_decode_label(x) for x in obj["t"])
    raise ValueError(f"bad label encoding: {obj!r}")


def _encode_edge_key(key):
    try:
        return _encode_label(key)
    except TypeError:
        return {"r": repr(key)}


def _decode_edge_key(obj):
    if isinstance(obj, dict) and set(obj) == {"r"}:
        return obj["r"]
    return _decode_label(obj)


# Public names for the label codec: the content-addressed cache and
# the fuzzer's counterexample corpus both fingerprint networks with
# exactly the encoding layouts serialize labels with, so key documents
# stay comparable to stored layouts across format versions.
encode_label = _encode_label
decode_label = _decode_label


def layout_to_json(layout: GridLayout) -> str:
    """Serialize a layout to a JSON string.

    Segment rows come from the layout's cached
    :class:`~repro.grid.table.WireTable` -- the arrays store segments
    in exactly the per-wire order the object path would serialize, so
    the emitted JSON is byte-identical to walking ``w.segments``.
    """
    table = layout.wire_table()
    seg_rows = table.segment_rows()
    starts = table.wire_seg_start
    doc = {
        "format": FORMAT_VERSION,
        "layers": layout.layers,
        "meta": _jsonable_meta(layout.meta),
        "placements": [
            {
                "node": _encode_label(p.node),
                "rect": [p.rect.x0, p.rect.y0, p.rect.w, p.rect.h],
                "layer": p.layer,
            }
            for p in layout.placements.values()
        ],
        "wires": [
            {
                "u": _encode_label(w.u),
                "v": _encode_label(w.v),
                "edge_key": _encode_edge_key(w.edge_key),
                "segments": seg_rows[int(starts[wi]):int(starts[wi + 1])],
                **({"riser": list(w.riser)} if w.riser is not None else {}),
            }
            for wi, w in enumerate(layout.wires)
        ],
    }
    return json.dumps(doc)


def _jsonable_meta(meta: dict) -> dict:
    out = {}
    for k, v in meta.items():
        try:
            json.dumps(v)
        except (TypeError, ValueError):
            v = repr(v)
        out[str(k)] = v
    return out


def layout_from_json(text: str) -> GridLayout:
    """Deserialize a layout produced by :func:`layout_to_json`."""
    doc = json.loads(text)
    if doc.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported layout format: {doc.get('format')!r}")
    layout = GridLayout(layers=doc["layers"])
    layout.meta.update(doc.get("meta", {}))
    for p in doc["placements"]:
        x0, y0, w, h = p["rect"]
        layout.place(
            _decode_label(p["node"]), Rect(x0, y0, w, h), layer=p.get("layer", 1)
        )
    for w in doc["wires"]:
        segments = [
            Segment(x1, y1, x2, y2, layer)
            for (x1, y1, x2, y2, layer) in w["segments"]
        ]
        riser = tuple(w["riser"]) if "riser" in w else None
        layout.add_wire(
            Wire(
                _decode_label(w["u"]),
                _decode_label(w["v"]),
                segments,
                edge_key=_decode_edge_key(w["edge_key"]),
                riser=riser,
            )
        )
    return layout


def clone_layout(layout: GridLayout) -> GridLayout:
    """An independent deep copy, via the JSON round-trip.

    The serialization is exact for every layout the library builds, so
    this is the canonical way to get a mutable copy (the mutation
    harness in :mod:`repro.check` corrupts clones, never originals).
    """
    return layout_from_json(layout_to_json(layout))


def dump_layout(layout: GridLayout, path) -> None:
    """Write a layout to a JSON file."""
    with open(path, "w") as fh:
        fh.write(layout_to_json(layout))


def load_layout(path) -> GridLayout:
    """Read a layout from a JSON file."""
    with open(path) as fh:
        return layout_from_json(fh.read())
