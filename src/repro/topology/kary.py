"""Rings, meshes and k-ary n-cubes (Section 3.1).

Nodes of a k-ary n-cube are digit tuples ``(d_{n-1}, ..., d_0)`` with
``0 <= d_i < k``; two nodes are adjacent iff they differ by +-1 (mod k,
for the torus) in exactly one digit.  A ring is the n = 1 case, a mesh
the wraparound-free variant.
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Edge, Network, Node

__all__ = ["Ring", "Mesh", "KAryNCube"]


class KAryNCube(Network):
    """The k-ary n-cube (torus) or mesh.

    Parameters
    ----------
    k:
        Radix (nodes per dimension), k >= 2.
    n:
        Number of dimensions, n >= 1.
    wraparound:
        With ``False`` this is the k-ary n-mesh.  Note that for k = 2
        the wrap link would duplicate the neighbor link, so binary tori
        have a single link per dimension (they are hypercubes).
    """

    def __init__(self, k: int, n: int, *, wraparound: bool = True):
        if k < 2:
            raise ValueError("k >= 2")
        if n < 1:
            raise ValueError("n >= 1")
        self.k = k
        self.n = n
        self.wraparound = wraparound
        kind = "torus" if wraparound else "mesh"
        self.name = f"{k}-ary {n}-cube ({kind})"

    def _build_nodes(self) -> Sequence[Node]:
        out: list[tuple[int, ...]] = [()]
        for _ in range(self.n):
            out = [t + (d,) for t in out for d in range(self.k)]
        return out

    def _build_edges(self) -> Sequence[Edge]:
        k, n = self.k, self.n
        edges: list[Edge] = []
        for v in self.nodes:
            for dim in range(n):
                d = v[n - 1 - dim]  # tuple index of digit `dim`
                if d + 1 < k:
                    w = v[: n - 1 - dim] + (d + 1,) + v[n - dim :]
                    edges.append((v, w))
                elif self.wraparound and k > 2:
                    w = v[: n - 1 - dim] + (0,) + v[n - dim :]
                    edges.append((w, v))
        return edges

    def dimension_of_edge(self, u: Node, v: Node) -> int:
        """The (single) dimension in which u and v differ."""
        diffs = [i for i in range(self.n) if u[i] != v[i]]
        if len(diffs) != 1:
            raise ValueError(f"not a k-ary edge: {u} {v}")
        return self.n - 1 - diffs[0]


class Mesh(KAryNCube):
    """The k-ary n-mesh: a k-ary n-cube without wraparound links."""

    def __init__(self, k: int, n: int):
        super().__init__(k, n, wraparound=False)


class Ring(Network):
    """A k-node ring with integer labels (the k-ary 1-cube)."""

    def __init__(self, k: int):
        if k < 3:
            raise ValueError("a ring needs k >= 3")
        self.k = k
        self.name = f"{k}-ring"

    def _build_nodes(self) -> Sequence[Node]:
        return list(range(self.k))

    def _build_edges(self) -> Sequence[Edge]:
        edges = [(i, i + 1) for i in range(self.k - 1)]
        edges.append((0, self.k - 1))
        return edges
