"""Admission control for the layout server: quotas + in-flight gate.

Two independent mechanisms guard the daemon:

* :class:`QuotaManager` -- one :class:`TokenBucket` per client id
  (the ``X-Repro-Client`` request header), refilled continuously at
  ``rate`` tokens/second up to ``burst``.  A layout request costs one
  token; a sweep request costs one token **per expanded job**, so a
  client cannot smuggle a thousand builds inside one HTTP request.
  Exhausted buckets answer 429 with a ``Retry-After`` hint.
* :class:`AdmissionGate` -- a global cap on concurrently admitted
  requests.  Past the cap the server answers 503 immediately instead
  of queueing unboundedly; the client is expected to back off and
  retry (the load generator does).

Both take an injectable monotonic clock so tests drive time instead
of sleeping.
"""

from __future__ import annotations

import threading
import time

__all__ = ["AdmissionGate", "QuotaManager", "TokenBucket"]

#: Buckets for clients idle longer than this are pruned (their bucket
#: would have refilled to burst anyway, so forgetting them is exact).
PRUNE_AFTER_S = 300.0


class TokenBucket:
    """A continuously refilled token bucket."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, *, now: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def _refill(self, now: float) -> None:
        delta = max(0.0, now - self.stamp)
        self.stamp = now
        self.tokens = min(self.burst, self.tokens + delta * self.rate)

    def try_take(self, n: float, now: float) -> bool:
        self._refill(now)
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def retry_after(self, n: float) -> float:
        """Seconds until ``n`` tokens will be available (0 if now)."""
        deficit = n - self.tokens
        if deficit <= 0:
            return 0.0
        if self.rate <= 0:
            return float("inf")
        return deficit / self.rate


class QuotaManager:
    """Per-client token buckets keyed by client id.

    ``rate <= 0`` disables quota enforcement entirely (every
    :meth:`admit` succeeds) -- the default for ad-hoc local servers.
    """

    def __init__(
        self,
        *,
        rate: float = 0.0,
        burst: float = 10.0,
        clock=time.monotonic,
    ):
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def admit(self, client_id: str, cost: float = 1.0) -> tuple[bool, float]:
        """``(admitted, retry_after_s)`` for one request of ``cost``.

        A cost above ``burst`` can never be admitted; it is reported
        with an infinite retry hint so the caller can reject it as
        oversized rather than telling the client to retry.
        """
        if not self.enabled:
            return True, 0.0
        if cost > self.burst:
            return False, float("inf")
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client_id)
            if bucket is None:
                if len(self._buckets) > 1024:
                    self._prune(now)
                bucket = TokenBucket(self.rate, self.burst, now=now)
                self._buckets[client_id] = bucket
            if bucket.try_take(cost, now):
                return True, 0.0
            return False, bucket.retry_after(cost)

    def _prune(self, now: float) -> None:
        stale = [
            cid
            for cid, b in self._buckets.items()
            if now - b.stamp > PRUNE_AFTER_S
        ]
        for cid in stale:
            del self._buckets[cid]

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "rate": self.rate,
                "burst": self.burst,
                "clients": len(self._buckets),
            }


class AdmissionGate:
    """A max-in-flight counter; 0 or negative means unlimited."""

    def __init__(self, limit: int = 0):
        self.limit = int(limit)
        self._lock = threading.Lock()
        self.active = 0
        self.rejected = 0

    def try_enter(self) -> bool:
        with self._lock:
            if self.limit > 0 and self.active >= self.limit:
                self.rejected += 1
                return False
            self.active += 1
            return True

    def leave(self) -> None:
        with self._lock:
            self.active = max(0, self.active - 1)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "limit": self.limit,
                "active": self.active,
                "rejected": self.rejected,
            }
