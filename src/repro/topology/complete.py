"""Complete graphs, the building block of generalized hypercubes.

The paper's Section 4.1 layout of generalized hypercubes bottoms out in
the strictly optimal ``|N^2/4|``-track collinear layout of K_N (Figure
3, ref. [30]).
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Edge, Network, Node

__all__ = ["CompleteGraph"]


class CompleteGraph(Network):
    """K_N with integer node labels."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("N >= 1")
        self.n = n
        self.name = f"K{n}"

    def _build_nodes(self) -> Sequence[Node]:
        return list(range(self.n))

    def _build_edges(self) -> Sequence[Edge]:
        return [(i, j) for i in range(self.n) for j in range(i + 1, self.n)]
