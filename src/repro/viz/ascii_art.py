"""ASCII renderings.

``ascii_collinear`` draws a :class:`~repro.collinear.engine.CollinearLayout`
the way the paper's Figures 2-4 are drawn: a row of numbered nodes at
the bottom, tracks stacked above, each edge as a horizontal run with
two drop lines.  ``ascii_grid_layout`` draws a routed
:class:`~repro.grid.layout.GridLayout` cell-by-cell (nodes as ``#``,
wires by orientation), which is practical for small layouts and the
Figure 1 block diagram.
"""

from __future__ import annotations

from repro.collinear.engine import CollinearLayout
from repro.grid.layout import GridLayout

__all__ = ["ascii_collinear", "ascii_grid_layout"]


def ascii_collinear(
    lay: CollinearLayout, *, cell_width: int = 4, label_nodes: bool = True
) -> str:
    """Draw a collinear layout with tracks above the node row.

    Track 0 is drawn closest to the nodes (as in Figure 2); each edge
    appears as ``+----+`` on its track with ``|`` drops to its
    endpoints' positions.
    """
    n = lay.num_nodes
    width = n * cell_width
    rows = [[" "] * width for _ in range(lay.num_tracks)]

    def col(pos: int) -> int:
        return pos * cell_width + cell_width // 2

    # Deeper tracks draw first so drops from higher tracks overwrite.
    order = sorted(range(len(lay.edges)), key=lambda e: -lay.tracks[e])
    for e in order:
        lo, hi = lay.interval(e)
        t = lay.tracks[e]
        row = rows[lay.num_tracks - 1 - t]
        c1, c2 = col(lo), col(hi)
        for c in range(c1 + 1, c2):
            if row[c] == " ":
                row[c] = "-"
        row[c1] = "+"
        row[c2] = "+"
        # vertical drops to the node row
        for c in (c1, c2):
            for r in range(lay.num_tracks - t, lay.num_tracks):
                ch = rows[r][c]
                rows[r][c] = "+" if ch in "-+" else "|"

    lines = ["".join(r).rstrip() for r in rows]
    node_line = [" "] * width
    for p in range(n):
        node_line[col(p)] = "o"
    lines.append("".join(node_line).rstrip())
    if label_nodes:
        label_line = [" "] * width
        for p, v in enumerate(lay.order):
            text = _short_label(v)
            start = col(p) - len(text) // 2
            for i, ch in enumerate(text):
                j = start + i
                if 0 <= j < width:
                    label_line[j] = ch
        lines.append("".join(label_line).rstrip())
    return "\n".join(lines)


def _short_label(v) -> str:
    if isinstance(v, tuple):
        return "".join(str(x) for x in v)
    return str(v)


def ascii_grid_layout(layout: GridLayout, *, max_width: int = 400) -> str:
    """Character-per-grid-point rendering of a routed layout.

    Nodes are ``#``; horizontal wire runs ``-``; vertical runs ``|``;
    points carrying both orientations ``+``.  Layers are not
    distinguished (use the SVG renderer for that).
    """
    bb = layout.bounding_box()
    if bb.w + 1 > max_width:
        raise ValueError(
            f"layout too wide to render in ASCII ({bb.w + 1} > {max_width}); "
            "use svg_layout instead"
        )
    w, h = bb.w + 1, bb.h + 1
    grid = [[" "] * w for _ in range(h)]

    def put(x: int, y: int, ch: str) -> None:
        cur = grid[y - bb.y0][x - bb.x0]
        if cur == " ":
            grid[y - bb.y0][x - bb.x0] = ch
        elif {cur, ch} == {"-", "|"}:
            grid[y - bb.y0][x - bb.x0] = "+"

    table = layout.wire_table()
    for wi in range(table.num_wires):
        for (x, y, _layer, horiz) in table.wire_cover_point_rows(wi):
            put(x, y, "-" if horiz else "|")
    for p in layout.placements.values():
        r = p.rect
        for x in range(r.x0, r.x1 + 1):
            for y in range(r.y0, r.y1 + 1):
                grid[y - bb.y0][x - bb.x0] = "#"
    return "\n".join("".join(row).rstrip() for row in grid)
