"""Geometric folding (Section 2.2's baseline, constructed)."""

import pytest

from conftest import assert_layout_ok
from repro.core import layout_hypercube, layout_kary, measure
from repro.core.folding import fold_layout
from repro.grid.validate import check_topology, validate_layout
from repro.topology import Hypercube, KAryNCube


class TestFoldLayout:
    @pytest.mark.parametrize("L", [4, 8, 16])
    def test_hypercube_fold_legal_and_exact(self, L):
        base = layout_hypercube(8, layers=2)
        folded = fold_layout(base, L)
        validate_layout(folded, check_pins=True)
        check_topology(folded, Hypercube(8).edges)

    def test_area_divides_volume_constant(self):
        base = layout_hypercube(8, layers=2)
        mb = measure(base)
        for L in (4, 8):
            mf = measure(fold_layout(base, L))
            t = L // 2
            # Slab width: the bounding box of the source skips its
            # trailing unused channel, so allow that slack.
            assert mb.width / t <= mf.width <= mb.width / t + 2
            assert mf.height == mb.height
            # Volume within the rounding of the extra layers.
            assert mb.volume <= mf.volume <= mb.volume * 1.01

    def test_wire_lengths_exactly_preserved(self):
        base = layout_hypercube(8, layers=2)
        folded = fold_layout(base, 8)
        assert folded.total_wire_length() == base.total_wire_length()
        assert folded.max_wire_length() == base.max_wire_length()

    def test_wire_multiset_preserved(self):
        base = layout_kary(4, 2, layers=2)
        folded = fold_layout(base, 4)
        assert folded.edge_multiset() == base.edge_multiset()

    def test_nodes_stacked_on_active_layers(self):
        base = layout_hypercube(6, layers=2)
        folded = fold_layout(base, 8)
        layers = {p.layer for p in folded.placements.values()}
        assert layers == {1, 3, 5, 7}

    def test_kary_fold(self):
        base = layout_kary(4, 2, layers=2)
        folded = fold_layout(base, 4)
        validate_layout(folded)
        check_topology(folded, KAryNCube(4, 2).edges)

    def test_fold_vias_span_layers(self):
        base = layout_hypercube(6, layers=2)
        folded = fold_layout(base, 4)
        spans = set()
        for w in folded.wires:
            for s1, s2 in zip(w.segments, w.segments[1:]):
                if s1.layer != s2.layer:
                    spans.add(abs(s1.layer - s2.layer))
        assert 2 in spans  # fold vias jump across a layer pair

    def test_t_equal_one_is_identity(self):
        base = layout_hypercube(4, layers=2)
        assert fold_layout(base, 2) is base
        assert fold_layout(base, 3) is base

    def test_requires_thompson(self):
        with pytest.raises(ValueError, match="Thompson"):
            fold_layout(layout_hypercube(6, layers=4), 8)

    def test_requires_divisible_columns(self):
        base = layout_kary(3, 2, layers=2)  # 3 columns
        with pytest.raises(ValueError, match="split"):
            fold_layout(base, 4)

    def test_matches_analytic_fold_metrics(self):
        from repro.core import fold_metrics

        base = layout_hypercube(8, layers=2)
        mb = measure(base)
        for L in (4, 8):
            analytic = fold_metrics(mb, L)
            constructed = measure(fold_layout(base, L))
            assert constructed.area == pytest.approx(analytic.area, rel=0.02)
            assert constructed.max_wire == analytic.max_wire
