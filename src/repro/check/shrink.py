"""Delta-debugging shrinker + replayable counterexample corpus.

When the differential driver flags a network, the raw case is usually
noisy -- a 12-node graph with 30 edges where 3 nodes and 2 edges
suffice.  :func:`shrink_network` reduces it against a caller-supplied
failure predicate with the classic ddmin moves, coarse to fine:

1. drop *chunks* of nodes (half, quarter, ... single) taking induced
   subgraphs, largest reductions first;
2. drop individual edges (multiset-aware, so parallel edges shrink
   too);

repeating both passes until a fixed point.  Connectivity is preserved
by default since every layout scheme under test assumes it.

Minimal counterexamples are serialized into ``tests/corpus/`` as small
JSON documents (:func:`save_counterexample`); the corpus replay test
re-runs every document through the differential driver on each CI run,
so past fuzz findings become permanent regression tests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterator

from repro.check.differential import CheckResult, check_case
from repro.check.generate import (
    CheckCase,
    network_from_doc,
    network_to_doc,
)
from repro.topology.base import Network

__all__ = [
    "shrink_network",
    "shrink_failing_case",
    "save_counterexample",
    "load_counterexample",
    "iter_corpus",
    "CORPUS_FORMAT",
]

CORPUS_FORMAT = 1


def _acceptable(cand: Network, keep_connected: bool) -> bool:
    return (
        cand.num_nodes >= 2
        and cand.num_edges >= 1
        and (not keep_connected or cand.is_connected())
    )


def _shrink_nodes(
    net: Network,
    predicate: Callable[[Network], bool],
    keep_connected: bool,
) -> tuple[Network, bool]:
    """One ddmin pass over node chunks; returns (net, improved?)."""
    improved = False
    chunk = max(net.num_nodes // 2, 1)
    while chunk >= 1:
        i = 0
        while i < net.num_nodes:
            nodes = list(net.nodes)
            keep = nodes[:i] + nodes[i + chunk:]
            if len(keep) >= 2:
                cand = net.induced_subgraph(keep)
                if _acceptable(cand, keep_connected) and predicate(cand):
                    net = cand
                    improved = True
                    continue  # same i: the node list shifted left
            i += chunk
        chunk //= 2
    return net, improved


def _shrink_edges(
    net: Network,
    predicate: Callable[[Network], bool],
    keep_connected: bool,
) -> tuple[Network, bool]:
    """Drop redundant edges one at a time (first-fit, restarting)."""
    improved = False
    e = 0
    while e < net.num_edges:
        cand = net.without_edges([net.edges[e]])
        if _acceptable(cand, keep_connected) and predicate(cand):
            net = cand
            improved = True
            continue  # same index: the edge list shifted left
        e += 1
    return net, improved


def shrink_network(
    net: Network,
    predicate: Callable[[Network], bool],
    *,
    keep_connected: bool = True,
    max_rounds: int = 8,
) -> Network:
    """Greedily minimize ``net`` while ``predicate`` keeps failing.

    ``predicate(candidate)`` must return True iff the candidate still
    exhibits the failure.  The input network is required to satisfy it
    (a non-reproducing input returns unchanged).  The result is
    1-minimal up to the move set: no single node or edge can be
    removed without losing the failure.
    """
    if not predicate(net):
        return net
    for _ in range(max_rounds):
        net, n_improved = _shrink_nodes(net, predicate, keep_connected)
        net, e_improved = _shrink_edges(net, predicate, keep_connected)
        if not (n_improved or e_improved):
            break
    return net


def shrink_failing_case(
    result: CheckResult,
    *,
    keep_connected: bool = True,
    stages: tuple[str, ...] | None = None,
    mutation_rounds: int = 12,
    **check_opts,
) -> Network:
    """Shrink a failing case to a minimal still-failing network.

    The predicate re-runs the differential driver on the candidate
    (as a ``shrink``-kind case, same per-case seed) and asks whether
    any of the *original* invariant violations reappears.  Stochastic
    stages get more mutation rounds than the sweep default so the
    reduction is reliable.
    """
    case = result.case
    bad = {v.invariant for v in result.violations}
    if stages is None:
        stages = tuple(
            dict.fromkeys(v.stage for v in result.violations)
        )

    def predicate(net: Network) -> bool:
        cand = CheckCase(
            case_id=f"{case.case_id}/shrink",
            seed=case.seed,
            kind="shrink",
            network=net,
            layers=case.layers,
        )
        r = check_case(
            cand,
            stages=stages,
            mutation_rounds=mutation_rounds,
            **check_opts,
        )
        return any(v.invariant in bad for v in r.violations)

    return shrink_network(
        case.network, predicate, keep_connected=keep_connected
    )


# ---------------------------------------------------------------------------
# Corpus


def save_counterexample(
    directory,
    network: Network,
    *,
    case: CheckCase,
    violations,
    note: str = "",
) -> Path:
    """Serialize a (shrunk) counterexample for permanent replay."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    invariants = sorted({v.invariant for v in violations})
    slug = case.case_id.replace("/", "-")
    path = directory / f"cx-{slug}-{invariants[0] if invariants else 'x'}.json"
    doc = {
        "format": CORPUS_FORMAT,
        "case_id": case.case_id,
        "seed": case.seed,
        "kind": case.kind,
        "layers": list(case.layers),
        "invariants": invariants,
        "details": [str(v) for v in violations],
        "note": note,
        "network": network_to_doc(network),
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_counterexample(path) -> CheckCase:
    """Rebuild a corpus document as a replayable ``corpus``-kind case."""
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != CORPUS_FORMAT:
        raise ValueError(
            f"{path}: unsupported corpus format {doc.get('format')!r}"
        )
    return CheckCase(
        case_id=doc.get("case_id", Path(path).stem),
        seed=int(doc.get("seed", 0)),
        kind="corpus",
        network=network_from_doc(doc["network"]),
        layers=tuple(doc.get("layers", (2, 4))),
    )


def iter_corpus(directory) -> Iterator[tuple[Path, CheckCase]]:
    """Yield ``(path, case)`` for every corpus document, sorted."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        yield path, load_counterexample(path)
