"""Product-family topologies, cross-checked against networkx oracles."""

import networkx as nx
import pytest

from repro.topology import (
    CompleteGraph,
    GeneralizedHypercube,
    Hypercube,
    KAryNCube,
    Mesh,
    ProductNetwork,
    Ring,
)


def to_nx(net):
    g = nx.MultiGraph()
    g.add_nodes_from(net.nodes)
    g.add_edges_from(net.edges)
    return g


class TestRing:
    def test_counts(self):
        r = Ring(7)
        assert r.num_nodes == 7 and r.num_edges == 7
        assert r.is_regular() and r.max_degree == 2

    def test_is_cycle(self):
        g = to_nx(Ring(9))
        assert nx.is_connected(g)
        assert all(d == 2 for _, d in g.degree())

    def test_diameter(self):
        assert Ring(8).diameter() == 4
        assert Ring(9).diameter() == 4

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            Ring(2)


class TestKAryNCube:
    @pytest.mark.parametrize("k,n", [(3, 1), (3, 2), (4, 2), (5, 3), (3, 4)])
    def test_torus_counts(self, k, n):
        net = KAryNCube(k, n)
        assert net.num_nodes == k**n
        assert net.num_edges == n * k**n  # k>2: each dim a k-ring
        assert net.is_regular() and net.max_degree == 2 * n

    def test_binary_torus_is_hypercube(self):
        t = KAryNCube(2, 4)
        h = Hypercube(4)
        assert t.num_edges == h.num_edges
        gt = to_nx(t)
        assert all(d == 4 for _, d in gt.degree())

    @pytest.mark.parametrize("k,n", [(3, 2), (4, 2), (3, 3)])
    def test_matches_networkx_torus(self, k, n):
        net = KAryNCube(k, n)
        ours = to_nx(net)
        ref = nx.grid_graph(dim=[k] * n, periodic=True)
        assert nx.is_isomorphic(ours, nx.MultiGraph(ref))

    def test_diameter(self):
        assert KAryNCube(5, 2).diameter() == 4  # n * floor(k/2)

    def test_dimension_of_edge(self):
        net = KAryNCube(3, 2)
        assert net.dimension_of_edge((0, 0), (0, 1)) == 0
        assert net.dimension_of_edge((0, 0), (2, 0)) == 1
        with pytest.raises(ValueError):
            net.dimension_of_edge((0, 0), (1, 1))


class TestMesh:
    def test_counts(self):
        m = Mesh(4, 2)
        assert m.num_nodes == 16
        assert m.num_edges == 2 * 4 * 3  # 2 dims x 4 lines x 3 links

    def test_matches_networkx_grid(self):
        ours = to_nx(Mesh(3, 2))
        ref = nx.grid_graph(dim=[3, 3])
        assert nx.is_isomorphic(ours, nx.MultiGraph(ref))

    def test_corner_degree(self):
        m = Mesh(3, 2)
        assert m.degree((0, 0)) == 2
        assert m.degree((1, 1)) == 4


class TestHypercube:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7])
    def test_counts(self, n):
        h = Hypercube(n)
        assert h.num_nodes == 2**n
        assert h.num_edges == n * 2 ** (n - 1)
        assert h.is_regular() and h.max_degree == n

    def test_matches_networkx(self):
        ours = to_nx(Hypercube(4))
        ref = nx.hypercube_graph(4)
        assert nx.is_isomorphic(ours, nx.MultiGraph(ref))

    def test_diameter_is_dimension(self):
        assert Hypercube(5).diameter() == 5

    def test_dimension_of_edge(self):
        h = Hypercube(4)
        assert h.dimension_of_edge(0, 8) == 3
        with pytest.raises(ValueError):
            h.dimension_of_edge(0, 3)


class TestComplete:
    @pytest.mark.parametrize("n", [1, 2, 5, 9])
    def test_counts(self, n):
        k = CompleteGraph(n)
        assert k.num_nodes == n
        assert k.num_edges == n * (n - 1) // 2

    def test_diameter(self):
        assert CompleteGraph(6).diameter() == 1


class TestGHC:
    def test_counts_uniform(self):
        g = GeneralizedHypercube((3, 3))
        assert g.num_nodes == 9
        assert g.num_edges == 9 * 4 // 2
        assert g.max_degree == 4

    def test_counts_mixed(self):
        g = GeneralizedHypercube((2, 5))
        assert g.num_nodes == 10
        assert g.max_degree == (2 - 1) + (5 - 1)
        assert g.is_regular()

    def test_radix2_is_hypercube(self):
        g = GeneralizedHypercube((2, 2, 2))
        assert nx.is_isomorphic(to_nx(g), nx.MultiGraph(nx.hypercube_graph(3)))

    def test_diameter_is_dimensions(self):
        assert GeneralizedHypercube((4, 4, 4)).diameter() == 3

    def test_is_product_of_completes(self):
        a, b = CompleteGraph(3), CompleteGraph(4)
        prod = ProductNetwork(a, b)
        g = GeneralizedHypercube((4, 3))  # r1=4 rows? orientation-free iso
        assert nx.is_isomorphic(to_nx(prod), to_nx(g))

    def test_dimension_of_edge(self):
        g = GeneralizedHypercube((3, 4))
        assert g.dimension_of_edge((0, 0), (0, 3)) == 0
        assert g.dimension_of_edge((0, 0), (2, 0)) == 1


class TestProduct:
    def test_counts(self):
        p = ProductNetwork(Ring(4), Ring(5))
        assert p.num_nodes == 20
        assert p.num_edges == 4 * 5 + 5 * 4

    def test_matches_networkx_cartesian(self):
        a, b = Ring(4), CompleteGraph(3)
        ours = to_nx(ProductNetwork(a, b))
        ref = nx.cartesian_product(to_nx(a), to_nx(b))
        assert nx.is_isomorphic(ours, nx.MultiGraph(ref))

    def test_degree_additivity(self):
        p = ProductNetwork(Ring(5), CompleteGraph(4))
        assert p.max_degree == 2 + 3


class TestBaseMachinery:
    def test_bfs_and_shortest_path(self):
        h = Hypercube(4)
        path = h.shortest_path(0, 15)
        assert len(path) == 5
        assert path[0] == 0 and path[-1] == 15
        dist = h.bfs_distances(0)
        assert dist[15] == 4

    def test_edge_multiset(self):
        r = Ring(4)
        ms = r.edge_multiset()
        assert sum(ms.values()) == 4
        assert all(c == 1 for c in ms.values())

    def test_connectivity(self):
        assert Hypercube(3).is_connected()

    def test_index_roundtrip(self):
        net = KAryNCube(3, 2)
        for i, v in enumerate(net.nodes):
            assert net.index[v] == i
