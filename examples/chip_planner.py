#!/usr/bin/env python
"""A chip-planning scenario built on the library's public API.

The paper's introduction motivates multilayer layout with single-chip
multiprocessors: given a die budget (grid area per layer), a process
(number of wiring layers) and a target node count, which interconnect
should you fabricate?  This script answers that question the way a
designer would use the library:

1. enumerate candidate topologies at ~the target node count;
2. lay each out under the process's layer budget;
3. reject candidates whose layout exceeds the die;
4. rank the rest by maximum wire length (clock-limiting) and volume.

Run:  python examples/chip_planner.py [target_nodes] [layers] [die_side]
"""

import sys

from repro import measure, validate_layout
from repro.core.schemes import layout_network
from repro.topology import (
    HSN,
    Butterfly,
    CompleteGraph,
    CubeConnectedCycles,
    GeneralizedHypercube,
    Hypercube,
    KAryNCube,
)
from repro.bench import print_table


def candidates(target: int):
    """Topologies with node counts within 2x of the target."""
    nets = []
    n = 1
    while 2**n <= 2 * target:
        if 2**n >= target // 2:
            nets.append(Hypercube(n))
        n += 1
    for k in (3, 4, 5, 6, 8):
        for dim in (2, 3, 4):
            if target // 2 <= k**dim <= 2 * target:
                nets.append(KAryNCube(k, dim))
    for r in (3, 4, 5, 6):
        for dim in (2, 3):
            if target // 2 <= r**dim <= 2 * target:
                nets.append(GeneralizedHypercube((r,) * dim))
    for m in (2, 3, 4, 5):
        if target // 2 <= (m + 1) * 2**m <= 2 * target:
            nets.append(Butterfly(m))
    for n_ in (3, 4, 5):
        if target // 2 <= n_ * 2**n_ <= 2 * target:
            nets.append(CubeConnectedCycles(n_))
    for r in (4, 5, 6, 8):
        if target // 2 <= r * r <= 2 * target:
            nets.append(HSN(CompleteGraph(r), 2))
    return nets


def main() -> None:
    target = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    layers = int(sys.argv[2]) if len(sys.argv) > 2 else 6
    die_side = int(sys.argv[3]) if len(sys.argv) > 3 else 400

    print(
        f"Planning a ~{target}-node fabric on a {die_side}x{die_side} die "
        f"with {layers} wiring layers\n"
    )
    rows, rejected = [], []
    for net in candidates(target):
        lay = layout_network(net, layers=layers)
        validate_layout(lay)
        m = measure(lay)
        fits = m.width <= die_side and m.height <= die_side
        row = [
            net.name, net.num_nodes, net.max_degree,
            m.width, m.height, m.max_wire, m.volume,
            "yes" if fits else "NO",
        ]
        (rows if fits else rejected).append(row)

    rows.sort(key=lambda r: (r[5], r[6]))  # max wire, then volume
    print_table(
        "candidates that fit the die (best clock potential first)",
        ["network", "N", "deg", "W", "H", "max wire", "volume", "fits"],
        rows,
    )
    if rejected:
        print_table(
            "rejected (layout exceeds the die)",
            ["network", "N", "deg", "W", "H", "max wire", "volume", "fits"],
            rejected,
        )
    if rows:
        print(f"\nRecommended fabric: {rows[0][0]} "
              f"(max wire {rows[0][5]}, volume {rows[0][6]})")


if __name__ == "__main__":
    main()
