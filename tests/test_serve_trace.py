"""Request tracing, /debug endpoints, exemplars, and the serve SLO.

End-to-end against a real :class:`LayoutServer` on an ephemeral port
(same harness as ``test_serve.py``).  The properties pinned here:

* a cold ``/v1/layout`` leaves a ``/debug/trace/<id>`` document whose
  span tree carries the server's root span *and* the pool worker's
  ``cache.build`` subtree under one trace id -- the whole point of
  shipping context across the fork boundary;
* coalesced followers do not duplicate the leader's build subtree:
  they carry exactly one ``serve.link`` span naming the leader's
  trace;
* the span-name *set* of a request is deterministic across worker
  counts;
* ``/metrics`` renders histogram exemplars and the ``slo.*`` gauges;
* a ``--run-dir`` server feeds the ``repro watch`` SLO panel through
  its live ``metrics.prom``.
"""

import asyncio
import json

import pytest

from repro import obs
from repro.obs import context as ocontext
from repro.obs import live
from repro.obs.export import validate_chrome_trace
from repro.serve import LayoutServer, ServeConfig, http_request
from repro.serve.pool import POOL_DELAY_ENV
from repro.serve.protocol import TRACE_HEADER


@pytest.fixture(autouse=True)
def _obs_clean():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _serve(test_coro, **cfg_kw):
    async def runner():
        cfg = ServeConfig(port=0, workers=cfg_kw.pop("workers", 1), **cfg_kw)
        server = await LayoutServer(cfg).start()
        try:
            await test_coro(server, server.port)
        finally:
            await server.aclose()

    asyncio.run(runner())


def _post_layout(port, network, layers=2, **extra):
    return http_request(
        "127.0.0.1",
        port,
        "POST",
        "/v1/layout",
        body={"network": network, "layers": layers, **extra.pop("body", {})},
        **extra,
    )


async def _get_json(port, path):
    st, _, body = await http_request("127.0.0.1", port, "GET", path)
    return st, json.loads(body)


def _event_names(trace_doc):
    return {
        ev["name"]
        for ev in trace_doc["traceEvents"]
        if ev.get("ph") == "X"
    }


class TestTraceDocument:
    def test_cold_build_trace_spans_fork_boundary(self, tmp_path):
        """The acceptance shape: server root span and the worker's
        cache.build subtree under one trace id."""

        async def t(server, port):
            st, _, body = await _post_layout(port, "hypercube:3")
            doc = json.loads(body)
            assert st == 200 and doc["source"] == "built"
            assert len(doc["trace_id"]) == 32
            assert doc["request_id"].startswith("r")
            st, trace = await _get_json(
                port, f"/debug/trace/{doc['trace_id']}"
            )
            assert st == 200
            validate_chrome_trace(trace)
            assert trace["otherData"]["trace_id"] == doc["trace_id"]
            assert trace["otherData"]["request_id"] == doc["request_id"]
            names = _event_names(trace)
            assert {
                "serve.request", "cache.probe", "pool.build",
                "pool.worker", "sweep.job", "cache.build",
            } <= names
            # The worker subtree renders on its own process row.
            pids = {
                ev["pid"]
                for ev in trace["traceEvents"]
                if ev.get("ph") == "X"
            }
            assert len(pids) >= 2

        _serve(t, cache_dir=str(tmp_path / "cache"))

    def test_trace_found_by_request_id_too(self, tmp_path):
        async def t(server, port):
            _, _, body = await _post_layout(port, "ring:6")
            doc = json.loads(body)
            st, trace = await _get_json(
                port, f"/debug/trace/{doc['request_id']}"
            )
            assert st == 200
            assert trace["otherData"]["trace_id"] == doc["trace_id"]

        _serve(t, cache_dir=str(tmp_path / "cache"))

    def test_inbound_traceparent_adopted(self, tmp_path):
        async def t(server, port):
            ctx = ocontext.new_context()
            st, _, body = await _post_layout(
                port,
                "ring:6",
                headers={TRACE_HEADER: ctx.to_traceparent()},
            )
            doc = json.loads(body)
            assert st == 200
            assert doc["trace_id"] == ctx.trace_id
            st, trace = await _get_json(
                port, f"/debug/trace/{ctx.trace_id}"
            )
            assert st == 200

        _serve(t, cache_dir=str(tmp_path / "cache"))

    def test_unknown_id_404s(self):
        async def t(server, port):
            st, _, _ = await http_request(
                "127.0.0.1", port, "GET", "/debug/trace/deadbeef"
            )
            assert st == 404

        _serve(t)

    def test_unsampled_request_retained_without_spans(self, tmp_path):
        async def t(server, port):
            _, _, body = await _post_layout(port, "ring:6")
            doc = json.loads(body)
            st, _, _ = await http_request(
                "127.0.0.1",
                port,
                "GET",
                f"/debug/trace/{doc['trace_id']}",
            )
            assert st == 404  # retained, but no span tree
            st, listing = await _get_json(port, "/debug/requests")
            rec = next(
                r
                for r in listing["requests"]
                if r["request_id"] == doc["request_id"]
            )
            assert rec["sampled"] is False
            assert rec["has_spans"] is False

        _serve(t, cache_dir=str(tmp_path / "cache"), trace_sample=0.0)


class TestCoalescedTraces:
    def test_follower_links_leader_trace(self, tmp_path, monkeypatch):
        monkeypatch.setenv(POOL_DELAY_ENV, "0.3")

        async def t(server, port):
            results = await asyncio.gather(
                *(
                    _post_layout(port, "kary:3,2", layers=4)
                    for _ in range(3)
                )
            )
            docs = [json.loads(b) for _, _, b in results]
            by_source = {d["source"]: d for d in docs}
            assert set(d["source"] for d in docs) == {
                "built", "coalesced",
            }
            leader = by_source["built"]
            _, lt = await _get_json(
                port, f"/debug/trace/{leader['trace_id']}"
            )
            assert "pool.build" in _event_names(lt)
            for d in docs:
                if d["source"] != "coalesced":
                    continue
                _, ft = await _get_json(
                    port, f"/debug/trace/{d['trace_id']}"
                )
                validate_chrome_trace(ft)
                names = [
                    ev["name"]
                    for ev in ft["traceEvents"]
                    if ev.get("ph") == "X"
                ]
                # Exactly one link span, no duplicated build subtree.
                assert names.count("serve.link") == 1
                assert "pool.build" not in names
                link_ev = next(
                    ev
                    for ev in ft["traceEvents"]
                    if ev.get("name") == "serve.link"
                )
                assert (
                    link_ev["args"]["linked_trace_id"]
                    == leader["trace_id"]
                )

        _serve(t, cache_dir=str(tmp_path / "cache"), workers=2)


class TestDeterministicSpanShape:
    def _names_for(self, workers, tmp_path):
        found = {}

        async def t(server, port):
            _, _, body = await _post_layout(port, "hypercube:3")
            doc = json.loads(body)
            _, trace = await _get_json(
                port, f"/debug/trace/{doc['trace_id']}"
            )
            found["names"] = _event_names(trace)

        _serve(
            t,
            cache_dir=str(tmp_path / f"cache-w{workers}"),
            workers=workers,
        )
        return found["names"]

    def test_span_name_set_stable_across_worker_counts(self, tmp_path):
        assert self._names_for(1, tmp_path) == self._names_for(
            4, tmp_path
        )


class TestDebugRequests:
    def test_listing_and_limit(self, tmp_path):
        async def t(server, port):
            for spec in ("ring:6", "ring:8"):
                await _post_layout(port, spec)
            st, doc = await _get_json(port, "/debug/requests")
            assert st == 200
            assert doc["totals"]["added"] == 2
            assert len(doc["requests"]) == 2
            # Newest first; every row names its retention pools.
            assert doc["requests"][0]["status"] == 200
            assert "recent" in doc["requests"][0]["retained"]
            st, doc = await _get_json(port, "/debug/requests?limit=1")
            assert len(doc["requests"]) == 1
            st, _, _ = await http_request(
                "127.0.0.1", port, "GET", "/debug/requests?limit=x"
            )
            assert st == 400

        _serve(t, cache_dir=str(tmp_path / "cache"))

    def test_failed_request_retained_with_error(self):
        async def t(server, port):
            st, _, _ = await _post_layout(port, "nosuchfamily:3")
            assert st == 400
            st, doc = await _get_json(port, "/debug/requests")
            rec = doc["requests"][0]
            assert rec["status"] == 400
            assert rec["error"]

        _serve(t)


class TestMetricsAndSLO:
    def test_metrics_render_exemplars_and_slo_gauges(self, tmp_path):
        async def t(server, port):
            _, _, body = await _post_layout(port, "ring:6")
            doc = json.loads(body)
            st, _, text = await http_request(
                "127.0.0.1", port, "GET", "/metrics"
            )
            text = text.decode()
            assert st == 200
            assert f'trace_id="{doc["trace_id"]}"' in text
            assert "repro_slo_burn_rate" in text
            assert "repro_slo_compliance" in text
            assert "repro_serve_request_ms_bucket" in text

        _serve(t, cache_dir=str(tmp_path / "cache"))

    def test_stats_carry_slo_and_request_log(self, tmp_path):
        async def t(server, port):
            await _post_layout(port, "ring:6")
            st, doc = await _get_json(port, "/stats")
            assert st == 200
            assert doc["slo"]["requests"] >= 1
            assert doc["slo"]["compliance"] is not None
            assert doc["debug_requests"]["added"] >= 1

        _serve(t, cache_dir=str(tmp_path / "cache"))

    def test_run_dir_feeds_watch_slo_panel(self, tmp_path):
        run_dir = str(tmp_path / "run")

        async def t(server, port):
            await _post_layout(port, "ring:6")
            # Force one watchdog tick's worth of output immediately.
            server._on_watch_tick({})
            snap = live.watch_snapshot(run_dir)
            assert snap["slo"] is not None
            assert snap["slo"]["requests"] >= 1
            assert snap["slo"]["objective_ms"] == 250.0

        _serve(
            t,
            cache_dir=str(tmp_path / "cache"),
            run_dir=run_dir,
            watch_interval_s=0.05,
        )
