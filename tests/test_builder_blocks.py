"""Builder: cluster blocks (recursive grid scheme, Section 2.3)."""

import pytest

from conftest import assert_layout_ok
from repro.core.builder import build_orthogonal_layout
from repro.core.spec import BlockCell, LayoutSpec, LinkSpec, NodeCell


def two_block_spec(layers=2, orientation="row"):
    """Two 3-node path clusters connected by two inter-cluster links."""
    blocks = {}
    for c in range(2):
        nodes = [f"c{c}n{i}" for i in range(3)]
        edges = [(nodes[0], nodes[1]), (nodes[1], nodes[2])]
        blocks[c] = BlockCell(c, nodes, edges, node_side=3)
    if orientation == "row":
        cells = {(0, 0): blocks[0], (0, 1): blocks[1]}
        links = [
            LinkSpec((0, 0), (0, 1), "c0n0", "c1n2", edge_key=0),
            LinkSpec((0, 0), (0, 1), "c0n2", "c1n0", edge_key=0),
        ]
        spec = LayoutSpec(rows=1, cols=2, cells=cells, row_links=links,
                          layers=layers, name="blocks-row")
    else:
        cells = {(0, 0): blocks[0], (1, 0): blocks[1]}
        links = [
            LinkSpec((0, 0), (1, 0), "c0n0", "c1n2", edge_key=0),
            LinkSpec((0, 0), (1, 0), "c0n2", "c1n0", edge_key=0),
        ]
        spec = LayoutSpec(rows=2, cols=1, cells=cells, col_links=links,
                          layers=layers, name="blocks-col")
    return spec


class TestBlockRouting:
    @pytest.mark.parametrize("orientation", ["row", "col"])
    @pytest.mark.parametrize("layers", [2, 3, 4, 8])
    def test_blocks_route_and_validate(self, orientation, layers):
        lay = build_orthogonal_layout(two_block_spec(layers, orientation))
        assert_layout_ok(lay)
        # 2 inter + 4 intra wires
        assert len(lay.wires) == 6
        assert len(lay.placements) == 6

    def test_intra_edges_become_wires(self):
        lay = build_orthogonal_layout(two_block_spec())
        ms = lay.edge_multiset()
        assert ms[("c0n0", "c0n1")] == 1
        assert ms[("c0n0", "c1n2")] == 1

    def test_member_positions_follow_strip_order(self):
        lay = build_orthogonal_layout(two_block_spec())
        xs = [lay.placements[f"c0n{i}"].rect.x0 for i in range(3)]
        assert xs == sorted(xs)

    def test_column_links_use_distribution_tracks(self):
        """Side-entering links ride a horizontal distribution track in
        the block's fan-in region: block height grows accordingly."""
        col = build_orthogonal_layout(two_block_spec(orientation="col"))
        # No horizontal channel above row 0 (no row links), so the
        # member squares' offset from y=0 is exactly the fan-in region:
        # one distribution track per side-entering link.
        assert col.meta["row_tracks"][0] == 0
        assert col.placements["c0n0"].rect.y0 == 2

    def test_parallel_intercluster_links(self):
        spec = two_block_spec()
        spec.row_links.append(
            LinkSpec((0, 0), (0, 1), "c0n0", "c1n2", edge_key=1)
        )
        lay = build_orthogonal_layout(spec)
        assert lay.edge_multiset()[("c0n0", "c1n2")] == 2
        assert_layout_ok(lay)


class TestMixedCells:
    def test_block_next_to_plain_node(self):
        block = BlockCell("c", ["a", "b"], [("a", "b")], node_side=2)
        cells = {(0, 0): block, (0, 1): NodeCell("z", 2), (1, 1): NodeCell("y", 2)}
        spec = LayoutSpec(
            rows=2,
            cols=2,
            cells=cells,
            row_links=[LinkSpec((0, 0), (0, 1), "b", "z")],
            col_links=[LinkSpec((0, 1), (1, 1), "z", "y")],
            name="mixed",
        )
        lay = build_orthogonal_layout(spec)
        assert_layout_ok(lay)
        assert set(lay.edge_multiset()) == {("a", "b"), ("b", "z"), ("y", "z")}

    def test_single_node_block(self):
        block = BlockCell("c", ["only"], [], node_side=2)
        cells = {(0, 0): block, (0, 1): NodeCell("z", 2)}
        spec = LayoutSpec(
            rows=1, cols=2, cells=cells,
            row_links=[LinkSpec((0, 0), (0, 1), "only", "z")],
        )
        lay = build_orthogonal_layout(spec)
        assert_layout_ok(lay)

    def test_dense_cluster_strip(self):
        # A K4 cluster: strip cutwidth 4, all below the node row.
        nodes = [f"k{i}" for i in range(4)]
        edges = [(a, b) for i, a in enumerate(nodes) for b in nodes[i + 1:]]
        block = BlockCell("k", nodes, edges, node_side=4)
        cells = {(0, 0): block, (0, 1): NodeCell("z", 4)}
        spec = LayoutSpec(
            rows=1, cols=2, cells=cells,
            row_links=[LinkSpec((0, 0), (0, 1), "k3", "z")],
        )
        lay = build_orthogonal_layout(spec)
        assert_layout_ok(lay)
        assert lay.edge_multiset()[("k0", "k1")] == 1
