"""Wrapped butterfly: structure and layout."""

import networkx as nx
import pytest

from conftest import assert_layout_ok
from repro.core.schemes import layout_network, layout_wrapped_butterfly
from repro.topology import WrappedButterfly, quotient


class TestTopology:
    @pytest.mark.parametrize("m", [3, 4])
    def test_counts(self, m):
        net = WrappedButterfly(m)
        assert net.num_nodes == m * 2**m
        assert net.num_edges == 2 * m * 2**m
        assert net.is_regular() and net.max_degree == 4
        assert net.is_connected()

    def test_vertex_transitive_degree(self):
        net = WrappedButterfly(3)
        g = nx.MultiGraph()
        g.add_edges_from(net.edges)
        assert all(d == 4 for _, d in g.degree())

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            WrappedButterfly(2)

    @pytest.mark.parametrize("m", [3, 4])
    def test_quotient_is_hypercube_mult4(self, m):
        net = WrappedButterfly(m)
        q = quotient(net, net.row_pair_partition())
        assert len(q.clusters) == 2 ** (m - 1)
        assert set(q.multiplicity().values()) == {4}
        for a, b in q.multiplicity():
            assert bin(a ^ b).count("1") == 1

    def test_same_size_as_ccc(self):
        # WBF(m) and CCC(m) have the same node count -- the classical
        # relationship (CCC is a subgraph of WBF).
        from repro.topology import CubeConnectedCycles

        assert WrappedButterfly(4).num_nodes == CubeConnectedCycles(4).num_nodes


class TestLayout:
    @pytest.mark.parametrize("m,L", [(3, 2), (3, 4), (4, 2)])
    def test_valid_and_exact(self, m, L):
        lay = layout_wrapped_butterfly(m, layers=L)
        assert_layout_ok(lay, WrappedButterfly(m))

    def test_dispatch(self):
        lay = layout_network(WrappedButterfly(3), layers=4)
        assert_layout_ok(lay, WrappedButterfly(3))

    def test_channels_match_plain_butterfly(self):
        """Same quotient structure, same channel accounting (within the
        +1 attachment rounding)."""
        from repro.core import layout_butterfly

        wbf = layout_wrapped_butterfly(4)
        bf = layout_butterfly(4)
        for a, b in zip(wbf.meta["row_tracks"], bf.meta["row_tracks"]):
            assert abs(a - b) <= 1
