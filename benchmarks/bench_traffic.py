"""E9: end-to-end traffic performance on multilayer layouts.

Closing the paper's claim chain with a message-level simulation: the
same network, the same e-cube routes and the same traffic kernels run
faster on the L-layer layout because every link is a shorter wire.
The folding baseline, whose wires keep their 2-layer lengths, gains
nothing.
"""

from repro.core import layout_hypercube
from repro.core.folding import fold_layout
from repro.routing import (
    bit_complement,
    dimension_order_route,
    random_permutation,
    simulate,
    transpose,
)
from repro.topology import Hypercube

DIM = 8


def _route(net):
    return lambda s, d: dimension_order_route(net, s, d)


def test_traffic_kernels_vs_layers(benchmark, report):
    net = Hypercube(DIM)
    route = _route(net)
    kernels = {
        "bit-complement": bit_complement(net),
        "transpose": transpose(net),
        "random-perm": random_permutation(net),
    }
    base_lay = layout_hypercube(DIM, layers=2, node_side="min")
    rows = []
    base_results = {}
    for L in (2, 4, 8):
        lay = layout_hypercube(DIM, layers=L, node_side="min")
        for name, msgs in kernels.items():
            res = simulate(net, msgs, layout=lay, router=route)
            if L == 2:
                base_results[name] = res
            base = base_results[name]
            rows.append([
                name, L, res.makespan,
                f"{base.makespan / res.makespan:.2f}",
                f"{res.avg_latency:.0f}",
                f"{base.avg_latency / res.avg_latency:.2f}",
            ])
    report(
        f"E9a: {DIM}-cube traffic kernels across L "
        "(store-and-forward, layout-derived link delays)",
        ["kernel", "L", "makespan", "speedup", "avg latency", "speedup"],
        rows,
    )
    benchmark.pedantic(
        simulate, args=(net, kernels["random-perm"]),
        kwargs={"layout": base_lay, "router": route},
        rounds=1, iterations=1,
    )


def test_latency_vs_load_curve(report, benchmark):
    """E9c: the classic latency-vs-injection-rate curve, per layout.

    Shorter wires shift the whole curve down: at every load level the
    L=8 layout delivers lower average latency."""
    from repro.routing import rate_injection

    net = Hypercube(6)
    route = lambda s, d: dimension_order_route(net, s, d)  # noqa: E731
    lay2 = layout_hypercube(6, layers=2, node_side="min")
    lay8 = layout_hypercube(6, layers=8, node_side="min")
    rows = []
    for rate in (0.002, 0.01, 0.03):
        msgs = rate_injection(net, rate=rate, duration=300)
        r2 = simulate(net, msgs, layout=lay2, router=route)
        r8 = simulate(net, msgs, layout=lay8, router=route)
        assert r8.avg_latency < r2.avg_latency
        rows.append([
            rate, r2.messages, f"{r2.avg_latency:.0f}",
            f"{r8.avg_latency:.0f}",
            f"{r2.avg_latency / r8.avg_latency:.2f}",
        ])
    report(
        "E9c: 6-cube latency vs injection rate (uniform random traffic)",
        ["rate", "messages", "avg latency L=2", "avg latency L=8",
         "speedup"],
        rows,
    )
    benchmark(
        simulate, net, rate_injection(net, rate=0.01, duration=100),
        layout=lay2, router=route,
    )


def test_folding_gains_nothing(report, benchmark):
    net = Hypercube(DIM)
    route = _route(net)
    msgs = bit_complement(net)
    base_lay = layout_hypercube(DIM, layers=2)
    base = simulate(net, msgs, layout=base_lay, router=route)
    rows = []
    for L in (4, 8):
        folded = fold_layout(base_lay, L)
        res = simulate(net, msgs, layout=folded, router=route)
        multi = simulate(
            net, msgs,
            layout=layout_hypercube(DIM, layers=L), router=route,
        )
        assert res.makespan == base.makespan  # folding: zero gain
        assert multi.makespan < base.makespan
        rows.append([
            L, base.makespan, res.makespan, multi.makespan,
            f"{base.makespan / multi.makespan:.2f}",
        ])
    report(
        "E9b: bit-complement makespan -- folded layout gains exactly "
        "nothing; the multilayer design wins",
        ["L", "L=2", "folded", "multilayer", "multilayer speedup"],
        rows,
    )
    benchmark(simulate, net, msgs, layout=base_lay, router=route)
