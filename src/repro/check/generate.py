"""Seeded random-network generation for the differential fuzzer.

Three generator distributions, all driven by a single integer seed so
every case is replayable from its id alone:

* **random** -- connected simple graphs with bounded size and degree
  (spanning tree + density-controlled extra edges);
* **zoo** -- random members of the paper's network families with
  randomized parameters (radix, dimension, seed), small enough that the
  brute-force oracles stay fast;
* **mutant** -- seeded structural mutations (drop/add edge, drop node)
  of a zoo or random base network, exercising the generic fallback
  schemes on graphs that *almost* have family structure.

The module also hosts the **layout corruption** harness: seeded
geometric mutations of a routed :class:`~repro.grid.layout.GridLayout`
(shift a segment, change its layer, stretch a span).  The differential
driver feeds corrupted clones to both the fast validator and the
brute-force oracle and requires identical verdicts -- the invariant
that catches soundness holes in either checker.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.grid.geometry import Segment
from repro.grid.io import _decode_label, _encode_label
from repro.grid.layout import GridLayout
from repro.grid.wire import Wire, WirePathError
from repro.topology import (
    HSN,
    Butterfly,
    CompleteGraph,
    CubeConnectedCycles,
    DeBruijn,
    EnhancedCube,
    FoldedHypercube,
    GeneralizedHypercube,
    Hypercube,
    IndirectSwapNetwork,
    KAryNCube,
    Mesh,
    ReducedHypercube,
    Ring,
    ShuffleExchange,
    StarConnectedCycles,
    StarGraph,
    WrappedButterfly,
)
from repro.topology.base import Network, build_network

__all__ = [
    "CheckCase",
    "random_connected_network",
    "random_zoo_network",
    "mutate_network",
    "generate_cases",
    "mutate_layout",
    "network_to_doc",
    "network_from_doc",
]

KINDS = ("random", "zoo", "mutant")


@dataclass(frozen=True)
class CheckCase:
    """One fuzz case: a network plus the layer budgets to try.

    ``case_id`` encodes the run seed and case index, so any failure
    can be replayed with ``generate_cases(seed)`` alone; ``seed`` is
    the per-case derived seed that drives every stochastic stage
    (orders, layout mutations) deterministically.
    """

    case_id: str
    seed: int
    kind: str
    network: Network
    layers: tuple[int, ...] = (2, 4)

    def describe(self) -> str:
        n = self.network
        return (
            f"{self.case_id} [{self.kind}] {n.name}: "
            f"N={n.num_nodes} E={n.num_edges}"
        )


# ---------------------------------------------------------------------------
# Random connected graphs


def random_connected_network(
    rng: random.Random,
    *,
    min_nodes: int = 2,
    max_nodes: int = 12,
    max_degree: int | None = None,
) -> Network:
    """A connected simple graph: random spanning tree + extra edges.

    ``max_degree`` caps every node's degree (``None`` = no cap beyond
    what the density draw produces); edge density is drawn uniformly,
    so the distribution covers trees through near-cliques.
    """
    n = rng.randint(min_nodes, max_nodes)
    nodes = list(range(n))
    deg = [0] * n
    edge_set: set[tuple[int, int]] = set()

    def can_add(i: int, j: int) -> bool:
        if max_degree is not None and (
            deg[i] >= max_degree or deg[j] >= max_degree
        ):
            return False
        return (i, j) not in edge_set

    for j in range(1, n):
        i = rng.randrange(j)
        edge_set.add((i, j))
        deg[i] += 1
        deg[j] += 1
    density = rng.uniform(0.0, 0.8)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < density and can_add(i, j):
                edge_set.add((i, j))
                deg[i] += 1
                deg[j] += 1
    return build_network(nodes, sorted(edge_set), f"rand{n}")


# ---------------------------------------------------------------------------
# Randomized zoo members

# Parameter draws keep instances small enough that the brute-force
# oracle, the exact-cutwidth DP (on the <= 12-node ones) and the
# quadratic validator sweeps all stay in the low milliseconds.
_ZOO_BUILDERS = (
    lambda rng: Ring(rng.randint(3, 12)),
    lambda rng: Mesh(rng.randint(2, 4), rng.randint(1, 2)),
    lambda rng: KAryNCube(rng.randint(2, 4), rng.randint(1, 3)),
    lambda rng: Hypercube(rng.randint(2, 5)),
    lambda rng: FoldedHypercube(rng.randint(3, 4)),
    lambda rng: EnhancedCube(rng.randint(3, 4), seed=rng.randint(0, 9999)),
    lambda rng: CompleteGraph(rng.randint(3, 8)),
    lambda rng: GeneralizedHypercube(
        tuple(rng.randint(2, 4) for _ in range(rng.randint(1, 2)))
    ),
    lambda rng: Butterfly(rng.randint(2, 3)),
    lambda rng: WrappedButterfly(3),
    lambda rng: IndirectSwapNetwork(rng.randint(2, 3)),
    lambda rng: CubeConnectedCycles(3),
    lambda rng: ReducedHypercube(4),
    lambda rng: HSN(CompleteGraph(rng.randint(3, 4)), 2),
    lambda rng: StarGraph(rng.randint(3, 4)),
    lambda rng: StarConnectedCycles(4),
    lambda rng: ShuffleExchange(rng.randint(3, 4)),
    lambda rng: DeBruijn(rng.randint(3, 4)),
)


def random_zoo_network(rng: random.Random) -> Network:
    """A random family instance with randomized parameters."""
    return rng.choice(_ZOO_BUILDERS)(rng)


# ---------------------------------------------------------------------------
# Structural mutants


def mutate_network(
    net: Network, rng: random.Random, *, keep_connected: bool = True
) -> Network:
    """One random structural mutation of ``net``.

    Ops: drop an edge, add a missing edge, drop a node (with its
    edges).  Mutations that would disconnect the graph are retried;
    if nothing applies after a bounded number of draws the network is
    returned unchanged (the caller's case is then a plain replica).
    """
    for _ in range(16):
        op = rng.choice(("drop-edge", "add-edge", "drop-node"))
        if op == "drop-edge" and net.num_edges > 1:
            e = net.edges[rng.randrange(net.num_edges)]
            cand = net.without_edges([e], name=f"{net.name}-e")
        elif op == "add-edge":
            have = set(net.edge_multiset())
            u = net.nodes[rng.randrange(net.num_nodes)]
            v = net.nodes[rng.randrange(net.num_nodes)]
            if u == v:
                continue
            from repro.topology.base import _norm

            if _norm(u, v) in have:
                continue
            cand = build_network(
                list(net.nodes), list(net.edges) + [(u, v)], f"{net.name}+e"
            )
        elif op == "drop-node" and net.num_nodes > 2:
            v = net.nodes[rng.randrange(net.num_nodes)]
            keep = [u for u in net.nodes if u != v]
            cand = net.induced_subgraph(keep, name=f"{net.name}-v")
        else:
            continue
        if not keep_connected or cand.is_connected():
            return cand
    return build_network(list(net.nodes), list(net.edges), net.name)


# ---------------------------------------------------------------------------
# Case stream


def generate_cases(
    seed: int,
    budget: int,
    *,
    layers: tuple[int, ...] = (2, 4),
    max_nodes: int = 12,
    kinds: tuple[str, ...] = KINDS,
) -> Iterator[CheckCase]:
    """Yield ``budget`` replayable cases, cycling the generator kinds.

    Case ``i`` depends only on ``(seed, i)``: the stream is stable
    under budget changes, so ``--budget 500`` extends (not reshuffles)
    what ``--budget 200`` covered.
    """
    for i in range(budget):
        case_seed = (seed * 1_000_003 + i) & 0x7FFFFFFF
        rng = random.Random(case_seed)
        kind = kinds[i % len(kinds)]
        if kind == "random":
            net = random_connected_network(rng, max_nodes=max_nodes)
        elif kind == "zoo":
            net = random_zoo_network(rng)
        elif kind == "mutant":
            base = (
                random_zoo_network(rng)
                if rng.random() < 0.5
                else random_connected_network(rng, max_nodes=max_nodes)
            )
            net = mutate_network(base, rng)
            for _ in range(rng.randint(0, 2)):
                net = mutate_network(net, rng)
        else:
            raise ValueError(f"unknown case kind {kind!r}")
        yield CheckCase(
            case_id=f"seed{seed}/case{i}",
            seed=case_seed,
            kind=kind,
            network=net,
            layers=layers,
        )


# ---------------------------------------------------------------------------
# Layout corruption (for the validator-agreement invariant)


def mutate_layout(lay: GridLayout, rng: random.Random) -> bool:
    """Apply one random geometric mutation in place.

    Returns ``False`` when the drawn mutation broke path connectivity
    and was discarded (the layout is then unchanged).  Any *applied*
    mutation may be harmless or illegal -- deciding which is the
    validators' job, and both must agree.
    """
    if not lay.wires:
        return False
    wi = rng.randrange(len(lay.wires))
    w = lay.wires[wi]
    if w.riser is not None or not w.segments:
        return False
    si = rng.randrange(len(w.segments))
    s = w.segments[si]
    kind = rng.choice(("layer", "shift", "stretch"))
    try:
        segs = list(w.segments)
        if kind == "layer":
            new_layer = rng.randint(1, lay.layers)
            segs[si] = Segment(s.x1, s.y1, s.x2, s.y2, new_layer)
        elif kind == "shift":
            dx, dy = rng.choice(((1, 0), (-1, 0), (0, 1), (0, -1)))
            segs[si] = Segment.make(
                s.x1 + dx, s.y1 + dy, s.x2 + dx, s.y2 + dy, s.layer
            )
        else:  # stretch one endpoint along the segment axis
            delta = rng.choice((-1, 1))
            if s.horizontal:
                segs[si] = Segment.make(
                    s.x1, s.y1, s.x2 + delta, s.y2, s.layer
                )
            else:
                segs[si] = Segment.make(
                    s.x1, s.y1, s.x2, s.y2 + delta, s.layer
                )
        # Through replace_wire, not ``lay.wires[wi] = ...``: mutated
        # layouts feed the dirty-region stage, whose incremental
        # revalidation needs every edit recorded by the tracker.
        lay.replace_wire(wi, Wire(w.u, w.v, segs, edge_key=w.edge_key))
        return True
    except (WirePathError, ValueError):
        return False  # mutation produced a non-path; skip


# ---------------------------------------------------------------------------
# Network (de)serialization for the counterexample corpus


def network_to_doc(net: Network) -> dict:
    """A JSON-able document capturing the graph exactly."""
    return {
        "name": net.name,
        "nodes": [_encode_label(v) for v in net.nodes],
        "edges": [
            [_encode_label(u), _encode_label(v)] for u, v in net.edges
        ],
    }


def network_from_doc(doc: dict) -> Network:
    """Rebuild a network serialized by :func:`network_to_doc`."""
    nodes = [_decode_label(v) for v in doc["nodes"]]
    edges = [
        (_decode_label(u), _decode_label(v)) for u, v in doc["edges"]
    ]
    return build_network(nodes, edges, doc.get("name", "corpus"))
