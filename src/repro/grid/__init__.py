"""Multilayer grid model substrate.

This package implements the geometric model of the paper's Section 2:
an :math:`L`-layer 3-D grid in which network nodes are squares embedded
in the first layer (multilayer *2-D* grid model) and wires are
rectilinear paths whose axis-aligned segments each live on one layer,
with vias where consecutive segments change layer.

Public surface:

* :class:`~repro.grid.geometry.Point` / :class:`~repro.grid.geometry.Segment`
  / :class:`~repro.grid.geometry.Rect` -- grid geometry primitives.
* :class:`~repro.grid.wire.Wire` -- a routed net.
* :class:`~repro.grid.layout.Placement` and
  :class:`~repro.grid.layout.GridLayout` -- a complete layout.
* :func:`~repro.grid.validate.validate_layout` -- the legality checker
  for the multilayer grid model (per-layer edge-disjointness, via and
  knock-knee rules, node/wire interference).
* :func:`~repro.grid.tracks.pack_intervals` /
  :func:`~repro.grid.tracks.max_overlap` -- left-edge track assignment,
  the workhorse behind every collinear layout in the paper.
"""

from repro.grid.geometry import Point, Rect, Segment
from repro.grid.layout import GridLayout, Placement
from repro.grid.table import WireTable
from repro.grid.tracks import Interval, max_overlap, pack_intervals
from repro.grid.validate import LayoutError, validate_layout
from repro.grid.wire import Wire

__all__ = [
    "Point",
    "Segment",
    "Rect",
    "Wire",
    "Placement",
    "GridLayout",
    "LayoutError",
    "validate_layout",
    "WireTable",
    "Interval",
    "pack_intervals",
    "max_overlap",
]
