"""Two-sided collinear layouts (ablation/extension)."""

import pytest

from conftest import assert_layout_ok
from repro.collinear.two_sided import two_sided_collinear_layout
from repro.core import layout_collinear_network, measure
from repro.grid.oracle import oracle_validate
from repro.topology import CompleteGraph, Hypercube, Ring
from repro.collinear.orders import binary_order


class TestTwoSided:
    @pytest.mark.parametrize(
        "net", [Ring(8), CompleteGraph(7), Hypercube(4)], ids=lambda n: n.name
    )
    def test_valid_and_exact(self, net):
        lay = two_sided_collinear_layout(net)
        assert_layout_ok(lay, net)
        oracle_validate(lay)

    def test_splits_tracks_evenly(self):
        two = two_sided_collinear_layout(CompleteGraph(9))
        assert two.meta["tracks"] == 20
        assert two.meta["upper_tracks"] == 10
        assert two.meta["lower_tracks"] == 10

    def test_shortens_wires(self):
        """The point of two-sided channels: halved channel depth means
        shorter vertical runs (height itself is unchanged)."""
        for net in (CompleteGraph(9), Hypercube(5)):
            one = measure(layout_collinear_network(net))
            two = measure(two_sided_collinear_layout(net))
            assert two.max_wire < one.max_wire
            assert two.total_wire < one.total_wire
            assert two.height <= one.height + 1

    def test_same_width(self):
        net = Hypercube(4)
        one = layout_collinear_network(net)
        two = two_sided_collinear_layout(net)
        assert measure(two).width == measure(one).width

    def test_multilayer(self):
        net = CompleteGraph(8)
        lay = two_sided_collinear_layout(net, layers=4)
        assert_layout_ok(lay, net)
        l2 = measure(two_sided_collinear_layout(net, layers=2))
        l4 = measure(lay)
        assert l4.height < l2.height

    def test_order_respected(self):
        net = Hypercube(3)
        lay = two_sided_collinear_layout(net, order=binary_order(3))
        xs = {v: p.rect.x0 for v, p in lay.placements.items()}
        assert xs[0] < xs[1] < xs[7]

    def test_pin_capacity_error(self):
        with pytest.raises(ValueError, match="node_side"):
            two_sided_collinear_layout(CompleteGraph(8), node_side=2)

    def test_single_edge(self):
        from repro.topology.base import build_network

        net = build_network([0, 1], [(0, 1)], "edge")
        lay = two_sided_collinear_layout(net)
        assert_layout_ok(lay, net)
