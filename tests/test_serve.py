"""The layout daemon end to end: sockets, coalescing, admission.

Every e2e test boots a real :class:`~repro.serve.server.LayoutServer`
on an ephemeral port inside ``asyncio.run`` and talks to it over real
sockets via the protocol helpers -- no mocked transport.  The
``REPRO_POOL_DELAY_S`` hook (tests/CI only) stretches builds so the
races these tests pin (coalescing, the in-flight gate) are
deterministic instead of scheduler-lucky.
"""

import asyncio
import json

import pytest

from repro import obs
from repro.serve import LayoutServer, ServeConfig, http_request
from repro.serve.pool import POOL_DELAY_ENV
from repro.serve.protocol import CLIENT_HEADER
from repro.serve.quotas import AdmissionGate, QuotaManager, TokenBucket


@pytest.fixture(autouse=True)
def _obs_clean():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _serve(test_coro, **cfg_kw):
    """Boot a server, run ``test_coro(server, port)``, always close."""

    async def runner():
        cfg = ServeConfig(port=0, workers=cfg_kw.pop("workers", 1), **cfg_kw)
        server = await LayoutServer(cfg).start()
        try:
            await test_coro(server, server.port)
        finally:
            await server.aclose()

    asyncio.run(runner())


def _post_layout(port, network, layers=2, **extra):
    return http_request(
        "127.0.0.1",
        port,
        "POST",
        "/v1/layout",
        body={"network": network, "layers": layers, **extra.pop("body", {})},
        **extra,
    )


class TestLayoutEndpoint:
    def test_cold_miss_then_warm_hit(self, tmp_path):
        async def t(server, port):
            st, _, body = await _post_layout(port, "hypercube:3")
            doc = json.loads(body)
            assert st == 200
            assert doc["source"] == "built"
            assert doc["N"] == 8 and doc["E"] == 12
            assert doc["metrics"]["area"] > 0
            st, _, body = await _post_layout(port, "hypercube:3")
            warm = json.loads(body)
            assert st == 200
            assert warm["source"] == "cache"
            # The answer, not just the status, must match.
            assert warm["metrics"] == doc["metrics"]

        _serve(t, cache_dir=str(tmp_path / "cache"))

    def test_no_cache_dir_still_serves(self):
        async def t(server, port):
            st, _, body = await _post_layout(port, "ring:6")
            doc = json.loads(body)
            assert st == 200 and doc["source"] == "built"
            # Without a cache every request is a fresh build.
            st, _, body = await _post_layout(port, "ring:6")
            assert json.loads(body)["source"] == "built"

        _serve(t)

    def test_concurrent_duplicates_coalesce(self, tmp_path, monkeypatch):
        monkeypatch.setenv(POOL_DELAY_ENV, "0.3")

        async def t(server, port):
            results = await asyncio.gather(
                *(
                    _post_layout(port, "kary:3,2", layers=4)
                    for _ in range(3)
                )
            )
            docs = [json.loads(b) for _, _, b in results]
            assert all(d["metrics"] == docs[0]["metrics"] for d in docs)
            sources = sorted(d["source"] for d in docs)
            assert sources == ["built", "coalesced", "coalesced"]
            st, _, body = await http_request(
                "127.0.0.1", port, "GET", "/stats"
            )
            stats = json.loads(body)
            assert stats["built"] == 1
            assert stats["coalesced"] == 2

        _serve(t, cache_dir=str(tmp_path / "cache"), workers=2)

    def test_include_layout_roundtrip(self, tmp_path):
        async def t(server, port):
            st, _, body = await _post_layout(
                port, "ring:6", body={"include_layout": True}
            )
            doc = json.loads(body)
            assert st == 200
            assert doc["layout"]["layers"] >= 2
            assert doc["layout"]["placements"]

        _serve(t, cache_dir=str(tmp_path / "cache"))

    def test_include_layout_requires_cache(self):
        async def t(server, port):
            st, _, body = await _post_layout(
                port, "ring:6", body={"include_layout": True}
            )
            assert st == 400
            assert "cache-dir" in json.loads(body)["error"]

        _serve(t)


class TestValidation:
    def test_unknown_family_is_400(self):
        async def t(server, port):
            st, _, body = await _post_layout(port, "nonsense:5")
            assert st == 400
            assert "unknown network family" in json.loads(body)["error"]

        _serve(t)

    def test_unknown_scheme_is_400(self):
        async def t(server, port):
            st, _, body = await _post_layout(
                port, "ring:6", body={"scheme": "wat"}
            )
            assert st == 400

        _serve(t)

    def test_bad_layers_is_400(self):
        async def t(server, port):
            for layers in ("two", 0, 9999, True):
                st, _, _ = await _post_layout(port, "ring:6", layers=layers)
                assert st == 400

        _serve(t)

    def test_unknown_path_404_wrong_method_405(self):
        async def t(server, port):
            st, _, _ = await http_request(
                "127.0.0.1", port, "GET", "/nope"
            )
            assert st == 404
            st, _, _ = await http_request(
                "127.0.0.1", port, "GET", "/v1/layout"
            )
            assert st == 405

        _serve(t)

    def test_garbage_body_is_400(self):
        async def t(server, port):
            st, _, body = await http_request(
                "127.0.0.1",
                port,
                "POST",
                "/v1/layout",
                body=None,
            )
            # Empty body -> missing network field.
            assert st == 400

        _serve(t)


class TestAdmission:
    def test_quota_429_with_retry_after(self, tmp_path):
        async def t(server, port):
            hdr = {CLIENT_HEADER: "greedy"}
            codes = []
            for _ in range(4):
                st, headers, _ = await _post_layout(
                    port, "ring:6", headers=hdr
                )
                codes.append((st, headers.get("retry-after")))
            assert [c for c, _ in codes] == [200, 200, 429, 429]
            assert all(
                int(ra) >= 1 for c, ra in codes if c == 429
            )
            # A different client id has its own bucket.
            st, _, _ = await _post_layout(
                port, "ring:6", headers={CLIENT_HEADER: "polite"}
            )
            assert st == 200

        _serve(
            t,
            cache_dir=str(tmp_path / "cache"),
            quota_rate=0.01,
            quota_burst=2.0,
        )

    def test_sweep_cost_counts_expanded_jobs(self):
        async def t(server, port):
            # 2 networks x 2 layer budgets = 4 jobs > burst of 3.
            st, _, body = await http_request(
                "127.0.0.1",
                port,
                "POST",
                "/v1/sweep",
                body={"networks": ["ring:4", "ring:6"], "layers": [2, 4]},
                headers={CLIENT_HEADER: "sweeper"},
            )
            assert st == 429
            assert "burst" in json.loads(body)["error"]

        _serve(t, quota_rate=0.01, quota_burst=3.0)

    def test_max_inflight_503(self, monkeypatch):
        monkeypatch.setenv(POOL_DELAY_ENV, "0.5")

        async def t(server, port):
            slow = asyncio.ensure_future(_post_layout(port, "ring:8"))
            await asyncio.sleep(0.1)  # let it occupy the gate
            st, headers, body = await _post_layout(port, "ring:6")
            assert st == 503
            assert "retry-after" in headers
            st_slow, _, slow_body = await slow
            assert st_slow == 200
            assert json.loads(slow_body)["source"] == "built"

        _serve(t, max_inflight=1)


class TestSweepStreaming:
    def test_sweep_streams_jsonl_events(self, tmp_path):
        async def t(server, port):
            st, headers, body = await http_request(
                "127.0.0.1",
                port,
                "POST",
                "/v1/sweep",
                body={
                    "networks": ["ring:4", "ring:6", "hypercube:3"],
                    "layers": [2, 4],
                    "name": "st",
                },
            )
            assert st == 200
            assert headers["transfer-encoding"] == "chunked"
            lines = [
                json.loads(line) for line in body.decode().splitlines()
            ]
            assert lines[0]["event"] == "start"
            assert lines[0]["jobs"] == 6
            jobs = [l for l in lines if l["event"] == "job"]
            assert sorted(j["index"] for j in jobs) == list(range(6))
            assert all(j["metrics"]["area"] > 0 for j in jobs)
            done = lines[-1]
            assert done["event"] == "done"
            assert done["errors"] == 0
            assert sum(done["sources"].values()) == 6

        _serve(t, cache_dir=str(tmp_path / "cache"), workers=2)

    def test_sweep_warm_rerun_hits_cache(self, tmp_path):
        async def t(server, port):
            body = {"networks": ["ring:4", "ring:6"], "layers": [2]}
            await http_request(
                "127.0.0.1", port, "POST", "/v1/sweep", body=body
            )
            _, _, raw = await http_request(
                "127.0.0.1", port, "POST", "/v1/sweep", body=body
            )
            lines = [json.loads(l) for l in raw.decode().splitlines()]
            done = lines[-1]
            assert done["sources"] == {"cache": 2}

        _serve(t, cache_dir=str(tmp_path / "cache"))

    def test_sweep_validates_body(self):
        async def t(server, port):
            st, _, _ = await http_request(
                "127.0.0.1", port, "POST", "/v1/sweep", body={}
            )
            assert st == 400
            st, _, _ = await http_request(
                "127.0.0.1",
                port,
                "POST",
                "/v1/sweep",
                body={"networks": ["ring:4"], "layers": ["two"]},
            )
            assert st == 400

        _serve(t)


class TestIntrospection:
    def test_healthz_stats_metrics(self, tmp_path):
        async def t(server, port):
            st, _, body = await http_request(
                "127.0.0.1", port, "GET", "/healthz"
            )
            doc = json.loads(body)
            assert st == 200 and doc["ok"] and doc["workers_alive"] == 1
            await _post_layout(port, "ring:6")
            await _post_layout(port, "ring:6")
            st, _, body = await http_request(
                "127.0.0.1", port, "GET", "/stats"
            )
            stats = json.loads(body)
            assert stats["built"] == 1 and stats["hits"] == 1
            assert stats["pool"]["workers"] == 1
            st, _, body = await http_request(
                "127.0.0.1", port, "GET", "/metrics"
            )
            text = body.decode()
            assert st == 200
            assert "repro_serve_requests_total" in text
            assert "repro_serve_request_ms_bucket" in text

        _serve(t, cache_dir=str(tmp_path / "cache"))

    def test_keepalive_serves_multiple_requests(self, tmp_path):
        async def t(server, port):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            from repro.serve.protocol import json_body, read_response

            try:
                for _ in range(3):
                    payload = json_body(
                        {"network": "ring:6", "layers": 2}
                    )
                    writer.write(
                        (
                            "POST /v1/layout HTTP/1.1\r\n"
                            f"Host: x\r\nContent-Length: {len(payload)}"
                            "\r\nContent-Type: application/json\r\n\r\n"
                        ).encode()
                        + payload
                    )
                    await writer.drain()
                    st, _, body = await read_response(reader)
                    assert st == 200
            finally:
                writer.close()

        _serve(t, cache_dir=str(tmp_path / "cache"))


class TestQuotaUnits:
    """Token buckets and the gate, driven by a fake clock."""

    def test_bucket_refills_continuously(self):
        bucket = TokenBucket(rate=2.0, burst=4.0, now=0.0)
        assert all(bucket.try_take(1, 0.0) for _ in range(4))
        assert not bucket.try_take(1, 0.0)
        assert bucket.retry_after(1) == pytest.approx(0.5)
        assert bucket.try_take(1, 0.5)  # 0.5s x 2/s = 1 token
        assert not bucket.try_take(4, 1.0)  # only 1 token refilled
        assert bucket.try_take(4, 10.0)  # refill capped at burst = 4

    def test_manager_disabled_admits_everything(self):
        q = QuotaManager(rate=0.0)
        assert q.admit("anyone", 10_000) == (True, 0.0)

    def test_manager_isolates_clients(self):
        clock = [0.0]
        q = QuotaManager(rate=1.0, burst=2.0, clock=lambda: clock[0])
        assert q.admit("a")[0] and q.admit("a")[0]
        ok, retry = q.admit("a")
        assert not ok and retry == pytest.approx(1.0)
        assert q.admit("b")[0]  # separate bucket
        clock[0] = 2.0
        assert q.admit("a")[0]  # refilled

    def test_oversized_cost_reports_infinite_retry(self):
        q = QuotaManager(rate=1.0, burst=2.0)
        ok, retry = q.admit("a", cost=5.0)
        assert not ok and retry == float("inf")

    def test_gate_counts_and_limits(self):
        gate = AdmissionGate(limit=2)
        assert gate.try_enter() and gate.try_enter()
        assert not gate.try_enter()
        assert gate.snapshot()["rejected"] == 1
        gate.leave()
        assert gate.try_enter()
        unlimited = AdmissionGate(limit=0)
        assert all(unlimited.try_enter() for _ in range(100))
