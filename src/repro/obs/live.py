"""Live run telemetry: worker heartbeats, a watchdog, `repro watch`.

Everything post-hoc in :mod:`repro.obs` (spans, reports, Chrome
traces) materializes only after a run finishes; this module is the
*during* half.  Three pieces share one **run directory**:

* :class:`HeartbeatWriter` -- each sweep/fuzz worker atomically
  rewrites ``heartbeat-<wid>.json`` (pid, monotonic stamp, jobs
  done/total, current job key, RSS from ``/proc``) on a
  jobs-or-seconds cadence, plus a background pulse thread so a worker
  grinding on one slow job still looks alive.
* :class:`Watchdog` -- a thread in the orchestrating process that
  polls the heartbeats and classifies each worker ``ok`` / ``stalled``
  (stale beat) / ``dead`` (pid gone), logging transitions and keeping
  per-worker health records that land in the merged result.
* :func:`watch_snapshot` -- one read-only pass over the run directory
  producing the document ``python -m repro watch`` renders: per-worker
  progress, jobs/sec, ETA, cache hit-rate.

Heartbeat files are written with the temp-file + ``os.replace`` trick,
so readers never see a partial document; the monotonic stamp is
``time.monotonic()``, which on Linux is CLOCK_MONOTONIC and therefore
comparable *across* processes on the same machine -- staleness checks
prefer it and fall back to wall-clock only if the monotonic delta is
nonsensical (e.g. heartbeats from a previous boot).

A dead pid is detected with ``kill(pid, 0)``; note a *zombie* (exited,
not yet reaped) still passes that probe, so orchestrators should join
their workers before asking the watchdog for a final verdict.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time

from repro.obs import logging as olog

__all__ = [
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_STALL_AFTER_S",
    "HEARTBEAT_SCHEMA",
    "MANIFEST_SCHEMA",
    "METRICS_NAME",
    "WATCH_SCHEMA",
    "HeartbeatWriter",
    "Watchdog",
    "classify_heartbeat",
    "pid_alive",
    "read_heartbeats",
    "read_run_manifest",
    "rss_bytes",
    "tail_log",
    "update_run_manifest",
    "watch_snapshot",
    "write_json_atomic",
    "write_run_manifest",
]

HEARTBEAT_SCHEMA = "repro.heartbeat/v1"
MANIFEST_SCHEMA = "repro.run-manifest/v1"
WATCH_SCHEMA = "repro.watch/v1"

DEFAULT_HEARTBEAT_S = 0.5
DEFAULT_STALL_AFTER_S = 10.0

MANIFEST_NAME = "manifest.json"
LOG_NAME = "log.jsonl"
#: Per-run Prometheus exposition file, rewritten live by the sweep
#: runner's watchdog tick and the serve daemon's; the ``repro watch``
#: SLO panel reads it back.
METRICS_NAME = "metrics.prom"
_HEARTBEAT_RE = re.compile(r"^heartbeat-(\d+)\.json$")


def rss_bytes(pid: int | None = None) -> int | None:
    """Resident set size of ``pid`` (default: this process) in bytes.

    Read from ``/proc/<pid>/statm`` (resident pages x page size);
    returns None where /proc is unavailable (macOS, exited pid).
    """
    if pid is None:
        pid = os.getpid()
    try:
        with open(f"/proc/{pid}/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return None


def pid_alive(pid: int) -> bool:
    """True if ``pid`` exists (signal-0 probe; EPERM counts as alive)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def write_json_atomic(path: str | os.PathLike, doc: dict) -> None:
    """Write ``doc`` as JSON via temp file + rename: readers racing the
    write see either the old document or the new one, never a torn
    half (the heartbeat/manifest/Prometheus files are all read live)."""
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(doc, fh, default=str)
    os.replace(tmp, path)


# ---------------------------------------------------------------------------
# run manifest


def write_run_manifest(run_dir: str | os.PathLike, **fields) -> dict:
    """Describe the run for `repro watch`: kind, totals, start time."""
    doc = {
        "schema": MANIFEST_SCHEMA,
        "time_unix": round(time.time(), 3),
        "mono": time.monotonic(),
        "run_id": olog.run_id(),
        **fields,
    }
    write_json_atomic(os.path.join(os.fspath(run_dir), MANIFEST_NAME), doc)
    return doc


def read_run_manifest(run_dir: str | os.PathLike) -> dict | None:
    try:
        with open(os.path.join(os.fspath(run_dir), MANIFEST_NAME)) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def update_run_manifest(run_dir: str | os.PathLike, **fields) -> dict:
    """Merge ``fields`` into the existing manifest (or start one)."""
    doc = read_run_manifest(run_dir)
    if doc is None:
        return write_run_manifest(run_dir, **fields)
    doc.update(fields)
    write_json_atomic(os.path.join(os.fspath(run_dir), MANIFEST_NAME), doc)
    return doc


# ---------------------------------------------------------------------------
# heartbeats (worker side)


class HeartbeatWriter:
    """One worker's ``heartbeat-<wid>.json``, rewritten atomically.

    Two cadences cooperate: :meth:`job_tick` forces a beat after every
    finished job (progress is fresh while jobs are short), and an
    optional pulse thread beats every ``interval_s`` so a worker stuck
    inside one long job still advances its monotonic stamp.  Plain
    :meth:`beat` calls between ticks are rate-limited to the interval.
    """

    def __init__(
        self,
        run_dir: str | os.PathLike,
        worker_id: int,
        *,
        jobs_total: int | None = None,
        interval_s: float = DEFAULT_HEARTBEAT_S,
    ):
        self.path = os.path.join(
            os.fspath(run_dir), f"heartbeat-{worker_id}.json"
        )
        self.worker_id = worker_id
        self.jobs_total = jobs_total
        self.interval_s = interval_s
        self.jobs_done = 0
        self.current_job = None
        self.extra: dict = {}
        self._state = "running"
        self._last_write = 0.0
        self._lock = threading.Lock()
        self._pulse: threading.Thread | None = None
        self._stop = threading.Event()

    def _doc(self) -> dict:
        return {
            "schema": HEARTBEAT_SCHEMA,
            "worker_id": self.worker_id,
            "pid": os.getpid(),
            "state": self._state,
            "time_unix": round(time.time(), 3),
            "mono": time.monotonic(),
            "jobs_done": self.jobs_done,
            "jobs_total": self.jobs_total,
            "current_job": self.current_job,
            "rss_bytes": rss_bytes(),
            "extra": dict(self.extra),
        }

    def beat(self, *, force: bool = False, **extra) -> None:
        """Write the heartbeat file if forced or the interval elapsed.

        ``extra`` keys (cache stats, say) persist across beats.  Never
        raises: a worker must not die because its telemetry did.
        """
        with self._lock:
            if extra:
                self.extra.update(extra)
            now = time.monotonic()
            if not force and now - self._last_write < self.interval_s:
                return
            self._last_write = now
            try:
                write_json_atomic(self.path, self._doc())
            except OSError:
                pass

    def job_tick(self, current_job=None, **extra) -> None:
        """Record one finished job and beat immediately."""
        self.jobs_done += 1
        self.current_job = current_job
        self.beat(force=True, **extra)

    def start_pulse(self) -> "HeartbeatWriter":
        """Beat every ``interval_s`` from a daemon thread."""
        if self._pulse is None:
            self._stop.clear()
            self._pulse = threading.Thread(
                target=self._pulse_loop, daemon=True, name="repro-heartbeat"
            )
            self._pulse.start()
        return self

    def _pulse_loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.beat(force=True)

    def finish(self, state: str = "done", **extra) -> None:
        """Terminal beat (``done`` or ``failed``) and pulse shutdown."""
        self._stop.set()
        if self._pulse is not None:
            self._pulse.join(timeout=2.0)
            self._pulse = None
        self._state = state
        self.current_job = None
        self.beat(force=True, **extra)


def read_heartbeats(run_dir: str | os.PathLike) -> dict[int, dict]:
    """All parseable ``heartbeat-<wid>.json`` docs, keyed by worker id."""
    out: dict[int, dict] = {}
    try:
        names = os.listdir(os.fspath(run_dir))
    except OSError:
        return out
    for name in names:
        m = _HEARTBEAT_RE.match(name)
        if not m:
            continue
        try:
            with open(os.path.join(os.fspath(run_dir), name)) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(doc, dict):
            out[int(m.group(1))] = doc
    return out


# ---------------------------------------------------------------------------
# classification + watchdog (orchestrator side)


def heartbeat_age(
    doc: dict,
    *,
    now_mono: float | None = None,
    now_unix: float | None = None,
) -> float:
    """Seconds since the heartbeat was written.

    Prefers the monotonic stamp (cross-process comparable on Linux);
    falls back to wall clock when the monotonic delta is negative,
    which means the file predates this boot or came from another host.
    """
    if now_mono is None:
        now_mono = time.monotonic()
    if now_unix is None:
        now_unix = time.time()
    mono = doc.get("mono")
    if isinstance(mono, (int, float)):
        age = now_mono - mono
        if age >= 0:
            return age
    ts = doc.get("time_unix")
    if isinstance(ts, (int, float)):
        return max(0.0, now_unix - ts)
    return float("inf")


def classify_heartbeat(
    doc: dict,
    *,
    stall_after_s: float = DEFAULT_STALL_AFTER_S,
    now_mono: float | None = None,
    now_unix: float | None = None,
) -> tuple[str, float]:
    """``(verdict, age_s)`` for one heartbeat document.

    Verdicts: ``done`` / ``failed`` (the worker said so), ``dead``
    (its pid no longer exists), ``stalled`` (alive but the beat is
    older than ``stall_after_s``), else ``ok``.
    """
    age = heartbeat_age(doc, now_mono=now_mono, now_unix=now_unix)
    state = doc.get("state")
    if state in ("done", "failed"):
        return state, age
    pid = doc.get("pid")
    if isinstance(pid, int) and not pid_alive(pid):
        return "dead", age
    if age > stall_after_s:
        return "stalled", age
    return "ok", age


class Watchdog:
    """Polls a run directory's heartbeats and tracks worker health.

    One record per worker id::

        {"worker_id": 2, "verdict": "stalled", "state": "running",
         "age_s": 7.3, "pid": 41712, "jobs_done": 3, "jobs_total": 5,
         "rss_bytes": 28311552, "stalls": 1, "ever_stalled": True,
         "current_job": "hypercube:3/L4"}

    Transitions are logged (``live.worker_stalled`` warning,
    ``live.worker_dead`` error, ``live.worker_recovered`` info) and
    ``on_tick(health)`` runs after every poll -- the sweep runner uses
    it to refresh gauges and the Prometheus exposition file mid-run.
    The final :meth:`stop` does one last poll so terminal states are
    always captured.
    """

    def __init__(
        self,
        run_dir: str | os.PathLike,
        *,
        stall_after_s: float = DEFAULT_STALL_AFTER_S,
        interval_s: float | None = None,
        on_tick=None,
    ):
        self.run_dir = os.fspath(run_dir)
        self.stall_after_s = stall_after_s
        if interval_s is None:
            interval_s = max(0.05, min(1.0, stall_after_s / 4.0))
        self.interval_s = interval_s
        self.on_tick = on_tick
        self.health: dict[int, dict] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "Watchdog":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, daemon=True, name="repro-watchdog"
            )
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.poll()

    def poll(self) -> dict[int, dict]:
        """One classification pass; returns a health snapshot."""
        beats = read_heartbeats(self.run_dir)
        now_mono, now_unix = time.monotonic(), time.time()
        with self._lock:
            for wid, doc in sorted(beats.items()):
                verdict, age = classify_heartbeat(
                    doc,
                    stall_after_s=self.stall_after_s,
                    now_mono=now_mono,
                    now_unix=now_unix,
                )
                prev = self.health.get(wid)
                rec = {
                    "worker_id": wid,
                    "verdict": verdict,
                    "state": doc.get("state"),
                    "age_s": round(age, 3),
                    "pid": doc.get("pid"),
                    "jobs_done": doc.get("jobs_done"),
                    "jobs_total": doc.get("jobs_total"),
                    "rss_bytes": doc.get("rss_bytes"),
                    "current_job": doc.get("current_job"),
                    "stalls": prev["stalls"] if prev else 0,
                    "ever_stalled": prev["ever_stalled"] if prev else False,
                }
                was = prev["verdict"] if prev else None
                if verdict == "stalled" and was != "stalled":
                    rec["stalls"] += 1
                    rec["ever_stalled"] = True
                    olog.warning(
                        "live.worker_stalled",
                        worker_id=wid,
                        age_s=rec["age_s"],
                        worker_pid=rec["pid"],
                        jobs_done=rec["jobs_done"],
                    )
                elif verdict == "dead" and was != "dead":
                    olog.error(
                        "live.worker_dead",
                        worker_id=wid,
                        age_s=rec["age_s"],
                        worker_pid=rec["pid"],
                        jobs_done=rec["jobs_done"],
                    )
                elif verdict == "ok" and was == "stalled":
                    olog.info(
                        "live.worker_recovered",
                        worker_id=wid,
                        age_s=rec["age_s"],
                    )
                self.health[wid] = rec
            snapshot = {w: dict(r) for w, r in self.health.items()}
        if self.on_tick is not None:
            try:
                self.on_tick(snapshot)
            except Exception:
                pass
        return snapshot

    def stop(self) -> dict[int, dict]:
        """Stop polling; one final pass captures terminal states."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        return self.poll()


# ---------------------------------------------------------------------------
# watch (reader side)


def tail_log(
    path: str | os.PathLike, n: int = 10, *, max_bytes: int = 262_144
) -> list[dict]:
    """Last ``n`` parseable records of a JSONL log, oldest first."""
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as fh:
            if size > max_bytes:
                fh.seek(size - max_bytes)
                fh.readline()  # drop the partial first line
            lines = fh.read().decode("utf-8", "replace").splitlines()
    except OSError:
        return []
    out: list[dict] = []
    for line in lines[-n * 4:]:
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(doc, dict):
            out.append(doc)
    return out[-n:]


def watch_snapshot(
    run_dir: str | os.PathLike,
    *,
    stall_after_s: float = DEFAULT_STALL_AFTER_S,
    log_lines: int = 8,
) -> dict:
    """One read-only status document for ``python -m repro watch``.

    Aggregates the manifest, every heartbeat (classified), and the log
    tail into totals: jobs done/total, jobs/sec (from the manifest
    start stamp), an ETA at the current rate, and the cache hit-rate
    folded across workers' heartbeat extras.
    """
    run_dir = os.fspath(run_dir)
    manifest = read_run_manifest(run_dir)
    beats = read_heartbeats(run_dir)
    now_mono, now_unix = time.monotonic(), time.time()

    workers = []
    jobs_done = 0
    jobs_total: int | None = 0
    hits = misses = 0
    for wid, doc in sorted(beats.items()):
        verdict, age = classify_heartbeat(
            doc,
            stall_after_s=stall_after_s,
            now_mono=now_mono,
            now_unix=now_unix,
        )
        workers.append(
            {
                "worker_id": wid,
                "verdict": verdict,
                "state": doc.get("state"),
                "age_s": round(age, 3),
                "pid": doc.get("pid"),
                "jobs_done": doc.get("jobs_done"),
                "jobs_total": doc.get("jobs_total"),
                "current_job": doc.get("current_job"),
                "rss_bytes": doc.get("rss_bytes"),
                "extra": doc.get("extra") or {},
            }
        )
        if isinstance(doc.get("jobs_done"), int):
            jobs_done += doc["jobs_done"]
        if isinstance(doc.get("jobs_total"), int) and jobs_total is not None:
            jobs_total += doc["jobs_total"]
        else:
            jobs_total = None
        extra = doc.get("extra") or {}
        cache = extra.get("cache") or {}
        hits += int(cache.get("hits", 0) or 0)
        misses += int(cache.get("misses", 0) or 0)

    if not workers:
        jobs_total = None
    if jobs_total is None and manifest:
        jt = manifest.get("jobs_total")
        if isinstance(jt, int):
            jobs_total = jt

    elapsed = None
    if manifest and isinstance(manifest.get("time_unix"), (int, float)):
        elapsed = max(0.0, now_unix - manifest["time_unix"])
    # A snapshot taken in the same tick as manifest creation (or after
    # a clock fallback) sees elapsed == 0.0: report rate and ETA as
    # unknown rather than dividing by the zero delta.
    jobs_per_s = None
    if elapsed is not None and elapsed > 0 and jobs_done:
        jobs_per_s = jobs_done / elapsed
    eta_s = None
    if jobs_per_s and jobs_total is not None and jobs_total > jobs_done:
        eta_s = (jobs_total - jobs_done) / jobs_per_s
    looked_up = hits + misses

    totals = {
        "workers": len(workers),
        "ok": sum(1 for w in workers if w["verdict"] == "ok"),
        "done": sum(1 for w in workers if w["verdict"] == "done"),
        "failed": sum(1 for w in workers if w["verdict"] == "failed"),
        "stalled": sum(1 for w in workers if w["verdict"] == "stalled"),
        "dead": sum(1 for w in workers if w["verdict"] == "dead"),
        "jobs_done": jobs_done,
        "jobs_total": jobs_total,
        "elapsed_s": round(elapsed, 3) if elapsed is not None else None,
        "jobs_per_s": round(jobs_per_s, 3) if jobs_per_s else None,
        "eta_s": round(eta_s, 3) if eta_s is not None else None,
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate": (
            round(hits / looked_up, 4) if looked_up else None
        ),
    }
    snap = {
        "schema": WATCH_SCHEMA,
        "time_unix": round(now_unix, 3),
        "run_dir": run_dir,
        "manifest": manifest,
        "workers": workers,
        "totals": totals,
        "log_tail": tail_log(
            os.path.join(run_dir, LOG_NAME), n=log_lines
        ),
    }
    slo_panel = _read_slo_panel(os.path.join(run_dir, METRICS_NAME))
    if slo_panel is not None:
        snap["slo"] = slo_panel
    return snap


def _read_slo_panel(metrics_path: str) -> dict | None:
    """The SLO panel from a run dir's live metrics file, if any.

    Serve run dirs carry ``repro_slo_*`` gauges in ``metrics.prom``
    (rewritten on every watchdog tick); sweep run dirs don't, and
    return ``None`` so the panel is omitted.
    """
    from repro.obs import slo as _slo

    try:
        with open(metrics_path) as fh:
            text = fh.read()
    except OSError:
        return None
    return _slo.slo_from_prometheus(text)
