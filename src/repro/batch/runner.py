"""The parallel sweep engine: expand, fan out, merge deterministically.

:class:`SweepRunner` executes a :class:`~repro.batch.spec.SweepSpec`:

* every job is **pure** (network spec + scheme + layers -> layout +
  metrics), so jobs run in any order on any worker and the merged
  result -- jobs reassembled in spec order, with deterministic fields
  only -- is byte-for-byte independent of the worker count;
* every job is backed by the content-addressed
  :class:`~repro.batch.cache.LayoutCache` (when a cache directory is
  given): a hit skips build, validation *and* measurement, returning
  the stored metrics;
* with ``workers > 1`` jobs fan out over a ``ProcessPoolExecutor``
  (``fork`` start method where the platform offers it -- workers then
  inherit the warm interpreter; ``spawn`` elsewhere); workers run with
  observability on and the parent folds their full metric snapshots
  into its own :mod:`repro.obs` registry *and* re-roots their span
  forests under per-worker ``sweep.worker`` spans, so ``--report``,
  ``--trace``, and the ``--trace-out`` exporters see everything that
  happened in children -- cache hits, counters, and the parallel hot
  paths themselves.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro import obs
from repro.batch.cache import CacheStats, LayoutCache
from repro.batch.spec import SweepJob, SweepSpec, dispatch_scheme
from repro.core.metrics import measure
from repro.grid.io import layout_to_json
from repro.grid.validate import validate_layout

__all__ = [
    "JobResult",
    "SweepResult",
    "SweepRunner",
    "reroot_worker_spans",
    "run_sweep_job",
]


@dataclass
class JobResult:
    """One job's outcome.

    ``row()`` is the deterministic projection (identical across worker
    counts and cache states); ``elapsed_s`` and ``source`` are
    run-dependent diagnostics.
    """

    job_id: str
    network: str
    scheme: str
    layers: int
    num_nodes: int
    num_edges: int
    metrics: dict
    source: str  # "built" | "cache"
    elapsed_s: float

    def row(self) -> dict:
        return {
            "job_id": self.job_id,
            "network": self.network,
            "scheme": self.scheme,
            "layers": self.layers,
            "N": self.num_nodes,
            "E": self.num_edges,
            "metrics": dict(self.metrics),
        }

    def as_dict(self) -> dict:
        return {
            **self.row(),
            "source": self.source,
            "elapsed_s": self.elapsed_s,
        }


@dataclass
class SweepResult:
    """A merged sweep outcome, job results in spec order."""

    spec: SweepSpec
    results: list[JobResult] = field(default_factory=list)
    workers: int = 1
    cache_stats: CacheStats = field(default_factory=CacheStats)
    elapsed_s: float = 0.0

    @property
    def jobs(self) -> int:
        return len(self.results)

    def rows(self) -> list[dict]:
        """The deterministic merged output."""
        return [r.row() for r in self.results]

    def as_dict(self) -> dict:
        return {
            "schema": "repro.sweep-result/v1",
            "spec": self.spec.to_dict(),
            "workers": self.workers,
            "jobs": self.jobs,
            "cache": self.cache_stats.as_dict(),
            "elapsed_s": self.elapsed_s,
            "results": [r.as_dict() for r in self.results],
        }


def run_sweep_job(
    job: SweepJob,
    cache: LayoutCache | None = None,
    *,
    validate: bool = True,
) -> JobResult:
    """Execute one job: cache lookup, else build + validate + measure."""
    t0 = time.perf_counter()
    net = job.build_network()
    key = key_doc = None
    if cache is not None:
        key, key_doc = cache.key_for(
            net, scheme=job.scheme, layers=job.layers,
        )
        entry = cache.get(key, key_doc)
        if entry is not None and entry.metrics is not None:
            return JobResult(
                job_id=job.job_id,
                network=job.network,
                scheme=job.scheme,
                layers=job.layers,
                num_nodes=net.num_nodes,
                num_edges=net.num_edges,
                metrics=entry.metrics,
                source="cache",
                elapsed_s=time.perf_counter() - t0,
            )
    with obs.span("sweep.job", job=job.job_id):
        layout = dispatch_scheme(net, layers=job.layers, scheme=job.scheme)
        if validate:
            validate_layout(layout)
        metrics = measure(layout).as_dict()
    if cache is not None:
        cache.put(key, key_doc, layout_to_json(layout), metrics)
    obs.count("sweep.jobs_built")
    return JobResult(
        job_id=job.job_id,
        network=job.network,
        scheme=job.scheme,
        layers=job.layers,
        num_nodes=net.num_nodes,
        num_edges=net.num_edges,
        metrics=metrics,
        source="built",
        elapsed_s=time.perf_counter() - t0,
    )


def _worker_run(payload: tuple) -> tuple[list[dict], dict, dict, list]:
    """Process-pool entry: run a slice of jobs, return plain dicts.

    Returns ``(results, cache_stats, metrics_snapshot, spans)`` --
    everything the parent needs to merge deterministically: job rows
    keyed by spec index, the cache tally, the worker's full metrics
    snapshot (counters *and* histograms; the parent folds it via
    :meth:`MetricsRegistry.merge`), and the worker's serialized span
    forest, which the parent re-roots under a per-worker span so
    ``obs.trace_roots()`` / ``phase_totals()`` see the whole run.
    """
    jobs, cache_dir, readonly, validate, observe = payload
    cache = (
        LayoutCache(cache_dir, readonly=readonly)
        if cache_dir is not None
        else None
    )
    if observe:
        # A fresh registry per worker: fork inherits the parent's
        # counts and spans, which must not be double-reported.
        obs.reset()
        obs.enable()
    out = []
    for job in jobs:
        res = run_sweep_job(job, cache, validate=validate)
        out.append({"index": job.index, **res.as_dict()})
    snapshot = obs.registry().snapshot() if observe else {}
    spans = (
        [r.as_dict() for r in obs.trace_roots()] if observe else []
    )
    stats = cache.stats.as_dict() if cache is not None else {}
    return out, stats, snapshot, spans


def reroot_worker_spans(
    worker_id: int, span_docs: list, **attrs
) -> None:
    """Attach a worker's serialized span forest to the live trace.

    The forest is rebuilt and wrapped in one ``sweep.worker`` span
    whose attrs carry ``worker_id`` (the exporters key process rows
    off it) plus anything the caller adds; timing is derived from the
    children (monotonic clocks are shared across ``fork``, so child
    timestamps line up with the parent's spans).  No-op when tracing
    is disabled or the worker produced no spans.
    """
    if not span_docs or not obs.enabled():
        return
    children = [obs.SpanRecord.from_dict(d) for d in span_docs]
    start = min((c.start for c in children if c.start), default=0.0)
    end = max((c.end() for c in children), default=start)
    wrapper = obs.SpanRecord(
        name="sweep.worker",
        attrs={"worker_id": worker_id, **attrs},
        start=start,
        duration=max(0.0, end - start),
        children=children,
    )
    obs.attach(wrapper)


class SweepRunner:
    """Executes sweep specs with worker fan-out and a shared cache."""

    def __init__(
        self,
        *,
        cache_dir: str | os.PathLike | None = None,
        cache_readonly: bool = False,
        workers: int = 1,
        validate: bool = True,
        trace_out: str | os.PathLike | None = None,
        events_out: str | os.PathLike | None = None,
    ):
        self.cache_dir = cache_dir
        self.cache_readonly = cache_readonly
        self.workers = max(1, int(workers))
        self.validate = validate
        self.trace_out = trace_out
        self.events_out = events_out

    def run(self, spec: SweepSpec) -> SweepResult:
        jobs = spec.expand()
        # An export request implies observation: turn collection on
        # for the run (and back off, if we enabled it) so the written
        # trace is never empty by accident.
        exporting = self.trace_out or self.events_out
        enabled_here = bool(exporting) and not obs.enabled()
        if enabled_here:
            obs.enable()
        t0 = time.perf_counter()
        try:
            with obs.span(
                "sweep.run", spec=spec.name, jobs=len(jobs),
                workers=self.workers,
            ):
                if self.workers == 1 or len(jobs) <= 1:
                    result = self._run_serial(spec, jobs)
                else:
                    result = self._run_parallel(spec, jobs)
            result.elapsed_s = time.perf_counter() - t0
            obs.count("sweep.runs")
            obs.count("sweep.jobs", len(jobs))
            if self.trace_out:
                from repro.obs.export import write_chrome_trace

                write_chrome_trace(self.trace_out)
            if self.events_out:
                from repro.obs.export import write_jsonl

                write_jsonl(self.events_out)
        finally:
            if enabled_here:
                obs.disable()
        return result

    def _open_cache(self) -> LayoutCache | None:
        if self.cache_dir is None:
            return None
        return LayoutCache(self.cache_dir, readonly=self.cache_readonly)

    def _run_serial(
        self, spec: SweepSpec, jobs: list[SweepJob]
    ) -> SweepResult:
        cache = self._open_cache()
        results = [
            run_sweep_job(job, cache, validate=self.validate)
            for job in jobs
        ]
        out = SweepResult(spec=spec, results=results, workers=1)
        if cache is not None:
            out.cache_stats.merge(cache.stats)
        return out

    def _run_parallel(
        self, spec: SweepSpec, jobs: list[SweepJob]
    ) -> SweepResult:
        # Round-robin slices: contiguous runs of one family often share
        # cost structure, so interleaving balances the workers.
        slices = [jobs[w::self.workers] for w in range(self.workers)]
        payloads = [
            (
                s,
                None if self.cache_dir is None else os.fspath(self.cache_dir),
                self.cache_readonly,
                self.validate,
                obs.enabled(),
            )
            for s in slices
            if s
        ]
        out = SweepResult(spec=spec, workers=self.workers)
        merged: dict[int, JobResult] = {}
        with ProcessPoolExecutor(
            max_workers=len(payloads), mp_context=_mp_context()
        ) as pool:
            # pool.map yields in payload order, so metric folds and
            # span re-rooting happen in worker-id order -- the merged
            # registry and trace are deterministic for a given worker
            # count, mirroring the row-merge guarantee.
            for wid, (results, stats, snapshot, spans) in enumerate(
                pool.map(_worker_run, payloads)
            ):
                indices = []
                for doc in results:
                    index = doc.pop("index")
                    indices.append(index)
                    merged[index] = JobResult(
                        job_id=doc["job_id"],
                        network=doc["network"],
                        scheme=doc["scheme"],
                        layers=doc["layers"],
                        num_nodes=doc["N"],
                        num_edges=doc["E"],
                        metrics=doc["metrics"],
                        source=doc["source"],
                        elapsed_s=doc["elapsed_s"],
                    )
                out.cache_stats.merge(stats)
                if snapshot and obs.enabled():
                    obs.registry().merge(snapshot)
                reroot_worker_spans(
                    wid, spans,
                    jobs=len(indices),
                    indices=",".join(str(i) for i in sorted(indices)),
                )
        out.results = [merged[i] for i in sorted(merged)]
        return out


def _mp_context():
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")
