"""Placement optimization for generic layouts."""

import pytest

from conftest import assert_layout_ok
from repro.core import measure
from repro.core.placement import optimize_placement, placement_cost
from repro.core.schemes import layout_generic_grid
from repro.topology import DeBruijn, Hypercube, Ring, ShuffleExchange, StarGraph


class TestPlacementCost:
    def test_row_edges_cheap(self):
        net = Ring(4)
        inline = {0: (0, 0), 1: (0, 1), 2: (0, 2), 3: (0, 3)}
        diagonal = {0: (0, 0), 1: (1, 1), 2: (0, 2), 3: (1, 3)}
        assert placement_cost(net, inline) < placement_cost(net, diagonal)

    def test_extra_penalty_weighting(self):
        net = Ring(4)
        diag = {0: (0, 0), 1: (1, 1), 2: (0, 2), 3: (1, 3)}
        assert placement_cost(net, diag, extra_penalty=100) > placement_cost(
            net, diag, extra_penalty=0
        )


class TestOptimizePlacement:
    def test_is_a_bijection_onto_grid(self):
        net = Hypercube(4)
        pos = optimize_placement(net)
        assert len(set(pos.values())) == net.num_nodes
        assert set(pos) == set(net.nodes)

    def test_deterministic(self):
        net = ShuffleExchange(4)
        assert optimize_placement(net, seed=1) == optimize_placement(net, seed=1)

    def test_improves_over_index_order(self):
        for net in (ShuffleExchange(5), DeBruijn(5), StarGraph(4)):
            plain = measure(layout_generic_grid(net, layers=4))
            opt = measure(layout_generic_grid(net, layers=4, optimize=True))
            assert opt.area < plain.area

    def test_optimized_layout_still_exact(self):
        net = DeBruijn(4)
        lay = layout_generic_grid(net, layers=4, optimize=True)
        assert_layout_ok(lay, net)

    def test_hypercube_gets_near_product_placement(self):
        """On a true product network the optimizer should eliminate
        most diagonal edges."""
        net = Hypercube(4)
        pos = optimize_placement(net, iterations=4000, restarts=3)
        extra = sum(
            1
            for u, v in net.edges
            if pos[u][0] != pos[v][0] and pos[u][1] != pos[v][1]
        )
        assert extra <= net.num_edges // 3
