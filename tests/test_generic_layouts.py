"""Generic-grid fallback and SCC layouts."""

import pytest

from conftest import assert_layout_ok
from repro.core.schemes import (
    layout_cayley,
    layout_generic_grid,
    layout_scc,
)
from repro.topology import (
    BubbleSortGraph,
    PancakeGraph,
    StarConnectedCycles,
    StarGraph,
    TranspositionNetwork,
)
from repro.topology.base import build_network


class TestGenericGrid:
    @pytest.mark.parametrize(
        "net",
        [StarGraph(4), PancakeGraph(4), BubbleSortGraph(4),
         TranspositionNetwork(4)],
        ids=lambda n: n.name,
    )
    def test_cayley_family_routes(self, net):
        lay = layout_generic_grid(net, layers=4)
        assert_layout_ok(lay, net)

    def test_random_graph(self):
        import random

        rng = random.Random(7)
        nodes = list(range(20))
        edges = sorted(
            {tuple(sorted(rng.sample(nodes, 2))) for _ in range(40)}
        )
        net = build_network(nodes, edges, "random20")
        lay = layout_generic_grid(net, layers=4)
        assert_layout_ok(lay, net)

    def test_aspect_controls_shape(self):
        net = StarGraph(4)
        wide = layout_generic_grid(net, aspect=4.0)
        tall = layout_generic_grid(net, aspect=0.25)
        assert wide.meta["cols"] > tall.meta["cols"]

    def test_multilayer_shrinks_area(self):
        net = TranspositionNetwork(4)
        a2 = layout_generic_grid(net, layers=2).area
        a8 = layout_generic_grid(net, layers=8).area
        assert a8 < a2

    def test_specialized_beats_generic_for_star(self):
        """The cluster scheme's structure pays off vs the fallback."""
        net = StarGraph(4)
        generic = layout_generic_grid(net, layers=2)
        special = layout_cayley(net, layers=2)
        assert special.area < generic.area * 1.5  # competitive or better


class TestSCC:
    @pytest.mark.parametrize("layers", [2, 4])
    def test_valid_and_exact(self, layers):
        lay = layout_scc(4, layers=layers)
        assert_layout_ok(lay, StarConnectedCycles(4))

    def test_quotient_is_complete(self):
        lay = layout_scc(4)
        assert lay.meta["clusters"] == 4
        # Quotient K_4 with multiplicity (n-2)! = 2 (only the generator
        # swapping the last position crosses symbol classes): collinear
        # K_4 needs |16/4| = 4 tracks, x2 = 8, + attachment rounding.
        assert 8 <= lay.meta["row_tracks"][0] <= 12

    def test_quotient_multiplicity_checked(self):
        from repro.topology import Partition, quotient

        net = StarConnectedCycles(4)
        part = Partition({v: v[0][-1] for v in net.nodes}, name="scc-ls")
        q = quotient(net, part)
        assert set(q.multiplicity().values()) == {2}  # (n-2)!
