"""Collinear layouts of Cartesian products, composed from the factors.

All three of the paper's recursions (ring -> k-ary n-cube, K_r -> GHC,
2-cube -> hypercube) are instances of one composition: given collinear
layouts of A (f_A tracks) and B (f_B tracks),

    f(A x B)  <=  |A| * f_B + f_A .

Construction: order the product lexicographically with B's position
major -- node (a, b) at position pos_B(b) * |A| + pos_A(a).  Then

* each B-edge appears |A| times (one per A-node), the copies shifted by
  one; copy ``a`` reuses B's track assignment at offset
  ``pos_A(a) * f_B`` (the "interleaved copies" of Section 3.1);
* each A-edge appears |B| times, each confined to one block of |A|
  consecutive positions, so A's own track assignment serves all blocks
  simultaneously in ``f_A`` extra tracks.

With A = ring (2 tracks) this is exactly f_k(n+1) = k f_k(n) + 2; with
A = K_r it is the GHC recurrence.  The generic engine can beat the
composition (left-edge may interleave the copies more cleverly), which
tests assert as ``engine <= composition``.
"""

from __future__ import annotations

from repro.collinear.engine import CollinearLayout

__all__ = ["product_collinear"]


def product_collinear(
    a_lay: CollinearLayout, b_lay: CollinearLayout
) -> CollinearLayout:
    """Compose collinear layouts of factors A and B into one of A x B.

    Nodes of the result are ``(a, b)`` pairs.  Track count is exactly
    ``len(A) * B.num_tracks + A.num_tracks``.
    """
    na = a_lay.num_nodes
    fa, fb = a_lay.num_tracks, b_lay.num_tracks

    order = [(a, b) for b in b_lay.order for a in a_lay.order]
    edges = []
    tracks = []

    # B-edges, one copy per A-node; copy with A-position p uses B's
    # track assignment shifted by p * f_B.
    for e, (b1, b2) in enumerate(b_lay.edges):
        for a in a_lay.order:
            p = a_lay.pos[a]
            edges.append(((a, b1), (a, b2)))
            tracks.append(p * fb + b_lay.tracks[e])

    # A-edges, one copy per B-node, all inside disjoint blocks: A's own
    # assignment works verbatim in f_A shared tracks on top.
    base = na * fb
    for e, (a1, a2) in enumerate(a_lay.edges):
        for b in b_lay.order:
            edges.append(((a1, b), (a2, b)))
            tracks.append(base + a_lay.tracks[e])

    lay = CollinearLayout(
        order=order,
        edges=edges,
        tracks=tracks,
        num_tracks=na * fb + fa,
    )
    lay.check()
    return lay
