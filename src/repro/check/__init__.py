"""repro.check: the differential fuzzing subsystem.

Turns the library's one-off property tests into a reusable
verification engine:

* :mod:`repro.check.generate` -- seeded random-network generators
  (connected graphs, randomized zoo members, structural mutants) and
  the layout-corruption harness;
* :mod:`repro.check.differential` -- a pipeline driver running every
  generated network through every applicable scheme and asserting
  cross-stage invariants against independent oracles (brute-force
  occupancy, exact cutwidth DP, exact bisection bounds);
* :mod:`repro.check.shrink` -- a delta-debugging shrinker that reduces
  failures to minimal counterexamples and serializes them into the
  replayable corpus under ``tests/corpus/``.

CLI: ``python -m repro fuzz --budget N --seed S`` (with ``--trace`` /
``--report`` observability like every other subcommand).
"""

from repro.check.differential import (
    STAGES,
    CheckResult,
    FuzzReport,
    Violation,
    build_scheme_layout,
    check_case,
    run_fuzz,
)
from repro.check.generate import (
    KINDS,
    CheckCase,
    generate_cases,
    mutate_layout,
    mutate_network,
    network_from_doc,
    network_to_doc,
    random_connected_network,
    random_zoo_network,
)
from repro.check.shrink import (
    CORPUS_FORMAT,
    iter_corpus,
    load_counterexample,
    save_counterexample,
    shrink_failing_case,
    shrink_network,
)

__all__ = [
    "CheckCase",
    "CheckResult",
    "FuzzReport",
    "Violation",
    "STAGES",
    "KINDS",
    "CORPUS_FORMAT",
    "generate_cases",
    "random_connected_network",
    "random_zoo_network",
    "mutate_network",
    "mutate_layout",
    "network_to_doc",
    "network_from_doc",
    "check_case",
    "run_fuzz",
    "build_scheme_layout",
    "shrink_network",
    "shrink_failing_case",
    "save_counterexample",
    "load_counterexample",
    "iter_corpus",
]
