"""E7: the introduction's performance argument, quantified.

"...the maximum length of wires can be reduced by a factor of
approximately t [and] the maximum total length of wires along the
routing path ... leading to lower cost and/or higher performance."

Under a standard wire-delay model (repeatered linear delay, plus an
unbuffered RC variant), the multilayer layouts' shorter wires turn
directly into faster clocks and lower message latencies, while the
folded baseline's performance is pinned at the 2-layer level.
"""

from repro.core import layout_hypercube
from repro.core.delay import DelayModel, performance
from repro.core.folding import fold_layout


def test_clock_and_latency_vs_layers(benchmark, report):
    base = layout_hypercube(10, layers=2, node_side="min")
    base_rep = performance(base, max_sources=8)
    rows = []
    for L in (2, 4, 8, 16):
        lay = layout_hypercube(10, layers=L, node_side="min")
        rep = performance(lay, max_sources=8)
        folded_rep = performance(fold_layout(base, L), max_sources=8)
        rows.append([
            L,
            f"{rep.clock_period:.0f}",
            f"{base_rep.clock_period / rep.clock_period:.2f}",
            f"{base_rep.clock_period / folded_rep.clock_period:.2f}",
            f"{rep.worst_latency:.0f}",
            f"{base_rep.worst_latency / rep.worst_latency:.2f}",
            f"{base_rep.avg_latency / rep.avg_latency:.2f}",
        ])
    report(
        "E7a: 10-cube clock period and message latency vs L "
        "(linear wire delay; folding stays at 1.00x)",
        ["L", "clock", "clock speedup", "clock speedup (fold)",
         "worst latency", "latency speedup", "avg speedup"],
        rows,
    )
    benchmark.pedantic(
        performance, args=(base,), kwargs={"max_sources": 8},
        rounds=1, iterations=1,
    )


def test_rc_wires_amplify(report, benchmark):
    rc = DelayModel(alpha=0.0, beta=0.05, router_delay=20.0)
    rows = []
    base_rep = None
    for L in (2, 4, 8):
        lay = layout_hypercube(10, layers=L, node_side="min")
        rep = performance(lay, rc, max_sources=4)
        if base_rep is None:
            base_rep = rep
        rows.append([
            L,
            f"{rep.max_wire_delay:.0f}",
            f"{base_rep.max_wire_delay / max(rep.max_wire_delay, 1e-9):.2f}",
            f"{base_rep.clock_period / rep.clock_period:.2f}",
        ])
    report(
        "E7b: unbuffered RC wires -- quadratic delay makes the L/2 wire "
        "reduction a ~(L/2)^2 delay win",
        ["L", "max wire delay", "delay ratio", "clock speedup"],
        rows,
    )
    benchmark(performance, layout_hypercube(8, node_side="min"), rc)
