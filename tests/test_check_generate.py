"""Tests for the fuzzer's seeded generators (repro.check.generate)."""

import random

import pytest

from repro.check.generate import (
    KINDS,
    generate_cases,
    mutate_layout,
    mutate_network,
    network_from_doc,
    network_to_doc,
    random_connected_network,
    random_zoo_network,
)
from repro.core.schemes import layout_generic_grid
from repro.grid.io import clone_layout
from repro.topology import KAryNCube


class TestRandomConnected:
    def test_connected_and_bounded(self):
        rng = random.Random(0)
        for _ in range(50):
            net = random_connected_network(rng, min_nodes=2, max_nodes=9)
            assert 2 <= net.num_nodes <= 9
            assert net.is_connected()
            assert net.num_edges >= net.num_nodes - 1

    def test_max_degree_cap(self):
        rng = random.Random(1)
        for _ in range(30):
            net = random_connected_network(rng, max_nodes=10, max_degree=3)
            # The spanning tree ignores the cap; only extra edges
            # respect it, so allow tree degree + capped extras.
            for v in net.nodes:
                assert net.degree(v) <= 3 + net.num_nodes

    def test_simple_graph(self):
        rng = random.Random(2)
        for _ in range(30):
            net = random_connected_network(rng)
            assert len(set(net.edge_multiset())) == net.num_edges


class TestZoo:
    def test_every_builder_constructs(self):
        rng = random.Random(3)
        for _ in range(120):
            net = random_zoo_network(rng)
            assert net.num_nodes >= 2
            assert net.is_connected()


class TestMutants:
    def test_mutation_keeps_connectivity(self):
        rng = random.Random(4)
        for _ in range(40):
            base = random_connected_network(rng, min_nodes=4, max_nodes=10)
            mut = mutate_network(base, rng)
            assert mut.is_connected()

    def test_mutation_changes_something_usually(self):
        rng = random.Random(5)
        changed = 0
        for _ in range(40):
            base = random_connected_network(rng, min_nodes=4, max_nodes=10)
            mut = mutate_network(base, rng)
            changed += (
                sorted(map(str, mut.edges)) != sorted(map(str, base.edges))
                or mut.num_nodes != base.num_nodes
            )
        assert changed >= 30


class TestCaseStream:
    def test_deterministic_replay(self):
        a = list(generate_cases(5, 30))
        b = list(generate_cases(5, 30))
        for ca, cb in zip(a, b):
            assert ca.case_id == cb.case_id
            assert ca.seed == cb.seed
            assert ca.kind == cb.kind
            assert list(ca.network.nodes) == list(cb.network.nodes)
            assert list(ca.network.edges) == list(cb.network.edges)

    def test_prefix_stable_under_budget(self):
        short = list(generate_cases(7, 10))
        long = list(generate_cases(7, 40))[:10]
        for cs, cl in zip(short, long):
            assert cs.case_id == cl.case_id
            assert list(cs.network.edges) == list(cl.network.edges)

    def test_kinds_cycle_and_filter(self):
        cases = list(generate_cases(0, 12))
        assert [c.kind for c in cases] == list(KINDS) * 4
        only_zoo = list(generate_cases(0, 6, kinds=("zoo",)))
        assert all(c.kind == "zoo" for c in only_zoo)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            list(generate_cases(0, 1, kinds=("nope",)))

    def test_ids_encode_seed_and_index(self):
        cases = list(generate_cases(9, 3))
        assert [c.case_id for c in cases] == [
            "seed9/case0", "seed9/case1", "seed9/case2",
        ]


class TestLayoutMutation:
    def test_applied_mutation_alters_geometry(self):
        base = layout_generic_grid(KAryNCube(3, 2, wraparound=False), layers=4)
        rng = random.Random(0)
        altered = 0
        for _ in range(30):
            lay = clone_layout(base)
            if mutate_layout(lay, rng):
                before = [w.segments for w in base.wires]
                after = [w.segments for w in lay.wires]
                altered += before != after
        assert altered >= 10

    def test_rejected_mutation_leaves_layout_intact(self):
        base = layout_generic_grid(KAryNCube(2, 1, wraparound=False), layers=2)
        rng = random.Random(1)
        for _ in range(20):
            lay = clone_layout(base)
            if not mutate_layout(lay, rng):
                assert [w.segments for w in lay.wires] == [
                    w.segments for w in base.wires
                ]


class TestNetworkDocs:
    def test_roundtrip_int_labels(self):
        rng = random.Random(6)
        net = random_connected_network(rng)
        back = network_from_doc(network_to_doc(net))
        assert list(back.nodes) == list(net.nodes)
        assert list(back.edges) == list(net.edges)
        assert back.name == net.name

    def test_roundtrip_tuple_labels(self):
        net = KAryNCube(3, 2)
        back = network_from_doc(network_to_doc(net))
        assert list(back.nodes) == list(net.nodes)
        assert sorted(back.edge_multiset()) == sorted(net.edge_multiset())
