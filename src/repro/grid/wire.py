"""Wires: routed nets of the multilayer grid model.

A :class:`Wire` realizes one network edge as a connected rectilinear
path.  Consecutive segments must share a planar endpoint; where they
additionally differ in layer, the shared point is a *via* (an
inter-layer connector, Section 2.1 of the paper).  Where two
consecutive segments share layer and change direction, the shared point
is a *bend*; the Thompson model forbids two distinct wires from bending
at the same grid point (a knock-knee), which the validator checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.grid.geometry import Point, Segment

__all__ = ["Wire", "WirePathError"]


class WirePathError(ValueError):
    """Raised when a wire's segments do not form a connected path."""


@dataclass(slots=True)
class Wire:
    """A routed connection between two network nodes.

    Parameters
    ----------
    u, v:
        The network nodes this wire connects (``u`` is the end the
        path's first segment starts at).
    segments:
        The rectilinear path, ordered from the ``u``-side pin to the
        ``v``-side pin.  Validated on construction.
    edge_key:
        Optional discriminator for parallel edges (multigraphs such as
        the butterfly quotient of Section 4.2 need it).
    riser:
        A pure z-direction wire (multilayer *3-D* grid model): the
        tuple ``(x, y, z_lo, z_hi)`` of a vertical run connecting nodes
        on two active layers at one planar point.  Mutually exclusive
        with ``segments``; build with :meth:`Wire.make_riser`.
    """

    u: Hashable
    v: Hashable
    segments: list[Segment]
    edge_key: int = 0
    riser: tuple[int, int, int, int] | None = None
    _points: list[Point] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.riser is not None:
            if self.segments:
                raise WirePathError(
                    f"wire {self.u}-{self.v}: riser wires carry no "
                    "planar segments"
                )
            x, y, zlo, zhi = self.riser
            if not (1 <= zlo < zhi):
                raise WirePathError(
                    f"wire {self.u}-{self.v}: bad riser layers {zlo}..{zhi}"
                )
            self._points = [Point(x, y, zlo), Point(x, y, zhi)]
            return
        if not self.segments:
            raise WirePathError(f"wire {self.u}-{self.v} has no segments")
        self._points = _trace_path(self.segments, self.u, self.v)

    @staticmethod
    def make_riser(
        u: Hashable, v: Hashable, x: int, y: int, z_lo: int, z_hi: int,
        edge_key: int = 0,
    ) -> "Wire":
        """An inter-active-layer connection at planar point (x, y)."""
        return Wire(u, v, [], edge_key=edge_key, riser=(x, y, z_lo, z_hi))

    def path_points(self) -> list[Point]:
        """The wire's vertices in path order (u pin, bends, v pin)."""
        return list(self._points)

    @property
    def start(self) -> Point:
        """The pin point on the ``u`` side."""
        return self._points[0]

    @property
    def end(self) -> Point:
        """The pin point on the ``v`` side."""
        return self._points[-1]

    @property
    def length(self) -> int:
        """Total wire length in grid units (planar runs plus z-runs)."""
        if self.riser is not None:
            return self.riser[3] - self.riser[2]
        return sum(s.length for s in self.segments)

    def vias(self) -> list[tuple[int, int]]:
        """Planar positions where the wire changes layer."""
        if self.riser is not None:
            return [(self.riser[0], self.riser[1])]
        out: list[tuple[int, int]] = []
        for i in range(len(self.segments) - 1):
            s1, s2 = self.segments[i], self.segments[i + 1]
            if s1.layer != s2.layer:
                out.append(self._points[i + 1].planar())
        return out

    def bends(self) -> list[tuple[int, int]]:
        """Planar positions of interior vertices (direction or layer
        changes).  Used for knock-knee checking: no grid point may be a
        bend/via of two distinct wires."""
        return [p.planar() for p in self._points[1:-1]]

    def z_occupancy(self) -> list[tuple[tuple[int, int], int, int]]:
        """(planar point, z_lo, z_hi) for every z-run of the wire."""
        if self.riser is not None:
            x, y, zlo, zhi = self.riser
            return [((x, y), zlo, zhi)]
        out = []
        for i in range(len(self.segments) - 1):
            s1, s2 = self.segments[i], self.segments[i + 1]
            if s1.layer != s2.layer:
                lo = min(s1.layer, s2.layer)
                hi = max(s1.layer, s2.layer)
                out.append((self._points[i + 1].planar(), lo, hi))
        return out

    def layers_used(self) -> set[int]:
        if self.riser is not None:
            return set(range(self.riser[2], self.riser[3] + 1))
        return {s.layer for s in self.segments}

    def key(self) -> tuple[Hashable, Hashable, int]:
        """Canonical (sorted-endpoint) identity of the routed edge."""
        a, b = self.u, self.v
        if _sort_key(b) < _sort_key(a):
            a, b = b, a
        return (a, b, self.edge_key)


def _sort_key(node: Hashable) -> tuple:
    """Total order over heterogeneous node labels."""
    return (str(type(node)), repr(node))


def _trace_path(
    segments: Sequence[Segment], u: Hashable, v: Hashable
) -> list[Point]:
    """Orient each segment along the path and return the vertex list.

    Segments are stored normalized (endpoint-sorted); the path may
    traverse any of them in reverse.  The first segment's free endpoint
    is the ``u`` pin.  Raises :class:`WirePathError` on a disconnect.
    """
    segs = list(segments)
    if len(segs) == 1:
        a, b = segs[0].endpoints()
        return [a, b]

    first, second = segs[0], segs[1]
    f1, f2 = first.endpoints()
    shared = _shared_planar(first, second)
    if shared is None:
        raise WirePathError(
            f"wire {u}-{v}: segments 0 and 1 do not touch "
            f"({first} vs {second})"
        )
    # Start from whichever endpoint of the first segment is NOT shared.
    if f1.planar() == shared:
        points = [f2, f1]
    else:
        points = [f1, f2]

    for i in range(1, len(segs)):
        seg = segs[i]
        cur = points[-1].planar()
        e1, e2 = seg.endpoints()
        if e1.planar() == cur:
            nxt = e2
        elif e2.planar() == cur:
            nxt = e1
        else:
            raise WirePathError(
                f"wire {u}-{v}: segment {i} does not continue the path "
                f"at {cur}: {seg}"
            )
        # Re-anchor the junction on the new segment's layer so vias are
        # explicit in the vertex list.
        points[-1] = Point(cur[0], cur[1], points[-1].layer)
        points.append(nxt)
    return points


def _shared_planar(a: Segment, b: Segment) -> tuple[int, int] | None:
    a_ends = {p.planar() for p in a.endpoints()}
    b_ends = {p.planar() for p in b.endpoints()}
    common = a_ends & b_ends
    if not common:
        return None
    if len(common) == 2:
        # Two segments sharing both endpoints: degenerate U-turn.
        raise WirePathError(f"segments share both endpoints: {a} / {b}")
    return next(iter(common))
