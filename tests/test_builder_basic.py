"""Builder fundamentals on plain-node grids."""

import pytest

from conftest import assert_layout_ok
from repro.core import layout_collinear_network, layout_kary
from repro.core.builder import build_orthogonal_layout
from repro.core.spec import LayoutSpec, LinkSpec, NodeCell
from repro.topology import KAryNCube, Ring


def simple_spec(layers=2, side=2):
    cells = {(i, j): NodeCell((i, j), side) for i in range(2) for j in range(2)}
    spec = LayoutSpec(rows=2, cols=2, cells=cells, layers=layers, name="2x2")
    spec.row_links = [
        LinkSpec((0, 0), (0, 1), (0, 0), (0, 1)),
        LinkSpec((1, 0), (1, 1), (1, 0), (1, 1)),
    ]
    spec.col_links = [
        LinkSpec((0, 0), (1, 0), (0, 0), (1, 0)),
        LinkSpec((0, 1), (1, 1), (0, 1), (1, 1)),
    ]
    return spec


class TestBasics:
    def test_2x2_grid_routes(self):
        lay = build_orthogonal_layout(simple_spec())
        assert len(lay.wires) == 4
        assert_layout_ok(lay)

    def test_every_node_placed(self):
        lay = build_orthogonal_layout(simple_spec())
        assert len(lay.placements) == 4

    def test_meta_channels(self):
        lay = build_orthogonal_layout(simple_spec())
        assert lay.meta["row_tracks"] == [1, 1]
        assert lay.meta["col_tracks"] == [1, 1]

    def test_wire_endpoints_are_links(self):
        lay = build_orthogonal_layout(simple_spec())
        pairs = set(lay.edge_multiset())
        assert len(pairs) == 4

    def test_layers_respected(self):
        for L in (2, 3, 4, 8):
            lay = build_orthogonal_layout(simple_spec(layers=L))
            assert max(max(s.layer for s in w.segments) for w in lay.wires) <= L
            assert_layout_ok(lay)

    def test_single_cell_no_links(self):
        spec = LayoutSpec(
            rows=1, cols=1, cells={(0, 0): NodeCell("a", 3)}, name="dot"
        )
        lay = build_orthogonal_layout(spec)
        assert lay.area == 9
        assert_layout_ok(lay)

    def test_parallel_links_use_separate_tracks(self):
        cells = {(0, 0): NodeCell("a", 4), (0, 1): NodeCell("b", 4)}
        spec = LayoutSpec(rows=1, cols=2, cells=cells)
        spec.row_links = [
            LinkSpec((0, 0), (0, 1), "a", "b", edge_key=0),
            LinkSpec((0, 0), (0, 1), "a", "b", edge_key=1),
            LinkSpec((0, 0), (0, 1), "a", "b", edge_key=2),
        ]
        lay = build_orthogonal_layout(spec)
        assert lay.meta["row_tracks"] == [3]
        assert_layout_ok(lay)
        assert lay.edge_multiset() == {("a", "b"): 3}

    def test_pin_overflow_raises(self):
        cells = {(0, 0): NodeCell("a", 1), (0, 1): NodeCell("b", 1)}
        spec = LayoutSpec(rows=1, cols=2, cells=cells)
        spec.row_links = [
            LinkSpec((0, 0), (0, 1), "a", "b", edge_key=k) for k in range(3)
        ]
        with pytest.raises(ValueError, match="node_side"):
            build_orthogonal_layout(spec)


class TestCollinearAsGrid:
    def test_ring_track_count(self):
        lay = layout_collinear_network(Ring(8))
        assert lay.meta["row_tracks"] == [2]
        assert_layout_ok(lay, Ring(8))

    def test_multilayer_shrinks_height_only(self):
        l2 = layout_collinear_network(Ring(8), layers=2)
        l4 = layout_collinear_network(Ring(8), layers=4)
        assert l4.width == l2.width
        assert l4.height < l2.height

    def test_order_respected(self):
        r = Ring(5)
        lay = layout_collinear_network(r, order=[4, 3, 2, 1, 0])
        xs = {v: p.rect.x0 for v, p in lay.placements.items()}
        assert xs[4] < xs[3] < xs[0]

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError, match="permutation"):
            layout_collinear_network(Ring(5), order=[0, 1, 2])


class TestDeterminism:
    def test_same_spec_same_layout(self):
        a = layout_kary(3, 2, layers=4)
        b = layout_kary(3, 2, layers=4)
        assert a.summary() == b.summary()
        wa = sorted((w.key(), w.length) for w in a.wires)
        wb = sorted((w.key(), w.length) for w in b.wires)
        assert wa == wb

    def test_topology_preserved(self):
        assert_layout_ok(layout_kary(4, 2, layers=6), KAryNCube(4, 2))
