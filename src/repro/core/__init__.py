"""The paper's layout schemes (Sections 2.3-2.4) and their analysis.

* :mod:`repro.core.spec` / :mod:`repro.core.builder` -- the orthogonal
  multilayer layout scheme: a grid of cells (plain nodes or cluster
  blocks), row/column/extra links, detailed routing, track-to-layer
  assignment.
* :mod:`repro.core.schemes` -- per-family layout constructors
  (k-ary n-cube, hypercube, GHC, butterfly, CCC, HSN, ...).
* :mod:`repro.core.folding` -- the folded-Thompson and multilayer
  collinear baselines the paper compares against (Section 2.2).
* :mod:`repro.core.analysis` -- the paper's closed-form leading-term
  predictions for area/volume/wire length.
* :mod:`repro.core.metrics` -- measured metrics, including the maximum
  total wire length along shortest routing paths (claim (4)).
"""

from repro.core.analysis import paper_prediction
from repro.core.bounds import (
    area_lower_bound,
    bisection_formula,
    exact_bisection,
    kernighan_lin,
    optimality_factor,
    volume_lower_bound,
    wire_lower_bound,
)
from repro.core.builder import build_orthogonal_layout
from repro.core.delay import DelayModel, PerformanceReport, performance
from repro.core.folding import (
    collinear_multilayer_metrics,
    fold_layout,
    fold_metrics,
)
from repro.core.metrics import LayoutMetrics, measure
from repro.core.schemes import (
    layout_butterfly,
    layout_ccc,
    layout_cluster_network,
    layout_collinear_network,
    layout_complete,
    layout_enhanced_cube,
    layout_folded_hypercube,
    layout_ghc,
    layout_hsn,
    layout_hypercube,
    layout_isn,
    layout_kary,
    layout_network,
    layout_product,
    layout_reduced_hypercube,
)
from repro.core.spec import BlockCell, LayoutSpec, LinkSpec, NodeCell
from repro.core.threedee import layout_product_3d

__all__ = [
    "build_orthogonal_layout",
    "LayoutSpec",
    "NodeCell",
    "BlockCell",
    "LinkSpec",
    "layout_network",
    "layout_kary",
    "layout_hypercube",
    "layout_ghc",
    "layout_complete",
    "layout_product",
    "layout_collinear_network",
    "layout_butterfly",
    "layout_isn",
    "layout_ccc",
    "layout_reduced_hypercube",
    "layout_hsn",
    "layout_folded_hypercube",
    "layout_enhanced_cube",
    "layout_cluster_network",
    "fold_metrics",
    "fold_layout",
    "collinear_multilayer_metrics",
    "paper_prediction",
    "measure",
    "LayoutMetrics",
    "exact_bisection",
    "kernighan_lin",
    "bisection_formula",
    "area_lower_bound",
    "volume_lower_bound",
    "wire_lower_bound",
    "optimality_factor",
    "DelayModel",
    "PerformanceReport",
    "performance",
    "layout_product_3d",
]
