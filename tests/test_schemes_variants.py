"""Folded hypercube and enhanced cube layouts (Section 5.3)."""

import pytest

from conftest import assert_layout_ok
from repro.core import (
    layout_enhanced_cube,
    layout_folded_hypercube,
    layout_hypercube,
)
from repro.topology import EnhancedCube, FoldedHypercube


class TestFoldedHypercube:
    @pytest.mark.parametrize("n,L", [(3, 2), (4, 2), (4, 4), (5, 4), (4, 3)])
    def test_valid_and_exact(self, n, L):
        lay = layout_folded_hypercube(n, layers=L)
        assert_layout_ok(lay, FoldedHypercube(n))

    def test_extra_track_accounting(self):
        """N/2 diameter links, one dedicated H track in the source row
        and one dedicated V track in the target column: totals must be
        exactly N/2 each beyond the hypercube's packed channels."""
        n = 4
        plain = layout_hypercube(n)
        folded = layout_folded_hypercube(n)
        N = 1 << n
        extra_h = sum(folded.meta["row_tracks"]) - sum(plain.meta["row_tracks"])
        extra_v = sum(folded.meta["col_tracks"]) - sum(plain.meta["col_tracks"])
        assert extra_h == N // 2
        assert extra_v == N // 2
        assert folded.meta["extra_link_count"] == N // 2

    def test_diameter_links_routed_as_extras(self):
        lay = layout_folded_hypercube(4)
        ms = lay.edge_multiset()
        assert ms[(0, 15)] == 1
        assert ms[(1, 14)] == 1

    def test_larger_than_plain_hypercube(self):
        plain = layout_hypercube(5)
        folded = layout_folded_hypercube(5)
        assert folded.area > plain.area

    def test_multilayer_shrinks(self):
        a2 = layout_folded_hypercube(5, layers=2).area
        a4 = layout_folded_hypercube(5, layers=4).area
        assert a4 < a2


class TestEnhancedCube:
    @pytest.mark.parametrize("n,L", [(3, 2), (4, 2), (4, 4)])
    def test_valid_and_exact(self, n, L):
        lay = layout_enhanced_cube(n, layers=L)
        assert_layout_ok(lay, EnhancedCube(n))

    def test_seed_changes_layout_but_not_structure(self):
        a = layout_enhanced_cube(4, seed=1)
        b = layout_enhanced_cube(4, seed=2)
        assert len(a.wires) == len(b.wires)
        assert_layout_ok(a, EnhancedCube(4, seed=1))
        assert_layout_ok(b, EnhancedCube(4, seed=2))

    def test_extra_count_is_N(self):
        n = 4
        lay = layout_enhanced_cube(n)
        # Random links that land in the same row/column route as normal
        # links, so extras <= N; the rest are still present as wires.
        assert lay.meta["extra_link_count"] <= (1 << n)
        assert len(lay.wires) == (1 << n) * n // 2 + (1 << n)

    def test_bigger_than_folded(self):
        """N random links cost more than N/2 diameter links."""
        folded = layout_folded_hypercube(5)
        enhanced = layout_enhanced_cube(5)
        assert enhanced.area > folded.area
