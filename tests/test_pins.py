"""Pin allocator: uniqueness, ordering, capacity."""

import pytest

from repro.core.pins import PinAllocator


class TestPinAllocator:
    def test_ordered_assignment(self):
        alloc = PinAllocator()
        alloc.request("n", "top", (1, 5), "b")
        alloc.request("n", "top", (0, 9), "a")
        alloc.freeze()
        # Sorted by key: (0,9) before (1,5).
        assert alloc.offset("n", "top", "a") == 0
        assert alloc.offset("n", "top", "b") == 1

    def test_sides_independent(self):
        alloc = PinAllocator()
        alloc.request("n", "top", (0,), "t")
        alloc.request("n", "right", (0,), "r")
        alloc.freeze()
        assert alloc.offset("n", "top", "t") == 0
        assert alloc.offset("n", "right", "r") == 0

    def test_capacity_enforced(self):
        alloc = PinAllocator()
        alloc.set_capacity("n", "top", 1)
        alloc.request("n", "top", (0,), "a")
        alloc.request("n", "top", (1,), "b")
        with pytest.raises(ValueError, match="raise node_side"):
            alloc.freeze()

    def test_duplicate_token_rejected(self):
        alloc = PinAllocator()
        alloc.request("n", "top", (0,), "a")
        alloc.request("n", "top", (1,), "a")
        with pytest.raises(ValueError, match="duplicate"):
            alloc.freeze()

    def test_must_freeze_before_reading(self):
        alloc = PinAllocator()
        alloc.request("n", "top", (0,), "a")
        with pytest.raises(RuntimeError, match="freeze"):
            alloc.offset("n", "top", "a")

    def test_no_requests_after_freeze(self):
        alloc = PinAllocator()
        alloc.freeze()
        with pytest.raises(RuntimeError, match="frozen"):
            alloc.request("n", "top", (0,), "a")

    def test_arrivals_before_departures(self):
        """The ordering rule that makes touching intervals track-safe:
        all direction-0 (arriving) requests get smaller offsets than any
        direction-1 (departing) request."""
        alloc = PinAllocator()
        for i, d in enumerate([1, 0, 1, 0, 0]):
            alloc.request("n", "top", (d, i), f"w{i}")
        alloc.freeze()
        arriving = [alloc.offset("n", "top", f"w{i}") for i, d in enumerate([1, 0, 1, 0, 0]) if d == 0]
        departing = [alloc.offset("n", "top", f"w{i}") for i, d in enumerate([1, 0, 1, 0, 0]) if d == 1]
        assert max(arriving) < min(departing)
