"""Benchmark/report harness shared by benches and examples."""

from repro.bench.harness import (
    comparison_row,
    format_table,
    json_cell,
    print_table,
    timed_median,
)
from repro.bench.trajectory import (
    TRAJECTORY_SCHEMA,
    append_record,
    bench_diff,
    gate_ratios,
    load_timings,
    trajectory_record,
)

__all__ = [
    "print_table",
    "comparison_row",
    "format_table",
    "json_cell",
    "timed_median",
    "TRAJECTORY_SCHEMA",
    "append_record",
    "bench_diff",
    "gate_ratios",
    "load_timings",
    "trajectory_record",
]
