"""E5.1: Section 5.1 -- hypercubes.

Regenerates the |2N/3| collinear track counts exactly and the L-layer
area / max-wire leading terms (16 N^2/(9 L^2), 2N/(3L)), with a size
sweep showing the measured/paper ratio approaching 1 from above as the
o() node-area terms fade.
"""

from repro.bench.harness import comparison_row
from repro.collinear.engine import collinear_layout
from repro.collinear.formulas import hypercube_tracks
from repro.collinear.orders import binary_order
from repro.core import layout_hypercube, measure
from repro.core.analysis import hypercube_prediction
from repro.topology import Hypercube


def test_collinear_tracks(benchmark, report):
    rows = []
    for n in range(1, 12):
        net = Hypercube(n)
        lay = collinear_layout(net.nodes, net.edges, binary_order(n))
        assert lay.num_tracks == hypercube_tracks(n)
        rows.append([n, 1 << n, hypercube_tracks(n), lay.num_tracks])
    report(
        "E5.1a: collinear hypercube tracks = floor(2N/3), exact",
        ["n", "N", "paper", "measured"],
        rows,
    )
    net = Hypercube(8)
    benchmark(collinear_layout, net.nodes, net.edges, binary_order(8))


def test_area_convergence(benchmark, report):
    rows = []
    for n in (6, 8, 10, 12):
        for L in (2, 8):
            m = measure(layout_hypercube(n, layers=L, node_side="min"))
            p = hypercube_prediction(n, L)
            rows.append(comparison_row([n, 1 << n, L], round(p.area), m.area))
    report(
        "E5.1b: L-layer hypercube area vs 16 N^2/(9 L^2) "
        "(ratio falls toward 1 as N grows)",
        ["n", "N", "L", "paper", "measured", "ratio"],
        rows,
    )
    benchmark.pedantic(
        layout_hypercube, args=(10,), kwargs={"node_side": "min"},
        rounds=1, iterations=1,
    )


def test_max_wire(report, benchmark):
    rows = []
    for n in (8, 10):
        for L in (2, 4, 8):
            m = measure(layout_hypercube(n, layers=L, node_side="min"))
            p = hypercube_prediction(n, L)
            rows.append(
                comparison_row([n, L], round(p.max_wire, 1), m.max_wire)
            )
    report(
        "E5.1c: hypercube max wire vs 2N/(3L)",
        ["n", "L", "paper", "measured", "ratio"],
        rows,
    )
    benchmark(layout_hypercube, 8, layers=4, node_side="min")
