"""Left-edge track packing and cut-width computation.

Every collinear layout in the paper is, combinatorially, an assignment
of edge intervals to *tracks* such that intervals sharing a track do not
properly overlap (they may touch at a shared endpoint, because distinct
wires attach to distinct pins of a node and therefore never actually
collide at the node position -- see Section 2.1 / Figure 2).

With that sharing rule, the minimum number of tracks equals the maximum
number of intervals *properly containing* some point (the max cut of the
linear arrangement), and the classical left-edge algorithm achieves it.
This module provides both, so the layouts can be constructed and the
paper's closed-form track counts verified against an optimality
certificate.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

__all__ = ["Interval", "pack_intervals", "max_overlap", "cuts"]


@dataclass(frozen=True, slots=True)
class Interval:
    """A horizontal extent ``[lo, hi]`` owned by ``tag`` (an edge)."""

    lo: int
    hi: int
    tag: Hashable = None

    def __post_init__(self) -> None:
        if self.lo >= self.hi:
            raise ValueError(f"empty interval: {self}")


def pack_intervals(intervals: Sequence[Interval]) -> tuple[dict[int, int], int]:
    """Assign each interval to a track via the left-edge algorithm.

    Returns ``(assignment, num_tracks)`` where ``assignment`` maps the
    *index* of each interval (position in the input sequence) to a track
    in ``0 .. num_tracks - 1``.  Two intervals may share a track iff
    their interiors are disjoint (touching endpoints allowed).

    The assignment is optimal: ``num_tracks == max_overlap(intervals)``.
    """
    order = sorted(range(len(intervals)), key=lambda i: (intervals[i].lo, intervals[i].hi))
    assignment: dict[int, int] = {}
    # Min-heap of (right_end, track) for busy tracks; a free-track pool.
    busy: list[tuple[int, int]] = []
    free: list[int] = []
    next_track = 0
    for idx in order:
        iv = intervals[idx]
        while busy and busy[0][0] <= iv.lo:
            _, t = heapq.heappop(busy)
            heapq.heappush(free, t)
        if free:
            track = heapq.heappop(free)
        else:
            track = next_track
            next_track += 1
        assignment[idx] = track
        heapq.heappush(busy, (iv.hi, track))
    return assignment, next_track


def max_overlap(intervals: Iterable[Interval]) -> int:
    """Maximum number of intervals properly overlapping at a point.

    This is the max cut of the arrangement and a lower bound on (hence,
    by left-edge, equal to) the number of tracks needed.
    """
    events: list[tuple[int, int]] = []
    for iv in intervals:
        events.append((iv.lo, 1))
        events.append((iv.hi, -1))
    # Process all closings at a coordinate before openings: touching
    # intervals do not overlap.
    events.sort(key=lambda e: (e[0], e[1]))
    depth = best = 0
    for _, delta in events:
        depth += delta
        best = max(best, depth)
    return best


def cuts(intervals: Iterable[Interval], positions: Iterable[int]) -> list[int]:
    """Edge-cut profile: for each ``p`` count intervals with
    ``lo <= p < hi`` (edges crossing the gap between ``p`` and
    ``p + 1``).  Matches the cut-width bookkeeping used in tests."""
    ivs = list(intervals)
    out = []
    for p in positions:
        out.append(sum(1 for iv in ivs if iv.lo <= p < iv.hi))
    return out


def verify_packing(
    intervals: Sequence[Interval], assignment: dict[int, int]
) -> bool:
    """Check that no two intervals on one track properly overlap."""
    by_track: dict[int, list[Interval]] = {}
    for idx, track in assignment.items():
        by_track.setdefault(track, []).append(intervals[idx])
    for ivs in by_track.values():
        ivs.sort(key=lambda iv: iv.lo)
        for a, b in zip(ivs, ivs[1:]):
            if b.lo < a.hi:
                return False
    return True
