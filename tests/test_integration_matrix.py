"""The full integration matrix: every family x every layer count.

Each cell builds the layout, runs the complete multilayer-grid-model
validation (including parity and pins) and verifies the routed wires
reproduce the network exactly.  This is the suite's final safety net --
if a scheme regression slips past the unit tests, it fails here.
"""

import pytest

from conftest import assert_layout_ok
from repro.core.schemes import (
    layout_butterfly,
    layout_cayley,
    layout_ccc,
    layout_collinear_network,
    layout_complete,
    layout_enhanced_cube,
    layout_folded_hypercube,
    layout_generic_grid,
    layout_ghc,
    layout_hsn,
    layout_hypercube,
    layout_isn,
    layout_kary,
    layout_kary_cluster,
    layout_reduced_hypercube,
    layout_scc,
    layout_wrapped_butterfly,
)
from repro.topology import (
    HSN,
    Butterfly,
    CompleteGraph,
    CubeConnectedCycles,
    DeBruijn,
    EnhancedCube,
    FoldedHypercube,
    GeneralizedHypercube,
    Hypercube,
    IndirectSwapNetwork,
    KAryNCube,
    KAryNCubeCluster,
    ReducedHypercube,
    Ring,
    ShuffleExchange,
    StarConnectedCycles,
    StarGraph,
    WrappedButterfly,
)

MATRIX = [
    ("kary", lambda L: layout_kary(3, 2, layers=L), KAryNCube(3, 2)),
    ("hypercube", lambda L: layout_hypercube(5, layers=L), Hypercube(5)),
    ("ghc", lambda L: layout_ghc((3, 4), layers=L),
     GeneralizedHypercube((3, 4))),
    ("complete", lambda L: layout_complete(8, layers=L), CompleteGraph(8)),
    ("collinear-ring", lambda L: layout_collinear_network(Ring(9), layers=L),
     Ring(9)),
    ("butterfly", lambda L: layout_butterfly(3, layers=L), Butterfly(3)),
    ("wrapped-butterfly", lambda L: layout_wrapped_butterfly(3, layers=L),
     WrappedButterfly(3)),
    ("isn", lambda L: layout_isn(3, layers=L), IndirectSwapNetwork(3)),
    ("ccc", lambda L: layout_ccc(3, layers=L), CubeConnectedCycles(3)),
    ("reduced-hypercube", lambda L: layout_reduced_hypercube(4, layers=L),
     ReducedHypercube(4)),
    ("hsn", lambda L: layout_hsn(CompleteGraph(3), 3, layers=L),
     HSN(CompleteGraph(3), 3)),
    ("kary-cluster", lambda L: layout_kary_cluster(3, 2, 2, layers=L),
     KAryNCubeCluster(3, 2, 2)),
    ("star", lambda L: layout_cayley(StarGraph(4), layers=L), StarGraph(4)),
    ("scc", lambda L: layout_scc(4, layers=L), StarConnectedCycles(4)),
    ("folded-hypercube", lambda L: layout_folded_hypercube(4, layers=L),
     FoldedHypercube(4)),
    ("enhanced-cube", lambda L: layout_enhanced_cube(4, layers=L),
     EnhancedCube(4)),
    ("generic-shuffle",
     lambda L: layout_generic_grid(ShuffleExchange(4), layers=L),
     ShuffleExchange(4)),
    ("generic-debruijn",
     lambda L: layout_generic_grid(DeBruijn(4), layers=L), DeBruijn(4)),
]

LAYERS = [2, 3, 4, 5, 8]


@pytest.mark.parametrize("L", LAYERS)
@pytest.mark.parametrize("name,build,net", MATRIX, ids=[m[0] for m in MATRIX])
def test_matrix(name, build, net, L):
    lay = build(L)
    # Parity is a scheme convention every constructor follows.
    assert_layout_ok(lay, net, parity=True)
    assert lay.layers == L
    assert len(lay.placements) == net.num_nodes


@pytest.mark.parametrize("name,build,net", MATRIX, ids=[m[0] for m in MATRIX])
def test_area_monotone_nonincreasing_in_layers(name, build, net):
    """More layers never cost area (ceil effects can plateau it)."""
    areas = [build(L).area for L in (2, 4, 8)]
    assert areas[0] >= areas[1] >= areas[2]
