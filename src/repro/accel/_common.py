"""Backend-independent helpers shared by the accel kernel backends.

Kept out of ``repro.accel.__init__`` so the backend modules can import
them without touching the registry mid-initialization, and out of the
domain modules (``collinear.cutwidth`` re-exports ``edge_weights`` /
``bit_adjacency`` from here) to avoid import cycles: this module
depends on nothing inside ``repro``.
"""

from __future__ import annotations

__all__ = ["INF", "BASE_BITS", "bit_adjacency", "edge_weights"]

INF = 1 << 60

# Block size (in bits) below which the pure DP's carry recursion
# switches to the plain per-state scan; 6 keeps the Python-level inner
# loop to <= 6 candidates while the 2^(n-6) block recursion stays
# negligible.
BASE_BITS = 6


def bit_adjacency(network) -> list[int]:
    """Bitmask adjacency rows over ``network.index`` node numbering."""
    index = network.index
    adj = [0] * network.num_nodes
    for u, v in network.edges:
        iu, iv = index[u], index[v]
        adj[iu] |= 1 << iv
        adj[iv] |= 1 << iu
    return adj


def edge_weights(network) -> dict[tuple[int, int], int]:
    """Multigraph support: parallel edges each count toward the cut."""
    index = network.index
    weights: dict[tuple[int, int], int] = {}
    for u, v in network.edges:
        iu, iv = sorted((index[u], index[v]))
        weights[(iu, iv)] = weights.get((iu, iv), 0) + 1
    return weights
