"""E10: the cost side of "lower cost and/or higher performance".

Section 2.2 prices a layout as a function of A, L and L_A.  Under a
manufacturing cost model (per-layer process premium + defect-driven
yield), the multilayer layouts' L^2/4 area shrink buys more than the
extra layers cost, while folding pays the active-layer premium on
undiminished silicon volume.
"""

from repro.core import layout_hypercube, layout_kary, measure
from repro.core.cost import CostModel, chip_cost
from repro.core.folding import fold_layout


def test_cost_vs_layers(benchmark, report):
    model = CostModel(defect_density=2e-6)
    base = layout_hypercube(10, layers=2, node_side="min")
    rows = []
    base_cost = None
    for L in (2, 4, 8, 16):
        lay = layout_hypercube(10, layers=L, node_side="min")
        c = chip_cost(lay, model)
        if base_cost is None:
            base_cost = c.total
        folded_cost = chip_cost(fold_layout(base, L), model).total if L > 2 else c.total
        rows.append([
            L, lay.area, f"{c.yield_fraction:.3f}", f"{c.total:,.0f}",
            f"{base_cost / c.total:.2f}",
            f"{base_cost / folded_cost:.2f}",
        ])
    report(
        "E10: 10-cube chip cost vs L (defect yield + layer premiums); "
        "multilayer cost falls, folding's barely moves",
        ["L", "area", "yield", "cost", "cost x (scheme)", "cost x (folded)"],
        rows,
    )
    benchmark(chip_cost, base, model)


def test_cost_optimum_exists(report, benchmark):
    """With a steep per-layer premium there is an interior optimum L --
    the engineering trade-off the paper's 'at reasonable cost' nods to."""
    model = CostModel(wiring_layer_premium=0.6)
    rows = []
    costs = {}
    for L in (2, 4, 8, 16, 32):
        lay = layout_kary(4, 4, layers=L, node_side="min")
        c = chip_cost(lay, model)
        costs[L] = c.total
        rows.append([L, lay.area, f"{c.total:,.0f}"])
    best = min(costs, key=costs.__getitem__)
    rows.append(["best", "->", f"L={best}"])
    assert 2 < best < 32  # interior optimum under the steep premium
    report(
        "E10b: steep layer premium (0.6/layer) => interior optimum L "
        "(4-ary 4-cube)",
        ["L", "area", "cost"],
        rows,
    )
    benchmark(layout_kary, 4, 2, layers=4)
