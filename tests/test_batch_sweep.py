"""Sweep engine: expansion, determinism, worker fan-out, CLI, fuzz."""

import json
import os

import pytest

from repro import obs
from repro.batch import (
    LayoutCache,
    SweepRunner,
    SweepSpec,
    TrafficSpec,
    dispatch_scheme,
    standard_family_sweep,
)
from repro.batch.spec import parse_network
from repro.cli import main

SPEC = SweepSpec(
    networks=["ring:8", "hypercube:3", "star:3", "complete:5"],
    layers=[2, 4],
    name="test",
)


class TestSpec:
    def test_expand_is_deterministic_and_ordered(self):
        jobs = SPEC.expand()
        assert [j.index for j in jobs] == list(range(8))
        assert jobs == SPEC.expand()
        assert [j.job_id for j in jobs[:3]] == [
            "ring:8@L2/auto", "ring:8@L4/auto", "hypercube:3@L2/auto",
        ]

    def test_roundtrip_through_dict(self):
        assert SweepSpec.from_dict(SPEC.to_dict()) == SPEC

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="scheme"):
            SweepSpec(networks=["ring:4"], scheme="nope")

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep spec keys"):
            SweepSpec.from_dict({"networks": [], "extra": 1})

    def test_standard_sweep_is_nontrivial(self):
        jobs = standard_family_sweep().expand()
        assert len(jobs) >= 8  # the multi-worker benchmark's floor
        for job in jobs:
            job.build_network()  # every spec parses

    def test_parse_network_errors(self):
        with pytest.raises(SystemExit, match="unknown network family"):
            parse_network("klein-bottle:4")
        with pytest.raises(SystemExit, match="bad arguments"):
            parse_network("hypercube:2,2,2")

    def test_dispatch_scheme_unknown(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            dispatch_scheme(parse_network("ring:4"), layers=2, scheme="x")


class TestTrafficSpec:
    def test_roundtrip_through_dict(self):
        spec = TrafficSpec(
            network="hypercube:4", workload="hotspot", rate=0.3,
            duration=16, seed=7, layers=4, mode="cut_through",
            message_length=4, engine="oracle",
            params={"hot_fraction": 0.8},
        )
        assert TrafficSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic spec keys"):
            TrafficSpec.from_dict({"network": "ring:4", "warmup": 10})

    def test_bad_fields_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            TrafficSpec(network="ring:4", workload="teleport")
        with pytest.raises(ValueError, match="engine"):
            TrafficSpec(network="ring:4", engine="warp")
        with pytest.raises(ValueError, match="mode"):
            TrafficSpec(network="ring:4", mode="wormhole")
        with pytest.raises(ValueError, match="network"):
            TrafficSpec.from_dict({"workload": "uniform"})

    def test_run_engines_agree(self):
        doc = {
            "network": "hypercube:3", "workload": "uniform",
            "rate": 0.4, "duration": 12, "seed": 3,
        }
        fast = TrafficSpec.from_dict(doc).run()
        oracle = TrafficSpec.from_dict({**doc, "engine": "oracle"}).run()
        assert fast == oracle
        assert fast.messages > 0

    def test_run_saturation_sweep(self):
        spec = TrafficSpec(
            network="ring:8", rates=[0.05, 0.5, 1.0], duration=16,
        )
        out = spec.run()
        assert [r["rate"] for r in out["rows"]] == [0.05, 0.5, 1.0]
        assert out["knee"] is None or out["knee"] in (0.05, 0.5, 1.0)


class TestRunner:
    def test_serial_vs_parallel_identical_merge(self, tmp_path):
        serial = SweepRunner(workers=1).run(SPEC)
        for w in (2, 4):
            par = SweepRunner(workers=w).run(SPEC)
            assert par.rows() == serial.rows()
            assert par.workers == w

    def test_second_run_hits_everything(self, tmp_path):
        cdir = tmp_path / "cache"
        cold = SweepRunner(cache_dir=cdir).run(SPEC)
        warm = SweepRunner(cache_dir=cdir).run(SPEC)
        assert cold.rows() == warm.rows()
        assert all(r.source == "built" for r in cold.results)
        assert all(r.source == "cache" for r in warm.results)
        assert warm.cache_stats.hits == len(SPEC.expand())
        assert warm.cache_stats.misses == warm.cache_stats.writes == 0

    def test_parallel_cold_then_parallel_warm(self, tmp_path):
        cdir = tmp_path / "cache"
        cold = SweepRunner(cache_dir=cdir, workers=3).run(SPEC)
        warm = SweepRunner(cache_dir=cdir, workers=3).run(SPEC)
        assert cold.rows() == warm.rows()
        assert warm.cache_stats.hits == len(SPEC.expand())
        assert all(r.source == "cache" for r in warm.results)

    def test_readonly_runner_builds_but_never_writes(self, tmp_path):
        cdir = tmp_path / "cache"
        res = SweepRunner(cache_dir=cdir, cache_readonly=True).run(SPEC)
        assert all(r.source == "built" for r in res.results)
        assert res.cache_stats.writes == 0
        assert not list(cdir.rglob("*.json")) if cdir.exists() else True

    def test_cache_shared_across_worker_counts(self, tmp_path):
        cdir = tmp_path / "cache"
        SweepRunner(cache_dir=cdir, workers=2).run(SPEC)
        warm = SweepRunner(cache_dir=cdir, workers=1).run(SPEC)
        assert all(r.source == "cache" for r in warm.results)

    def test_result_as_dict_is_json_ready(self):
        res = SweepRunner().run(SweepSpec(networks=["ring:6"], layers=[2]))
        doc = json.loads(json.dumps(res.as_dict()))
        assert doc["jobs"] == 1
        assert doc["results"][0]["metrics"]["N"] == 6

    def test_run_dir_keeps_telemetry_artifacts(self, tmp_path):
        from repro.obs import live

        rd = tmp_path / "run"
        res = SweepRunner(workers=2, run_dir=rd).run(SPEC)
        assert res.run_dir == str(rd)
        man = live.read_run_manifest(rd)
        assert man["kind"] == "sweep"
        assert man["state"] == "done"
        assert man["jobs_total"] == 8 and man["jobs_done"] == 8
        beats = live.read_heartbeats(rd)
        assert sorted(beats) == [0, 1]
        assert all(d["state"] == "done" for d in beats.values())
        assert sum(d["jobs_done"] for d in beats.values()) == 8
        # Workers' result handoff files stay for post-mortems...
        assert sorted(
            p.name for p in rd.glob("result-*.json")
        ) == ["result-0.json", "result-1.json"]
        # ...and the run got a default structured log.
        assert (rd / "log.jsonl").exists()
        health = res.worker_health
        assert sorted(health) == [0, 1]
        assert all(r["verdict"] == "done" for r in health.values())
        assert all(r["exitcode"] == 0 for r in health.values())
        doc = json.loads(json.dumps(res.as_dict()))
        assert doc["run_dir"] == str(rd)
        assert set(doc["worker_health"]) == {"0", "1"}

    def test_serial_run_dir_heartbeat(self, tmp_path):
        from repro.obs import live

        rd = tmp_path / "run"
        res = SweepRunner(workers=1, run_dir=rd).run(SPEC)
        assert res.jobs == 8
        beats = live.read_heartbeats(rd)
        assert list(beats) == [0]
        assert beats[0]["state"] == "done"
        assert beats[0]["jobs_done"] == 8
        assert live.read_run_manifest(rd)["state"] == "done"

    def test_parallel_without_run_dir_leaves_nothing(self, tmp_path):
        import glob
        import tempfile

        before = set(glob.glob(
            os.path.join(tempfile.gettempdir(), "repro-sweep-*")
        ))
        res = SweepRunner(workers=2).run(SPEC)
        assert res.jobs == 8
        assert res.run_dir is None
        after = set(glob.glob(
            os.path.join(tempfile.gettempdir(), "repro-sweep-*")
        ))
        assert after == before  # scratch dir cleaned up

    def test_metrics_out_written_live(self, tmp_path):
        out = tmp_path / "metrics.prom"
        SweepRunner(workers=2, metrics_out=out).run(SPEC)
        text = out.read_text()
        assert "repro_sweep_jobs_total 8" in text
        assert "repro_sweep_runs_total 1" in text


class TestCrossProcessTrace:
    """Worker span forests must come home and merge deterministically."""

    @pytest.fixture(autouse=True)
    def _clean_obs(self):
        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    @staticmethod
    def _span_names(roots):
        names = set()
        stack = list(roots)
        while stack:
            rec = stack.pop()
            names.add(rec.name)
            stack.extend(rec.children)
        return names

    def _observed_run(self, workers):
        obs.reset()
        obs.enable()
        SweepRunner(workers=workers).run(SPEC)
        return obs.trace_roots(), obs.phase_totals(), (
            obs.registry().snapshot()
        )

    def test_parallel_trace_matches_serial(self):
        """The satellite gate: workers=1 vs workers=4 agree on every
        phase's call count and on the span-name set (timings aside);
        the only parallel-side extra is the per-worker wrapper."""
        roots1, totals1, snap1 = self._observed_run(1)
        roots4, totals4, snap4 = self._observed_run(4)

        names1 = self._span_names(roots1)
        names4 = self._span_names(roots4)
        assert names4 - {"sweep.worker"} == names1
        assert "sweep.worker" in names4

        calls1 = {n: t["calls"] for n, t in totals1.items()}
        calls4 = {
            n: t["calls"] for n, t in totals4.items()
            if n != "sweep.worker"
        }
        assert calls4 == calls1
        # Counter folds already guaranteed this; spans now match too.
        assert snap4["counters"] == snap1["counters"]

    def test_worker_spans_are_rerooted_under_sweep_run(self):
        roots, _, _ = self._observed_run(4)
        assert [r.name for r in roots] == ["sweep.run"]
        workers = [
            c for c in roots[0].children if c.name == "sweep.worker"
        ]
        assert workers, "no worker spans re-rooted"
        # Worker order (and hence attrs) is deterministic.
        assert [w.attrs["worker_id"] for w in workers] == list(
            range(len(workers))
        )
        for w in workers:
            assert w.children, "worker span lost its forest"
            assert {c.name for c in w.children} == {"sweep.job"}
            total_jobs = sum(
                1 for w in workers for _ in w.children
            )
        assert total_jobs == len(SPEC.expand())

    def test_serial_run_has_no_worker_wrappers(self):
        roots, totals, _ = self._observed_run(1)
        assert "sweep.worker" not in self._span_names(roots)
        assert totals["sweep.job"]["calls"] == len(SPEC.expand())


class TestCLI:
    def test_sweep_command_smoke(self, tmp_path, capsys):
        cdir = tmp_path / "cache"
        out_json = tmp_path / "sweep.json"
        argv = [
            "sweep", "--networks", "ring:8", "hypercube:3",
            "--layers", "2", "--cache-dir", str(cdir),
            "--json", str(out_json),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "built" in first and "2 miss(es)" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "cache" in second and "2 hit(s)" in second
        doc = json.loads(out_json.read_text())
        assert doc["schema"] == "repro.sweep-result/v1"
        assert doc["cache"]["hits"] == 2

    def test_sweep_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(
            {"name": "fromfile", "networks": ["ring:6"], "layers": [2]}
        ))
        assert main(["sweep", "--spec-file", str(spec_file)]) == 0
        assert "fromfile" in capsys.readouterr().out

    def test_sweep_report_validates(self, tmp_path, capsys):
        """Regression: sweep's list-valued --layers must not leak into
        the run report's integer `layers` field."""
        from repro.obs import validate_report

        rpt = tmp_path / "run.json"
        assert main([
            "sweep", "--networks", "ring:6", "--layers", "2", "4",
            "--report", str(rpt),
        ]) == 0
        capsys.readouterr()
        doc = json.loads(rpt.read_text())
        validate_report(doc)
        assert doc["layers"] is None
        assert doc["metrics"]["counters"]["sweep.jobs"] == 2

    def test_sweep_run_dir_and_metrics_flags(self, tmp_path, capsys):
        rd = tmp_path / "run"
        prom = tmp_path / "metrics.prom"
        assert main([
            "sweep", "--networks", "ring:6", "hypercube:3",
            "--layers", "2", "--workers", "2",
            "--run-dir", str(rd), "--metrics-out", str(prom),
        ]) == 0
        out = capsys.readouterr().out
        assert "WARNING" not in out  # no workers lost
        assert (rd / "manifest.json").exists()
        assert (rd / "log.jsonl").exists()
        assert "repro_sweep_jobs_total 2" in prom.read_text()

    def test_stats_cache_dir_surfaces_cache_counters(
        self, tmp_path, capsys
    ):
        cdir = tmp_path / "cache"
        assert main(["stats", "--cache-dir", str(cdir)]) == 0
        cold = capsys.readouterr().out
        assert "pipeline counters" in cold
        assert "cache.misses" in cold
        assert "cache.writes" in cold
        assert main(["stats", "--cache-dir", str(cdir)]) == 0
        warm = capsys.readouterr().out
        assert "cache.hits" in warm

    def test_stats_without_cache_has_no_cache_counters(
        self, capsys
    ):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "cache.hits" not in out

    def test_fuzz_run_dir_flag(self, tmp_path, capsys):
        from repro.obs import live

        rd = tmp_path / "fuzz-run"
        assert main([
            "fuzz", "--budget", "6", "--seed", "5", "--workers", "2",
            "--run-dir", str(rd),
        ]) == 0
        assert "fuzz: OK" in capsys.readouterr().out
        assert live.read_run_manifest(rd)["kind"] == "fuzz"
        assert sorted(live.read_heartbeats(rd)) == [0, 1]

    def test_fuzz_workers_flag(self, tmp_path, capsys):
        assert main([
            "fuzz", "--budget", "6", "--seed", "5", "--workers", "2",
            "--cache-dir", str(tmp_path / "c"),
        ]) == 0
        assert "fuzz: OK" in capsys.readouterr().out


class TestFuzzParallel:
    def test_worker_count_does_not_change_report(self):
        from repro.check import run_fuzz

        serial = run_fuzz(seed=11, budget=9, workers=1)
        par = run_fuzz(seed=11, budget=9, workers=3)
        assert par.cases_run == serial.cases_run
        assert par.kind_counts == serial.kind_counts
        assert par.stage_counts == serial.stage_counts
        assert (
            [(f.case.case_id, [str(v) for v in f.violations])
             for f in par.failures]
            == [(f.case.case_id, [str(v) for v in f.violations])
                for f in serial.failures]
        )

    def test_workers_share_cache_readonly(self, tmp_path):
        from repro.check import run_fuzz

        cdir = tmp_path / "cache"
        # Serial run populates; parallel workers may only read.
        seeded = run_fuzz(seed=2, budget=6, workers=1, cache_dir=cdir)
        entries = sorted(p.name for p in cdir.rglob("*.json"))
        assert entries  # the serial run wrote layouts
        par = run_fuzz(seed=2, budget=6, workers=2, cache_dir=cdir)
        assert sorted(p.name for p in cdir.rglob("*.json")) == entries
        assert par.cases_run == seeded.cases_run
        assert par.violations == seeded.violations
