"""Rendering output sanity."""

import pytest

from repro.collinear.recursions import (
    complete_recursive,
    hypercube_recursive,
    kary_recursive,
)
from repro.core import layout_ccc, layout_kary
from repro.viz import ascii_collinear, ascii_grid_layout, svg_layout


class TestAsciiCollinear:
    def test_figure2_dimensions(self):
        art = ascii_collinear(kary_recursive(3, 2))
        lines = art.splitlines()
        # 8 track rows + node row + label row
        assert len(lines) == 10
        assert lines[-2].count("o") == 9

    def test_track_rows_contain_runs(self):
        art = ascii_collinear(complete_recursive(5), label_nodes=False)
        lines = art.splitlines()
        assert len(lines) == 5 * 5 // 4 + 1
        assert any("-" in ln for ln in lines)

    def test_figure4(self):
        art = ascii_collinear(hypercube_recursive(4))
        assert len(art.splitlines()) == 12  # 10 tracks + nodes + labels

    def test_labels_for_tuples(self):
        art = ascii_collinear(kary_recursive(3, 2))
        assert "00" in art and "22" in art


class TestAsciiGrid:
    def test_renders_nodes_and_wires(self):
        art = ascii_grid_layout(layout_kary(3, 2))
        assert "#" in art and ("-" in art or "|" in art)

    def test_too_wide_raises(self):
        lay = layout_kary(3, 2)
        with pytest.raises(ValueError, match="svg_layout"):
            ascii_grid_layout(lay, max_width=5)


class TestSvg:
    def test_well_formed(self):
        svg = svg_layout(layout_kary(3, 2))
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "<line" in svg and "<rect" in svg

    def test_layer_colors_distinct(self):
        svg = svg_layout(layout_kary(3, 2, layers=4))
        # Two horizontal groups (layers 1 and 3) must use two colors.
        assert "#d62728" in svg and "#ff7f0e" in svg

    def test_cluster_layout_renders(self):
        svg = svg_layout(layout_ccc(3))
        assert svg.count("<rect") >= 24  # every member node drawn

    def test_labels_escaped(self):
        from repro.grid.geometry import Rect
        from repro.grid.layout import GridLayout

        lay = GridLayout(layers=2)
        lay.place("<evil>", Rect(0, 0, 2, 2))
        svg = svg_layout(lay, node_labels=True)
        assert "&lt;evil&gt;" in svg

    def test_legend(self):
        svg = svg_layout(layout_kary(3, 2, layers=4), legend=True)
        assert "layer 1 (horizontal)" in svg
        assert "layer 4 (vertical)" in svg


class TestLayerStack:
    def test_panels_per_layer(self):
        from repro.viz import svg_layer_stack

        svg = svg_layer_stack(layout_kary(3, 2, layers=4))
        for layer in (1, 2, 3, 4):
            assert f"layer {layer}" in svg

    def test_folded_layout_panels(self):
        from repro.core import layout_hypercube
        from repro.core.folding import fold_layout
        from repro.viz import svg_layer_stack

        folded = fold_layout(layout_hypercube(6, layers=2), 4)
        svg = svg_layer_stack(folded)
        assert "layer 3" in svg
        assert svg.count("<rect") > 64  # nodes drawn in their panels

    def test_3d_deck_panels(self):
        from repro.core.threedee import layout_product_3d
        from repro.topology import Ring
        from repro.viz import svg_layer_stack

        lay = layout_product_3d(Ring(3), Ring(3), Ring(3), layers=6)
        svg = svg_layer_stack(lay)
        assert "layer 5" in svg


class TestZooRenderSmoke:
    """Every zoo network renders through both backends without error."""

    def test_ascii_and_svg_for_every_zoo_network(self):
        from repro.cli import _zoo_dispatch, _zoo_networks

        for net in _zoo_networks():
            lay = _zoo_dispatch(net, 4)
            art = ascii_grid_layout(lay, max_width=4000)
            assert art.count("#") >= net.num_nodes, net.name
            svg = svg_layout(lay)
            assert svg.startswith("<svg") or "<svg" in svg, net.name
            assert svg.count("<rect") >= net.num_nodes, net.name

    def test_svg_layer_stack_for_multilayer_zoo(self):
        from repro.cli import _zoo_dispatch, _zoo_networks
        from repro.viz import svg_layer_stack

        for net in _zoo_networks()[:4]:
            lay = _zoo_dispatch(net, 4)
            svg = svg_layer_stack(lay)
            assert "layer 1" in svg, net.name
