"""PN-cluster topologies and their quotient structure.

The quotient facts tested here are exactly what Sections 4.2, 4.3, 5.2
and 3.2 rely on: butterfly row-pairs -> hypercube quotient with
multiplicity 4; ISN -> multiplicity 2; CCC/RH -> multiplicity 1;
k-ary cluster-c -> k-ary n-cube quotient.
"""

import networkx as nx
import pytest

from repro.topology import (
    Butterfly,
    CubeConnectedCycles,
    IndirectSwapNetwork,
    KAryNCube,
    KAryNCubeCluster,
    PNCluster,
    ReducedHypercube,
    quotient,
)


def to_nx(net):
    g = nx.MultiGraph()
    g.add_nodes_from(net.nodes)
    g.add_edges_from(net.edges)
    return g


class TestButterfly:
    @pytest.mark.parametrize("m", [1, 2, 3, 4])
    def test_counts(self, m):
        bf = Butterfly(m)
        assert bf.num_nodes == (m + 1) * 2**m
        assert bf.num_edges == 2 * m * 2**m
        assert bf.is_connected()

    def test_degrees(self):
        bf = Butterfly(3)
        degs = {bf.degree(v) for v in bf.nodes}
        assert degs == {2, 4}  # end levels 2, interior 4

    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_quotient_is_hypercube_mult4(self, m):
        bf = Butterfly(m)
        q = quotient(bf, bf.row_pair_partition())
        assert len(q.clusters) == 2 ** (m - 1)
        mult = q.multiplicity()
        assert set(mult.values()) == {4}
        for a, b in mult:
            assert bin(a ^ b).count("1") == 1  # hypercube adjacency
        assert len(mult) == (m - 1) * 2 ** (m - 2)

    def test_cluster_sizes(self):
        bf = Butterfly(3)
        q = quotient(bf, bf.row_pair_partition())
        assert all(len(ms) == 2 * (3 + 1) for ms in q.members.values())

    def test_edge_conservation(self):
        bf = Butterfly(3)
        q = quotient(bf, bf.row_pair_partition())
        intra = sum(len(es) for es in q.intra_edges.values())
        assert intra + len(q.inter_edges) == bf.num_edges

    def test_small_m_rejects_partition(self):
        with pytest.raises(ValueError):
            Butterfly(1).row_pair_partition()


class TestISN:
    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_quotient_mult2(self, m):
        isn = IndirectSwapNetwork(m)
        q = quotient(isn, isn.row_pair_partition())
        assert set(q.multiplicity().values()) == {2}

    def test_half_the_butterfly_cross_edges(self):
        m = 3
        bf, isn = Butterfly(m), IndirectSwapNetwork(m)
        straight = (m) * 2**m
        assert bf.num_edges - straight == 2 * (isn.num_edges - straight)

    def test_connected(self):
        assert IndirectSwapNetwork(3).is_connected()


class TestCCC:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_counts(self, n):
        ccc = CubeConnectedCycles(n)
        assert ccc.num_nodes == n * 2**n
        assert ccc.is_regular() and ccc.max_degree == 3
        assert ccc.is_connected()

    def test_quotient_is_hypercube(self):
        ccc = CubeConnectedCycles(4)
        q = quotient(ccc, ccc.cluster_partition())
        assert len(q.clusters) == 16
        assert set(q.multiplicity().values()) == {1}
        g = nx.Graph(list(q.multiplicity()))
        assert nx.is_isomorphic(g, nx.hypercube_graph(4))

    def test_clusters_are_cycles(self):
        ccc = CubeConnectedCycles(4)
        q = quotient(ccc, ccc.cluster_partition())
        for c, es in q.intra_edges.items():
            g = nx.Graph(es)
            assert len(g) == 4 and nx.is_connected(g)
            assert all(d == 2 for _, d in g.degree())

    def test_matches_reference_construction(self):
        # Independent oracle: build CCC(3) explicitly via nx.
        n = 3
        ref = nx.Graph()
        for w in range(2**n):
            for i in range(n):
                ref.add_edge((w, i), (w, (i + 1) % n))
                ref.add_edge((w, i), (w ^ (1 << i), i))
        assert nx.is_isomorphic(to_nx(CubeConnectedCycles(3)), nx.MultiGraph(ref))


class TestReducedHypercube:
    def test_counts(self):
        rh = ReducedHypercube(4)
        assert rh.num_nodes == 4 * 16
        assert rh.is_regular() and rh.max_degree == 3  # 2 cluster + 1 cube
        assert rh.is_connected()

    def test_clusters_are_hypercubes(self):
        rh = ReducedHypercube(4)
        q = quotient(rh, rh.cluster_partition())
        for c, es in q.intra_edges.items():
            g = nx.Graph(es)
            assert nx.is_isomorphic(g, nx.hypercube_graph(2))

    def test_quotient_mult1(self):
        rh = ReducedHypercube(4)
        q = quotient(rh, rh.cluster_partition())
        assert set(q.multiplicity().values()) == {1}

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            ReducedHypercube(6)


class TestKAryCluster:
    def test_counts(self):
        net = KAryNCubeCluster(3, 2, 4)
        assert net.num_nodes == 9 * 4
        assert net.is_connected()

    def test_quotient_is_kary(self):
        net = KAryNCubeCluster(3, 2, 4)
        q = quotient(net, net.cluster_partition())
        g = nx.MultiGraph(
            [(a, b) for (a, b), c in q.multiplicity().items() for _ in range(c)]
        )
        assert nx.is_isomorphic(g, to_nx(KAryNCube(3, 2)))

    def test_complete_clusters(self):
        net = KAryNCubeCluster(3, 2, 3, cluster="complete")
        q = quotient(net, net.cluster_partition())
        for es in q.intra_edges.values():
            assert len(es) == 3  # K_3

    def test_attachment_round_robin(self):
        net = KAryNCubeCluster(3, 2, 2)
        # Each quotient node has 4 incident links spread over 2 nodes.
        counts = {}
        q = quotient(net, net.cluster_partition())
        for cu, cv, u, v in q.inter_edges:
            for node in (u, v):
                counts[node] = counts.get(node, 0) + 1
        assert max(counts.values()) <= 2

    def test_bad_cluster_kind(self):
        with pytest.raises(ValueError):
            KAryNCubeCluster(3, 2, 4, cluster="mystery")

    def test_hypercube_cluster_needs_power_of_two(self):
        with pytest.raises(ValueError):
            KAryNCubeCluster(3, 2, 3, cluster="hypercube")


class TestGenericPNCluster:
    def test_custom_attach(self):
        from repro.topology import Ring

        net = PNCluster(
            Ring(4), 2, [(0, 1)], attach=lambda q, idx: idx % 2
        )
        assert net.num_nodes == 8
        assert net.is_connected()

    def test_cluster_edge_bounds(self):
        from repro.topology import Ring

        with pytest.raises(ValueError):
            PNCluster(Ring(4), 2, [(0, 5)])
