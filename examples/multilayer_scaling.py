#!/usr/bin/env python
"""Claims (1)-(4): multilayer design vs. folding vs. collinear stacking.

For each network, the same Thompson (L = 2) layout can "use" L layers
three ways; only designing for the multilayer model up front (the
paper's contribution) wins on all four metrics:

                       area        volume      max wire    path wire
  multilayer scheme    ~ L^2/4 x   ~ L/2 x     ~ L/2 x     ~ L/2 x
  folded Thompson      ~ L/2  x    1 x         1 x         1 x
  multilayer collinear <= L/2 x    >= 1 x      1 x         1 x

Run:  python examples/multilayer_scaling.py
"""

from repro import (
    Hypercube,
    collinear_multilayer_metrics,
    fold_metrics,
    layout_collinear_network,
    layout_hypercube,
    layout_kary,
    measure,
)
from repro.bench import print_table
from repro.core.metrics import weighted_diameter


def hypercube_study(n: int = 10) -> None:
    base_lay = layout_hypercube(n, layers=2, node_side="min")
    base = measure(base_lay)
    base_path = weighted_diameter(base_lay, max_sources=4)
    col_base = measure(layout_collinear_network(Hypercube(n)))

    rows = []
    for L in (2, 4, 8, 16):
        multi_lay = layout_hypercube(n, layers=L, node_side="min")
        multi = measure(multi_lay)
        folded = fold_metrics(base, L)
        collinear = collinear_multilayer_metrics(col_base, L)
        path = weighted_diameter(multi_lay, max_sources=4)
        rows.append([
            L,
            f"{base.area / multi.area:.2f}",
            f"{L * L / 4:.0f}",
            f"{base.area / folded.area:.2f}",
            f"{base.volume / multi.volume:.2f}",
            f"{base.max_wire / multi.max_wire:.2f}",
            f"{base_path / path:.2f}",
            f"{col_base.area / collinear.area:.2f}",
        ])
    print_table(
        f"{n}-cube: improvement factors over the L=2 layout",
        ["L", "area x (scheme)", "ideal L^2/4", "area x (folded)",
         "volume x", "max wire x", "path wire x", "area x (collinear)"],
        rows,
    )


def kary_study(k: int = 4, n: int = 4) -> None:
    base = measure(layout_kary(k, n, layers=2, node_side="min"))
    rows = []
    for L in (2, 4, 8):
        m = measure(layout_kary(k, n, layers=L, node_side="min"))
        folded = fold_metrics(base, L)
        rows.append([
            L, m.area, f"{base.area / m.area:.2f}",
            f"{base.area / folded.area:.2f}",
            m.max_wire, f"{base.max_wire / m.max_wire:.2f}",
        ])
    print_table(
        f"{k}-ary {n}-cube: multilayer vs folding",
        ["L", "area", "area x", "area x (folded)", "max wire", "wire x"],
        rows,
    )


if __name__ == "__main__":
    hypercube_study()
    kary_study()
