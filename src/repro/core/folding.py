"""Baseline transforms the paper compares against (Section 2.2).

Two ways of "using" L layers *without* designing for them:

* **Folding** a Thompson (2-layer) layout: cut the layout into
  ``floor(L/2)`` vertical slabs and stack them.  Area divides by
  ``floor(L/2)``; the wire multiset is untouched, so volume
  (``L x area``) and the maximum wire length stay put (folds reroute
  wires across slab boundaries but change lengths only by O(1) per
  crossing, which the paper and we both neglect).

* **Multilayer collinear layout**: a collinear layout whose track stack
  is divided among the layer groups.  Only the channel height shrinks
  (by at most L/2); the node row keeps its full width, so the area
  falls by at most L/2 and the volume not at all.

Both are implemented as metric transforms of a measured 2-layer layout
so that benches can print multilayer-scheme vs folding vs collinear
side by side -- the content of claims (1)-(3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import LayoutMetrics
from repro.grid.geometry import Rect, Segment
from repro.grid.layout import GridLayout
from repro.grid.wire import Wire

__all__ = [
    "FoldedMetrics",
    "fold_metrics",
    "collinear_multilayer_metrics",
    "fold_layout",
]


@dataclass(frozen=True, slots=True)
class FoldedMetrics:
    """Metrics of a folded (or otherwise transformed) baseline layout."""

    name: str
    layers: int
    area: float
    volume: float
    max_wire: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "L": self.layers,
            "area": self.area,
            "volume": self.volume,
            "max_wire": self.max_wire,
        }


def fold_metrics(thompson: LayoutMetrics, layers: int) -> FoldedMetrics:
    """Fold a measured Thompson layout into ``layers`` layers.

    The fold stacks ``t = floor(layers/2)`` slabs, each with its own
    pair of wiring layers (and, per the paper's premise, its own active
    layer for the nodes it carries).
    """
    if thompson.layers != 2:
        raise ValueError("fold_metrics expects a 2-layer (Thompson) layout")
    t = max(layers // 2, 1)
    area = thompson.area / t
    return FoldedMetrics(
        name=f"folded({thompson.name}) L={layers}",
        layers=layers,
        area=area,
        volume=thompson.area * 2.0,  # t slabs x 2 layers x (area/t)
        max_wire=float(thompson.max_wire),
    )


def fold_layout(layout: GridLayout, layers: int) -> GridLayout:
    """Geometrically fold a Thompson layout into ``layers`` layers.

    This constructs the Section 2.2 folding baseline as a real,
    validator-checked multilayer 3-D grid layout -- not just the
    analytic transform of :func:`fold_metrics`:

    1. the layout is cut into ``t = floor(layers/2)`` slabs of equal
       column counts (it must come from the orthogonal builder, whose
       ``meta`` carries the column geometry, with uniform column pitch
       and ``cols`` divisible by ``t``);
    2. slab ``s`` keeps its y geometry, mirrors its x geometry on
       alternate slabs (paper folding), moves its wiring to layers
       ``(2s+1, 2s+2)`` and its nodes to active layer ``2s+1``;
    3. every horizontal run crossing a fold continues on the next
       slab's layers through a via spanning the intervening layer.
       (Fold planes stay clear of vertical wiring automatically: a
       vertical segment at a cut abscissa belongs to the right-hand
       slab, whose V layer lies outside the fold via's z-range, and
       original edge-disjointness rules out any other wire at a fold
       crossing's track ordinate.)

    Area shrinks by ~t; the wire multiset, lengths (up to +1 per alley
    crossed) and volume are unchanged -- exactly the paper's point
    about why folding is the inferior way to use extra layers.
    """
    if layout.layers != 2:
        raise ValueError("fold_layout expects a 2-layer (Thompson) layout")
    t = max(layers // 2, 1)
    if t == 1:
        return layout
    widths = layout.meta.get("col_widths")
    extents = layout.meta.get("col_channel_extents")
    if widths is None or extents is None:
        raise ValueError(
            "fold_layout needs the orthogonal builder's channel metadata"
        )
    cols = len(widths)
    if cols % t:
        raise ValueError(f"{cols} cell columns do not split into {t} slabs")
    pitches = [w + e for w, e in zip(widths, extents)]
    if len(set(pitches)) > 1:
        raise ValueError("fold_layout requires uniform column pitch")
    pitch = pitches[0]
    per_slab = cols // t
    slab_w = per_slab * pitch  # original width of every slab
    # Cut positions in original coordinates (left edge of each slab).
    cuts = [s * slab_w for s in range(t + 1)]

    def slab_of(x: int) -> int:
        s = min(x // slab_w, t - 1)
        return int(s)

    def mapx(x: int, s: int) -> int:
        local = x - cuts[s]
        if s % 2:
            return slab_w - local
        return local

    folded = GridLayout(layers=layers)
    for p in layout.placements.values():
        s = slab_of(p.rect.x0)
        if slab_of(max(p.rect.x1 - 1, p.rect.x0)) != s:
            raise ValueError(f"node {p.node!r} straddles a fold cut")
        xa, xb = mapx(p.rect.x0, s), mapx(p.rect.x1, s)
        x0 = min(xa, xb)
        folded.place(
            p.node, Rect(x0, p.rect.y0, p.rect.w, p.rect.h), layer=2 * s + 1
        )

    for w in layout.wires:
        folded.add_wire(
            Wire(w.u, w.v, _fold_wire_segments(w, cuts, slab_w, t),
                 edge_key=w.edge_key)
        )
    folded.meta.update(
        {
            "scheme": "folded-thompson",
            "name": f"folded({layout.meta.get('name', 'layout')}) L={layers}",
            "source_area": layout.area,
            "slabs": t,
        }
    )
    return folded


def _fold_wire_segments(
    wire: Wire, cuts: list[int], slab_w: int, t: int
) -> list[Segment]:
    """Map one wire's segments through the fold."""

    def slab_of(x: int) -> int:
        return int(min(x // slab_w, t - 1))

    def mapx(x: int, s: int) -> int:
        local = x - cuts[s]
        return slab_w - local if s % 2 else local

    out: list[Segment] = []
    # Trace the wire in path order so split pieces stay connected.
    points = wire.path_points()
    for i, seg in enumerate(wire.segments):
        a = points[i].planar()
        b = points[i + 1].planar()
        if seg.vertical:
            s = slab_of(seg.x1)
            layer = 2 * s + (2 if seg.layer == 2 else 1)
            out.append(
                Segment.make(mapx(seg.x1, s), seg.y1, mapx(seg.x2, s),
                             seg.y2, layer)
            )
            continue
        # Horizontal: walk from a to b, splitting at interior cuts.
        y = seg.y1
        x, x_end = a[0], b[0]
        step = 1 if x_end > x else -1
        while x != x_end:
            s = slab_of(x) if step > 0 else slab_of(x - 1)
            if step > 0:
                piece_end = min(x_end, cuts[s + 1])
            else:
                piece_end = max(x_end, cuts[s])
            layer = 2 * s + (1 if seg.layer == 1 else 2)
            out.append(
                Segment.make(mapx(x, s), y, mapx(piece_end, s), y, layer)
            )
            x = piece_end
    return out


def collinear_multilayer_metrics(
    collinear: LayoutMetrics, layers: int
) -> FoldedMetrics:
    """The multilayer *collinear* baseline: track stack height divides
    by ``floor(layers/2)``, width is unchanged."""
    if collinear.layers != 2:
        raise ValueError("expects a 2-layer collinear layout")
    t = max(layers // 2, 1)
    height = max(collinear.height / t, 1.0)
    area = collinear.width * height
    return FoldedMetrics(
        name=f"collinear-multilayer({collinear.name}) L={layers}",
        layers=layers,
        area=area,
        volume=area * layers,
        max_wire=float(collinear.max_wire),
    )
