"""Byte-identical parity: the batched engine vs the per-packet oracle.

`simulate_fast` is only allowed to be fast -- every observable field of
`SimulationResult` must match `simulate` exactly: makespan, the full
latency histogram (hence avg/max/percentiles), per-link load and busy
time (hence `link_utilization` dict contents and the busiest-link
tie-break), and `queue_depth_hist`.  The matrix covers the network zoo
under L=2/L=4 layout-derived delays x every workload kind x 5 seeds,
on both backends.  The module runs without numpy installed (the CI
traffic-parity job executes it inside the numpy-less venv and again
under ``REPRO_ENGINE_FALLBACK=1``); the numpy arm simply drops out of
the parametrization when the vectorized backend is unavailable.
"""

import pytest

from repro.batch.spec import dispatch_scheme
from repro.core import layout_hypercube
from repro.routing import (
    WORKLOAD_KINDS,
    dimension_order_route,
    layout_link_delays,
    make_workload,
    simulate,
    simulate_fast,
    uniform,
)
from repro.routing.engine import HAVE_NUMPY
from repro.topology import CubeConnectedCycles, Hypercube, Mesh, Ring, StarGraph

# use_numpy arms that can run in this interpreter; False (the pure
# python mirror) always can, True only when numpy imported cleanly.
BACKENDS = [False] + ([True] if HAVE_NUMPY else [])

ZOO = {
    "hypercube4": Hypercube(4),
    "ring12": Ring(12),
    "ccc3": CubeConnectedCycles(3),
    "star4": StarGraph(4),
    "mesh4x4": Mesh(4, 2),
}


def _delays(name, L):
    """Layout-derived per-link delays for a zoo member at L layers."""
    net = ZOO[name]
    if isinstance(net, Hypercube):
        lay = layout_hypercube(net.n, layers=L, node_side="min")
    else:
        lay = dispatch_scheme(net, layers=L, scheme="generic")
    return layout_link_delays(lay)


@pytest.fixture(scope="module")
def delay_cache():
    cache = {}

    def get(name, L):
        key = (name, L)
        if key not in cache:
            cache[key] = _delays(name, L)
        return cache[key]

    return get


def _workload(kind, net, seed):
    if kind == "trace":
        base = uniform(net, rate=0.3, duration=8, seed=seed)
        return make_workload(kind, net, trace=base)
    try:
        return make_workload(kind, net, seed=seed, rate=0.25, duration=10)
    except ValueError as exc:
        if "undefined" in str(exc):
            pytest.skip(f"{kind} undefined for {net.name}")
        raise


def _assert_field_parity(oracle, fast):
    assert fast == oracle
    # The dataclass eq above already covers everything; spell out the
    # fields the issue names so a future field addition that breaks
    # eq-coverage fails loudly here too.
    assert fast.makespan == oracle.makespan
    assert fast.avg_latency == oracle.avg_latency
    assert fast.max_latency == oracle.max_latency
    assert fast.latency_hist == oracle.latency_hist
    assert fast.max_link_load == oracle.max_link_load
    assert fast.link_utilization == oracle.link_utilization
    # ...including dict insertion order, which carries the oracle's
    # first-acquisition sequence (the busiest-link tie-break).
    assert list(fast.link_utilization) == list(oracle.link_utilization)
    assert fast.queue_depth_hist == oracle.queue_depth_hist
    assert fast.busiest_link == oracle.busiest_link
    assert fast.as_dict() == oracle.as_dict()


class TestZooParity:
    @pytest.mark.parametrize("name", sorted(ZOO))
    @pytest.mark.parametrize("L", [2, 4])
    @pytest.mark.parametrize("kind", WORKLOAD_KINDS)
    def test_zoo_workloads_match(self, name, L, kind, delay_cache):
        net = ZOO[name]
        link_delay = delay_cache(name, L)
        for seed in range(5):
            msgs = _workload(kind, net, seed)
            oracle = simulate(net, msgs, link_delay=link_delay)
            for use_numpy in BACKENDS:
                fast = simulate_fast(
                    net, msgs, link_delay=link_delay, use_numpy=use_numpy
                )
                _assert_field_parity(oracle, fast)


class TestModesAndRouters:
    @pytest.mark.parametrize("mode,length", [
        ("store_forward", 1), ("store_forward", 6),
        ("cut_through", 1), ("cut_through", 6),
    ])
    def test_modes_and_lengths(self, mode, length, delay_cache):
        net = ZOO["hypercube4"]
        route = lambda s, d: dimension_order_route(net, s, d)  # noqa: E731
        link_delay = delay_cache("hypercube4", 4)
        for seed in range(5):
            msgs = _workload("uniform", net, seed)
            oracle = simulate(
                net, msgs, link_delay=link_delay, router=route,
                mode=mode, message_length=length,
            )
            for use_numpy in BACKENDS:
                fast = simulate_fast(
                    net, msgs, link_delay=link_delay, router=route,
                    mode=mode, message_length=length, use_numpy=use_numpy,
                )
                _assert_field_parity(oracle, fast)

    def test_saturated_contention(self):
        # Everything funnels through one node: deep queues, the herd
        # regime where the engine's waiter heaps must still replay the
        # oracle's FIFO-by-index arbitration exactly.
        net = Ring(8)
        msgs = [(0, 4)] * 20 + [(1, 5)] * 10 + [(0, 4, 3)] * 5
        oracle = simulate(net, msgs, message_length=3)
        for use_numpy in BACKENDS:
            _assert_field_parity(
                oracle,
                simulate_fast(net, msgs, message_length=3,
                              use_numpy=use_numpy),
            )

    def test_timed_and_degenerate_messages(self):
        net = Ring(6)
        msgs = [(2, 2), (0, 3, 7), (1, 1, 4), (5, 2)]
        oracle = simulate(net, msgs)
        for use_numpy in BACKENDS:
            _assert_field_parity(
                oracle, simulate_fast(net, msgs, use_numpy=use_numpy)
            )

    def test_empty_run(self):
        oracle = simulate(Ring(4), [])
        for use_numpy in BACKENDS:
            _assert_field_parity(
                oracle, simulate_fast(Ring(4), [], use_numpy=use_numpy)
            )


class TestErrorParity:
    def test_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            simulate_fast(Ring(4), [(0, 1)], mode="teleport")

    def test_bad_length(self):
        with pytest.raises(ValueError, match="message_length"):
            simulate_fast(Ring(4), [(0, 1)], message_length=0)

    def test_runaway_guard(self):
        net = Ring(5)
        msgs = make_workload("adversarial", net, seed=1)
        with pytest.raises(RuntimeError, match="max_cycles"):
            simulate_fast(net, msgs, max_cycles=2)

    def test_numpy_request_without_numpy(self):
        if HAVE_NUMPY:
            pytest.skip("numpy available: the request is satisfiable")
        with pytest.raises(ValueError, match="numpy"):
            simulate_fast(Ring(4), [(0, 1)], use_numpy=True)
