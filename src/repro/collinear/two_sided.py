"""Two-sided collinear layouts: tracks above *and* below the node row.

The paper's collinear layouts (Figures 2-4) put every track above the
node line.  The classical two-sided variant splits the tracks between
an upper and a lower channel.  Total height is unchanged (the tracks
still all exist), but the channel *depth* halves: no track sits more
than ~T/2 lines from the node row, so the vertical runs of the wires
shrink -- measured, ~15% off the max wire and ~25% off the total wire
length for K_9 and the 5-cube.  The paper does not use it (its 2-D
scheme keeps the bottom side free for the strips of cluster blocks),
so this lives here as an ablation/extension; the emitted
:class:`~repro.grid.layout.GridLayout` passes the full validator.

Track assignment: pack once with left-edge (optimal, T = max cut), then
send even-numbered tracks up and odd-numbered tracks down.  Within each
side the relative track order is preserved, so in-track interval
disjointness carries over, and pin ordering per side follows the same
arrivals-before-departures rule as the orthogonal builder.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.collinear.engine import collinear_layout
from repro.core.multilayer import LayerGroups
from repro.grid.geometry import Rect, Segment
from repro.grid.layout import GridLayout
from repro.grid.wire import Wire
from repro.topology.base import Network, Node

__all__ = ["two_sided_collinear_layout"]


def two_sided_collinear_layout(
    network: Network,
    *,
    layers: int = 2,
    order: Sequence[Node] | None = None,
    node_side: int | None = None,
) -> GridLayout:
    """Collinear layout with upper/lower channels (see module doc)."""
    seq = list(order) if order is not None else list(network.nodes)
    lay = collinear_layout(network.nodes, network.edges, seq)
    side = node_side if node_side is not None else max(network.max_degree, 1)

    # Split tracks by parity; renumber within each side.
    upper: dict[int, int] = {}
    lower: dict[int, int] = {}
    for t in range(lay.num_tracks):
        if t % 2 == 0:
            upper[t] = len(upper)
        else:
            lower[t] = len(lower)
    g_up = LayerGroups(max(len(upper), 1), layers)
    g_dn = LayerGroups(max(len(lower), 1), layers)
    up_extent = g_up.physical_extent() if upper else 0
    dn_extent = g_dn.physical_extent() if lower else 0

    node_y = up_extent  # node row sits below the upper channel
    layout = GridLayout(layers=layers)
    pos = {v: i for i, v in enumerate(seq)}
    for v in seq:
        layout.place(v, Rect(pos[v] * side, node_y, side, side))

    # Pin allocation per node per side, honoring arrival/departure order.
    pins: dict[tuple[Node, str], dict[int, int]] = {}

    # Phase 1: collect requests per (node, side).
    requests: dict[tuple[Node, str], list[tuple[tuple, int]]] = {}
    edge_side: dict[int, str] = {}
    for e, (u, v) in enumerate(lay.edges):
        t = lay.tracks[e]
        side_name = "top" if t in upper else "bottom"
        edge_side[e] = side_name
        lo, hi = lay.interval(e)
        for node, mine, other in ((u, pos[u], pos[v]), (v, pos[v], pos[u])):
            direction = 0 if other < mine else 1
            requests.setdefault((node, side_name), []).append(
                ((direction, other, e), e)
            )
    for key, reqs in requests.items():
        reqs.sort(key=lambda r: r[0])
        table = pins.setdefault(key, {})
        if len(reqs) > side:
            raise ValueError(
                f"node {key[0]!r} needs {len(reqs)} {key[1]} pins but the "
                f"square offers {side}; raise node_side"
            )
        for off, (_, e) in enumerate(reqs):
            table[e] = off

    # Phase 2: route.
    for e, (u, v) in enumerate(lay.edges):
        t = lay.tracks[e]
        side_name = edge_side[e]
        if side_name == "top":
            slot = g_up.slot(upper[t])
            y_t = slot.offset
            y_pin = node_y
        else:
            slot = g_dn.slot(lower[t])
            y_t = node_y + side + 1 + slot.offset
            y_pin = node_y + side
        xu = pos[u] * side + pins[(u, side_name)][e]
        xv = pos[v] * side + pins[(v, side_name)][e]
        segs = [
            Segment.make(xu, y_pin, xu, y_t, slot.v_layer),
            Segment.make(xu, y_t, xv, y_t, slot.h_layer),
            Segment.make(xv, y_t, xv, y_pin, slot.v_layer),
        ]
        layout.add_wire(Wire(u, v, segs, edge_key=e))

    layout.meta.update(
        {
            "scheme": "two-sided-collinear",
            "name": f"two-sided collinear {network.name} L={layers}",
            "tracks": lay.num_tracks,
            "upper_tracks": len(upper),
            "lower_tracks": len(lower),
            "upper_extent": up_extent,
            "lower_extent": dn_extent,
            "node_side": side,
        }
    )
    return layout
