"""Layout lower bounds via bisection width.

The paper's optimality claims ("optimal within a factor of 1 + o(1)
under the Thompson model, and within 2 + o(1) from a trivial lower
bound under the multilayer grid model") rest on the classical
bisection-width argument: any layout cut by a vertical line into two
halves with ~N/2 nodes each must route every edge of the corresponding
graph bisection through the cut, and a cut of height H crossed by L
wiring layers carries at most H * L wires.  Hence

    width >= B / L,   height >= B / L,   area >= (B / L)^2,

with B the network's (edge) bisection width; under Thompson, L = 2
gives the textbook A >= B^2 / 4.

This module provides:

* closed-form bisection widths for the paper's families
  (:func:`bisection_formula`);
* an exact brute-force bisection for small graphs and a deterministic
  Kernighan--Lin heuristic upper bound for larger ones, used by tests
  to certify the formulas;
* :func:`area_lower_bound` and :func:`optimality_factor`, which the
  benches use to reproduce the abstract's optimality-factor table.

Note the direction of certification: the *formula* value is what the
lower bound uses; ``exact_bisection`` equals it on small instances and
``kernighan_lin`` can only be >= the true bisection (it is an upper
bound on B, useful as a sanity ceiling).
"""

from __future__ import annotations

import math
from itertools import combinations

from repro.topology.base import Network

__all__ = [
    "exact_bisection",
    "kernighan_lin",
    "bisection_formula",
    "area_lower_bound",
    "volume_lower_bound",
    "wire_lower_bound",
    "optimality_factor",
]


def _cut_size(network: Network, side: set) -> int:
    return sum(1 for u, v in network.edges if (u in side) != (v in side))


def exact_bisection(network: Network) -> int:
    """Minimum edge cut over all floor(N/2)/ceil(N/2) node splits.

    Brute force: O(C(N, N/2)) cuts -- fine for N <= ~20, which is what
    the tests use to certify :func:`bisection_formula`.
    """
    nodes = list(network.nodes)
    n = len(nodes)
    if n < 2:
        return 0
    half = n // 2
    best = math.inf
    anchor = nodes[0]  # fix one node to halve the search space
    rest = nodes[1:]
    for group in combinations(rest, half - 1 if n % 2 == 0 else half):
        side = set(group) | {anchor}
        best = min(best, _cut_size(network, side))
    return int(best)


def kernighan_lin(network: Network, *, passes: int = 8) -> int:
    """Deterministic Kernighan--Lin bisection heuristic.

    Returns the cut size of the best bisection found -- an *upper*
    bound on the true bisection width.  Deterministic (initial split by
    canonical node order) so results are reproducible.
    """
    nodes = list(network.nodes)
    n = len(nodes)
    if n < 2:
        return 0
    half = n // 2
    a = set(nodes[:half])
    b = set(nodes[half:])
    adj = network.adjacency

    def d_value(v, own, other):
        ext = sum(1 for w in adj[v] if w in other)
        internal = sum(1 for w in adj[v] if w in own)
        return ext - internal

    for _ in range(passes):
        a_work, b_work = set(a), set(b)
        locked: set = set()
        gains: list[tuple[int, object, object]] = []
        for _ in range(min(len(a_work), len(b_work))):
            best = None
            for x in a_work - locked:
                dx = d_value(x, a_work, b_work)
                for y in b_work - locked:
                    gain = dx + d_value(y, b_work, a_work) - 2 * (
                        1 if y in adj[x] else 0
                    )
                    if best is None or gain > best[0]:
                        best = (gain, x, y)
            if best is None:
                break
            _, x, y = best
            a_work.remove(x)
            b_work.remove(y)
            a_work.add(y)
            b_work.add(x)
            locked.update((x, y))
            gains.append(best)
        # Keep the prefix of swaps with the best cumulative gain.
        cum, best_cum, best_k = 0, 0, 0
        for k, (g, _, _) in enumerate(gains, 1):
            cum += g
            if cum > best_cum:
                best_cum, best_k = cum, k
        if best_k == 0:
            break
        for g, x, y in gains[:best_k]:
            a.remove(x)
            b.remove(y)
            a.add(y)
            b.add(x)
    return _cut_size(network, a)


def bisection_formula(family: str, *args) -> int:
    """Known bisection widths for the paper's families.

    ``family`` in {"hypercube", "kary", "ghc", "complete", "ring"}.
    These are the standard results (hypercube N/2; even-k torus 2N/k;
    complete graph |N^2/4|; uniform GHC rN/4 for even r; ring 2) used
    by the lower-bound accounting of Sections 3-5.
    """
    if family == "hypercube":
        (n,) = args
        return 1 << (n - 1)
    if family == "kary":
        k, n = args
        if k % 2:
            raise ValueError("closed form used for even k only")
        # Cut the most significant digit's rings in half: each of the
        # N/k rings contributes 2 crossing links.
        return 2 * k ** (n - 1)
    if family == "ghc":
        r, n = args
        if r % 2:
            raise ValueError("closed form used for even r only")
        # Each of the N/r highest-dimension K_r rows is cut (r/2)^2.
        return (r // 2) ** 2 * r ** (n - 1)
    if family == "complete":
        (n,) = args
        return (n // 2) * ((n + 1) // 2)
    if family == "ring":
        (k,) = args
        return 2
    raise ValueError(f"no closed form for {family!r}")


def area_lower_bound(bisection: int, layers: int) -> int:
    """The trivial multilayer bound: area >= (B / L)^2."""
    side = -(-bisection // max(layers, 1))
    return side * side


def volume_lower_bound(bisection: int, layers: int) -> int:
    """Volume bound implied by the area bound: V = L * A >= L (B/L)^2."""
    return max(layers, 1) * area_lower_bound(bisection, layers)


def wire_lower_bound(num_edges: int) -> int:
    """Trivial total-wire-length bound: every routed wire spans at
    least one unit edge (pins sit on the perimeters of disjoint node
    squares), so total wire >= |E|."""
    return num_edges


def optimality_factor(measured_area: int, bisection: int, layers: int) -> float:
    """measured / lower-bound -- the paper's "small constant factor"."""
    lb = area_lower_bound(bisection, layers)
    return measured_area / lb if lb else math.inf
