"""Pluggable kernel backend registry for the hot validation/analysis passes.

Mirrors the import-time fallback pattern of :mod:`repro.grid.table`:
the ``numpy`` backend is selected automatically when numpy imports,
with a ``pure`` python mirror always available. The choice can be
forced via the ``REPRO_ACCEL_BACKEND`` environment variable:

``REPRO_ACCEL_BACKEND=pure``
    Force the pure-python kernels everywhere (also disables the fast
    engine's numpy batch path so every layer measures the same code).
``REPRO_ACCEL_BACKEND=numpy``
    Require numpy; raises at import if it is not installed.

Both backends expose the same kernel functions over
:class:`repro.grid.table.WireTable` arrays (see :mod:`repro.accel.pure`
for the reference semantics). Kernels are *conservative*: "clean"
verdicts are only returned when the scalar check provably accepts, so
callers fall back to the original scalar sweep — and its byte-identical
error message — whenever a kernel reports suspicion.
"""

from __future__ import annotations

import os

from repro.accel._common import BASE_BITS, INF, bit_adjacency, edge_weights

__all__ = [
    "BASE_BITS",
    "INF",
    "HAVE_NUMPY",
    "BACKENDS",
    "active_backend",
    "backend_info",
    "bit_adjacency",
    "edge_weights",
    "get_backend",
]

try:  # pragma: no cover - exercised via the numpy-less venv CI leg
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

_NUMPY_IMPORTABLE = _np is not None

_ENV = os.environ.get("REPRO_ACCEL_BACKEND", "").strip().lower()
if _ENV and _ENV not in ("pure", "numpy"):
    raise ValueError(
        f"REPRO_ACCEL_BACKEND={_ENV!r}: expected 'pure' or 'numpy'"
    )
if _ENV == "numpy" and _np is None:
    raise ImportError("REPRO_ACCEL_BACKEND=numpy but numpy is not installed")
if _ENV == "pure":
    _np = None

HAVE_NUMPY = _np is not None

from repro.accel import pure as _pure  # noqa: E402

if HAVE_NUMPY:
    from repro.accel import vector as _vector  # noqa: E402

    BACKENDS = ("pure", "numpy")
    _ACTIVE = "numpy"
else:
    _vector = None
    BACKENDS = ("pure",)
    _ACTIVE = "pure"


def active_backend() -> str:
    """Name of the backend kernels dispatch to by default."""
    return _ACTIVE


def get_backend(name: str | None = None):
    """Return the kernel module for *name* (default: the active backend)."""
    if name is None:
        name = _ACTIVE
    if name == "pure":
        return _pure
    if name == "numpy":
        if _vector is None:
            raise ValueError(
                "numpy accel backend unavailable "
                "(numpy missing or REPRO_ACCEL_BACKEND=pure)"
            )
        return _vector
    raise ValueError(f"unknown accel backend {name!r}")


def backend_info() -> dict:
    """Which implementation each accelerated layer is actually running.

    Imports the consumer modules lazily so this stays cycle-free.
    """
    from repro.grid import table as _table
    from repro.routing import engine as _engine

    return {
        "accel": _ACTIVE,
        "accel_env": _ENV or None,
        "numpy_importable": _NUMPY_IMPORTABLE,
        "table": "numpy" if _table.HAVE_NUMPY else "fallback",
        "engine": "numpy" if _engine.HAVE_NUMPY else "python",
    }
