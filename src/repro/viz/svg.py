"""SVG rendering of routed layouts, with per-layer colors.

The renderer emits a standalone SVG string: node squares in grey,
wire segments colored by layer (horizontal layers warm, vertical
layers cool), vias as small circles.  Useful for eyeballing the
multilayer structure -- with L = 8 the four track groups of a channel
are visibly interleaved.
"""

from __future__ import annotations

from repro.grid.layout import GridLayout

__all__ = ["svg_layout", "svg_layer_stack"]

# Paired palette: index g colors layer 2g+1 (horizontal) and 2g+2
# (vertical) in related hues.
_H_COLORS = ["#d62728", "#ff7f0e", "#bcbd22", "#e377c2", "#8c564b"]
_V_COLORS = ["#1f77b4", "#2ca02c", "#17becf", "#9467bd", "#7f7f7f"]


def _layer_color(layer: int) -> str:
    g = (layer - 1) // 2
    if layer % 2 == 1:
        return _H_COLORS[g % len(_H_COLORS)]
    return _V_COLORS[g % len(_V_COLORS)]


def svg_layout(
    layout: GridLayout,
    *,
    scale: int = 6,
    margin: int = 10,
    node_labels: bool = False,
    legend: bool = False,
) -> str:
    """Render ``layout`` to an SVG document string.

    With ``legend=True`` a per-layer color key is appended below the
    drawing.
    """
    bb = layout.bounding_box()
    layers_used = sorted(layout.layers_used()) if legend else []
    legend_h = 18 * len(layers_used) + 10 if legend else 0
    width = bb.w * scale + 2 * margin
    height = bb.h * scale + 2 * margin + legend_h

    def sx(x: int) -> int:
        return (x - bb.x0) * scale + margin

    def sy(y: int) -> int:
        return (y - bb.y0) * scale + margin

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    for p in layout.placements.values():
        r = p.rect
        parts.append(
            f'<rect x="{sx(r.x0)}" y="{sy(r.y0)}" '
            f'width="{max(r.w * scale, 2)}" height="{max(r.h * scale, 2)}" '
            f'fill="#cccccc" stroke="#555555" stroke-width="1"/>'
        )
        if node_labels:
            cx = sx(r.x0) + r.w * scale // 2
            cy = sy(r.y0) + r.h * scale // 2
            parts.append(
                f'<text x="{cx}" y="{cy}" font-size="{scale * 2}" '
                f'text-anchor="middle" dominant-baseline="middle">'
                f"{_escape(p.node)}</text>"
            )
    table = layout.wire_table()
    seg_rows = table.segment_rows()
    starts = table.wire_seg_start
    for wi in range(table.num_wires):
        for (x1, y1, x2, y2, layer) in seg_rows[int(starts[wi]):int(starts[wi + 1])]:
            parts.append(
                f'<line x1="{sx(x1)}" y1="{sy(y1)}" '
                f'x2="{sx(x2)}" y2="{sy(y2)}" '
                f'stroke="{_layer_color(layer)}" stroke-width="1.5" '
                f'stroke-opacity="0.85"/>'
            )
        for (x, y) in table.wire_vias(wi):
            parts.append(
                f'<circle cx="{sx(x)}" cy="{sy(y)}" r="1.8" fill="#222222"/>'
            )
    if legend:
        ly = bb.h * scale + 2 * margin
        for i, layer in enumerate(layers_used):
            y = ly + 14 + 18 * i
            kind = "horizontal" if layer % 2 else "vertical"
            parts.append(
                f'<line x1="{margin}" y1="{y}" x2="{margin + 24}" y2="{y}" '
                f'stroke="{_layer_color(layer)}" stroke-width="3"/>'
            )
            parts.append(
                f'<text x="{margin + 30}" y="{y + 4}" font-size="11" '
                f'font-family="sans-serif">layer {layer} ({kind})</text>'
            )
    parts.append("</svg>")
    return "\n".join(parts)


def svg_layer_stack(
    layout: GridLayout, *, scale: int = 4, margin: int = 10, gap: int = 16
) -> str:
    """Exploded view: each layer drawn side by side, left to right.

    The natural way to look at folded and 3-D deck-stacked layouts:
    every wiring layer (and the node squares of each active layer)
    appears in its own panel.
    """
    bb = layout.bounding_box()
    table = layout.wire_table()
    seg_rows = table.segment_rows()
    starts = table.wire_seg_start
    layers = sorted(
        layout.layers_used()
        | {p.layer for p in layout.placements.values()}
    )
    if not layers:
        layers = [1]
    panel_w = bb.w * scale + gap
    width = panel_w * len(layers) + 2 * margin
    height = bb.h * scale + 2 * margin + 16

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    for pi, layer in enumerate(layers):
        ox = margin + pi * panel_w

        def sx(x: int) -> int:
            return ox + (x - bb.x0) * scale

        def sy(y: int) -> int:
            return (y - bb.y0) * scale + margin + 14

        parts.append(
            f'<text x="{ox}" y="{margin + 6}" font-size="11" '
            f'font-family="sans-serif">layer {layer}</text>'
        )
        parts.append(
            f'<rect x="{ox}" y="{margin + 14}" width="{bb.w * scale}" '
            f'height="{bb.h * scale}" fill="none" stroke="#dddddd"/>'
        )
        for p in layout.placements.values():
            if p.layer != layer:
                continue
            r = p.rect
            parts.append(
                f'<rect x="{sx(r.x0)}" y="{sy(r.y0)}" '
                f'width="{max(r.w * scale, 2)}" '
                f'height="{max(r.h * scale, 2)}" '
                f'fill="#cccccc" stroke="#555555" stroke-width="0.8"/>'
            )
        for wi in range(table.num_wires):
            for (x1, y1, x2, y2, slayer) in seg_rows[
                int(starts[wi]):int(starts[wi + 1])
            ]:
                if slayer != layer:
                    continue
                parts.append(
                    f'<line x1="{sx(x1)}" y1="{sy(y1)}" '
                    f'x2="{sx(x2)}" y2="{sy(y2)}" '
                    f'stroke="{_layer_color(slayer)}" stroke-width="1.2"/>'
                )
            for (pt, zlo, zhi) in table.wire_zruns(wi):
                if zlo <= layer <= zhi:
                    parts.append(
                        f'<circle cx="{sx(pt[0])}" cy="{sy(pt[1])}" r="1.5" '
                        f'fill="#222222"/>'
                    )
    parts.append("</svg>")
    return "\n".join(parts)


def _escape(obj) -> str:
    return (
        str(obj)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )
