"""Shared test helpers."""

from __future__ import annotations

import pytest

from repro.grid.validate import check_topology, validate_layout


def assert_layout_ok(layout, network=None, *, parity=True):
    """Full legality check, plus topology equivalence when a network is
    given.  Used by nearly every scheme test."""
    report = validate_layout(layout, check_parity=parity)
    assert report["wires"] == len(layout.wires)
    if network is not None:
        check_topology(layout, network.edges)
    return report


@pytest.fixture
def small_layouts():
    """A few routed layouts reused across metric/viz tests."""
    from repro.core import layout_collinear_network, layout_kary
    from repro.topology import Ring

    return {
        "ring": layout_collinear_network(Ring(5)),
        "kary": layout_kary(3, 2),
        "kary4": layout_kary(3, 2, layers=4),
    }
