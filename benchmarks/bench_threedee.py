"""E8: the multilayer 3-D grid model (Section 2.2-2.3).

The paper defines the 3-D model and defers concrete layouts to future
work; this bench measures the natural deck-stacking construction for
product networks against the 2-D multilayer layout of the same network
under the same total layer budget: footprint, volume and max wire all
improve, quantifying why the 3-D model exists.
"""

from repro.core import layout_kary, measure
from repro.core.threedee import layout_product_3d
from repro.grid.validate import validate_layout
from repro.topology import Ring


def test_3d_vs_2d_torus(benchmark, report):
    rows = []
    for k, L in ((4, 8), (4, 16), (6, 12)):
        lay3 = layout_product_3d(Ring(k), Ring(k), Ring(k), layers=L)
        validate_layout(lay3)
        m3 = measure(lay3)
        m2 = measure(layout_kary(k, 3, layers=L))
        rows.append([
            f"{k}x{k}x{k}", L,
            m2.area, m3.area, f"{m2.area / m3.area:.2f}",
            m2.volume, m3.volume, f"{m2.volume / m3.volume:.2f}",
            m2.max_wire, m3.max_wire,
        ])
        assert m3.area < m2.area
        assert m3.volume < m2.volume
    report(
        "E8: 3-D deck stacking vs 2-D multilayer layout of the same "
        "torus at equal L",
        ["torus", "L", "2-D area", "3-D area", "ratio",
         "2-D vol", "3-D vol", "ratio", "2-D wire", "3-D wire"],
        rows,
    )
    benchmark.pedantic(
        layout_product_3d, args=(Ring(4), Ring(4), Ring(4)),
        kwargs={"layers": 8}, rounds=1, iterations=1,
    )


def test_riser_overhead(report, benchmark):
    """Risers reuse free pin offsets: zero extra tracks, zero extra
    area -- the stacking dimension is 'free' in plan view."""
    rows = []
    for k in (3, 4):
        lay3 = layout_product_3d(Ring(k), Ring(k), Ring(k), layers=2 * k)
        m3 = measure(lay3)
        # A single deck alone (the A x B slice at its share of layers),
        # with the same node squares the 3-D layout uses.
        deck = layout_kary(k, 2, layers=2, node_side=lay3.meta["node_side"])
        md = measure(deck)
        rows.append([
            f"{k}^3", m3.width, md.width, m3.height, md.height,
            sum(1 for w in lay3.wires if w.riser is not None),
        ])
        assert m3.width <= md.width + 2
        assert m3.height <= md.height + 2
    report(
        "E8b: 3-D footprint equals one deck's footprint "
        "(risers consume no tracks)",
        ["torus", "3-D W", "deck W", "3-D H", "deck H", "risers"],
        rows,
    )
    benchmark(layout_product_3d, Ring(3), Ring(3), Ring(3), layers=6)
