"""Traffic patterns for network simulation.

The classic kernels used to evaluate interconnection networks: each
function returns a list of (source, destination) messages over the
network's nodes.  Randomized patterns are seeded for reproducibility.
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.topology.base import Network
from repro.topology.hypercube import Hypercube

__all__ = [
    "random_permutation",
    "bit_complement",
    "transpose",
    "all_to_all",
    "hot_spot",
    "rate_injection",
]

Node = Hashable
Message = tuple[Node, Node]


def random_permutation(network: Network, *, seed: int = 2000) -> list[Message]:
    """Every node sends to a distinct random node (a permutation)."""
    rng = random.Random(seed)
    nodes = list(network.nodes)
    targets = nodes[:]
    while True:
        rng.shuffle(targets)
        if all(s != t for s, t in zip(nodes, targets)):
            break
    return list(zip(nodes, targets))


def bit_complement(network: Network) -> list[Message]:
    """Hypercube-style worst case: node -> bitwise complement.

    For non-integer node labels, pairs node i with node N-1-i in
    canonical order (the same adversarial "maximum distance" spirit).
    """
    nodes = list(network.nodes)
    if isinstance(network, Hypercube):
        mask = (1 << network.n) - 1
        return [(u, u ^ mask) for u in nodes]
    n = len(nodes)
    return [(nodes[i], nodes[n - 1 - i]) for i in range(n) if i != n - 1 - i]


def transpose(network: Network) -> list[Message]:
    """Digit/bit transpose: swap the two halves of the address."""
    nodes = list(network.nodes)
    out: list[Message] = []
    if isinstance(network, Hypercube):
        n = network.n
        half = n // 2
        lo_mask = (1 << half) - 1
        for u in nodes:
            v = ((u & lo_mask) << (n - half)) | (u >> half)
            if u != v:
                out.append((u, v))
        return out
    for u in nodes:
        if isinstance(u, tuple):
            half = len(u) // 2
            v = u[half:] + u[:half]
            if v != u and v in network.index:
                out.append((u, v))
    if not out:
        raise ValueError(f"transpose undefined for {network.name}")
    return out


def all_to_all(network: Network) -> list[Message]:
    """Every ordered pair once (use on small networks)."""
    nodes = list(network.nodes)
    return [(u, v) for u in nodes for v in nodes if u != v]


def rate_injection(
    network: Network,
    *,
    rate: float,
    duration: int,
    seed: int = 2000,
) -> list[tuple[Node, Node, int]]:
    """Timed uniform-random traffic: each node injects a message to a
    uniformly random other node with probability ``rate`` per cycle,
    for ``duration`` cycles.  Returns (src, dst, start) triples for the
    simulator's load sweeps.
    """
    if not (0.0 < rate <= 1.0):
        raise ValueError("0 < rate <= 1")
    rng = random.Random(seed)
    nodes = list(network.nodes)
    out: list[tuple[Node, Node, int]] = []
    for t in range(duration):
        for u in nodes:
            if rng.random() < rate:
                v = rng.choice(nodes)
                while v == u:
                    v = rng.choice(nodes)
                out.append((u, v, t))
    return out


def hot_spot(
    network: Network, *, spot: Node | None = None, fraction: float = 1.0,
    seed: int = 2000,
) -> list[Message]:
    """A fraction of nodes all send to one hot node."""
    rng = random.Random(seed)
    nodes = list(network.nodes)
    target = spot if spot is not None else nodes[0]
    senders = [v for v in nodes if v != target]
    if fraction < 1.0:
        count = max(1, int(len(senders) * fraction))
        senders = rng.sample(senders, count)
    return [(s, target) for s in senders]
