"""E1/E2: the introduction's claims (1)-(4) and the Section 2.4 track
arithmetic.

E1 sweeps L on a 10-cube (minimal node squares) and prints the measured
improvement factors of the multilayer scheme next to the ideal L^2/4
and L/2 factors and the folding baseline.  E2 checks the per-channel
per-layer track count ceil(h / floor(L/2)) exactly.
"""

from repro.core import (
    layout_hypercube,
    layout_kary,
    measure,
)
from repro.core.folding import fold_layout
from repro.core.metrics import weighted_diameter
from repro.grid.validate import validate_layout
from repro.collinear.formulas import kary_tracks


DIM = 10
SWEEP = (2, 4, 8, 16)


def test_e1_claims_sweep(benchmark, report):
    base_lay = layout_hypercube(DIM, layers=2, node_side="min")
    base = measure(base_lay)
    base_path = weighted_diameter(base_lay, max_sources=4)

    rows = []
    for L in SWEEP:
        lay = layout_hypercube(DIM, layers=L, node_side="min")
        m = measure(lay)
        # The folding baseline is *constructed* (a real validated
        # multilayer 3-D layout), not just the analytic transform.
        folded_lay = fold_layout(base_lay, L)
        if L > 2:
            validate_layout(folded_lay)
        folded = measure(folded_lay)
        path = weighted_diameter(lay, max_sources=4)
        folded_path = weighted_diameter(folded_lay, max_sources=4)
        rows.append([
            L,
            f"{base.area / m.area:.2f}",
            f"{L * L / 4:.0f}",
            f"{base.area / folded.area:.2f}",
            f"{base.volume / m.volume:.2f}",
            f"{L / 2:.0f}",
            f"{base.max_wire / m.max_wire:.2f}",
            f"{base.max_wire / folded.max_wire:.2f}",
            f"{base_path / path:.2f}",
            f"{base_path / folded_path:.2f}",
        ])
    report(
        "E1: claims (1)-(4) on the 10-cube -- multilayer scheme vs the "
        "constructed folding baseline, improvements over L=2",
        ["L", "area x", "ideal", "area x (fold)", "volume x", "ideal",
         "wire x", "wire x (fold)", "path x", "path x (fold)"],
        rows,
    )
    benchmark.pedantic(
        layout_hypercube, args=(DIM,),
        kwargs={"layers": 8, "node_side": "min"}, rounds=1, iterations=1,
    )


def test_e2_track_split_arithmetic(benchmark, report):
    rows = []
    k, n = 4, 4
    f = kary_tracks(k, n // 2)
    for L in (2, 3, 4, 6, 8, 10):
        lay = layout_kary(k, n, layers=L)
        G = max(L // 2, 1)
        expect = -(-f // G)
        got = set(lay.meta["row_channel_extents"])
        assert got == {expect}, (L, got, expect)
        rows.append([L, G, f, expect])
    report(
        "E2: tracks per layer above a row = ceil(f_k(n/2) / floor(L/2)) "
        f"(k={k}, n={n})",
        ["L", "groups", "row tracks", "per-layer tracks"],
        rows,
    )
    benchmark(layout_kary, k, n, layers=4)
