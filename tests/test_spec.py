"""LayoutSpec validation."""

import pytest

from repro.core.spec import BlockCell, LayoutSpec, LinkSpec, NodeCell


def one_row_spec():
    cells = {(0, j): NodeCell(f"n{j}", 2) for j in range(3)}
    return LayoutSpec(rows=1, cols=3, cells=cells)


class TestCells:
    def test_node_cell_side(self):
        with pytest.raises(ValueError):
            NodeCell("a", 0)

    def test_block_cell_membership(self):
        with pytest.raises(ValueError, match="duplicate"):
            BlockCell("c", ["a", "a"], [], 2)
        with pytest.raises(ValueError, match="leaves block"):
            BlockCell("c", ["a", "b"], [("a", "zzz")], 2)


class TestLinkSpec:
    def test_same_row_col(self):
        l = LinkSpec((0, 0), (0, 2), "a", "b")
        assert l.same_row and not l.same_col
        l = LinkSpec((0, 1), (2, 1), "a", "b")
        assert l.same_col and not l.same_row


class TestSpecValidation:
    def test_valid_passes(self):
        spec = one_row_spec()
        spec.row_links.append(LinkSpec((0, 0), (0, 2), "n0", "n2"))
        spec.validate()

    def test_min_layers(self):
        spec = one_row_spec()
        spec.layers = 1
        with pytest.raises(ValueError, match="L >= 2"):
            spec.validate()

    def test_cell_outside_grid(self):
        spec = one_row_spec()
        spec.cells[(5, 0)] = NodeCell("x", 2)
        with pytest.raises(ValueError, match="outside"):
            spec.validate()

    def test_row_link_must_be_same_row(self):
        spec = one_row_spec()
        spec.row_links.append(LinkSpec((0, 0), (0, 0), "n0", "n0"))
        with pytest.raises(ValueError, match="bad row link"):
            spec.validate()

    def test_link_node_must_live_in_cell(self):
        spec = one_row_spec()
        spec.row_links.append(LinkSpec((0, 0), (0, 2), "n0", "WRONG"))
        with pytest.raises(ValueError, match="holds"):
            spec.validate()

    def test_link_into_empty_cell(self):
        spec = one_row_spec()
        del spec.cells[(0, 2)]
        spec.row_links.append(LinkSpec((0, 0), (0, 2), "n0", "n2"))
        with pytest.raises(ValueError, match="empty cell"):
            spec.validate()

    def test_block_membership_checked(self):
        cells = {
            (0, 0): BlockCell("c0", ["a", "b"], [("a", "b")], 2),
            (0, 1): NodeCell("z", 2),
        }
        spec = LayoutSpec(rows=1, cols=2, cells=cells)
        spec.row_links.append(LinkSpec((0, 0), (0, 1), "nope", "z"))
        with pytest.raises(ValueError, match="absent from block"):
            spec.validate()

    def test_extra_link_within_cell_rejected(self):
        spec = one_row_spec()
        spec.extra_links.append(LinkSpec((0, 0), (0, 0), "n0", "n0"))
        with pytest.raises(ValueError, match="within one cell"):
            spec.validate()

    def test_all_links(self):
        spec = one_row_spec()
        spec.row_links.append(LinkSpec((0, 0), (0, 1), "n0", "n1"))
        assert len(spec.all_links()) == 1
