#!/usr/bin/env python
"""The network zoo: every family the paper lays out, side by side.

Builds each supported topology at a comparable scale, routes it under
L = 4 wiring layers, validates it, and tabulates nodes, links, area,
volume and wire metrics -- the practical "which fabric should my chip
use?" comparison that motivates the paper's introduction.

Run:  python examples/network_zoo.py
"""

from repro import measure, validate_layout
from repro.core.schemes import layout_cayley, layout_kary_cluster, layout_network
from repro.grid.validate import check_topology
from repro.topology import (
    HSN,
    Butterfly,
    CompleteGraph,
    CubeConnectedCycles,
    EnhancedCube,
    FoldedHypercube,
    GeneralizedHypercube,
    Hypercube,
    IndirectSwapNetwork,
    KAryNCube,
    ReducedHypercube,
    Ring,
    StarGraph,
)
from repro.bench import print_table

LAYERS = 4

ZOO = [
    Ring(16),
    KAryNCube(4, 2),
    KAryNCube(3, 3),
    Hypercube(5),
    FoldedHypercube(5),
    EnhancedCube(5),
    CompleteGraph(12),
    GeneralizedHypercube((4, 4)),
    Butterfly(3),
    IndirectSwapNetwork(3),
    CubeConnectedCycles(4),
    ReducedHypercube(4),
    HSN(CompleteGraph(4), 2),
    StarGraph(4),
]


def main() -> None:
    rows = []
    for net in ZOO:
        lay = layout_network(net, layers=LAYERS)
        validate_layout(lay)
        check_topology(lay, net.edges)
        m = measure(lay)
        rows.append([
            net.name,
            net.num_nodes,
            net.num_edges,
            net.max_degree,
            m.width,
            m.height,
            m.area,
            m.volume,
            m.max_wire,
        ])
    print_table(
        f"network zoo under L={LAYERS} wiring layers (all validated)",
        ["network", "N", "links", "deg", "W", "H", "area", "volume",
         "max wire"],
        rows,
    )

    # A k-ary n-cube cluster, Section 3.2's packaging-aware design.
    lay = layout_kary_cluster(4, 2, 4, layers=LAYERS)
    validate_layout(lay)
    m = measure(lay)
    print(
        f"\nk-ary n-cube cluster-c (k=4, n=2, c=4 hypercube clusters): "
        f"area {m.area}, volume {m.volume} -- vs plain 4-ary 2-cube "
        f"area {measure(layout_network(KAryNCube(4, 2), layers=LAYERS)).area}"
    )


if __name__ == "__main__":
    main()
