"""One test per LayoutError rule, asserting the *precise* message.

The validator's messages are part of its contract: benches and users
debug layouts from them, so each rule's wording (offending wires,
coordinates, layers) is pinned here verbatim.  ``test_validate.py``
covers the legality semantics; this file covers the diagnostics.
"""

import pytest

from repro.grid.geometry import Rect, Segment
from repro.grid.layout import GridLayout
from repro.grid.validate import LayoutError, validate_layout
from repro.grid.wire import Wire


def two_node_layout(layers=2):
    lay = GridLayout(layers=layers)
    lay.place("a", Rect(0, 10, 2, 2))
    lay.place("b", Rect(10, 10, 2, 2))
    return lay


def straight_wire(y=9, layer_h=1, layer_v=2, x1=1, x2=11):
    return Wire(
        "a",
        "b",
        [
            Segment.make(x1, 10, x1, y, layer_v),
            Segment.make(x1, y, x2, y, layer_h),
            Segment.make(x2, y, x2, 10, layer_v),
        ],
    )


def error_of(lay, **kw) -> str:
    with pytest.raises(LayoutError) as exc:
        validate_layout(lay, **kw)
    return str(exc.value)


def test_layer_budget_message():
    lay = two_node_layout(layers=2)
    lay.add_wire(straight_wire(layer_h=3))
    assert error_of(lay) == "wire a-b: layers [2, 3] exceed the L=2 budget"


def test_edge_overlap_message():
    lay = two_node_layout()
    lay.add_wire(straight_wire(y=9))
    lay.add_wire(straight_wire(y=9, x1=0, x2=12))
    assert error_of(lay) == (
        "overlap on ('h', 1, 9): wire a-b and wire a-b "
        "share grid edges in [1, 11]"
    )


def test_knock_knee_message():
    lay = GridLayout(layers=4)
    lay.place("a", Rect(0, 4, 1, 1))
    lay.place("b", Rect(4, 9, 1, 1))
    lay.place("c", Rect(9, 4, 1, 1))
    lay.place("d", Rect(4, 0, 1, 1))
    lay.add_wire(
        Wire(
            "a",
            "b",
            [Segment.make(1, 5, 5, 5, 1), Segment.make(5, 5, 5, 9, 2)],
        )
    )
    lay.add_wire(
        Wire(
            "c",
            "d",
            [Segment.make(9, 5, 5, 5, 1), Segment.make(5, 5, 5, 1, 2)],
        )
    )
    assert error_of(
        lay, check_node_interference=False, check_pins=False
    ) == (
        "knock-knee / via conflict at (5, 5): wires a-b (layers 1-2) "
        "and c-d (layers 1-2) occupy overlapping layers"
    )


def test_node_interference_message():
    lay = two_node_layout()
    lay.place("c", Rect(4, 8, 3, 3))  # straddles the y=9 wire run
    lay.add_wire(straight_wire(y=9))
    assert error_of(lay) == (
        "wire a-b crosses interior of node 'c' at "
        "Rect(x0=4, y0=8, w=3, h=3): segment "
        "Segment(x1=1, y1=9, x2=11, y2=9, layer=1)"
    )


def test_node_overlap_message():
    lay = GridLayout(layers=2)
    lay.place("a", Rect(0, 0, 4, 4))
    lay.place("b", Rect(2, 2, 4, 4))
    assert error_of(lay) == (
        "node squares overlap on layer 1: 'b' at "
        "Rect(x0=2, y0=2, w=4, h=4) and 'a' at Rect(x0=0, y0=0, w=4, h=4)"
    )


def test_pin_sharing_message():
    # Both wires leave node a at abscissa 1: same top pin, two owners.
    lay = two_node_layout(layers=4)
    lay.add_wire(straight_wire(y=9, layer_h=1, layer_v=2))
    lay.add_wire(straight_wire(y=8, layer_h=3, layer_v=4))
    assert error_of(lay) == (
        "pin conflict at (1, 10) on node 'a': wires a-b and a-b"
    )


def test_self_overlap_message():
    # Consecutive collinear same-layer segments = an unmerged
    # self-overlapping run.
    lay = two_node_layout()
    lay.add_wire(
        Wire(
            "a",
            "b",
            [
                Segment.make(2, 11, 6, 11, 1),
                Segment.make(6, 11, 10, 11, 1),
            ],
        )
    )
    assert error_of(lay) == (
        "wire a-b: consecutive collinear same-layer segments should be "
        "merged: Segment(x1=2, y1=11, x2=6, y2=11, layer=1) / "
        "Segment(x1=6, y1=11, x2=10, y2=11, layer=1)"
    )


def test_success_report_counts_checks():
    lay = two_node_layout()
    lay.add_wire(straight_wire())
    report = validate_layout(lay)
    assert report["checks"] == 7
    assert report["wires"] == 1
    assert report["segments"] == 3
