#!/usr/bin/env python
"""Regenerate tests/golden_metrics.json.

Run after an *intentional* change to layout geometry:

    python tools/regen_golden.py

The golden file pins the exact measured metrics of one representative
layout per family.  Every entry is deterministic, so any diff flags a
behavioral change in the engine -- the regression net for refactors.
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import measure  # noqa: E402
from repro.core.folding import fold_layout  # noqa: E402
from repro.core.threedee import layout_product_3d  # noqa: E402
from repro.core.schemes import (  # noqa: E402
    layout_butterfly,
    layout_cayley,
    layout_ccc,
    layout_collinear_network,
    layout_complete,
    layout_enhanced_cube,
    layout_folded_hypercube,
    layout_ghc,
    layout_hsn,
    layout_hypercube,
    layout_isn,
    layout_kary,
    layout_kary_cluster,
    layout_reduced_hypercube,
    layout_scc,
    layout_wrapped_butterfly,
)
from repro.topology import CompleteGraph, Ring, StarGraph  # noqa: E402

GOLDEN = pathlib.Path(__file__).resolve().parent.parent / "tests" / "golden_metrics.json"


def build_cases():
    return {
        "kary(4,2)_L2": layout_kary(4, 2),
        "kary(3,3)_L4": layout_kary(3, 3, layers=4),
        "kary(8,2)_L2_folded_order": layout_kary(8, 2, folded=True),
        "hypercube(6)_L2": layout_hypercube(6),
        "hypercube(6)_L8": layout_hypercube(6, layers=8),
        "hypercube(8)_L2_min": layout_hypercube(8, node_side="min"),
        "ghc(4,4)_L2": layout_ghc((4, 4)),
        "ghc(3,4)_L3": layout_ghc((3, 4), layers=3),
        "complete(9)_L2": layout_complete(9),
        "collinear_ring(8)_L4": layout_collinear_network(Ring(8), layers=4),
        "butterfly(3)_L2": layout_butterfly(3),
        "wrapped_butterfly(3)_L2": layout_wrapped_butterfly(3),
        "isn(3)_L2": layout_isn(3),
        "ccc(4)_L2": layout_ccc(4),
        "reduced_hypercube(4)_L4": layout_reduced_hypercube(4, layers=4),
        "hsn(K4,2)_L2": layout_hsn(CompleteGraph(4), 2),
        "kary_cluster(3,2,4)_L2": layout_kary_cluster(3, 2, 4),
        "star(4)_L2": layout_cayley(StarGraph(4)),
        "scc(4)_L2": layout_scc(4),
        "folded_hypercube(5)_L4": layout_folded_hypercube(5, layers=4),
        "enhanced_cube(4)_L2": layout_enhanced_cube(4),
        "fold(hypercube(6))_L8": fold_layout(layout_hypercube(6, layers=2), 8),
        "stack(4,4,4)_L8": layout_product_3d(
            Ring(4), Ring(4), Ring(4), layers=8
        ),
    }


def main() -> None:
    golden = {}
    for name, lay in sorted(build_cases().items()):
        m = measure(lay)
        golden[name] = {
            "area": m.area,
            "width": m.width,
            "height": m.height,
            "volume": m.volume,
            "max_wire": m.max_wire,
            "total_wire": m.total_wire,
            "wires": len(lay.wires),
            "vias": lay.via_count(),
        }
    GOLDEN.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"wrote {len(golden)} entries to {GOLDEN}")


if __name__ == "__main__":
    main()
