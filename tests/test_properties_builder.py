"""Property-based tests of the full layout pipeline.

Random grids, random links (row/column/extra), random layer budgets:
every generated spec must route into a layout that passes the
multilayer grid model validator and reproduces its edge multiset.
This is the strongest guarantee in the suite -- the builder's
structural-legality argument, exercised adversarially.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_orthogonal_layout
from repro.core.spec import BlockCell, LayoutSpec, LinkSpec, NodeCell
from repro.grid.validate import check_topology, validate_layout


@st.composite
def grid_specs(draw):
    rows = draw(st.integers(1, 4))
    cols = draw(st.integers(1, 4))
    layers = draw(st.sampled_from([2, 3, 4, 5, 8]))
    side = draw(st.integers(4, 8))
    cells = {
        (i, j): NodeCell((i, j), side) for i in range(rows) for j in range(cols)
    }
    n_links = draw(st.integers(0, 12))
    row_links, col_links, extra_links = [], [], []
    keys: dict[tuple, int] = {}
    demand: dict[tuple, int] = {}
    for _ in range(n_links):
        i1 = draw(st.integers(0, rows - 1))
        j1 = draw(st.integers(0, cols - 1))
        i2 = draw(st.integers(0, rows - 1))
        j2 = draw(st.integers(0, cols - 1))
        if (i1, j1) == (i2, j2):
            continue
        # Respect pin capacity: at most `side` wires per node side.
        if demand.get((i1, j1), 0) >= side or demand.get((i2, j2), 0) >= side:
            continue
        demand[(i1, j1)] = demand.get((i1, j1), 0) + 1
        demand[(i2, j2)] = demand.get((i2, j2), 0) + 1
        key = ((i1, j1), (i2, j2))
        ek = keys.get(key, 0)
        keys[key] = ek + 1
        link = LinkSpec((i1, j1), (i2, j2), (i1, j1), (i2, j2), edge_key=ek)
        if i1 == i2:
            row_links.append(link)
        elif j1 == j2:
            col_links.append(link)
        else:
            extra_links.append(link)
    return LayoutSpec(
        rows=rows,
        cols=cols,
        cells=cells,
        row_links=row_links,
        col_links=col_links,
        extra_links=extra_links,
        layers=layers,
        name="random",
    )


class TestRandomSpecs:
    @given(grid_specs())
    @settings(max_examples=120, deadline=None)
    def test_always_legal(self, spec):
        lay = build_orthogonal_layout(spec)
        validate_layout(lay)
        expected = [
            (l.u_node, l.v_node) for l in spec.all_links()
        ]
        check_topology(lay, expected)

    @given(grid_specs())
    @settings(max_examples=60, deadline=None)
    def test_layer_budget_respected(self, spec):
        lay = build_orthogonal_layout(spec)
        assert all(
            1 <= s.layer <= spec.layers
            for w in lay.wires
            for s in w.segments
        )

    @given(grid_specs())
    @settings(max_examples=60, deadline=None)
    def test_parity_convention(self, spec):
        lay = build_orthogonal_layout(spec)
        validate_layout(lay, check_parity=True)


@st.composite
def block_specs(draw):
    """1 x C rows of blocks with random small clusters and links."""
    cols = draw(st.integers(2, 4))
    layers = draw(st.sampled_from([2, 4, 6]))
    side = 6
    cells = {}
    members: dict[int, list] = {}
    for j in range(cols):
        m = draw(st.integers(1, 4))
        nodes = [f"b{j}m{i}" for i in range(m)]
        members[j] = nodes
        edges = [
            (nodes[i], nodes[i + 1])
            for i in range(m - 1)
            if draw(st.booleans())
        ]
        cells[(0, j)] = BlockCell(j, nodes, edges, node_side=side)
    links = []
    keys: dict[tuple, int] = {}
    for _ in range(draw(st.integers(0, 6))):
        j1 = draw(st.integers(0, cols - 1))
        j2 = draw(st.integers(0, cols - 1))
        if j1 == j2:
            continue
        u = draw(st.sampled_from(members[j1]))
        v = draw(st.sampled_from(members[j2]))
        key = (j1, j2, u, v)
        ek = keys.get(key, 0)
        keys[key] = ek + 1
        links.append(LinkSpec((0, j1), (0, j2), u, v, edge_key=ek))
    return LayoutSpec(
        rows=1, cols=cols, cells=cells, row_links=links, layers=layers,
        name="random-blocks",
    )


class TestRandomBlockSpecs:
    @given(block_specs())
    @settings(max_examples=80, deadline=None)
    def test_always_legal(self, spec):
        lay = build_orthogonal_layout(spec)
        validate_layout(lay)

    @given(block_specs())
    @settings(max_examples=40, deadline=None)
    def test_edge_multiset_preserved(self, spec):
        lay = build_orthogonal_layout(spec)
        expected = [(l.u_node, l.v_node) for l in spec.row_links]
        for pos, cell in spec.cells.items():
            expected.extend(cell.edges)
        check_topology(lay, expected)
